package sortinghat

// Benchmarks that regenerate every table and figure of the paper's
// evaluation at a reduced, benchmark-friendly scale, plus ablation benches
// for the design choices called out in DESIGN.md §5. Run the cmd/benchmark
// binary for full-size, human-readable experiment output:
//
//	go run ./cmd/benchmark -run all        # small-machine sizing
//	go run ./cmd/benchmark -run all -full  # paper-scale corpus
//
// Each BenchmarkTableN/BenchmarkFigureN iteration executes the complete
// experiment pipeline behind that artifact.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sortinghat/ftype"
	"sortinghat/internal/core"
	"sortinghat/internal/data"
	"sortinghat/internal/downstream"
	"sortinghat/internal/experiments"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/svm"
	"sortinghat/internal/ml/tree"
	"sortinghat/internal/serve"
	"sortinghat/internal/synth"
)

// benchEnv is the shared, lazily built experiment environment. Benchmarks
// use a small corpus so the whole suite completes on a laptop-class
// machine; cmd/benchmark regenerates the full-size tables.
var (
	benchOnce sync.Once
	benchE    *experiments.Env
)

func benchEnvironment() *experiments.Env {
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.CorpusN = 1500
		cfg.RFTrees = 25
		cfg.CNNEpochs = 2
		cfg.Quick = true
		benchE = experiments.NewEnv(cfg)
	})
	return benchE
}

func BenchmarkTable1(b *testing.B) {
	env := benchEnvironment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	env := benchEnvironment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	env := benchEnvironment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	env := benchEnvironment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable11(b *testing.B) {
	env := benchEnvironment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table11(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable12(b *testing.B) {
	env := benchEnvironment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table12(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable18(b *testing.B) {
	env := benchEnvironment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table18(env)
	}
}

func BenchmarkFigure7(b *testing.B) {
	env := benchEnvironment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	env := benchEnvironment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(env, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSuite is a reduced downstream slice (6 of the 30 datasets spanning
// every routing path) used by the downstream benchmarks; the full Tables
// 4/5/15 come from cmd/benchmark -run downstream.
func benchSuite() []*synth.Downstream {
	keep := map[string]bool{"Hayes": true, "Boxing": true, "IOT": true,
		"Zoo": true, "MBA": true, "Accident": true}
	var out []*synth.Downstream
	for _, sp := range synth.SuiteSpecs(1234) {
		if keep[sp.Name] {
			sp.Rows /= 2
			out = append(out, synth.Generate(sp))
		}
	}
	return out
}

// BenchmarkTables4And5 exercises the downstream pipeline behind Tables 4
// and 5 and Figure 8: infer types with every tool, featurize per routing,
// train both downstream models, and score against truth.
func BenchmarkTables4And5(b *testing.B) {
	env := benchEnvironment()
	rf, err := experiments.TrainOurRF(env)
	if err != nil {
		b.Fatal(err)
	}
	suite := benchSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range suite {
			for _, types := range [][]ftype.FeatureType{d.TrueTypes, downstream.InferTypes(d, rf)} {
				for _, m := range []downstream.Model{downstream.LinearModel, downstream.ForestModel} {
					if _, err := downstream.Evaluate(d, types, m, 1); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// BenchmarkTable15 exercises the double-representation variant.
func BenchmarkTable15(b *testing.B) {
	env := benchEnvironment()
	rf, err := experiments.TrainOurRF(env)
	if err != nil {
		b.Fatal(err)
	}
	suite := benchSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range suite {
			if d.IsRegression() {
				continue
			}
			types := downstream.InferTypes(d, rf)
			double := make([]bool, len(types))
			for c := range double {
				double[c] = downstream.IsIntegerColumn(&d.Data.Columns[c])
			}
			if _, err := downstream.EvaluateDouble(d, types, double, downstream.ForestModel, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkHashingDims ablates the hashed-bigram dimensionality of the
// attribute-name features: accuracy/speed tradeoff of the paper's
// "bigrams on the attribute name" featurization.
func BenchmarkHashingDims(b *testing.B) {
	env := benchEnvironment()
	trainBases, trainLabels := env.TrainBases()
	for _, dim := range []int{64, 256, 1024} {
		b.Run(sizeName("nameDim", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fs := featurize.FeatureSet{UseStats: true, UseName: true, NameDim: dim}
				_, err := core.TrainOnBases(trainBases, trainLabels, core.Options{
					Model: core.RandomForest, FeatureSet: fs, Seed: 1, RFTrees: 15, RFDepth: 20})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRFFDim ablates the random-Fourier-feature count approximating
// the RBF kernel.
func BenchmarkRFFDim(b *testing.B) {
	env := benchEnvironment()
	trainBases, trainLabels := env.TrainBases()
	fs := featurize.DefaultFeatureSet()
	X := fs.Matrix(trainBases)
	for _, d := range []int{128, 512, 1024} {
		b.Run(sizeName("rff", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := svm.NewRBFSVM()
				m.D = d
				m.Epochs = 5
				if err := m.Fit(X, trainLabels, ftype.NumBaseClasses); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRFGrid sweeps the paper's Random Forest grid corners
// (NumEstimator × MaxDepth, Appendix B).
func BenchmarkRFGrid(b *testing.B) {
	env := benchEnvironment()
	trainBases, trainLabels := env.TrainBases()
	fs := featurize.DefaultFeatureSet()
	X := fs.Matrix(trainBases)
	for _, p := range []struct{ trees, depth int }{{5, 5}, {25, 25}, {50, 10}} {
		b.Run(sizeName("trees", p.trees)+"_"+sizeName("depth", p.depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := tree.NewClassifier(p.trees, p.depth)
				if err := m.Fit(X, trainLabels, ftype.NumBaseClasses); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaseFeaturization measures the shared featurization cost per
// column (the dominant online-phase cost in Figure 7).
func BenchmarkBaseFeaturization(b *testing.B) {
	env := benchEnvironment()
	cols := env.Corpus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := &cols[i%len(cols)].Column
		featurize.ExtractFirstN(col, featurize.SampleCount)
	}
}

// BenchmarkFeaturizeColumn measures deterministic base featurization of a
// single column with allocation accounting: the serve hot path pays this
// once per cache miss, so its allocs/op is the number the benchdiff gate
// watches most closely.
func BenchmarkFeaturizeColumn(b *testing.B) {
	env := benchEnvironment()
	cols := env.Corpus
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := &cols[i%len(cols)].Column
		featurize.ExtractFirstN(col, featurize.SampleCount)
	}
}

// BenchmarkTreePredict measures one Random Forest probability prediction
// over pre-built feature vectors, isolating tree traversal (plus the
// per-call probability buffer) from featurization.
func BenchmarkTreePredict(b *testing.B) {
	env := benchEnvironment()
	rf, err := experiments.TrainOurRF(env)
	if err != nil {
		b.Fatal(err)
	}
	fs := rf.Opts.FeatureSet
	vecs := make([][]float64, 256)
	for i := range vecs {
		base := featurize.ExtractFirstN(&env.Corpus[i%len(env.Corpus)].Column, featurize.SampleCount)
		vecs[i] = fs.Vector(&base)
	}
	probs := make([]float64, rf.Forest.Classes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf.Forest.PredictProbaInto(probs, vecs[i%len(vecs)])
	}
}

// BenchmarkPredictColumn measures end-to-end single-column inference with
// the trained Random Forest (the paper's "under 0.2s per column" claim).
func BenchmarkPredictColumn(b *testing.B) {
	env := benchEnvironment()
	rf, err := experiments.TrainOurRF(env)
	if err != nil {
		b.Fatal(err)
	}
	cols := env.Corpus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf.Infer(&cols[i%len(cols)].Column)
	}
}

// BenchmarkServeInfer measures the serving hot path of internal/serve: a
// 64-column batch through the worker pool, featurization included. The
// workersN sub-benchmarks demonstrate worker-pool parallelism (featurize
// latency should drop as workers grow on a multi-core machine); the
// cached sub-benchmark shows the content-hash LRU skipping featurization
// entirely; the http sub-benchmark adds JSON decode/encode on top.
func BenchmarkServeInfer(b *testing.B) {
	env := benchEnvironment()
	rf, err := experiments.TrainOurRF(env)
	if err != nil {
		b.Fatal(err)
	}
	cols := make([]data.Column, 64)
	for i := range cols {
		cols[i] = env.Corpus[i%len(env.Corpus)].Column
	}

	for _, workers := range []int{1, 2, 4} {
		b.Run(sizeName("workers", workers), func(b *testing.B) {
			s := serve.New(rf, serve.Config{Workers: workers, CacheSize: -1})
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.InferBatch(context.Background(), cols); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	b.Run("cached", func(b *testing.B) {
		s := serve.New(rf, serve.Config{Workers: 2, CacheSize: 128})
		defer s.Close()
		if _, err := s.InferBatch(context.Background(), cols); err != nil {
			b.Fatal(err) // warm the cache; every timed batch hits it
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.InferBatch(context.Background(), cols); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("http", func(b *testing.B) {
		s := serve.New(rf, serve.Config{Workers: 4, CacheSize: -1})
		defer s.Close()
		h := s.Handler()
		req := serve.InferRequest{Columns: make([]serve.InferColumn, len(cols))}
		for i, c := range cols {
			req.Columns[i] = serve.InferColumn{Name: c.Name, Values: c.Values}
		}
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
			}
		}
	})
}

func sizeName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + string(buf[i:])
}
