module sortinghat

go 1.22
