// Vocabulary extension example (Appendix I.4 of the paper): extend the
// nine-class vocabulary with a tenth semantic type — Country — by adding a
// modest number of labeled examples and retraining. The paper's takeaway:
// the featurization generalises, so the programming and labeling overhead
// of new types is minimal.
package main

import (
	"fmt"
	"log"

	"sortinghat"
	"sortinghat/ftype"
	"sortinghat/internal/synth"
)

func main() {
	// Base 9-class corpus plus 150 Country examples.
	examples := sortinghat.GenerateBenchmark(4000, 7)
	extTrain, extTest := synth.GenerateExtension(synth.ExtensionConfig{
		Type: ftype.Country, TrainN: 150, TestN: 60, Seed: 21,
	})
	for _, c := range extTrain {
		examples = append(examples, sortinghat.Example{
			Name: c.Name, Values: c.Values, Label: ftype.Country,
		})
	}

	fmt.Println("training a 10-class Random Forest (9 base classes + Country)...")
	opts := sortinghat.DefaultOptions()
	opts.Classes = 10
	model, err := sortinghat.Train(examples, opts)
	if err != nil {
		log.Fatalf("extend: %v", err)
	}

	correct, abbrevMiss := 0, 0
	for _, c := range extTest {
		p := model.InferColumn(c.Name, c.Values)
		if p.Type == ftype.Country {
			correct++
		} else if len(c.Values) > 0 && len(c.Values[0]) <= 3 {
			abbrevMiss++
		}
	}
	fmt.Printf("\nheld-out Country columns recognised: %d/%d\n", correct, len(extTest))
	fmt.Printf("misses on abbreviation-style columns (AFG, ALB, ...): %d\n", abbrevMiss)

	// Sanity check that the base classes still work.
	p := model.InferColumn("salary", []string{"1500.50", "2750.25", "3100.00", "990.75"})
	fmt.Printf("\nbase vocabulary intact: salary -> %s (conf %.2f)\n", p.Type, p.Confidence)
	p = model.InferColumn("country", []string{"France", "Japan", "Brazil", "France", "Kenya"})
	fmt.Printf("new class in action:    country -> %s (conf %.2f)\n", p.Type, p.Confidence)
}
