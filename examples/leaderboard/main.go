// Leaderboard example: evaluate custom feature type inference approaches on
// the benchmark, exactly how the paper's public leaderboard scores
// submissions (9-class accuracy plus per-class precision / recall / F1 /
// binarized accuracy).
//
// Two contestants are scored here: a tiny hand-written heuristic and the
// trained Random Forest. Plug in your own InferFunc to compete.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"sortinghat"
)

// myHeuristic is a contestant: a 10-line rule of thumb.
func myHeuristic(name string, values []string) sortinghat.FeatureType {
	numeric, total, unique := 0, 0, map[string]bool{}
	for _, v := range values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		total++
		unique[v] = true
		if _, err := strconv.ParseFloat(v, 64); err == nil {
			numeric++
		}
	}
	switch {
	case total == 0 || len(unique) <= 1:
		return sortinghat.NotGeneralizable
	case numeric == total && len(unique) <= 8:
		return sortinghat.Categorical
	case numeric == total:
		return sortinghat.Numeric
	case len(unique)*5 < total:
		return sortinghat.Categorical
	default:
		return sortinghat.ContextSpecific
	}
}

func main() {
	// Benchmark splits: train on the first 4,000 columns, evaluate on a
	// disjoint 1,000-column slice (different seed = different files).
	train := sortinghat.GenerateBenchmark(4000, 7)
	heldOut := sortinghat.GenerateBenchmark(1000, 99)

	fmt.Println("training the reference Random Forest...")
	model, err := sortinghat.Train(train, sortinghat.Options{})
	if err != nil {
		log.Fatalf("leaderboard: %v", err)
	}

	entries := []struct {
		name   string
		report sortinghat.Report
	}{
		{"my-heuristic", sortinghat.Evaluate(heldOut, myHeuristic)},
		{"sortinghat-rf", sortinghat.EvaluateModel(heldOut, model)},
	}

	fmt.Println("\n=== leaderboard (1,000 held-out columns) ===")
	for _, e := range entries {
		fmt.Printf("\n-- %s --\n%s", e.name, e.report)
	}
}
