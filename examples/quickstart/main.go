// Quickstart: train a feature type inference model on the benchmark corpus
// and infer the column types of a small customer-churn CSV — the paper's
// running example (Figure 2), where syntax-based inference goes wrong on
// integer-coded categoricals like ZipCode and decorated numbers like
// Income.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sortinghat"
)

const customersCSV = `CustID,Gender,Salary,ZipCode,XYZ,Income,HireDate,Churn
1501,F,1500,92092,005,USD 15000,05/01/1992,Yes
1704,M,3400,78712,003,USD 25384,12/09/2008,No
1932,F,2750,92092,007,USD 18200,03/15/2001,No
2014,M,4100,60614,005,USD 31500,07/22/2012,Yes
2288,F,1980,78712,002,USD 16750,11/02/1997,No
2390,M,3725,60614,003,USD 28900,01/19/2015,No
2511,F,2210,92092,008,USD 19900,09/30/1999,Yes
2743,M,3950,10001,001,USD 30120,04/11/2010,No
2901,F,1875,10001,006,USD 15890,08/25/1995,Yes
3120,M,4480,60614,004,USD 33400,02/14/2018,No
3254,F,2640,92092,002,USD 21050,06/08/2003,No
3390,M,3115,78712,009,USD 26300,10/17/2007,Yes
`

// moreRows appends generated customers so the table has a realistic row
// count (tiny tables are out of distribution for any statistics-driven
// inference).
func moreRows(b *strings.Builder, n int) {
	rng := rand.New(rand.NewSource(42))
	zips := []string{"92092", "78712", "60614", "10001", "30301"}
	for i := 0; i < n; i++ {
		gender := "F"
		if rng.Intn(2) == 1 {
			gender = "M"
		}
		churn := "No"
		if rng.Intn(3) == 0 {
			churn = "Yes"
		}
		fmt.Fprintf(b, "%d,%s,%d,%s,%03d,USD %d,%02d/%02d/%d,%s\n",
			3500+i*7, gender, 1500+rng.Intn(3000), zips[rng.Intn(len(zips))],
			rng.Intn(10), 15000+rng.Intn(20000),
			rng.Intn(12)+1, rng.Intn(28)+1, 1990+rng.Intn(30), churn)
	}
}

func main() {
	// Train on a moderate slice of the benchmark corpus; use
	// sortinghat.TrainDefault(nil) for the full paper-scale corpus.
	fmt.Println("training the default Random Forest (4,000 labeled columns)...")
	model, err := sortinghat.TrainDefault(&sortinghat.CorpusConfig{N: 4000})
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	var table strings.Builder
	table.WriteString(customersCSV)
	moreRows(&table, 48)
	preds, err := model.InferDataset("customers.csv", strings.NewReader(table.String()))
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("\ninferred feature types for the churn dataset:")
	fmt.Printf("  %-10s %-18s %s\n", "column", "feature type", "confidence")
	for _, p := range preds {
		fmt.Printf("  %-10s %-18s %.2f\n", p.Column, p.Type, p.Confidence)
	}

	fmt.Println("\nwhat a syntax-based tool would say instead:")
	fmt.Println("  ZipCode -> Numeric (it is stored as integers)")
	fmt.Println("  CustID  -> Numeric (a primary key used as a feature)")
	fmt.Println("  Income  -> Categorical/text (the embedded number is lost)")
}
