// AutoML pipeline example: the end-to-end workflow of Figure 1 in the
// paper. A raw table arrives as a CSV; feature type inference is the
// gateway step that decides how each column is featurized before the
// downstream model is trained. The example runs the same dataset through
// (a) correct inferred types and (b) a naive syntactic typing, and shows
// the downstream accuracy gap.
package main

import (
	"fmt"
	"log"

	"sortinghat"
	"sortinghat/ftype"
	"sortinghat/internal/downstream"
	"sortinghat/internal/synth"
)

func main() {
	// A churn-style downstream dataset with integer-coded categoricals —
	// the exact trap the paper shows syntax-based tools falling into.
	spec := synth.DatasetSpec{
		Name: "churn-demo", Rows: 700, Classes: 2, Noise: 0.5, Seed: 42,
		Cols: []synth.ColSpec{
			{Name: "salary", Kind: synth.KindNumFloat, Weight: 0.7},
			{Name: "age", Kind: synth.KindNumInt, Weight: 0.5},
			{Name: "zipcode", Kind: synth.KindCatInt, Weight: 1.0, Card: 8},
			{Name: "plan_code", Kind: synth.KindCatInt, Weight: 1.0, Card: 5},
			{Name: "segment", Kind: synth.KindCatStr, Weight: 0.6, Card: 5},
			{Name: "cust_id", Kind: synth.KindPK},
		},
	}
	d := synth.Generate(spec)

	fmt.Println("training the type inference model...")
	model, err := sortinghat.TrainDefault(&sortinghat.CorpusConfig{N: 4000})
	if err != nil {
		log.Fatalf("automl: %v", err)
	}

	// Step 1: infer feature types for every column.
	nCols := d.Data.NumCols() - 1
	inferred := make([]ftype.FeatureType, nCols)
	fmt.Println("\ninferred types:")
	for c := 0; c < nCols; c++ {
		col := &d.Data.Columns[c]
		p := model.InferColumn(col.Name, col.Values)
		inferred[c] = p.Type
		fmt.Printf("  %-10s -> %-18s (true: %s)\n", col.Name, p.Type, d.TrueTypes[c])
	}

	// A syntax-based typing: every castable column is Numeric.
	syntactic := make([]ftype.FeatureType, nCols)
	for c := 0; c < nCols; c++ {
		switch d.TrueTypes[c] {
		case ftype.Categorical: // int-coded ones look numeric to syntax
			syntactic[c] = ftype.Numeric
		default:
			syntactic[c] = d.TrueTypes[c]
		}
	}
	syntactic[5] = ftype.Numeric // the primary key sneaks in as a feature

	// Step 2: route featurization by type and train the downstream model.
	run := func(label string, types []ftype.FeatureType) {
		ev, err := downstream.Evaluate(d, types, downstream.LinearModel, 1)
		if err != nil {
			log.Fatalf("automl: %v", err)
		}
		fmt.Printf("  %-28s downstream logistic regression accuracy: %.1f%%\n", label, ev.Acc)
	}
	fmt.Println("\ndownstream model comparison:")
	run("true types:", d.TrueTypes)
	run("SortingHat inferred types:", inferred)
	run("syntactic types:", syntactic)
	fmt.Println("\nwith syntactic typing the integer-coded categoricals collapse to single numbers and the model loses their signal.")
}
