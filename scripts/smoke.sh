#!/bin/sh
# Serving smoke test: train a small model, boot sortinghatd against it,
# probe /healthz, run the same /v1/infer batch twice, and require /metrics
# to show the second batch answered from the cache, /debug/traces to hold
# the recorded request traces, and /debug/pprof to be mounted (the daemon
# runs with -pprof). `make smoke` runs this locally; CI runs it as the
# smoke job. POSIX sh + curl only.
set -eu

GO=${GO:-go}
PORT=${SMOKE_PORT:-8099}
DIR=$(mktemp -d)
PID=""

cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "smoke: training a small model..."
$GO run ./cmd/sortinghat train -out "$DIR/model.gob" -n 600 -seed 7

echo "smoke: building sortinghatd..."
$GO build -o "$DIR/sortinghatd" ./cmd/sortinghatd

echo "smoke: starting sortinghatd on :$PORT..."
"$DIR/sortinghatd" -model "$DIR/model.gob" -addr "127.0.0.1:$PORT" -pprof &
PID=$!

BASE="http://127.0.0.1:$PORT"
i=0
until curl -fsS "$BASE/healthz" >"$DIR/healthz.json" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: FAIL - /healthz never came up" >&2
        exit 1
    fi
    sleep 0.2
done
echo "smoke: healthz: $(cat "$DIR/healthz.json")"
grep -q '"status":"ok"' "$DIR/healthz.json"
grep -q '"model":"OurRF"' "$DIR/healthz.json"

BATCH='{"columns":[
  {"name":"zipcode","values":["92093","92037","92122","92093"]},
  {"name":"salary","values":["51000","62500","48200","70100"]},
  {"name":"hire_date","values":["2019-03-01","2020-11-15","2018-07-09","2021-01-30"]},
  {"name":"homepage","values":["https://a.example.com","https://b.example.org","https://c.example.net","https://d.example.io"]}
]}'

echo "smoke: first /v1/infer batch..."
curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/infer1.json"
echo "smoke: infer: $(cat "$DIR/infer1.json")"
grep -q '"predictions"' "$DIR/infer1.json"
grep -q '"zipcode"' "$DIR/infer1.json"
grep -q '"cache_hits":0' "$DIR/infer1.json"

echo "smoke: repeated batch must hit the cache..."
curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/infer2.json"
grep -q '"cache_hits":4' "$DIR/infer2.json"

curl -fsS "$BASE/metrics" >"$DIR/metrics.txt"
grep -q '^sortinghatd_requests_total 2$' "$DIR/metrics.txt"
grep -q '^sortinghatd_cache_hits_total 4$' "$DIR/metrics.txt"
grep -q '^sortinghatd_columns_total 8$' "$DIR/metrics.txt"
grep -q '^sortinghatd_cache_evictions_total 0$' "$DIR/metrics.txt"
grep -q '^sortinghatd_cache_capacity ' "$DIR/metrics.txt"
grep -q '^sortinghatd_forest_split_nodes ' "$DIR/metrics.txt"
grep -q '^sortinghatd_featurize_seconds_count ' "$DIR/metrics.txt"

echo "smoke: /debug/traces must hold the recorded request traces..."
curl -fsS "$BASE/debug/traces" >"$DIR/traces.json"
grep -q '"name":"infer"' "$DIR/traces.json" || {
    echo "smoke: FAIL - trace ring empty or missing infer spans: $(cat "$DIR/traces.json")" >&2
    exit 1
}
grep -q '"name":"featurize"' "$DIR/traces.json"
grep -q '"request_id"' "$DIR/traces.json"

echo "smoke: /debug/pprof must be mounted (-pprof)..."
curl -fsS "$BASE/debug/pprof/cmdline" >/dev/null

echo "smoke: graceful shutdown..."
kill "$PID"
wait "$PID"
PID=""

# Phase 2: degraded-mode drill. Boot with one worker (deterministic
# column order) and a fault spec that fails the first 3 predictions —
# exactly enough to trip the 3-failure breaker, with nothing left armed
# for the later probe. The 4-column batch must come back degraded (3
# injected errors + 1 breaker-open skip), /healthz must flip to
# "degraded", and after the 1s probe interval the half-open probe
# succeeds and health recovers to "ok".
echo "smoke: restarting with injected prediction faults..."
"$DIR/sortinghatd" -model "$DIR/model.gob" -addr "127.0.0.1:$PORT" -workers 1 \
    -fault-spec 'predict:error:1:x3' -breaker-failures 3 -breaker-probe 1s &
PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: FAIL - faulted daemon never came up" >&2
        exit 1
    fi
    sleep 0.2
done

echo "smoke: batch under injected faults must degrade, not fail..."
curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/degraded.json"
echo "smoke: degraded infer: $(cat "$DIR/degraded.json")"
grep -q '"degraded":true' "$DIR/degraded.json"
grep -q '"degraded_columns":4' "$DIR/degraded.json"

curl -fsS "$BASE/healthz" >"$DIR/healthz-degraded.json"
echo "smoke: degraded healthz: $(cat "$DIR/healthz-degraded.json")"
grep -q '"status":"degraded"' "$DIR/healthz-degraded.json"
grep -q '"breaker":"open"' "$DIR/healthz-degraded.json"

curl -fsS "$BASE/metrics" >"$DIR/metrics-degraded.txt"
grep -q '^sortinghatd_degraded_total 4$' "$DIR/metrics-degraded.txt"
grep -q '^sortinghatd_breaker_open_total 1$' "$DIR/metrics-degraded.txt"
grep -q '^sortinghatd_faults_injected_total 3$' "$DIR/metrics-degraded.txt"

echo "smoke: waiting out the breaker probe interval..."
sleep 1.2
# A half-open breaker admits exactly one probe, so recover with a
# single-column batch before asserting a full batch is clean again.
curl -fsS -X POST "$BASE/v1/infer" \
    -d '{"columns":[{"name":"probe","values":["1","2","3"]}]}' >"$DIR/probe.json"
grep -q '"degraded_columns":0' "$DIR/probe.json"
curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/recovered.json"
grep -q '"degraded_columns":0' "$DIR/recovered.json"
curl -fsS "$BASE/healthz" >"$DIR/healthz-recovered.json"
echo "smoke: recovered healthz: $(cat "$DIR/healthz-recovered.json")"
grep -q '"status":"ok"' "$DIR/healthz-recovered.json"
grep -q '"breaker":"closed"' "$DIR/healthz-recovered.json"

echo "smoke: graceful shutdown of the faulted daemon..."
kill "$PID"
wait "$PID"
PID=""

echo "smoke: OK"
