#!/bin/sh
# End-to-end serving smoke tests. Phases are selected by SMOKE_PHASES
# (space-separated); host and base port come from SMOKE_HOST/SMOKE_PORT:
#
#   single    train a model, boot sortinghatd, assert /healthz, cached
#             /v1/infer, /metrics, /debug/traces, /debug/pprof
#   degrade   reboot with -fault-spec, assert graceful degradation,
#             breaker trip on /healthz, and recovery after the probe
#   reload    boot with -model-version, POST /admin/reload a canary,
#             assert the swap, the cache purge, and re-warm
#   fleet     boot 2 replicas + 1 sortinghatgw (all with -trace-out),
#             assert sharded routing with disjoint per-replica caches, a
#             full cache-hit repeat batch through the gateway, one
#             gateway trace id shared by every process's trace sink, a
#             populated /debug/flight on gateway and replicas, and a
#             tracecat-stitched fleet timeline
#
# `make smoke` runs "single degrade reload"; `make smoke-fleet` runs
# "fleet" (CI runs them as separate jobs). POSIX sh + curl only.
set -eu

GO=${GO:-go}
HOST=${SMOKE_HOST:-127.0.0.1}
PORT=${SMOKE_PORT:-8099}
PHASES=${SMOKE_PHASES:-single degrade reload}
DIR=$(mktemp -d)
PIDS=""

cleanup() {
    for p in $PIDS; do
        if kill -0 "$p" 2>/dev/null; then
            kill "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

has_phase() {
    case " $PHASES " in
    *" $1 "*) return 0 ;;
    *) return 1 ;;
    esac
}

# stop_pid <pid>: graceful shutdown of one background daemon.
stop_pid() {
    kill "$1"
    wait "$1" 2>/dev/null || true
}

# wait_ready <base-url> <out-file>: poll /healthz until it answers.
wait_ready() {
    i=0
    until curl -fsS "$1/healthz" >"$2" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "smoke: FAIL - $1/healthz never came up" >&2
            exit 1
        fi
        sleep 0.2
    done
}

# jint <file> <key>: first integer value of a JSON key, e.g.
# `jint healthz.json cache_entries`.
jint() {
    sed -n 's/.*"'"$2"'":\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}

# wait_grep <pattern> <file>: poll until the pattern appears (trace
# sinks are flushed just after the HTTP response, so reads may race).
wait_grep() {
    i=0
    until grep -q "$1" "$2" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "smoke: FAIL - '$1' never appeared in $2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

BASE="http://$HOST:$PORT"
BATCH='{"columns":[
  {"name":"zipcode","values":["92093","92037","92122","92093"]},
  {"name":"salary","values":["51000","62500","48200","70100"]},
  {"name":"hire_date","values":["2019-03-01","2020-11-15","2018-07-09","2021-01-30"]},
  {"name":"homepage","values":["https://a.example.com","https://b.example.org","https://c.example.net","https://d.example.io"]}
]}'

echo "smoke: phases: $PHASES"
echo "smoke: training a small model..."
$GO run ./cmd/sortinghat train -out "$DIR/model.gob" -n 600 -seed 7

echo "smoke: building sortinghatd..."
$GO build -o "$DIR/sortinghatd" ./cmd/sortinghatd
if has_phase fleet; then
    echo "smoke: building sortinghatgw..."
    $GO build -o "$DIR/sortinghatgw" ./cmd/sortinghatgw
fi

# ---------------------------------------------------------------- single
if has_phase single; then
    echo "smoke: [single] starting sortinghatd on :$PORT..."
    "$DIR/sortinghatd" -model "$DIR/model.gob" -addr "$HOST:$PORT" -pprof &
    PID=$!
    PIDS="$PIDS $PID"

    wait_ready "$BASE" "$DIR/healthz.json"
    echo "smoke: [single] healthz: $(cat "$DIR/healthz.json")"
    grep -q '"status":"ok"' "$DIR/healthz.json"
    grep -q '"model":"OurRF"' "$DIR/healthz.json"

    echo "smoke: [single] first /v1/infer batch..."
    curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/infer1.json"
    echo "smoke: [single] infer: $(cat "$DIR/infer1.json")"
    grep -q '"predictions"' "$DIR/infer1.json"
    grep -q '"zipcode"' "$DIR/infer1.json"
    grep -q '"cache_hits":0' "$DIR/infer1.json"

    echo "smoke: [single] repeated batch must hit the cache..."
    curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/infer2.json"
    grep -q '"cache_hits":4' "$DIR/infer2.json"

    curl -fsS "$BASE/metrics" >"$DIR/metrics.txt"
    grep -q '^sortinghatd_requests_total 2$' "$DIR/metrics.txt"
    grep -q '^sortinghatd_cache_hits_total 4$' "$DIR/metrics.txt"
    grep -q '^sortinghatd_columns_total 8$' "$DIR/metrics.txt"
    grep -q '^sortinghatd_cache_evictions_total 0$' "$DIR/metrics.txt"
    grep -q '^sortinghatd_cache_capacity ' "$DIR/metrics.txt"
    grep -q '^sortinghatd_forest_split_nodes ' "$DIR/metrics.txt"
    grep -q '^sortinghatd_featurize_seconds_count ' "$DIR/metrics.txt"

    echo "smoke: [single] /debug/traces must hold the recorded request traces..."
    curl -fsS "$BASE/debug/traces" >"$DIR/traces.json"
    grep -q '"name":"infer"' "$DIR/traces.json" || {
        echo "smoke: FAIL - trace ring empty or missing infer spans: $(cat "$DIR/traces.json")" >&2
        exit 1
    }
    grep -q '"name":"featurize"' "$DIR/traces.json"
    grep -q '"request_id"' "$DIR/traces.json"

    echo "smoke: [single] /debug/flight must hold the recorded requests..."
    curl -fsS "$BASE/debug/flight" >"$DIR/flight.json"
    grep -q '"trace_id"' "$DIR/flight.json"
    grep -q '"name":"queue"' "$DIR/flight.json"
    grep -q '"name":"predict"' "$DIR/flight.json"

    echo "smoke: [single] /debug/pprof must be mounted (-pprof)..."
    curl -fsS "$BASE/debug/pprof/cmdline" >/dev/null

    echo "smoke: [single] graceful shutdown..."
    stop_pid "$PID"
fi

# --------------------------------------------------------------- degrade
# Degraded-mode drill. Boot with one worker (deterministic column order)
# and a fault spec that fails the first 3 predictions — exactly enough to
# trip the 3-failure breaker, with nothing left armed for the later
# probe. The 4-column batch must come back degraded (3 injected errors +
# 1 breaker-open skip), /healthz must flip to "degraded", and after the
# 1s probe interval the half-open probe succeeds and health recovers.
if has_phase degrade; then
    echo "smoke: [degrade] starting sortinghatd with injected prediction faults..."
    "$DIR/sortinghatd" -model "$DIR/model.gob" -addr "$HOST:$PORT" -workers 1 \
        -fault-spec 'predict:error:1:x3' -breaker-failures 3 -breaker-probe 1s &
    PID=$!
    PIDS="$PIDS $PID"

    wait_ready "$BASE" "$DIR/healthz-faulted.json"

    echo "smoke: [degrade] batch under injected faults must degrade, not fail..."
    curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/degraded.json"
    echo "smoke: [degrade] infer: $(cat "$DIR/degraded.json")"
    grep -q '"degraded":true' "$DIR/degraded.json"
    grep -q '"degraded_columns":4' "$DIR/degraded.json"

    curl -fsS "$BASE/healthz" >"$DIR/healthz-degraded.json"
    echo "smoke: [degrade] healthz: $(cat "$DIR/healthz-degraded.json")"
    grep -q '"status":"degraded"' "$DIR/healthz-degraded.json"
    grep -q '"breaker":"open"' "$DIR/healthz-degraded.json"

    curl -fsS "$BASE/metrics" >"$DIR/metrics-degraded.txt"
    grep -q '^sortinghatd_degraded_total 4$' "$DIR/metrics-degraded.txt"
    grep -q '^sortinghatd_breaker_open_total 1$' "$DIR/metrics-degraded.txt"
    grep -q '^sortinghatd_faults_injected_total 3$' "$DIR/metrics-degraded.txt"

    echo "smoke: [degrade] waiting out the breaker probe interval..."
    sleep 1.2
    # A half-open breaker admits exactly one probe, so recover with a
    # single-column batch before asserting a full batch is clean again.
    curl -fsS -X POST "$BASE/v1/infer" \
        -d '{"columns":[{"name":"probe","values":["1","2","3"]}]}' >"$DIR/probe.json"
    grep -q '"degraded_columns":0' "$DIR/probe.json"
    curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/recovered.json"
    grep -q '"degraded_columns":0' "$DIR/recovered.json"
    curl -fsS "$BASE/healthz" >"$DIR/healthz-recovered.json"
    echo "smoke: [degrade] recovered healthz: $(cat "$DIR/healthz-recovered.json")"
    grep -q '"status":"ok"' "$DIR/healthz-recovered.json"
    grep -q '"breaker":"closed"' "$DIR/healthz-recovered.json"

    echo "smoke: [degrade] graceful shutdown..."
    stop_pid "$PID"
fi

# ---------------------------------------------------------------- reload
# Hot-reload drill: boot with a labeled startup model, warm the cache,
# POST /admin/reload a canary snapshot, and assert the atomic swap — new
# version and seq on /healthz, the whole cache purged (the old entries
# are keyed to the old model), then re-warmed by a repeat batch.
if has_phase reload; then
    echo "smoke: [reload] starting sortinghatd with -model-version v1..."
    "$DIR/sortinghatd" -model "$DIR/model.gob" -addr "$HOST:$PORT" -model-version v1 &
    PID=$!
    PIDS="$PIDS $PID"

    wait_ready "$BASE" "$DIR/healthz-v1.json"
    grep -q '"model_version":"v1"' "$DIR/healthz-v1.json"
    grep -q '"model_seq":1' "$DIR/healthz-v1.json"

    echo "smoke: [reload] warming the cache..."
    curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/warm.json"
    grep -q '"model_version":"v1"' "$DIR/warm.json"
    curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/warm2.json"
    grep -q '"cache_hits":4' "$DIR/warm2.json"

    echo "smoke: [reload] hot-swapping a canary model..."
    curl -fsS -X POST "$BASE/admin/reload" \
        -d '{"path":"'"$DIR"'/model.gob","version":"canary"}' >"$DIR/reload.json"
    echo "smoke: [reload] reload: $(cat "$DIR/reload.json")"
    grep -q '"version":"canary"' "$DIR/reload.json"
    grep -q '"previous_version":"v1"' "$DIR/reload.json"
    grep -q '"seq":2' "$DIR/reload.json"
    grep -q '"cache_purged":4' "$DIR/reload.json"

    curl -fsS "$BASE/healthz" >"$DIR/healthz-canary.json"
    echo "smoke: [reload] healthz: $(cat "$DIR/healthz-canary.json")"
    grep -q '"model_version":"canary"' "$DIR/healthz-canary.json"
    grep -q '"model_seq":2' "$DIR/healthz-canary.json"
    grep -q '"cache_entries":0' "$DIR/healthz-canary.json"

    echo "smoke: [reload] the purged cache must re-warm under the new version..."
    curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/canary1.json"
    grep -q '"cache_hits":0' "$DIR/canary1.json"
    grep -q '"model_version":"canary"' "$DIR/canary1.json"
    curl -fsS -X POST "$BASE/v1/infer" -d "$BATCH" >"$DIR/canary2.json"
    grep -q '"cache_hits":4' "$DIR/canary2.json"

    curl -fsS "$BASE/metrics" >"$DIR/metrics-reload.txt"
    grep -q '^sortinghatd_model_reloads_total 1$' "$DIR/metrics-reload.txt"
    grep -q '^sortinghatd_model_reload_errors_total 0$' "$DIR/metrics-reload.txt"
    grep -q '^sortinghatd_model_seq 2$' "$DIR/metrics-reload.txt"

    echo "smoke: [reload] graceful shutdown..."
    stop_pid "$PID"
fi

# ----------------------------------------------------------------- fleet
# Fleet drill: 2 replicas + 1 gateway. The gateway shards each batch's
# columns across the replicas on the content-hash ring, so the replicas'
# caches must stay disjoint: every distinct column cached on exactly one
# replica, and a repeated batch through the gateway all cache hits.
if has_phase fleet; then
    R1PORT=$((PORT + 1))
    R2PORT=$((PORT + 2))
    GWPORT=$((PORT + 3))
    R1BASE="http://$HOST:$R1PORT"
    R2BASE="http://$HOST:$R2PORT"
    GWBASE="http://$HOST:$GWPORT"
    # 12 distinct columns so both shards are (overwhelmingly likely)
    # non-empty regardless of the port-dependent ring layout.
    FLEETBATCH='{"columns":[
      {"name":"zipcode","values":["92093","92037","92122","92093"]},
      {"name":"salary","values":["51000","62500","48200","70100"]},
      {"name":"hire_date","values":["2019-03-01","2020-11-15","2018-07-09","2021-01-30"]},
      {"name":"homepage","values":["https://a.example.com","https://b.example.org","https://c.example.net","https://d.example.io"]},
      {"name":"email","values":["ada@example.com","bob@example.org","carol@example.net","dan@example.io"]},
      {"name":"phone","values":["858-555-0001","858-555-0002","858-555-0003","858-555-0004"]},
      {"name":"latitude","values":["32.8801","32.8723","32.8656","32.8790"]},
      {"name":"city","values":["La Jolla","San Diego","Del Mar","Encinitas"]},
      {"name":"usage_pct","values":["0.12","0.98","0.45","0.33"]},
      {"name":"device_id","values":["dev-00017","dev-00442","dev-01893","dev-00017"]},
      {"name":"comments","values":["works as intended","needs a retry","flaky on mondays","ok"]},
      {"name":"is_active","values":["true","false","true","true"]}
    ]}'

    echo "smoke: [fleet] starting 2 replicas (:$R1PORT m0, :$R2PORT m1)..."
    "$DIR/sortinghatd" -model "$DIR/model.gob" -addr "$HOST:$R1PORT" -model-version m0 \
        -trace-out "$DIR/r1-traces.jsonl" &
    R1PID=$!
    PIDS="$PIDS $R1PID"
    "$DIR/sortinghatd" -model "$DIR/model.gob" -addr "$HOST:$R2PORT" -model-version m1 \
        -trace-out "$DIR/r2-traces.jsonl" &
    R2PID=$!
    PIDS="$PIDS $R2PID"
    wait_ready "$R1BASE" "$DIR/r1-healthz.json"
    wait_ready "$R2BASE" "$DIR/r2-healthz.json"

    echo "smoke: [fleet] starting sortinghatgw on :$GWPORT..."
    "$DIR/sortinghatgw" -replicas "$R1BASE,$R2BASE" -addr "$HOST:$GWPORT" \
        -probe-interval 500ms -trace-out "$DIR/gw-traces.jsonl" &
    GWPID=$!
    PIDS="$PIDS $GWPID"
    wait_ready "$GWBASE" "$DIR/gw-healthz.json"
    echo "smoke: [fleet] gateway healthz: $(cat "$DIR/gw-healthz.json")"
    grep -q '"status":"ok"' "$DIR/gw-healthz.json"
    # Both replicas must probe healthy: no degraded/down entries.
    if grep -q '"health":"degraded"\|"health":"down"' "$DIR/gw-healthz.json"; then
        echo "smoke: FAIL - a replica is not healthy at fleet start" >&2
        exit 1
    fi

    echo "smoke: [fleet] first sharded batch through the gateway..."
    curl -fsS -X POST "$GWBASE/v1/infer" -d "$FLEETBATCH" >"$DIR/gw-infer1.json"
    echo "smoke: [fleet] infer: $(cat "$DIR/gw-infer1.json")"
    grep -q '"predictions"' "$DIR/gw-infer1.json"
    grep -q '"cache_hits":0' "$DIR/gw-infer1.json"
    grep -q '"degraded_columns":0' "$DIR/gw-infer1.json"
    grep -q '"rerouted_columns":0' "$DIR/gw-infer1.json"
    grep -q '"shards":2' "$DIR/gw-infer1.json"
    # Replicas run distinct model labels, so the version-skew accounting
    # must show columns answered by both.
    grep -q '"m0":' "$DIR/gw-infer1.json"
    grep -q '"m1":' "$DIR/gw-infer1.json"

    echo "smoke: [fleet] repeated batch must hit both replica caches..."
    curl -fsS -X POST "$GWBASE/v1/infer" -d "$FLEETBATCH" >"$DIR/gw-infer2.json"
    grep -q '"cache_hits":12' "$DIR/gw-infer2.json"

    echo "smoke: [fleet] replica caches must hold disjoint shards..."
    curl -fsS "$R1BASE/healthz" >"$DIR/r1-after.json"
    curl -fsS "$R2BASE/healthz" >"$DIR/r2-after.json"
    C1=$(jint "$DIR/r1-after.json" cache_entries)
    C2=$(jint "$DIR/r2-after.json" cache_entries)
    echo "smoke: [fleet] cache entries: r1=$C1 r2=$C2"
    if [ "$C1" -eq 0 ] || [ "$C2" -eq 0 ]; then
        echo "smoke: FAIL - a replica cached nothing; the batch was not sharded" >&2
        exit 1
    fi
    if [ $((C1 + C2)) -ne 12 ]; then
        echo "smoke: FAIL - caches hold $((C1 + C2)) entries for 12 distinct columns; shards overlap or columns were dropped" >&2
        exit 1
    fi

    curl -fsS "$GWBASE/metrics" >"$DIR/gw-metrics.txt"
    grep -q '^sortinghatgw_requests_total 2$' "$DIR/gw-metrics.txt"
    grep -q '^sortinghatgw_columns_total 24$' "$DIR/gw-metrics.txt"
    grep -q '^sortinghatgw_rerouted_columns_total 0$' "$DIR/gw-metrics.txt"
    grep -q '^sortinghatgw_fallback_columns_total 0$' "$DIR/gw-metrics.txt"
    grep -q '^sortinghatgw_replicas 2$' "$DIR/gw-metrics.txt"
    grep -q '^sortinghatgw_replicas_healthy 2$' "$DIR/gw-metrics.txt"
    grep -q '^sortinghatgw_request_seconds_count 2$' "$DIR/gw-metrics.txt"
    grep -q '^sortinghatgw_dispatch_seconds_count 2$' "$DIR/gw-metrics.txt"
    grep -q '^sortinghatgw_goroutines ' "$DIR/gw-metrics.txt"

    echo "smoke: [fleet] one gateway trace id must appear in every trace sink..."
    wait_grep '"trace_id"' "$DIR/gw-traces.jsonl"
    TRACE=$(sed -n 's/.*"trace_id":"\([0-9a-f]\{32\}\)".*/\1/p' "$DIR/gw-traces.jsonl" | head -n 1)
    if [ -z "$TRACE" ]; then
        echo "smoke: FAIL - gateway trace sink has no trace id: $(cat "$DIR/gw-traces.jsonl")" >&2
        exit 1
    fi
    wait_grep "$TRACE" "$DIR/r1-traces.jsonl"
    wait_grep "$TRACE" "$DIR/r2-traces.jsonl"

    echo "smoke: [fleet] /debug/flight must explain the recorded requests..."
    curl -fsS "$GWBASE/debug/flight" >"$DIR/gw-flight.json"
    grep -q "\"trace_id\":\"$TRACE\"" "$DIR/gw-flight.json"
    grep -q '"name":"dispatch"' "$DIR/gw-flight.json"
    grep -q '"shard r' "$DIR/gw-flight.json"
    curl -fsS "$R1BASE/debug/flight" >"$DIR/r1-flight.json"
    grep -q '"name":"featurize"' "$DIR/r1-flight.json"
    grep -q '"trace_id"' "$DIR/r1-flight.json"

    echo "smoke: [fleet] tracecat must stitch the sinks into one timeline..."
    $GO run ./cmd/tracecat -trace "$TRACE" \
        "$DIR/gw-traces.jsonl" "$DIR/r1-traces.jsonl" "$DIR/r2-traces.jsonl" >"$DIR/stitched.txt"
    echo "smoke: [fleet] stitched timeline:"
    cat "$DIR/stitched.txt"
    grep -q "^trace $TRACE:" "$DIR/stitched.txt"
    grep -q 'gateway  \[gw-traces.jsonl\]' "$DIR/stitched.txt"
    grep -q 'forward  \[gw-traces.jsonl\]' "$DIR/stitched.txt"
    grep -q 'infer  \[r1-traces.jsonl\]' "$DIR/stitched.txt"
    grep -q 'infer  \[r2-traces.jsonl\]' "$DIR/stitched.txt"
    if grep -q 'not in any sink' "$DIR/stitched.txt"; then
        echo "smoke: FAIL - stitched timeline has orphan spans" >&2
        exit 1
    fi

    echo "smoke: [fleet] graceful shutdown (gateway first, then replicas)..."
    stop_pid "$GWPID"
    stop_pid "$R1PID"
    stop_pid "$R2PID"
fi

echo "smoke: OK ($PHASES)"
