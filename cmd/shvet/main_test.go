package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs shvet's entry point with stdout/stderr redirected to temp
// files and returns the exit code plus both streams.
func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	read := func(f *os.File) string {
		t.Helper()
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	if err := outF.Close(); err != nil {
		t.Fatal(err)
	}
	if err := errF.Close(); err != nil {
		t.Fatal(err)
	}
	return code, read(outF), read(errF)
}

func TestListPrintsEveryAnalyzer(t *testing.T) {
	code, stdout, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"global-rand", "map-order", "float-eq", "unchecked-err", "sync-copy"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	code, _, stderr := capture(t, []string{"-only", "no-such-pass"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestRepoIsCleanViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	// Patterns resolve relative to the working directory (here, this
	// package's dir), so ../../... spans the whole module.
	code, stdout, stderr := capture(t, []string{"../../..."})
	if code != 0 {
		t.Fatalf("shvet ../../... exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestPatternFiltersPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	// The tree package carries three justified float-eq suppressions;
	// -show-suppressed over just that subtree must surface them and still
	// exit 0.
	code, stdout, stderr := capture(t, []string{"-show-suppressed", "-only", "float-eq", "../../internal/ml/..."})
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if got := strings.Count(stdout, "(suppressed:"); got != 3 {
		t.Errorf("suppressed float-eq findings in internal/ml = %d, want 3\n%s", got, stdout)
	}
	if strings.Contains(stdout, "cmd/") {
		t.Errorf("pattern ../../internal/ml/... leaked cmd/ findings:\n%s", stdout)
	}
}

func TestNoMatchingPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	code, _, stderr := capture(t, []string{"./no/such/dir"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no packages match") {
		t.Errorf("stderr missing diagnosis:\n%s", stderr)
	}
}
