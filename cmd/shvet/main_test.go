package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs shvet's entry point with stdout/stderr redirected to temp
// files and returns the exit code plus both streams.
func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	read := func(f *os.File) string {
		t.Helper()
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	if err := outF.Close(); err != nil {
		t.Fatal(err)
	}
	if err := errF.Close(); err != nil {
		t.Fatal(err)
	}
	return code, read(outF), read(errF)
}

func TestListPrintsEveryAnalyzer(t *testing.T) {
	code, stdout, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"global-rand", "map-order", "float-eq", "unchecked-err", "sync-copy",
		"doc-comment", "lock-balance", "nondet-flow", "ctx-flow", "goroutine-leak",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	code, _, stderr := capture(t, []string{"-only", "no-such-pass"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestRepoIsCleanViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	// Patterns resolve relative to the working directory (here, this
	// package's dir), so ../../... spans the whole module.
	code, stdout, stderr := capture(t, []string{"../../..."})
	if code != 0 {
		t.Fatalf("shvet ../../... exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestPatternFiltersPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	// The tree package carries three justified float-eq suppressions;
	// -show-suppressed over just that subtree must surface them and still
	// exit 0.
	code, stdout, stderr := capture(t, []string{"-show-suppressed", "-only", "float-eq", "../../internal/ml/..."})
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if got := strings.Count(stdout, "(suppressed:"); got != 3 {
		t.Errorf("suppressed float-eq findings in internal/ml = %d, want 3\n%s", got, stdout)
	}
	if strings.Contains(stdout, "cmd/") {
		t.Errorf("pattern ../../internal/ml/... leaked cmd/ findings:\n%s", stdout)
	}
}

// chtmpmod materializes a throwaway module in its own directory, chdirs
// into it, and restores the working directory on cleanup.
func chtmpmod(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
	return dir
}

const dirtyFixture = `// Package dirty trips global-rand on purpose.
package dirty

import "math/rand"

// Draw uses the global source.
func Draw() float64 {
	return rand.Float64()
}
`

// TestJSONReport checks the -json shape on a known-dirty module: the
// finding appears with module-relative path, new:true, and the report is
// byte-identical across two consecutive runs.
func TestJSONReport(t *testing.T) {
	chtmpmod(t, map[string]string{"dirty.go": dirtyFixture})

	code, stdout, stderr := capture(t, []string{"-json", "-only", "global-rand"})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var rep struct {
		Module   string `json:"module"`
		New      int    `json:"new"`
		Findings []struct {
			File     string `json:"file"`
			Analyzer string `json:"analyzer"`
			New      bool   `json:"new"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if rep.Module != "tmpmod" || rep.New != 1 || len(rep.Findings) != 1 {
		t.Fatalf("report = %+v, want module tmpmod with 1 new finding", rep)
	}
	if f := rep.Findings[0]; f.File != "dirty.go" || f.Analyzer != "global-rand" || !f.New {
		t.Errorf("finding = %+v, want dirty.go/global-rand/new", f)
	}

	_, stdout2, _ := capture(t, []string{"-json", "-only", "global-rand"})
	if stdout != stdout2 {
		t.Errorf("-json output differs between two runs:\n--- first ---\n%s\n--- second ---\n%s", stdout, stdout2)
	}
}

// TestBaselineRoundTrip drives the CI workflow: a dirty module fails,
// its own -json report accepted as baseline makes it pass, and a newly
// introduced finding fails again while the old one prints as baseline.
func TestBaselineRoundTrip(t *testing.T) {
	dir := chtmpmod(t, map[string]string{"dirty.go": dirtyFixture})

	if code, _, _ := capture(t, []string{"-only", "global-rand"}); code != 1 {
		t.Fatalf("dirty module exit = %d, want 1", code)
	}

	_, report, _ := capture(t, []string{"-json", "-only", "global-rand"})
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(basePath, []byte(report), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := capture(t, []string{"-baseline", basePath, "-only", "global-rand"})
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "(baseline)") {
		t.Errorf("baselined finding not marked in output:\n%s", stdout)
	}

	more := dirtyFixture + `
// DrawInt introduces a second, unbaselined finding.
func DrawInt() int {
	return rand.Intn(10)
}
`
	if err := os.WriteFile(filepath.Join(dir, "dirty.go"), []byte(more), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr = capture(t, []string{"-baseline", basePath, "-only", "global-rand"})
	if code != 1 {
		t.Fatalf("new-finding run exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "1 new finding(s) not in baseline") {
		t.Errorf("stderr missing new-finding count:\n%s", stderr)
	}
}

// TestBaselineMissingFileIsUsageError keeps config mistakes loud.
func TestBaselineMissingFileIsUsageError(t *testing.T) {
	chtmpmod(t, map[string]string{"dirty.go": dirtyFixture})
	code, _, stderr := capture(t, []string{"-baseline", "no-such-baseline.json"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "baseline") {
		t.Errorf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestNoMatchingPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	code, _, stderr := capture(t, []string{"./no/such/dir"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no packages match") {
		t.Errorf("stderr missing diagnosis:\n%s", stderr)
	}
}

const leakyFixture = `// Package leaky leaks a cancel func on purpose.
package leaky

import (
	"context"
	"time"
)

// Deadline discards the CancelFunc.
func Deadline(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Second)
	return ctx
}
`

// TestFixDryRunPrintsDiff checks that -fix -dry-run shows the rewrite as
// a unified diff, leaves the file untouched, and still exits non-zero.
func TestFixDryRunPrintsDiff(t *testing.T) {
	dir := chtmpmod(t, map[string]string{"leaky.go": leakyFixture})

	code, stdout, stderr := capture(t, []string{"-fix", "-dry-run", "-only", "cancel-leak"})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	for _, want := range []string{"--- a/leaky.go", "+++ b/leaky.go", "+\tdefer cancel()"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("dry-run diff missing %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "leaky.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != leakyFixture {
		t.Errorf("-dry-run modified the file:\n%s", data)
	}
}

// TestFixRewritesFile checks the write path end to end: the fix lands on
// disk gofmt-clean, the run exits 0 because nothing unfixed remains, and
// a second plain run stays clean.
func TestFixRewritesFile(t *testing.T) {
	dir := chtmpmod(t, map[string]string{"leaky.go": leakyFixture})

	code, _, stderr := capture(t, []string{"-fix", "-only", "cancel-leak"})
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "applied 1 fix(es)") {
		t.Errorf("stderr missing applied count:\n%s", stderr)
	}
	data, err := os.ReadFile(filepath.Join(dir, "leaky.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ctx, cancel := context.WithTimeout(parent, time.Second)\n\tdefer cancel()") {
		t.Errorf("fix not applied on disk:\n%s", data)
	}
	if code, _, _ := capture(t, []string{"-only", "cancel-leak"}); code != 0 {
		t.Errorf("fixed module still reports findings (exit %d)", code)
	}
	if code, stdout, _ := capture(t, []string{"-fix", "-dry-run", "-only", "cancel-leak"}); code != 0 || stdout != "" {
		t.Errorf("-fix -dry-run after fixing: exit %d, stdout %q; want clean", code, stdout)
	}
}

// TestFixRefusesSuppressed pins the policy that a //shvet:ignore
// directive outranks -fix.
func TestFixRefusesSuppressed(t *testing.T) {
	suppressed := strings.Replace(leakyFixture,
		"ctx, _ := context.WithTimeout(parent, time.Second)",
		"ctx, _ := context.WithTimeout(parent, time.Second) //shvet:ignore cancel-leak deadline is the cleanup", 1)
	dir := chtmpmod(t, map[string]string{"leaky.go": suppressed})

	code, _, stderr := capture(t, []string{"-fix", "-only", "cancel-leak"})
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (finding is suppressed)\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "fix skipped") || !strings.Contains(stderr, "suppressed") {
		t.Errorf("stderr missing suppressed-fix refusal:\n%s", stderr)
	}
	data, err := os.ReadFile(filepath.Join(dir, "leaky.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != suppressed {
		t.Errorf("-fix modified a suppressed region:\n%s", data)
	}
}

// TestDryRunWithoutFixIsUsageError keeps the flag pairing honest.
func TestDryRunWithoutFixIsUsageError(t *testing.T) {
	code, _, stderr := capture(t, []string{"-dry-run"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-dry-run") {
		t.Errorf("stderr missing diagnosis:\n%s", stderr)
	}
}

// TestFixJSONConflictIsUsageError: -fix rewrites files, -json promises a
// pure report; the pair is rejected.
func TestFixJSONConflictIsUsageError(t *testing.T) {
	code, _, stderr := capture(t, []string{"-fix", "-json"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-fix and -json") {
		t.Errorf("stderr missing diagnosis:\n%s", stderr)
	}
}
