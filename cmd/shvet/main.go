// Command shvet runs the repository's determinism & correctness analyzer
// suite (internal/analysis) over the module and exits non-zero when any
// unsuppressed finding remains, so it can gate CI.
//
// Usage:
//
//	shvet [flags] [pattern ...]
//
// Patterns follow the go tool's shape: "./..." (the default) analyzes the
// whole module, "./internal/experiments" one package, "./internal/..." a
// subtree. Flags:
//
//	-list             print the analyzers and exit
//	-only a,b         run only the named analyzers
//	-show-suppressed  also print findings silenced by //shvet:ignore
//
// Findings print as file:line:col: [analyzer] message. Suppress one with
// an end-of-line directive: //shvet:ignore <analyzer> <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sortinghat/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("shvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	showSuppressed := fs.Bool("show-suppressed", false, "also print suppressed findings")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = nil
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analysis.All() {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "shvet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "shvet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "shvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load()
	if err != nil {
		fmt.Fprintf(stderr, "shvet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs = filterPackages(pkgs, patterns, cwd)
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "shvet: no packages match %v\n", patterns)
		return 2
	}

	findings := analysis.Analyze(pkgs, analyzers)
	bad := 0
	for _, f := range findings {
		if f.Suppressed && !*showSuppressed {
			continue
		}
		rel := f
		if r, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		suffix := ""
		if f.Suppressed {
			suffix = fmt.Sprintf(" (suppressed: %s)", f.Reason)
		} else {
			bad++
		}
		fmt.Fprintf(stdout, "%s%s\n", rel, suffix)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "shvet: %d unsuppressed finding(s)\n", bad)
		return 1
	}
	return 0
}

// filterPackages keeps the packages whose directory matches any pattern,
// resolved relative to cwd.
func filterPackages(pkgs []*analysis.Package, patterns []string, cwd string) []*analysis.Package {
	type rule struct {
		dir     string
		subtree bool
	}
	var rules []rule
	for _, p := range patterns {
		subtree := false
		if p == "..." || strings.HasSuffix(p, "/...") {
			subtree = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
			if p == "" {
				p = "."
			}
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(cwd, p)
		}
		rules = append(rules, rule{dir: filepath.Clean(p), subtree: subtree})
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		for _, r := range rules {
			if pkg.Dir == r.dir || (r.subtree && strings.HasPrefix(pkg.Dir+string(filepath.Separator), r.dir+string(filepath.Separator))) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}
