// Command shvet runs the repository's eighteen-analyzer suite
// (internal/analysis) — determinism, correctness, resource-lifecycle,
// and hot-path performance passes — over the module and exits non-zero
// when any unsuppressed finding remains, so it can gate CI.
//
// The four performance analyzers (alloc-in-loop, string-churn,
// defer-in-loop, boxing) report only inside the serving hot region:
// the call-graph closure of the exported Predict*/Infer*/Featurize*/
// Extract* entry points plus any //shvet:hotpath-rooted function. They
// are the static half of the perf gate; the dynamic half is
// cmd/benchdiff, which replays the serve benchmarks against the
// committed BENCH_serve.json snapshot (make bench-gate).
//
// The four lifecycle analyzers (cancel-leak, body-close, timer-stop,
// handler-contract) walk release obligations — context CancelFuncs,
// response bodies, tickers, the ResponseWriter protocol — across every
// path out of the acquiring scope. Where the repair is mechanical the
// finding carries a suggested fix, and -fix applies it.
//
// Usage:
//
//	shvet [flags] [pattern ...]
//
// Patterns follow the go tool's shape: "./..." (the default) analyzes the
// whole module, "./internal/experiments" one package, "./internal/..." a
// subtree. Flags:
//
//	-list             print the analyzers and exit
//	-only a,b         run only the named analyzers
//	-show-suppressed  also print findings silenced by //shvet:ignore
//	-json             emit the findings as a stable JSON report on stdout
//	-baseline FILE    fail only on findings not present in FILE (a prior
//	                  -json report); known ones print as "(baseline)"
//	-fix              apply suggested fixes, rewriting files in place
//	                  (suppressed findings are never fixed; overlapping
//	                  fixes are skipped; output is gofmt-clean)
//	-dry-run          with -fix: print unified diffs of the would-be
//	                  rewrites instead of touching any file
//
// Findings print as file:line:col: [analyzer] message. Suppress one with
// an end-of-line directive: //shvet:ignore <analyzer> <reason>.
//
// The -json report is byte-stable across runs: findings are sorted, and
// file paths are module-root-relative with forward slashes. The same
// format is what -baseline consumes; a finding is matched by its (file,
// analyzer, message) triple, so line drift from unrelated edits does not
// resurrect baselined findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sortinghat/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is one finding in the -json report. File is relative to
// the module root, slash-separated, so reports compare across hosts.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
	New        bool   `json:"new"`
}

// key identifies a finding for baseline matching. Line and column are
// deliberately excluded: unrelated edits move findings around without
// changing what they are.
func (f jsonFinding) key() string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// jsonReport is the -json output and the -baseline input format.
type jsonReport struct {
	Module     string        `json:"module"`
	Total      int           `json:"total"`
	Suppressed int           `json:"suppressed"`
	New        int           `json:"new"`
	Findings   []jsonFinding `json:"findings"`
}

func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	known := map[string]bool{}
	for _, f := range rep.Findings {
		known[f.key()] = true
	}
	return known, nil
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("shvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	showSuppressed := fs.Bool("show-suppressed", false, "also print suppressed findings")
	jsonOut := fs.Bool("json", false, "emit findings as a stable JSON report on stdout")
	baselinePath := fs.String("baseline", "", "fail only on findings absent from this prior -json report")
	fix := fs.Bool("fix", false, "apply suggested fixes, rewriting files in place")
	dryRun := fs.Bool("dry-run", false, "with -fix: print unified diffs instead of writing files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dryRun && !*fix {
		fmt.Fprintf(stderr, "shvet: -dry-run only makes sense together with -fix\n")
		return 2
	}
	if *fix && *jsonOut {
		fmt.Fprintf(stderr, "shvet: -fix and -json cannot be combined\n")
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = nil
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analysis.All() {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "shvet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	var baseline map[string]bool
	if *baselinePath != "" {
		var err error
		baseline, err = loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "shvet: baseline: %v\n", err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "shvet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "shvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load()
	if err != nil {
		fmt.Fprintf(stderr, "shvet: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs = filterPackages(pkgs, patterns, cwd)
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "shvet: no packages match %v\n", patterns)
		return 2
	}

	findings := analysis.Analyze(pkgs, analyzers)

	dryRunDiffs := false
	if *fix {
		src, err := packageSources(pkgs)
		if err != nil {
			fmt.Fprintf(stderr, "shvet: %v\n", err)
			return 2
		}
		changed, applied, skippedFixes, err := analysis.ApplyFixes(pkgs[0].Fset, src, findings)
		if err != nil {
			fmt.Fprintf(stderr, "shvet: %v\n", err)
			return 2
		}
		files := make([]string, 0, len(changed))
		for name := range changed {
			files = append(files, name)
		}
		sort.Strings(files)
		if *dryRun {
			for _, name := range files {
				fmt.Fprint(stdout, analysis.UnifiedDiff(modRelPath(loader.ModRoot, name), src[name], changed[name]))
			}
			dryRunDiffs = len(files) > 0
		} else {
			for _, name := range files {
				if werr := os.WriteFile(name, changed[name], 0o644); werr != nil {
					fmt.Fprintf(stderr, "shvet: %v\n", werr)
					return 2
				}
			}
			if len(applied) > 0 {
				fmt.Fprintf(stderr, "shvet: applied %d fix(es) across %d file(s)\n", len(applied), len(files))
			}
			// The applied findings no longer exist in the tree; the report
			// and the exit code cover only what remains.
			findings = dropApplied(findings, applied)
		}
		for _, s := range skippedFixes {
			rel := modRelPath(loader.ModRoot, s.Finding.Pos.Filename)
			fmt.Fprintf(stderr, "shvet: fix skipped at %s:%d [%s]: %s\n", rel, s.Finding.Pos.Line, s.Finding.Analyzer, s.Reason)
		}
	}

	rep := jsonReport{Module: loader.ModPath, Findings: []jsonFinding{}}
	for _, f := range findings {
		jf := jsonFinding{
			File:       modRelPath(loader.ModRoot, f.Pos.Filename),
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
			Reason:     f.Reason,
		}
		jf.New = !jf.Suppressed && !baseline[jf.key()]
		rep.Total++
		if jf.Suppressed {
			rep.Suppressed++
		}
		if jf.New {
			rep.New++
		}
		rep.Findings = append(rep.Findings, jf)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "shvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", data)
	} else if !(*fix && *dryRun) {
		// In -fix -dry-run mode stdout carries the diffs, nothing else.
		for i, f := range findings {
			if f.Suppressed && !*showSuppressed {
				continue
			}
			rel := f
			if r, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel.Pos.Filename = r
			}
			suffix := ""
			switch {
			case f.Suppressed:
				suffix = fmt.Sprintf(" (suppressed: %s)", f.Reason)
			case !rep.Findings[i].New:
				suffix = " (baseline)"
			}
			fmt.Fprintf(stdout, "%s%s\n", rel, suffix)
		}
	}
	if rep.New > 0 {
		if baseline != nil {
			fmt.Fprintf(stderr, "shvet: %d new finding(s) not in baseline\n", rep.New)
		} else {
			fmt.Fprintf(stderr, "shvet: %d unsuppressed finding(s)\n", rep.New)
		}
		return 1
	}
	if dryRunDiffs {
		// Everything pending is baselined, but -fix would still rewrite
		// files; a "clean" exit would let CI miss the unapplied fixes.
		fmt.Fprintf(stderr, "shvet: -fix would rewrite files (see diffs above)\n")
		return 1
	}
	return 0
}

// packageSources reads the current on-disk bytes of every file in the
// analyzed packages, keyed the way the FileSet names them.
func packageSources(pkgs []*analysis.Package) (map[string][]byte, error) {
	src := map[string][]byte{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			name := pkg.Fset.Position(file.Pos()).Filename
			if _, ok := src[name]; ok {
				continue
			}
			data, err := os.ReadFile(name)
			if err != nil {
				return nil, err
			}
			src[name] = data
		}
	}
	return src, nil
}

// dropApplied removes the findings whose fixes were just applied; they
// describe code that no longer exists.
func dropApplied(findings, applied []analysis.Finding) []analysis.Finding {
	fixed := make(map[*analysis.SuggestedFix]bool, len(applied))
	for _, f := range applied {
		fixed[f.Fix] = true
	}
	out := make([]analysis.Finding, 0, len(findings))
	for _, f := range findings {
		if f.Fix != nil && fixed[f.Fix] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// modRelPath renders filename relative to the module root with forward
// slashes; paths outside the root (never expected) pass through as-is.
func modRelPath(root, filename string) string {
	if r, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(filename)
}

// filterPackages keeps the packages whose directory matches any pattern,
// resolved relative to cwd.
func filterPackages(pkgs []*analysis.Package, patterns []string, cwd string) []*analysis.Package {
	type rule struct {
		dir     string
		subtree bool
	}
	var rules []rule
	for _, p := range patterns {
		subtree := false
		if p == "..." || strings.HasSuffix(p, "/...") {
			subtree = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
			if p == "" {
				p = "."
			}
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(cwd, p)
		}
		rules = append(rules, rule{dir: filepath.Clean(p), subtree: subtree})
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		for _, r := range rules {
			if pkg.Dir == r.dir || (r.subtree && strings.HasPrefix(pkg.Dir+string(filepath.Separator), r.dir+string(filepath.Separator))) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}
