// Command sortinghat trains a feature type inference model and infers the
// ML feature types of CSV columns.
//
// Usage:
//
//	sortinghat train -out model.gob [-n 9921] [-seed 7]
//	sortinghat infer -model model.gob file.csv [file2.csv ...]
//	sortinghat infer file.csv            # trains a small model on the fly
//
// The infer subcommand prints one line per column: name, inferred feature
// type, and confidence.
package main

import (
	"flag"
	"fmt"
	"os"

	"sortinghat"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "infer":
		cmdInfer(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sortinghat train -out model.gob [-n N] [-seed S]")
	fmt.Fprintln(os.Stderr, "       sortinghat infer [-model model.gob] file.csv ...")
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "sortinghat-model.gob", "output model path")
	n := fs.Int("n", 0, "training corpus size (default: paper-scale 9,921)")
	seed := fs.Int64("seed", 7, "corpus seed")
	fs.Parse(args) //shvet:ignore unchecked-err ExitOnError FlagSet exits on parse failure

	fmt.Fprintf(os.Stderr, "training Random Forest on the benchmark corpus...\n")
	model, err := sortinghat.TrainDefault(&sortinghat.CorpusConfig{N: *n, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortinghat: %v\n", err)
		os.Exit(1)
	}
	if err := model.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "sortinghat: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "model written to %s\n", *out)
}

func cmdInfer(args []string) {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained model file (optional; trains a small model when omitted)")
	fs.Parse(args) //shvet:ignore unchecked-err ExitOnError FlagSet exits on parse failure
	files := fs.Args()
	if len(files) == 0 {
		usage()
		os.Exit(2)
	}

	var model *sortinghat.Model
	var err error
	if *modelPath != "" {
		model, err = sortinghat.LoadFile(*modelPath)
	} else {
		fmt.Fprintln(os.Stderr, "no -model given; training a 4,000-column model on the fly...")
		model, err = sortinghat.TrainDefault(&sortinghat.CorpusConfig{N: 4000})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortinghat: %v\n", err)
		os.Exit(1)
	}

	for _, f := range files {
		preds, err := model.InferCSVFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortinghat: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s:\n", f)
		for _, p := range preds {
			fmt.Printf("  %-28s %-18s conf=%.2f\n", p.Column, p.Type, p.Confidence)
		}
	}
}
