// Command sortinghat trains a feature type inference model and infers the
// ML feature types of CSV columns.
//
// Usage:
//
//	sortinghat train -out model.gob [-n 9921] [-seed 7] [-trace-out train.jsonl]
//	sortinghat infer -model model.gob file.csv [file2.csv ...]
//	sortinghat infer file.csv            # trains a small model on the fly
//
// The infer subcommand prints one line per column: name, inferred feature
// type, and confidence. With -trace-out, train writes its phase timings
// (corpus, featurize, fit, save) as one JSONL span tree for offline
// analysis — the same trace format sortinghatd serves at /debug/traces.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"sortinghat"
	"sortinghat/internal/core"
	"sortinghat/internal/obs"
	"sortinghat/internal/synth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "infer":
		cmdInfer(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sortinghat train -out model.gob [-n N] [-seed S] [-trace-out T.jsonl]")
	fmt.Fprintln(os.Stderr, "       sortinghat infer [-model model.gob] file.csv ...")
}

// fatal prints err and exits.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sortinghat: %v\n", err)
	os.Exit(1)
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "sortinghat-model.gob", "output model path")
	n := fs.Int("n", 0, "training corpus size (default: paper-scale 9,921)")
	seed := fs.Int64("seed", 7, "corpus seed")
	traceOut := fs.String("trace-out", "", "write the training trace as a JSONL span tree to this file")
	_ = fs.Parse(args)

	// With -trace-out, every training phase (corpus, featurize, fit, save)
	// is timed as a span under one root train span, written as one JSONL
	// line when the root ends. Without it the tracer is nil and every span
	// call below is a no-op.
	var tracer *obs.Tracer
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		tracer = obs.NewTracer(1)
		tracer.SetSink(f)
	}
	ctx, root := tracer.Start(context.Background(), "train")

	fmt.Fprintf(os.Stderr, "training Random Forest on the benchmark corpus...\n")
	ccfg := synth.DefaultCorpusConfig()
	if *n > 0 {
		ccfg.N = *n
	}
	if *seed != 0 {
		ccfg.Seed = *seed
	}
	root.SetAttr("seed", strconv.FormatInt(ccfg.Seed, 10))

	_, csp := obs.StartSpan(ctx, "corpus")
	csp.SetAttr("columns", strconv.Itoa(ccfg.N))
	corpus := synth.GenerateCorpus(ccfg)
	csp.End()

	pipe, err := core.TrainCtx(ctx, corpus, core.DefaultOptions())
	if err != nil {
		fatal(err)
	}

	_, ssp := obs.StartSpan(ctx, "save")
	err = pipe.SaveFile(*out)
	ssp.End()
	if err != nil {
		fatal(err)
	}
	root.End()

	if tracer != nil {
		if err := tracer.SinkErr(); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
		if err := traceFile.Close(); err != nil {
			fatal(fmt.Errorf("closing trace file: %w", err))
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
	fmt.Fprintf(os.Stderr, "model written to %s\n", *out)
}

func cmdInfer(args []string) {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained model file (optional; trains a small model when omitted)")
	_ = fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		usage()
		os.Exit(2)
	}

	var model *sortinghat.Model
	var err error
	if *modelPath != "" {
		model, err = sortinghat.LoadFile(*modelPath)
	} else {
		fmt.Fprintln(os.Stderr, "no -model given; training a 4,000-column model on the fly...")
		model, err = sortinghat.TrainDefault(&sortinghat.CorpusConfig{N: 4000})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortinghat: %v\n", err)
		os.Exit(1)
	}

	for _, f := range files {
		preds, err := model.InferCSVFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortinghat: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s:\n", f)
		for _, p := range preds {
			fmt.Printf("  %-28s %-18s conf=%.2f\n", p.Column, p.Type, p.Confidence)
		}
	}
}
