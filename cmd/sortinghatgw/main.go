// Command sortinghatgw fronts a fleet of sortinghatd replicas: it
// accepts the same inference API as a single daemon, shards each batch's
// columns across the fleet on a consistent-hash ring keyed by column
// content, and reassembles the answers in request order.
//
// Usage:
//
//	sortinghatgw -replicas http://10.0.0.1:8080,http://10.0.0.2:8080 [-addr :8090]
//	sortinghatgw -replicas ... -hedge 100ms -probe-interval 1s
//	sortinghatgw -replicas ... -fault-spec 'forward@r1:error:1' -fault-seed 7   # chaos drills
//
// Endpoints:
//
//	POST /v1/infer       same body as sortinghatd; sharded across the fleet
//	POST /v1/infer/csv   text/csv body; one inferred type per column
//	GET  /healthz        fleet view: per-replica health, breaker, ownership
//	GET  /metrics        Prometheus text-format metrics (sortinghatgw_*)
//	GET  /debug/traces   recent request traces, one shard span per group
//	GET  /debug/flight   flight recorder: slowest and errored recent requests
//	GET  /debug/pprof/   runtime profiles (only with -pprof)
//
// Distributed tracing: the gateway mints (or continues, when the client
// sent a traceparent) a W3C trace id per request and forwards it —
// together with the X-Request-Id — on every shard sub-request, so each
// replica's trace joins the gateway's. -trace-out appends finished
// request traces to a JSONL file; run cmd/tracecat over the gateway's
// and the replicas' sink files to reconstruct one fleet-wide timeline
// per request.
//
// Routing: each column's ring key is derived from the same content hash
// the daemons use for their prediction caches, so identical columns
// always land on the same replica and the fleet's caches hold disjoint
// shards of the column space. Replicas that report "degraded" on
// /healthz are deprioritized; replicas that fail probes (or trip the
// gateway's per-replica forwarding breaker) are routed around. Slow
// shards are hedged after -hedge; if every candidate fails, affected
// columns are answered by the gateway's local rule fallback, tagged
// "degraded":true, so a batch always comes back complete.
//
// Rollouts: replicas may serve different model versions (see the
// daemon's POST /admin/reload); the response's model_versions field
// counts columns per version, making a canary's traffic share visible
// per batch.
//
// The process drains in-flight requests on SIGINT/SIGTERM before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sortinghat/internal/gateway"
	"sortinghat/internal/obs"
	"sortinghat/internal/resilience"
	"sortinghat/internal/resilience/faultinject"
	"sortinghat/internal/serve"
)

func main() {
	var (
		replicas   = flag.String("replicas", "", "comma-separated sortinghatd base URLs (required)")
		addr       = flag.String("addr", ":8090", "listen address")
		vnodes     = flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per replica on the hash ring")
		hedge      = flag.Duration("hedge", gateway.DefaultHedge, "delay before hedging a slow shard to the next replica (negative disables)")
		timeout    = flag.Duration("timeout", gateway.DefaultTimeout, "per-request deadline (negative disables)")
		probe      = flag.Duration("probe-interval", gateway.DefaultProbeInterval, "replica /healthz polling period")
		maxBatch   = flag.Int("max-batch", serve.DefaultMaxBatch, "max columns per request")
		maxCell    = flag.Int("max-cell", serve.DefaultMaxCellBytes, "max bytes per CSV cell on /v1/infer/csv (answered with 413)")
		queue      = flag.Int("queue-depth", 0, "admission-gate high-water mark in columns (default: 2*max-batch)")
		traceRing  = flag.Int("trace-ring", obs.DefaultTraceRing, "recent request traces kept for GET /debug/traces")
		traceOut   = flag.String("trace-out", "", "append finished request traces to this JSONL file (stitch with `tracecat`)")
		flightRing = flag.Int("flight-ring", obs.DefaultFlightRing, "slowest/errored requests kept for GET /debug/flight")
		pprof      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		drain      = flag.Duration("drain", 15*time.Second, "max time to drain in-flight requests at shutdown")

		brkFailures = flag.Int("breaker-failures", 0, "consecutive shard failures that trip a replica's breaker (default 5)")
		brkProbe    = flag.Duration("breaker-probe", 0, "wait before an open replica breaker probes again (default 5s)")
		faultSpec   = flag.String("fault-spec", "", "deterministic fault injection at gateway sites, e.g. 'forward@r1:error:1' (testing only)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed for -fault-spec fault draws")

		netSlack      = flag.Duration("net-slack", gateway.DefaultNetSlack, "network allowance subtracted from the budget propagated via X-Deadline-Ms (negative disables propagation)")
		budgetRatio   = flag.Float64("retry-budget", resilience.DefaultRetryRatio, "retry-budget token deposited per successful shard leg (negative disables the refill)")
		budgetBurst   = flag.Float64("retry-budget-burst", resilience.DefaultRetryBurst, "retry-budget bucket capacity; the bucket starts full")
		inflightMax   = flag.Int("replica-inflight", resilience.DefaultAIMDMax, "adaptive concurrency ceiling on forwards per replica")
		backoffBase   = flag.Duration("backoff-base", resilience.DefaultBackoffBase, "first backoff window after a shedding (429/503) replica answer (negative disables)")
		backoffSeed   = flag.Int64("backoff-seed", 1, "seed for backoff jitter; replica i draws from seed+i")
		retryAfterMax = flag.Int("retry-after-max", serve.DefaultRetryAfterMax, "cap in seconds on the Retry-After hint sent with 429/504 answers")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)

	if *replicas == "" {
		logger.Error("missing -replicas: give at least one sortinghatd base URL")
		os.Exit(2)
	}
	var fleet []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(strings.TrimSuffix(a, "/")); a != "" {
			fleet = append(fleet, a)
		}
	}

	cfg := gateway.Config{
		Replicas:      fleet,
		VNodes:        *vnodes,
		Hedge:         *hedge,
		Timeout:       *timeout,
		ProbeInterval: *probe,
		MaxBatch:      *maxBatch,
		MaxCellBytes:  *maxCell,
		QueueDepth:    *queue,
		TraceRing:     *traceRing,
		FlightRing:    *flightRing,
		Logger:        logger,
		EnablePprof:   *pprof,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: *brkFailures,
			ProbeInterval:    *brkProbe,
		},
		NetSlack: *netSlack,
		RetryBudget: resilience.RetryBudgetConfig{
			Ratio: *budgetRatio,
			Burst: *budgetBurst,
		},
		ReplicaLimit:  resilience.AIMDConfig{Max: *inflightMax},
		Backoff:       resilience.BackoffConfig{Base: *backoffBase, Seed: *backoffSeed},
		RetryAfterMax: *retryAfterMax,
	}
	if *faultSpec != "" {
		inj, err := faultinject.Parse(*faultSpec, *faultSeed)
		if err != nil {
			logger.Error("bad -fault-spec", "err", err.Error())
			os.Exit(2)
		}
		cfg.Faults = inj // assigned only when non-nil: a typed nil would defeat the nil-injector check
		logger.Warn("fault injection enabled — testing only", "spec", inj.String(), "seed", *faultSeed)
	}
	if *traceOut != "" {
		sink, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("bad -trace-out", "err", err.Error())
			os.Exit(2)
		}
		defer sink.Close()
		cfg.TraceSink = sink // same caveat as Faults: only a non-nil *os.File may land in the interface
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		logger.Error("startup failed", "err", err.Error())
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving",
		"replicas", len(fleet),
		"addr", *addr,
		"vnodes", *vnodes,
		"hedge", hedge.String(),
		"probe_interval", probe.String())

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight requests", "max_drain", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown", "err", err.Error())
	}
	gw.Close() // after Shutdown: no handler is still scattering groups
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err.Error())
	}
	logger.Info("stopped")
}
