package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: sortinghat
cpu: Some CPU @ 2.70GHz
BenchmarkFeaturizeColumn-8   	     100	    263635 ns/op	   67401 B/op	     426 allocs/op
BenchmarkTreePredict-8       	     100	     13350 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeInfer/workers2-8 	      20	  16000000 ns/op	 5000000 B/op	   60000 allocs/op
PASS
ok  	sortinghat	2.014s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(sampleOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	m, ok := got["BenchmarkFeaturizeColumn"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if m.NsOp != 263635 || m.BOp != 67401 || m.AllocsOp != 426 {
		t.Errorf("FeaturizeColumn metrics = %+v", m)
	}
	if _, ok := got["BenchmarkServeInfer/workers2"]; !ok {
		t.Error("sub-benchmark path lost")
	}
	if m := got["BenchmarkTreePredict"]; m.AllocsOp != 0 {
		t.Errorf("TreePredict allocs = %v, want 0", m.AllocsOp)
	}
}

func TestParseBenchAveragesRepeatedRuns(t *testing.T) {
	out := "BenchmarkX-4 10 100 ns/op 10 B/op 1 allocs/op\n" +
		"BenchmarkX-4 10 300 ns/op 30 B/op 3 allocs/op\n"
	got, err := parseBench(out)
	if err != nil {
		t.Fatal(err)
	}
	m := got["BenchmarkX"]
	if m.NsOp != 200 || m.BOp != 20 || m.AllocsOp != 2 {
		t.Errorf("averaged metrics = %+v, want 200/20/2", m)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":              "BenchmarkX",
		"BenchmarkX":                "BenchmarkX",
		"BenchmarkX/workers4-16":    "BenchmarkX/workers4",
		"BenchmarkX/trees25_depth5": "BenchmarkX/trees25_depth5",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 0.5}); math.Abs(g-1) > 1e-12 {
		t.Errorf("geomean(2, 0.5) = %v, want 1", g)
	}
	if g := geomean([]float64{1.1, 1.1}); math.Abs(g-1.1) > 1e-12 {
		t.Errorf("geomean(1.1, 1.1) = %v, want 1.1", g)
	}
}

func TestParsePct(t *testing.T) {
	for in, want := range map[string]float64{"10%": 0.10, "10": 0.10, "2.5%": 0.025, "0": 0} {
		got, err := parsePct(in)
		if err != nil || math.Abs(got-want) > 1e-12 {
			t.Errorf("parsePct(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parsePct("-3%"); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := parsePct("ten"); err == nil {
		t.Error("non-numeric tolerance accepted")
	}
}

// runCLI drives run() with an input file and returns exit code + output.
func runCLI(t *testing.T, args []string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeFile drops content into the test's temp dir and returns its path.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSnapshotAndGateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "bench.txt", sampleOut)
	baseline := filepath.Join(dir, "BENCH.json")

	code, _, errb := runCLI(t, []string{"-update", baseline, "-label", "before", "-input", in})
	if code != 0 {
		t.Fatalf("snapshot exit %d: %s", code, errb)
	}

	// Identical run gates clean.
	code, out, errb := runCLI(t, []string{"-baseline", baseline, "-input", in})
	if code != 0 {
		t.Fatalf("identical run exit %d: %s\n%s", code, errb, out)
	}
	if !strings.Contains(out, "ok: within tolerance") {
		t.Errorf("missing ok verdict:\n%s", out)
	}

	// A 50%% alloc regression on one benchmark blows the 10%% geomean gate.
	worse := strings.Replace(sampleOut, "426 allocs/op", "639 allocs/op", 1)
	worse = strings.Replace(worse, "67401 B/op", "101101 B/op", 1)
	inWorse := writeFile(t, dir, "worse.txt", worse)
	code, out, _ = runCLI(t, []string{"-baseline", baseline, "-input", inWorse, "-tolerance", "10%"})
	if code != 1 {
		t.Fatalf("regressed run exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("missing REGRESSION verdict:\n%s", out)
	}

	// The same regression passes under a huge tolerance.
	code, _, _ = runCLI(t, []string{"-baseline", baseline, "-input", inWorse, "-tolerance", "100%"})
	if code != 0 {
		t.Fatalf("tolerant run exit %d, want 0", code)
	}

	// ns/op is informational by default: a pure time regression passes.
	slower := strings.Replace(sampleOut, "263635 ns/op", "963635 ns/op", 1)
	inSlow := writeFile(t, dir, "slow.txt", slower)
	code, out, _ = runCLI(t, []string{"-baseline", baseline, "-input", inSlow})
	if code != 0 {
		t.Fatalf("time-only regression exit %d, want 0 (ns not gated):\n%s", code, out)
	}
	// ...but fails once ns is gated with a tight budget.
	code, _, _ = runCLI(t, []string{"-baseline", baseline, "-input", inSlow,
		"-metrics", "allocs,bytes,ns", "-time-tolerance", "5%"})
	if code != 1 {
		t.Fatalf("gated ns regression exit %d, want 1", code)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "bench.txt", sampleOut)
	baseline := filepath.Join(dir, "BENCH.json")
	if code, _, errb := runCLI(t, []string{"-update", baseline, "-label", "b", "-input", in}); code != 0 {
		t.Fatal(errb)
	}
	// Drop one benchmark from the new run: the gate must fail loudly
	// rather than report a clean (but hollow) comparison.
	lines := strings.Split(sampleOut, "\n")
	var kept []string
	for _, l := range lines {
		if !strings.HasPrefix(l, "BenchmarkTreePredict") {
			kept = append(kept, l)
		}
	}
	inPartial := writeFile(t, dir, "partial.txt", strings.Join(kept, "\n"))
	code, _, errb := runCLI(t, []string{"-baseline", baseline, "-input", inPartial})
	if code != 1 {
		t.Fatalf("partial run exit %d, want 1", code)
	}
	if !strings.Contains(errb, "missing from this run") {
		t.Errorf("missing-benchmark message absent: %s", errb)
	}
}

func TestSnapshotReplacesSameLabel(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "bench.txt", sampleOut)
	baseline := filepath.Join(dir, "BENCH.json")
	for i := 0; i < 2; i++ {
		if code, _, errb := runCLI(t, []string{"-update", baseline, "-label", "same", "-input", in}); code != 0 {
			t.Fatal(errb)
		}
	}
	if code, _, errb := runCLI(t, []string{"-update", baseline, "-label", "other", "-input", in}); code != 0 {
		t.Fatal(errb)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), `"label"`); n != 2 {
		t.Errorf("history has %d entries, want 2 (same-label replaced):\n%s", n, data)
	}
	// The gate compares against the newest entry.
	e, err := loadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if e.Label != "other" {
		t.Errorf("latest entry %q, want \"other\"", e.Label)
	}
}

func TestZeroToPositiveAllocsIsRegression(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "bench.txt", sampleOut)
	baseline := filepath.Join(dir, "BENCH.json")
	if code, _, errb := runCLI(t, []string{"-update", baseline, "-label", "b", "-input", in}); code != 0 {
		t.Fatal(errb)
	}
	// TreePredict goes from 0 allocs/op to 2: ratio is infinite, and no
	// finite tolerance may forgive losing a zero-alloc invariant.
	broken := strings.Replace(sampleOut,
		"13350 ns/op	       0 B/op	       0 allocs/op",
		"13350 ns/op	      64 B/op	       2 allocs/op", 1)
	inBroken := writeFile(t, dir, "broken.txt", broken)
	code, out, _ := runCLI(t, []string{"-baseline", baseline, "-input", inBroken, "-tolerance", "500%"})
	if code != 1 {
		t.Fatalf("zero->positive allocs exit %d, want 1:\n%s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "bench.txt", sampleOut)
	for _, args := range [][]string{
		{"-input", in},                                        // neither -baseline nor -update
		{"-update", filepath.Join(dir, "x.json"), "-input", in}, // -update without -label
		{"-baseline", filepath.Join(dir, "absent.json"), "-input", in},
		{"-baseline", in, "-input", in}, // not JSON
		{"-input", filepath.Join(dir, "empty.txt")},
	} {
		if code, _, _ := runCLI(t, args); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
	empty := writeFile(t, dir, "none.txt", "PASS\nok x 1s\n")
	if code, _, _ := runCLI(t, []string{"-baseline", in, "-input", empty}); code != 2 {
		t.Errorf("no-benchmark input: want exit 2")
	}
}

// TestOnlyRestrictsGate pins the -only flag: a partial run gates only
// the matching benchmarks — a baseline benchmark outside the filter is
// neither compared nor reported missing, and a regression inside the
// filter still fails. An -only matching nothing in the baseline is a
// usage error, not a silently empty (vacuously green) gate.
func TestOnlyRestrictsGate(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "bench.txt", sampleOut)
	baseline := filepath.Join(dir, "BENCH.json")
	if code, _, errb := runCLI(t, []string{"-update", baseline, "-label", "b", "-input", in}); code != 0 {
		t.Fatal(errb)
	}

	// A run holding only ServeInfer must pass when -only scopes the gate
	// to it, even though the other baseline benchmarks are absent.
	partial := writeFile(t, dir, "partial.txt",
		"BenchmarkServeInfer/workers2-8 \t      20\t  16000000 ns/op\t 5000000 B/op\t   60000 allocs/op\n")
	code, out, errb := runCLI(t, []string{"-baseline", baseline, "-input", partial, "-only", "BenchmarkServeInfer/"})
	if code != 0 {
		t.Fatalf("scoped gate exit %d, want 0:\n%s%s", code, out, errb)
	}
	if strings.Contains(errb, "missing from this run") {
		t.Errorf("filtered-out benchmarks reported missing: %s", errb)
	}

	// Same scope, 0% tolerance: one extra alloc/op inside the filter
	// must still fail.
	worse := writeFile(t, dir, "worse.txt",
		"BenchmarkServeInfer/workers2-8 \t      20\t  16000000 ns/op\t 5000000 B/op\t   60001 allocs/op\n")
	code, out, _ = runCLI(t, []string{"-baseline", baseline, "-input", worse, "-only", "BenchmarkServeInfer/", "-tolerance", "0%"})
	if code != 1 {
		t.Fatalf("scoped regression exit %d, want 1:\n%s", code, out)
	}

	if code, _, errb = runCLI(t, []string{"-baseline", baseline, "-input", partial, "-only", "NoSuchBenchmark"}); code != 2 {
		t.Errorf("-only with no baseline match exit %d, want 2 (%s)", code, errb)
	}
}
