// Command benchdiff is the repository's benchmark-regression gate: a
// stdlib-only, benchstat-spirited comparator for `go test -bench` output.
// It parses the benchmark lines of a run, compares each benchmark's
// ns/op, B/op and allocs/op against the latest entry of a committed
// baseline file (BENCH_serve.json at the repo root), and fails when the
// geometric-mean ratio of any gated metric regresses past the tolerance.
//
// Gate mode (the CI job):
//
//	go test -bench "$(BENCH_SET)" -benchmem -benchtime=100x . > bench-latest.txt
//	go run ./cmd/benchdiff -baseline BENCH_serve.json -input bench-latest.txt -tolerance 10%
//
// Snapshot mode (refreshing the committed baseline):
//
//	go run ./cmd/benchdiff -update BENCH_serve.json -input bench-latest.txt -label pr7-after
//
// The baseline file keeps an append-only history of labeled snapshots —
// the repo's perf trajectory — and the gate always compares against the
// newest entry. Metric selection matters across machines: allocs/op and
// B/op are deterministic for a fixed benchtime and gate by default, while
// ns/op varies with hardware and load, so it is only gated when "ns" is
// named in -metrics (use -time-tolerance to give it a looser budget).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// metrics holds the three per-benchmark numbers the gate tracks.
type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// entry is one labeled snapshot in the baseline history.
type entry struct {
	Label      string             `json:"label"`
	Go         string             `json:"go,omitempty"`
	Benchmarks map[string]metrics `json:"benchmarks"`
}

// baselineFile is the committed perf trajectory: snapshots in the order
// they were taken, newest last.
type baselineFile struct {
	History []entry `json:"history"`
}

// metricDef names one gateable metric and how to read it.
type metricDef struct {
	key  string // flag name: ns, bytes, allocs
	unit string // bench-output unit
	get  func(m metrics) float64
}

var metricDefs = []metricDef{
	{"ns", "ns/op", func(m metrics) float64 { return m.NsOp }},
	{"bytes", "B/op", func(m metrics) float64 { return m.BOp }},
	{"allocs", "allocs/op", func(m metrics) float64 { return m.AllocsOp }},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code: 0 clean,
// 1 regression (or missing benchmark), 2 usage or input error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input     = fs.String("input", "-", "benchmark output to read (`file`, or - for stdin)")
		baseline  = fs.String("baseline", "", "baseline `file` to gate against (latest history entry)")
		tolerance = fs.String("tolerance", "10%", "allowed geomean regression for gated metrics (`pct`, e.g. 10%)")
		timeTol   = fs.String("time-tolerance", "30%", "allowed geomean regression for ns/op when gated (`pct`)")
		metricsFl = fs.String("metrics", "allocs,bytes", "comma-separated metrics to gate: allocs, bytes, ns")
		update    = fs.String("update", "", "snapshot mode: append the run to this baseline `file` instead of gating")
		label     = fs.String("label", "", "snapshot label (required with -update); an existing entry with the same label is replaced")
		only      = fs.String("only", "", "gate only benchmarks matching this `regexp` (both sides); others are neither compared nor required")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cur, err := readBench(*input)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(cur) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark lines in input")
		return 2
	}

	if *update != "" {
		if *label == "" {
			fmt.Fprintln(stderr, "benchdiff: -update requires -label")
			return 2
		}
		if err := snapshot(*update, *label, cur); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "recorded %d benchmark(s) as %q in %s\n", len(cur), *label, *update)
		return 0
	}

	if *baseline == "" {
		fmt.Fprintln(stderr, "benchdiff: need -baseline (gate mode) or -update (snapshot mode)")
		return 2
	}
	base, err := loadBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	tol, err := parsePct(*tolerance)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: -tolerance: %v\n", err)
		return 2
	}
	ttol, err := parsePct(*timeTol)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: -time-tolerance: %v\n", err)
		return 2
	}
	gated, err := parseMetrics(*metricsFl)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: -only: %v\n", err)
			return 2
		}
		base.Benchmarks = filterNames(base.Benchmarks, re)
		cur = filterNames(cur, re)
		if len(base.Benchmarks) == 0 {
			fmt.Fprintf(stderr, "benchdiff: -only %q matches no baseline benchmark\n", *only)
			return 2
		}
	}
	return gate(stdout, stderr, base, cur, gated, tol, ttol)
}

// readBench parses benchmark output from path ("-" = stdin).
func readBench(path string) (map[string]metrics, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return parseBench(string(data))
}

// parseBench extracts per-benchmark metrics from `go test -bench` output.
// The GOMAXPROCS suffix (Benchmark-8) is stripped so results from machines
// with different core counts compare under one name; repeated runs of the
// same benchmark (-count>1) are averaged.
func parseBench(out string) (map[string]metrics, error) {
	sums := map[string]metrics{}
	counts := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		var m metrics
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark line %q: bad value %q", line, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsOp = v
			case "B/op":
				m.BOp = v
			case "allocs/op":
				m.AllocsOp = v
			}
		}
		s := sums[name]
		s.NsOp += m.NsOp
		s.BOp += m.BOp
		s.AllocsOp += m.AllocsOp
		sums[name] = s
		counts[name]++
	}
	for name, s := range sums {
		n := float64(counts[name])
		sums[name] = metrics{NsOp: s.NsOp / n, BOp: s.BOp / n, AllocsOp: s.AllocsOp / n}
	}
	return sums, nil
}

// stripProcs removes the trailing -N GOMAXPROCS suffix from a benchmark
// name, leaving sub-benchmark paths intact.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// filterNames keeps only the benchmarks whose name matches re, so a
// partial run (-only) can be gated without tripping the
// missing-benchmark check for everything that was deliberately not run.
func filterNames(in map[string]metrics, re *regexp.Regexp) map[string]metrics {
	out := make(map[string]metrics, len(in))
	for name, m := range in {
		if re.MatchString(name) {
			out[name] = m
		}
	}
	return out
}

// parsePct parses "10%" or "10" into the fraction 0.10.
func parsePct(s string) (float64, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("not a percentage: %q", s)
	}
	return v / 100, nil
}

// parseMetrics validates the -metrics list against the known metric keys.
func parseMetrics(s string) (map[string]bool, error) {
	out := map[string]bool{}
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		known := false
		for _, d := range metricDefs {
			if d.key == k {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown metric %q (valid: ns, bytes, allocs)", k)
		}
		out[k] = true
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -metrics list")
	}
	return out, nil
}

// loadBaseline reads the baseline file and returns its newest entry.
func loadBaseline(path string) (entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return entry{}, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return entry{}, fmt.Errorf("%s: %v", path, err)
	}
	if len(f.History) == 0 {
		return entry{}, fmt.Errorf("%s: empty history", path)
	}
	return f.History[len(f.History)-1], nil
}

// gate compares cur against base and prints a per-benchmark report plus
// per-metric geomeans. It returns 1 when a baseline benchmark is missing
// from the run or a gated metric's geomean regresses past its tolerance.
func gate(stdout, stderr io.Writer, base entry, cur map[string]metrics, gated map[string]bool, tol, timeTol float64) int {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Fprintf(stdout, "baseline: %s\n", base.Label)
	for _, d := range metricDefs {
		var ratios []float64
		printed := false
		for _, name := range names {
			c, ok := cur[name]
			if !ok {
				continue // reported once, below
			}
			bv, cv := d.get(base.Benchmarks[name]), d.get(c)
			ratio, usable := ratioOf(bv, cv)
			if !usable {
				continue // metric absent on both sides (e.g. no -benchmem)
			}
			if !printed {
				fmt.Fprintf(stdout, "\n%s\n", d.unit)
				printed = true
			}
			ratios = append(ratios, ratio)
			fmt.Fprintf(stdout, "  %-50s %14.2f -> %14.2f  (%+.1f%%)\n", name, bv, cv, (ratio-1)*100)
		}
		if len(ratios) == 0 {
			continue
		}
		gm := geomean(ratios)
		budget := tol
		if d.key == "ns" {
			budget = timeTol
		}
		verdict := "ok"
		if gated[d.key] && gm > 1+budget {
			verdict = fmt.Sprintf("REGRESSION (budget %+.1f%%)", budget*100)
			failed = true
		} else if !gated[d.key] {
			verdict = "informational"
		}
		fmt.Fprintf(stdout, "  %-50s geomean %+.1f%%  %s\n", "", (gm-1)*100, verdict)
	}

	for _, name := range names {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(stderr, "benchdiff: baseline benchmark %q missing from this run\n", name)
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(stdout, "\nFAIL: benchmark regression (or missing benchmark); if intentional, refresh BENCH_serve.json via make bench-snapshot")
		return 1
	}
	fmt.Fprintln(stdout, "\nok: within tolerance")
	return 0
}

// ratioOf returns cur/base, treating the 0->0 case as flat and the
// 0->positive case as a maximal regression. The bool is false when the
// metric carries no signal on either side.
func ratioOf(base, cur float64) (float64, bool) {
	switch {
	case base == 0 && cur == 0:
		return 1, false
	case base == 0:
		return math.Inf(1), true
	default:
		return cur / base, true
	}
}

// geomean returns the geometric mean of ratios.
func geomean(ratios []float64) float64 {
	sum := 0.0
	for _, r := range ratios {
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(ratios)))
}

// snapshot appends (or replaces, when the label already exists) an entry
// in the baseline file, creating the file if needed.
func snapshot(path, label string, cur map[string]metrics) error {
	var f baselineFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	e := entry{Label: label, Go: runtime.Version(), Benchmarks: cur}
	replaced := false
	for i := range f.History {
		if f.History[i].Label == label {
			f.History[i] = e
			replaced = true
		}
	}
	if !replaced {
		f.History = append(f.History, e)
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
