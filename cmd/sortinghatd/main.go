// Command sortinghatd serves batched feature type inference over HTTP:
// the online form of the SortingHat task, as AutoML platforms consume it.
//
// Usage:
//
//	sortinghatd -model model.gob [-addr :8080] [-workers N] [-cache 4096] [-timeout 10s]
//	sortinghatd -train-n 2000        # no saved model: train one at startup
//	sortinghatd -pprof               # also mount /debug/pprof/
//	sortinghatd -fault-spec 'predict:panic:0.1' -fault-seed 7   # chaos drills
//
// Endpoints:
//
//	POST /v1/infer       {"columns":[{"name":"age","values":["23","41"]}]}
//	POST /v1/infer/csv   text/csv body; one inferred type per column
//	POST /admin/reload   {"path":"model.gob","version":"canary"} hot model swap
//	GET  /healthz        liveness probe; "degraded" while the breaker is open
//	GET  /metrics        Prometheus text-format metrics
//	GET  /debug/traces   recent request traces as JSON span trees
//	GET  /debug/flight   flight recorder: slowest and errored recent requests
//	GET  /debug/pprof/   runtime profiles (only with -pprof)
//
// Distributed tracing: an incoming W3C traceparent header (as the
// gateway sends on every forwarded shard) makes the request's trace
// join the caller's, and a forwarded X-Request-Id is reused in the
// access log, so fleet-wide logs and traces join on one key.
// -trace-out appends every finished request trace to a JSONL file that
// cmd/tracecat can stitch, across processes, into one timeline per
// distributed trace.
//
// Model versioning: the startup model is labeled by -model-version
// (default "v1") at swap sequence 1. POST /admin/reload loads a new gob
// snapshot and swaps it in atomically — in-flight columns finish on the
// model they started with, new columns see the new one, and prediction
// cache keys carry the swap sequence so entries cached under an old
// model are never served again. /healthz and /v1/infer responses report
// the serving version. The endpoint is unauthenticated: expose it only
// on an internal network or behind an authenticating proxy.
//
// Resilience: an admission gate sheds load past -queue-depth with HTTP
// 429 + Retry-After; a circuit breaker (-breaker-failures,
// -breaker-probe) trips the ML prediction path open on consecutive
// failures, and while open columns are answered by the paper's
// rule-based baseline, tagged "degraded":true. -fault-spec injects
// deterministic faults (latency, errors, panics) at named sites for
// chaos drills; it is off by default and meant for testing only.
//
// Logs are structured JSON (log/slog), one object per line; each request
// is logged with the same request ID that appears on its trace span and
// X-Request-Id response header.
//
// The process drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sortinghat/internal/core"
	"sortinghat/internal/obs"
	"sortinghat/internal/resilience"
	"sortinghat/internal/resilience/faultinject"
	"sortinghat/internal/serve"
	"sortinghat/internal/synth"
)

func main() {
	var (
		modelPath  = flag.String("model", "", "trained model file (gob, from `sortinghat train`)")
		modelVer   = flag.String("model-version", "", "label for the startup model in /healthz and metrics (default v1)")
		trainN     = flag.Int("train-n", 0, "no -model: train a fresh Random Forest on an N-column corpus at startup")
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "column worker pool size (default: GOMAXPROCS)")
		cacheSize  = flag.Int("cache", serve.DefaultCacheSize, "prediction cache capacity in columns (negative disables)")
		timeout    = flag.Duration("timeout", serve.DefaultTimeout, "per-request deadline (negative disables)")
		maxBatch   = flag.Int("max-batch", serve.DefaultMaxBatch, "max columns per /v1/infer request")
		drain      = flag.Duration("drain", 15*time.Second, "max time to drain in-flight requests at shutdown")
		traceRing  = flag.Int("trace-ring", obs.DefaultTraceRing, "recent request traces kept for GET /debug/traces")
		traceOut   = flag.String("trace-out", "", "append finished request traces to this JSONL file (stitch with `tracecat`)")
		flightRing = flag.Int("flight-ring", obs.DefaultFlightRing, "slowest/errored requests kept for GET /debug/flight")
		pprof      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		maxCell       = flag.Int("max-cell", serve.DefaultMaxCellBytes, "max bytes per CSV cell on /v1/infer/csv (answered with 413)")
		queueDepth    = flag.Int("queue-depth", 0, "admission-gate high-water mark in columns (default: 2*max-batch)")
		retryAfterMax = flag.Int("retry-after-max", serve.DefaultRetryAfterMax, "cap in seconds on the Retry-After hint sent with shed (429) answers")
		brkFailures   = flag.Int("breaker-failures", 0, "consecutive prediction failures that trip the breaker open (default 5)")
		brkProbe      = flag.Duration("breaker-probe", 0, "wait before an open breaker probes the ML path again (default 5s)")
		faultSpec     = flag.String("fault-spec", "", "deterministic fault injection, e.g. 'predict:panic:0.1;featurize:latency:1:20ms' (testing only)")
		faultSeed     = flag.Int64("fault-seed", 1, "seed for -fault-spec fault draws")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)

	pipe, err := loadPipeline(logger, *modelPath, *trainN)
	if err != nil {
		logger.Error("startup failed", "err", err.Error())
		os.Exit(1)
	}

	cfg := serve.Config{
		ModelVersion:  *modelVer,
		Workers:       *workers,
		CacheSize:     *cacheSize,
		Timeout:       *timeout,
		MaxBatch:      *maxBatch,
		MaxCellBytes:  *maxCell,
		QueueDepth:    *queueDepth,
		RetryAfterMax: *retryAfterMax,
		TraceRing:     *traceRing,
		FlightRing:    *flightRing,
		Logger:        logger,
		EnablePprof:   *pprof,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: *brkFailures,
			ProbeInterval:    *brkProbe,
		},
	}
	if *faultSpec != "" {
		inj, err := faultinject.Parse(*faultSpec, *faultSeed)
		if err != nil {
			logger.Error("bad -fault-spec", "err", err.Error())
			os.Exit(2)
		}
		cfg.Faults = inj // assigned only when non-nil: a typed nil would defeat the nil-injector check
		logger.Warn("fault injection enabled — testing only", "spec", inj.String(), "seed", *faultSeed)
	}
	if *traceOut != "" {
		sink, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("bad -trace-out", "err", err.Error())
			os.Exit(2)
		}
		defer sink.Close()
		cfg.TraceSink = sink // same caveat as Faults: only a non-nil *os.File may land in the interface
	}
	srv := serve.New(pipe, cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving",
		"model", pipe.Name(),
		"addr", *addr,
		"workers", *workers,
		"cache", *cacheSize,
		"timeout", timeout.String(),
		"pprof", *pprof)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight requests", "max_drain", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown", "err", err.Error())
	}
	srv.Close() // after Shutdown: no handler is still enqueuing columns
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err.Error())
	}
	logger.Info("stopped")
}

// loadPipeline loads a saved model, or trains a fresh default Random
// Forest when no model file is given.
func loadPipeline(logger *slog.Logger, path string, trainN int) (*core.Pipeline, error) {
	if path != "" {
		pipe, err := core.LoadFile(path)
		if err != nil {
			return nil, err
		}
		return pipe, nil
	}
	n := trainN
	if n <= 0 {
		n = synth.DefaultCorpusConfig().N
	}
	logger.Info("no -model given; training a startup Random Forest (use `sortinghat train` + -model to skip this)", "columns", n)
	start := time.Now()
	corpus := synth.GenerateCorpus(corpusConfig(n))
	pipe, err := core.Train(corpus, core.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("training startup model: %w", err)
	}
	logger.Info("trained", "elapsed", time.Since(start).Round(time.Millisecond).String())
	return pipe, nil
}

// corpusConfig sizes the default corpus down to n columns.
func corpusConfig(n int) synth.CorpusConfig {
	cfg := synth.DefaultCorpusConfig()
	cfg.N = n
	return cfg
}
