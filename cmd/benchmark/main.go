// Command benchmark regenerates the paper's tables and figures.
//
// Usage:
//
//	benchmark -run all            # every experiment, small-machine sizing
//	benchmark -run table1         # one experiment
//	benchmark -run table1 -full   # paper-scale corpus (9,921 columns)
//	benchmark -list               # list available experiments
//	benchmark -run all -trace-out bench.jsonl   # phase timings as JSONL traces
//
// Experiment ids follow the paper: table1, table2 (incl. table9), table3,
// table7, table11, table12, table15, table18, downstream (tables 4, 5 and
// figure 8), figure7, figure9 (incl. table16).
//
// With -trace-out, each experiment writes one JSONL line: a span tree
// rooted at the experiment id (the same ids as -list), with the shared
// environment setup under an "env" root. See EXPERIMENTS.md for the span
// name vocabulary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"sortinghat/internal/experiments"
	"sortinghat/internal/obs"
)

type runner func(env *experiments.Env) (fmt.Stringer, error)

var registry = map[string]runner{
	"table1":     func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table1(e) },
	"table2":     func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table2(e) },
	"table3":     func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table3(e) },
	"table7":     func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table7(e) },
	"table11":    func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table11(e) },
	"table12":    func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table12(e) },
	"table15":    func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table15(e) },
	"table18":    func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table18(e), nil },
	"downstream": func(e *experiments.Env) (fmt.Stringer, error) { return experiments.DownstreamSuite(e) },
	"figure7":    func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Figure7(e) },
	"figure9":    func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Figure9(e, 0) },
	"grids":      func(e *experiments.Env) (fmt.Stringer, error) { return experiments.GridSearchRF(e) },
	"table14":    func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table14(e) },
}

// order lists experiments in presentation order for -run all.
var order = []string{
	"table18", "table1", "table2", "table3", "figure7", "figure9",
	"table7", "table11", "table12", "table14", "grids", "downstream", "table15",
}

func main() {
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	full := flag.Bool("full", false, "paper-scale corpus (9,921 columns; slow on small machines)")
	quick := flag.Bool("quick", false, "shrink the slowest experiments further")
	corpusN := flag.Int("n", 0, "override corpus size")
	seed := flag.Int64("seed", 7, "master random seed")
	list := flag.Bool("list", false, "list experiments and exit")
	traceOut := flag.String("trace-out", "", "write per-experiment phase traces as JSONL to this file")
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(registry))
		for id := range registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *full {
		cfg = experiments.FullConfig()
	}
	if *quick {
		cfg.Quick = true
		if cfg.CorpusN > 2500 {
			cfg.CorpusN = 2500
		}
		cfg.RFTrees = 30
		cfg.CNNEpochs = 2
	}
	if *corpusN > 0 {
		cfg.CorpusN = *corpusN
	}
	cfg.Seed = *seed

	var ids []string
	if *run == "all" {
		ids = order
	} else {
		if _, ok := registry[*run]; !ok {
			fmt.Fprintf(os.Stderr, "benchmark: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		ids = []string{*run}
	}

	// With -trace-out, the environment setup and every experiment become
	// root spans written as one JSONL line each. A nil tracer keeps every
	// span call below a no-op.
	var tracer *obs.Tracer
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		tracer = obs.NewTracer(len(ids) + 1)
		tracer.SetSink(f)
	}

	fmt.Printf("# SortingHat benchmark — corpus=%d seed=%d trees=%d\n\n", cfg.CorpusN, cfg.Seed, cfg.RFTrees)
	start := time.Now()
	envCtx, envSpan := tracer.Start(context.Background(), "env")
	env := experiments.NewEnvCtx(envCtx, cfg)
	envSpan.End()
	fmt.Printf("(corpus + base featurization: %.1fs)\n\n", time.Since(start).Seconds())

	for _, id := range ids {
		fmt.Printf("==================== %s ====================\n", id)
		t0 := time.Now()
		ctx, span := tracer.Start(context.Background(), id)
		env.Ctx = ctx
		res, err := registry[id](env)
		span.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(t0).Seconds())
	}

	if tracer != nil {
		if err := tracer.SinkErr(); err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: writing traces: %v\n", err)
			os.Exit(1)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchmark: closing trace file: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(traces written to %s)\n", *traceOut)
	}
}
