package main

import "testing"

func TestOrderMatchesRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range order {
		if _, ok := registry[id]; !ok {
			t.Errorf("order entry %q missing from registry", id)
		}
		if seen[id] {
			t.Errorf("order entry %q duplicated", id)
		}
		seen[id] = true
	}
	for id := range registry {
		if !seen[id] {
			t.Errorf("registry entry %q missing from -run all order", id)
		}
	}
}
