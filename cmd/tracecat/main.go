// Command tracecat stitches per-process JSONL trace sinks into ordered
// fleet-wide timelines. Every sortinghat process can append each
// finished request trace to a sink file (-trace-out on sortinghatd and
// sortinghatgw), one JSON span tree per line; tracecat merges any
// number of those sinks, joins lines that share a trace id, grafts each
// process's root span under the exact remote span that caused it (the
// root's parent_span_id — for a replica, the gateway's forward span),
// and prints one indented timeline per distributed trace.
//
// Usage:
//
//	tracecat [-trace <32-hex id>] gateway.jsonl replica0.jsonl replica1.jsonl
//
// Offsets are monotonic and per-process: a grafted process root is
// anchored at its remote parent's offset, so cross-process times are
// aligned to the causing span rather than to (unsynchronized) wall
// clocks. Spans print depth-first, siblings ordered by offset.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sortinghat/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// node is one span in the stitched timeline: its own children from the
// same process, plus grafted roots of downstream processes whose
// parent_span_id named this span.
type node struct {
	src    string // base name of the sink file the span came from
	span   obs.SpanJSON
	rel    int64 // start offset within its own process's trace
	abs    int64 // start offset within the stitched timeline
	kids   []*node
	grafts []*node
	orphan bool // parent_span_id named a span no sink contains
}

// trace is one trace id's worth of roots across every input sink.
type trace struct {
	id    string
	roots []*node // process roots, input order
}

// run executes the CLI and returns the process exit code: 0 clean,
// 1 nothing to print (no traces, or the -trace filter matched none),
// 2 usage or input error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	traceFilter := fs.String("trace", "", "only print the trace with this id")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: tracecat [-trace <id>] <sink.jsonl> [<sink.jsonl> ...]")
		return 2
	}

	byID := make(map[string]*trace)
	var order []*trace
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "tracecat: %v\n", err)
			return 2
		}
		src := filepath.Base(path)
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var span obs.SpanJSON
			if err := json.Unmarshal([]byte(line), &span); err != nil {
				fmt.Fprintf(stderr, "tracecat: %s:%d: %v\n", src, lineNo, err)
				_ = f.Close()
				return 2
			}
			if span.TraceID == "" {
				fmt.Fprintf(stderr, "tracecat: %s:%d: line has no trace_id (not a root span)\n", src, lineNo)
				_ = f.Close()
				return 2
			}
			tr := byID[span.TraceID]
			if tr == nil {
				tr = &trace{id: span.TraceID}
				byID[span.TraceID] = tr
				order = append(order, tr)
			}
			tr.roots = append(tr.roots, buildNode(span, src))
		}
		_ = f.Close()
		if err := sc.Err(); err != nil {
			fmt.Fprintf(stderr, "tracecat: reading %s: %v\n", src, err)
			return 2
		}
	}

	printed := 0
	for _, tr := range order {
		if *traceFilter != "" && tr.id != *traceFilter {
			continue
		}
		printTrace(stdout, tr)
		printed++
	}
	if printed == 0 {
		if *traceFilter != "" {
			fmt.Fprintf(stderr, "tracecat: no trace %s in the given sinks\n", *traceFilter)
		} else {
			fmt.Fprintln(stderr, "tracecat: no traces in the given sinks")
		}
		return 1
	}
	return 0
}

// buildNode converts a span tree into nodes, keeping per-process
// offsets; stitching rebases them later.
func buildNode(span obs.SpanJSON, src string) *node {
	n := &node{src: src, span: span, rel: span.StartNS}
	for _, c := range span.Children {
		n.kids = append(n.kids, buildNode(c, src))
	}
	n.span.Children = nil
	return n
}

// index walks a node's own (same-process) subtree registering span ids.
func index(n *node, into map[string]*node) {
	if n.span.SpanID != "" {
		into[n.span.SpanID] = n
	}
	for _, k := range n.kids {
		index(k, into)
	}
}

// stitch grafts every process root under the span its parent_span_id
// names, leaving roots with no (findable) remote parent at top level.
// The first root always stays top-level, which also breaks parent-id
// cycles between malformed sinks.
func stitch(tr *trace) []*node {
	ids := make(map[string]*node)
	for _, r := range tr.roots {
		index(r, ids)
	}
	var top []*node
	for i, r := range tr.roots {
		parent := ids[r.span.ParentID]
		switch {
		case i > 0 && r.span.ParentID != "" && parent != nil && parent != r:
			parent.grafts = append(parent.grafts, r)
		default:
			r.orphan = r.span.ParentID != "" && parent == nil
			top = append(top, r)
		}
	}
	for _, r := range top {
		rebase(r, 0)
	}
	return top
}

// rebase assigns stitched offsets: same-process spans keep their
// process anchor; a grafted process root is anchored at the span that
// caused it.
func rebase(n *node, anchor int64) {
	n.abs = anchor + n.rel
	for _, k := range n.kids {
		rebase(k, anchor)
	}
	for _, g := range n.grafts {
		// The downstream process's own offsets restart at zero; anchor
		// them at the causing span's stitched offset.
		rebase(g, n.abs)
	}
}

// countSpans sizes a stitched tree, grafts included.
func countSpans(n *node) int {
	total := 1
	for _, k := range n.kids {
		total += countSpans(k)
	}
	for _, g := range n.grafts {
		total += countSpans(g)
	}
	return total
}

// printTrace renders one stitched trace as an indented timeline.
func printTrace(w io.Writer, tr *trace) {
	top := stitch(tr)
	spans, sinks := 0, make(map[string]bool)
	for _, r := range tr.roots {
		sinks[r.src] = true
	}
	for _, t := range top {
		spans += countSpans(t)
	}
	fmt.Fprintf(w, "trace %s: %d spans from %d sinks\n", tr.id, spans, len(sinks))
	for _, t := range top {
		printNode(w, t, 0)
	}
}

// printNode prints one span line and recurses over its children and
// grafted process roots, siblings ordered by stitched offset (ties by
// name, then source) so output is deterministic.
func printNode(w io.Writer, n *node, depth int) {
	var b strings.Builder
	fmt.Fprintf(&b, "%12.3fms %+12.3fms  %s%s",
		float64(n.abs)/1e6, float64(n.span.DurationNS)/1e6,
		strings.Repeat("  ", depth), n.span.Name)
	fmt.Fprintf(&b, "  [%s]", n.src)
	if len(n.span.Attrs) > 0 {
		pairs := make([]string, len(n.span.Attrs))
		for i, a := range n.span.Attrs {
			pairs[i] = a.Key + "=" + a.Value
		}
		fmt.Fprintf(&b, " {%s}", strings.Join(pairs, " "))
	}
	if n.orphan {
		fmt.Fprintf(&b, " (parent %s not in any sink)", n.span.ParentID)
	}
	fmt.Fprintln(w, b.String())

	all := make([]*node, 0, len(n.kids)+len(n.grafts))
	all = append(all, n.kids...)
	all = append(all, n.grafts...)
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].abs != all[j].abs {
			return all[i].abs < all[j].abs
		}
		if all[i].span.Name != all[j].span.Name {
			return all[i].span.Name < all[j].span.Name
		}
		return all[i].src < all[j].src
	})
	for _, c := range all {
		printNode(w, c, depth+1)
	}
}
