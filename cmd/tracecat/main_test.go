package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sinks lists the fixture sinks in the order an operator would pass
// them: gateway first, then the replicas.
func sinks() []string {
	return []string{
		filepath.Join("testdata", "gateway.jsonl"),
		filepath.Join("testdata", "replica0.jsonl"),
		filepath.Join("testdata", "replica1.jsonl"),
	}
}

// TestGoldenTimeline pins tracecat's whole output for the fixture
// fleet: a gateway trace with two shards, each forward span carrying a
// replica's grafted root (offsets anchored at the forward span), plus a
// second trace whose remote parent is in no sink (the orphan note).
func TestGoldenTimeline(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(sinks(), &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, errOut.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "timeline.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("timeline drifted from the golden file.\ngot:\n%s\nwant:\n%s", out.String(), golden)
	}
}

// TestTraceFilter checks -trace prints exactly the requested trace.
func TestTraceFilter(t *testing.T) {
	var out, errOut bytes.Buffer
	args := append([]string{"-trace", "0102030405060708090a0b0c0d0e0f10"}, sinks()...)
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "trace 0102030405060708090a0b0c0d0e0f10") {
		t.Errorf("filtered output missing the requested trace:\n%s", out.String())
	}
	if strings.Contains(out.String(), "ffffffffffffffffffffffffffffffff") {
		t.Errorf("filtered output leaked another trace:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	args = append([]string{"-trace", "00000000000000000000000000000000"}, sinks()...)
	if code := run(args, &out, &errOut); code != 1 {
		t.Errorf("exit code for a missing trace = %d, want 1", code)
	}
}

// TestUsageErrors checks argument and input failure modes exit 2.
func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("exit code with no sinks = %d, want 2", code)
	}
	if code := run([]string{"testdata/definitely-missing.jsonl"}, &out, &errOut); code != 2 {
		t.Errorf("exit code for a missing file = %d, want 2", code)
	}

	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errOut); code != 2 {
		t.Errorf("exit code for malformed JSONL = %d, want 2", code)
	}

	// A line without a trace_id is a child span, not a sink line.
	noID := filepath.Join(t.TempDir(), "noid.jsonl")
	if err := os.WriteFile(noID, []byte(`{"name":"x","span_id":"a000000000000001","start_ns":0,"duration_ns":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{noID}, &out, &errOut); code != 2 {
		t.Errorf("exit code for a root without trace_id = %d, want 2", code)
	}
}
