package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sortinghat/internal/data"
)

func TestRunMaterialisesBenchmark(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 150, 3); err != nil {
		t.Fatalf("run: %v", err)
	}

	// Labels index exists and covers every corpus column.
	labels, err := os.ReadFile(filepath.Join(dir, "labels.csv"))
	if err != nil {
		t.Fatalf("labels.csv: %v", err)
	}
	lines := strings.Count(string(labels), "\n")
	if lines < 150 {
		t.Errorf("labels.csv has %d lines, want >= 150", lines)
	}

	// Corpus files parse back as CSVs.
	corpusFiles, err := filepath.Glob(filepath.Join(dir, "corpus", "*.csv"))
	if err != nil || len(corpusFiles) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	ds, err := data.ReadCSVFile(corpusFiles[0])
	if err != nil {
		t.Fatalf("corpus file unreadable: %v", err)
	}
	if ds.NumCols() == 0 || ds.NumRows() == 0 {
		t.Error("corpus file empty")
	}

	// Downstream suite: 30 datasets plus the type index.
	suiteFiles, err := filepath.Glob(filepath.Join(dir, "downstream", "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(suiteFiles) != 30 {
		t.Errorf("downstream datasets = %d, want 30", len(suiteFiles))
	}
	types, err := os.ReadFile(filepath.Join(dir, "downstream_types.csv"))
	if err != nil {
		t.Fatalf("downstream_types.csv: %v", err)
	}
	if n := strings.Count(string(types), "\n"); n != 567 { // header + 566 columns
		t.Errorf("type index rows = %d, want 567", n)
	}

	// Every downstream file must include the target column.
	dd, err := data.ReadCSVFile(suiteFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	if dd.ColumnIndex("target") != dd.NumCols()-1 {
		t.Error("target column missing or misplaced")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Car Fuel"); got != "Car_Fuel" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("a/b c"); got != "a_b_c" {
		t.Errorf("sanitize = %q", got)
	}
}
