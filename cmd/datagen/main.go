// Command datagen materialises the benchmark data as CSV files on disk:
// the labeled corpus (one CSV per synthetic source file plus a labels
// index) and the 30-dataset downstream suite.
//
// Usage:
//
//	datagen -out ./benchdata [-n 9921] [-seed 7]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sortinghat/internal/data"
	"sortinghat/internal/synth"
)

func main() {
	out := flag.String("out", "benchdata", "output directory")
	n := flag.Int("n", synth.PaperCorpusSize, "labeled corpus size")
	seed := flag.Int64("seed", 7, "generator seed")
	flag.Parse()

	if err := run(*out, *n, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, n int, seed int64) error {
	corpusDir := filepath.Join(out, "corpus")
	suiteDir := filepath.Join(out, "downstream")
	for _, d := range []string{corpusDir, suiteDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}

	// Labeled corpus, grouped back into per-file CSVs.
	cfg := synth.DefaultCorpusConfig()
	cfg.N = n
	cfg.Seed = seed
	corpus := synth.GenerateCorpus(cfg)
	byFile := map[int][]data.LabeledColumn{}
	maxFile := 0
	for _, c := range corpus {
		byFile[c.FileID] = append(byFile[c.FileID], c)
		if c.FileID > maxFile {
			maxFile = c.FileID
		}
	}
	labelsPath := filepath.Join(out, "labels.csv")
	lf, err := os.Create(labelsPath)
	if err != nil {
		return err
	}
	lw := csv.NewWriter(lf)
	if err := lw.Write([]string{"file", "column", "label"}); err != nil {
		return err
	}
	files := 0
	for id := 0; id <= maxFile; id++ {
		cols, ok := byFile[id]
		if !ok {
			continue
		}
		ds := &data.Dataset{Name: fmt.Sprintf("file_%04d", id)}
		for _, c := range cols {
			ds.Columns = append(ds.Columns, c.Column)
			if err := lw.Write([]string{ds.Name, c.Name, c.Label.String()}); err != nil {
				return err
			}
		}
		path := filepath.Join(corpusDir, ds.Name+".csv")
		if err := data.WriteCSVFile(path, ds); err != nil {
			return err
		}
		files++
	}
	lw.Flush()
	if err := lw.Error(); err != nil {
		return err
	}
	if err := lf.Close(); err != nil {
		return err
	}
	fmt.Printf("corpus: %d columns across %d files -> %s (labels: %s)\n",
		len(corpus), files, corpusDir, labelsPath)

	// Downstream suite.
	suite := synth.GenerateSuite(seed + 1000)
	typesPath := filepath.Join(out, "downstream_types.csv")
	tf, err := os.Create(typesPath)
	if err != nil {
		return err
	}
	tw := csv.NewWriter(tf)
	if err := tw.Write([]string{"dataset", "column", "true_type", "task"}); err != nil {
		return err
	}
	for _, d := range suite {
		path := filepath.Join(suiteDir, sanitize(d.Spec.Name)+".csv")
		if err := data.WriteCSVFile(path, d.Data); err != nil {
			return err
		}
		task := "classification"
		if d.IsRegression() {
			task = "regression"
		}
		for c, t := range d.TrueTypes {
			if err := tw.Write([]string{d.Spec.Name, d.Data.Columns[c].Name, t.String(), task}); err != nil {
				return err
			}
		}
	}
	tw.Flush()
	if err := tw.Error(); err != nil {
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	fmt.Printf("downstream: %d datasets -> %s (types: %s)\n", len(suite), suiteDir, typesPath)
	return nil
}

func sanitize(name string) string {
	out := []byte(name)
	for i, c := range out {
		if c == ' ' || c == '/' {
			out[i] = '_'
		}
	}
	return string(out)
}
