// Package sortinghat is a Go implementation of the SortingHat benchmark for
// ML feature type inference ("Towards Benchmarking Feature Type Inference
// for AutoML Platforms", SIGMOD 2021).
//
// The central task: given a raw column from a CSV file — its attribute name
// and string cell values — predict its ML feature type (Numeric,
// Categorical, Datetime, Sentence, URL, Embedded Number, List,
// Not-Generalizable, or Context-Specific), bridging the semantic gap
// between syntactic attribute types and how a downstream model should
// consume the column.
//
// A minimal use:
//
//	model, err := sortinghat.TrainDefault(nil)
//	...
//	preds, err := model.InferCSVFile("customers.csv")
//	for _, p := range preds {
//		fmt.Println(p.Column, p.Type, p.Confidence)
//	}
//
// The package also exposes the benchmark itself: the labeled-corpus
// generator, the competing industrial-tool emulations, and the evaluation
// harness live under internal/ and are driven by cmd/benchmark.
package sortinghat

import (
	"fmt"
	"io"

	"sortinghat/ftype"
	"sortinghat/internal/core"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/synth"
)

// FeatureType is the ML feature type vocabulary (re-exported from ftype).
type FeatureType = ftype.FeatureType

// The nine-class label vocabulary.
const (
	Numeric          = ftype.Numeric
	Categorical      = ftype.Categorical
	Datetime         = ftype.Datetime
	Sentence         = ftype.Sentence
	URL              = ftype.URL
	EmbeddedNumber   = ftype.EmbeddedNumber
	List             = ftype.List
	NotGeneralizable = ftype.NotGeneralizable
	ContextSpecific  = ftype.ContextSpecific
)

// Example is one labeled training example: a raw column and its feature
// type.
type Example struct {
	Name   string
	Values []string
	Label  FeatureType
}

// Prediction is the inference result for one column.
type Prediction struct {
	Column     string
	Type       FeatureType
	Confidence float64   // probability of the predicted class
	Probs      []float64 // per-class probabilities, indexed by class index
}

// Options re-exports the training options of the inference pipeline.
type Options = core.Options

// ModelKind selects a model family for training.
type ModelKind = core.ModelKind

// Model families available for TrainWith.
const (
	LogReg       = core.LogReg
	RBFSVM       = core.RBFSVM
	RandomForest = core.RandomForest
	KNN          = core.KNN
	CNN          = core.CNN
)

// DefaultOptions returns the paper's best configuration (Random Forest on
// descriptive stats + attribute-name bigrams).
func DefaultOptions() Options { return core.DefaultOptions() }

// Model is a trained feature type inference model.
type Model struct {
	pipe *core.Pipeline
}

// Train fits a model on labeled examples with the given options. A zero
// Options value selects the default Random Forest configuration.
func Train(examples []Example, opts Options) (*Model, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("sortinghat: no training examples")
	}
	cols := make([]data.LabeledColumn, len(examples))
	for i, ex := range examples {
		if !ex.Label.Valid() && ex.Label != ftype.Country && ex.Label != ftype.State {
			return nil, fmt.Errorf("sortinghat: example %d (%q): invalid label %v", i, ex.Name, ex.Label)
		}
		cols[i] = data.LabeledColumn{
			Column: data.Column{Name: ex.Name, Values: ex.Values},
			Label:  ex.Label,
		}
	}
	if opts.Model == "" {
		opts.Model = RandomForest
	}
	if opts.FeatureSet == (featurize.FeatureSet{}) {
		opts.FeatureSet = featurize.DefaultFeatureSet()
	}
	if opts.Model == RandomForest && opts.RFTrees == 0 {
		opts.RFTrees, opts.RFDepth = 100, 25
	}
	pipe, err := core.Train(cols, opts)
	if err != nil {
		return nil, fmt.Errorf("sortinghat: %w", err)
	}
	return &Model{pipe: pipe}, nil
}

// TrainDefault trains the default Random Forest on the built-in synthetic
// benchmark corpus (the repository's stand-in for the paper's labeled
// dataset). Pass nil to use the default corpus configuration, or customize
// size and seed via cfg.
func TrainDefault(cfg *CorpusConfig) (*Model, error) {
	ccfg := synth.DefaultCorpusConfig()
	if cfg != nil {
		if cfg.N > 0 {
			ccfg.N = cfg.N
		}
		if cfg.Seed != 0 {
			ccfg.Seed = cfg.Seed
		}
	}
	corpus := synth.GenerateCorpus(ccfg)
	opts := core.DefaultOptions()
	pipe, err := core.Train(corpus, opts)
	if err != nil {
		return nil, fmt.Errorf("sortinghat: %w", err)
	}
	return &Model{pipe: pipe}, nil
}

// CorpusConfig customizes the built-in training corpus for TrainDefault.
type CorpusConfig struct {
	N    int   // number of labeled columns (default 9,921)
	Seed int64 // generator seed
}

// InferColumn predicts the feature type of one raw column.
func (m *Model) InferColumn(name string, values []string) Prediction {
	col := data.Column{Name: name, Values: values}
	t, probs := m.pipe.Predict(&col)
	return prediction(name, t, probs)
}

// InferDataset predicts feature types for every column of a CSV stream
// (with a header row).
func (m *Model) InferDataset(name string, r io.Reader) ([]Prediction, error) {
	ds, err := data.ReadCSV(name, r)
	if err != nil {
		return nil, fmt.Errorf("sortinghat: %w", err)
	}
	out := make([]Prediction, ds.NumCols())
	for i := range ds.Columns {
		t, probs := m.pipe.Predict(&ds.Columns[i])
		out[i] = prediction(ds.Columns[i].Name, t, probs)
	}
	return out, nil
}

// InferCSVFile predicts feature types for every column of a CSV file.
func (m *Model) InferCSVFile(path string) ([]Prediction, error) {
	ds, err := data.ReadCSVFile(path)
	if err != nil {
		return nil, fmt.Errorf("sortinghat: %w", err)
	}
	out := make([]Prediction, ds.NumCols())
	for i := range ds.Columns {
		t, probs := m.pipe.Predict(&ds.Columns[i])
		out[i] = prediction(ds.Columns[i].Name, t, probs)
	}
	return out, nil
}

func prediction(name string, t FeatureType, probs []float64) Prediction {
	conf := 0.0
	if i := t.Index(); i >= 0 && i < len(probs) {
		conf = probs[i]
	}
	return Prediction{Column: name, Type: t, Confidence: conf, Probs: probs}
}

// Save serialises the model (encoding/gob).
func (m *Model) Save(w io.Writer) error { return m.pipe.Save(w) }

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error { return m.pipe.SaveFile(path) }

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	pipe, err := core.Load(r)
	if err != nil {
		return nil, fmt.Errorf("sortinghat: %w", err)
	}
	return &Model{pipe: pipe}, nil
}

// LoadFile reads a model from a file.
func LoadFile(path string) (*Model, error) {
	pipe, err := core.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sortinghat: %w", err)
	}
	return &Model{pipe: pipe}, nil
}

// SampleCount is the number of distinct values inspected per column during
// base featurization (five, as in the paper).
const SampleCount = featurize.SampleCount
