package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// hotperfGraph loads the fixture module and returns a ModulePass with the
// call graph, sharing the test binary's cached fixture load.
func hotperfPass(t *testing.T) *ModulePass {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "fixtures"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load()
	if err != nil {
		t.Fatal(err)
	}
	var scratch []Finding
	return &ModulePass{
		Fset:     pkgs[0].Fset,
		Pkgs:     pkgs,
		Graph:    BuildCallGraph(pkgs),
		analyzer: "test",
		findings: &scratch,
	}
}

// TestHotRegionRooting pins the three rooting cases of the hot region:
// (a) transitively reachable from a hot-prefix entry point (PredictBatch
// -> scoreRow), (b) reachable only from a test helper — out, and (c)
// explicitly rooted with //shvet:hotpath despite being statically
// unreachable.
func TestHotRegionRooting(t *testing.T) {
	mp := hotperfPass(t)
	region := mp.hotRegion()

	find := func(suffix string) (string, bool) {
		for _, id := range mp.Graph.SortedIDs() {
			if strings.HasSuffix(id, suffix) {
				_, hot := region[id]
				return id, hot
			}
		}
		t.Fatalf("no graph node with suffix %q", suffix)
		return "", false
	}

	for _, want := range []struct {
		suffix string
		hot    bool
	}{
		{"hotperf.PredictBatch", true},
		{"hotperf.scoreRow", true}, // (a) transitive from an entry
		{"hotperf.label", true},
		{"hotperf.refresh", true},     // (c) //shvet:hotpath root
		{"hotperf.coldMirror", false}, // (b) test-only reachability is cold
	} {
		if _, hot := find(want.suffix); hot != want.hot {
			t.Errorf("hot(%s) = %v, want %v", want.suffix, hot, want.hot)
		}
	}

	// The entry recorded for a transitive node must be the real root, and
	// the rendered chain must walk from it.
	id, _ := find("hotperf.scoreRow")
	if entry := region[id].entry; !strings.HasSuffix(entry, "hotperf.PredictBatch") {
		t.Errorf("scoreRow rooted at %q, want PredictBatch", entry)
	}
	if chain := mp.hotChain(id); !strings.Contains(chain, "hotperf.PredictBatch -> hotperf.scoreRow") {
		t.Errorf("hotChain(scoreRow) = %q, want PredictBatch -> scoreRow", chain)
	}
}

// TestHotRegionDeterminism pins that two region builds over the same
// graph agree exactly, entry attribution included.
func TestHotRegionDeterminism(t *testing.T) {
	a, b := hotperfPass(t), hotperfPass(t)
	ra, rb := a.hotRegion(), b.hotRegion()
	if len(ra) != len(rb) {
		t.Fatalf("region sizes differ: %d vs %d", len(ra), len(rb))
	}
	for id, c := range ra {
		if rb[id] != c {
			t.Errorf("region[%s] = %+v vs %+v", id, c, rb[id])
		}
	}
}

// TestPerfSuppressionRoundTrip asserts each of the four perf analyzers
// has a finding in the quiet.go fixture silenced by a //shvet:ignore
// naming it, with the directive's reason preserved.
func TestPerfSuppressionRoundTrip(t *testing.T) {
	findings := loadFixtures(t)
	want := map[string]bool{
		"alloc-in-loop": false,
		"string-churn":  false,
		"defer-in-loop": false,
		"boxing":        false,
	}
	for _, f := range findings {
		if !strings.Contains(f.Pos.Filename, "quiet.go") || !f.Suppressed {
			continue
		}
		if _, tracked := want[f.Analyzer]; !tracked {
			t.Errorf("unexpected suppressed analyzer %s in quiet.go", f.Analyzer)
			continue
		}
		want[f.Analyzer] = true
		if !strings.HasPrefix(f.Reason, "quiet:") {
			t.Errorf("%s suppression reason %q lost the directive text", f.Analyzer, f.Reason)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no suppressed %s finding in quiet.go; the directive round-trip is broken", name)
		}
	}
}

// TestDanglingHotpathDirective asserts a //shvet:hotpath that attaches to
// no declaration is reported under the directive pseudo-analyzer.
func TestDanglingHotpathDirective(t *testing.T) {
	findings := loadFixtures(t)
	for _, f := range Unsuppressed(findings) {
		if f.Analyzer == DirectiveAnalyzer && strings.Contains(f.Message, "shvet:hotpath") {
			return
		}
	}
	t.Error("no directive finding for the dangling //shvet:hotpath fixture")
}
