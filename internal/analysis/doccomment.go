package analysis

import (
	"go/ast"
	"sort"
)

// AnalyzerDocComment flags exported package-level identifiers declared
// without a doc comment, and packages with no package comment at all.
// This repository's packages double as the reproduction's documentation —
// each package comment states which paper section or table it reproduces —
// so an undocumented export is a hole in the paper map. The godoc
// conventions are honoured: a comment on a const/var/type group documents
// every spec in the group, an end-of-line comment on a one-line spec
// counts, methods on unexported receiver types are not part of the public
// surface, and _test.go files are exempt.
var AnalyzerDocComment = &Analyzer{
	Name: "doc-comment",
	Doc:  "exported identifiers or packages without a doc comment",
	Run:  runDocComment,
}

func runDocComment(pass *Pass) {
	checkPackageComment(pass)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Package) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
					pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					continue // a group comment documents every spec
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
							pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						if s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, name := range s.Names {
							if name.IsExported() {
								pass.Reportf(name.Pos(), "exported %s %s has no doc comment", valueKind(d), name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// checkPackageComment reports a package whose non-test files all lack a
// package comment. The finding lands on the package clause of the first
// file in filename order so re-runs are deterministic.
func checkPackageComment(pass *Pass) {
	var nonTest []*ast.File
	for _, file := range pass.Files {
		if !pass.IsTestFile(file.Package) {
			nonTest = append(nonTest, file)
		}
	}
	if len(nonTest) == 0 {
		return
	}
	for _, file := range nonTest {
		if file.Doc != nil {
			return
		}
	}
	sort.Slice(nonTest, func(i, j int) bool {
		return pass.Fset.Position(nonTest[i].Package).Filename < pass.Fset.Position(nonTest[j].Package).Filename
	})
	pass.Reportf(nonTest[0].Name.Pos(), "package %s has no package comment", nonTest[0].Name.Name)
}

// receiverExported reports whether a function is a plain function or a
// method whose receiver type is exported; methods on unexported types are
// internal even when their own name is capitalised (e.g. String() on an
// unexported helper).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver: T[P]
			t = x.X
		case *ast.IndexListExpr: // generic receiver: T[P1, P2]
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcKind names the declaration for the report message.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// valueKind names a GenDecl's keyword for the report message.
func valueKind(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "const"
	}
	return "var"
}
