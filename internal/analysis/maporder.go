package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMapOrder flags a range over a map whose body lets the (random)
// iteration order escape: appending to a slice, writing to an io.Writer,
// or calling a fmt print function. Each of these turns map order into
// observable output — the exact failure mode that makes results files
// differ between identical runs.
//
// The canonical fix — collect the keys, sort them, then range the sorted
// slice — is recognised: an append inside the loop is not flagged when
// the destination slice is passed to a sort.* or slices.Sort* call later
// in the same function.
var AnalyzerMapOrder = &Analyzer{
	Name: "map-order",
	Doc:  "map iteration order escaping into slices, writers, or printed output",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		// Examine each function body independently so "sorted later in the
		// same function" has a well-defined scope.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkMapRanges(pass, body)
			return true
		})
	}
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	sorted := sortedTargets(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions get their own pass
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		reportEscapes(pass, rng, sorted)
		return true
	})
}

// sortedTargets collects the expression strings passed as the first
// argument to sort.* / slices.Sort* calls anywhere in the function, with
// the position of each call, so appends can be matched against a sort
// that happens after the loop.
func sortedTargets(pass *Pass, body *ast.BlockStmt) map[string]token.Pos {
	out := map[string]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			// sort.Strings, sort.Ints, sort.Float64s, sort.Slice, ...
		case "slices":
			if !strings.HasPrefix(fn.Name(), "Sort") {
				return true
			}
		default:
			return true
		}
		key := types.ExprString(call.Args[0])
		if prev, ok := out[key]; !ok || call.Pos() > prev {
			out[key] = call.Pos()
		}
		return true
	})
	return out
}

func reportEscapes(pass *Pass, rng *ast.RangeStmt, sorted map[string]token.Pos) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(dst, ...) — nondeterministic element order unless dst is
		// sorted after the loop.
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && obj.Name() == "append" {
				dst := appendTarget(call)
				if pos, ok := sorted[dst]; ok && pos > rng.End() {
					return true
				}
				pass.Reportf(call.Pos(),
					"append inside map iteration leaks map order into %s; sort the map keys first (or sort %s after the loop)", dst, dst)
				return true
			}
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		// fmt print family.
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.Contains(fn.Name(), "rint") {
			pass.Reportf(call.Pos(),
				"fmt.%s inside map iteration emits in map order; sort the keys and range the sorted slice", fn.Name())
			return true
		}
		// Writes to an io.Writer (covers strings.Builder, bytes.Buffer,
		// bufio.Writer, files, ...).
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			strings.HasPrefix(fn.Name(), "Write") && implementsWriter(sig.Recv().Type()) {
			pass.Reportf(call.Pos(),
				"%s to an io.Writer inside map iteration emits in map order; sort the keys first", fn.Name())
		}
		return true
	})
}

// appendTarget renders the slice being grown: the assignment LHS for
// dst = append(dst, ...), falling back to append's first argument.
func appendTarget(call *ast.CallExpr) string {
	return types.ExprString(call.Args[0])
}

// calleeFunc resolves the function or method a call statically invokes,
// or nil for calls through variables, interfaces, or built-ins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	return calleeFuncInfo(pass.Info, call)
}

func calleeFuncInfo(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// ioWriter is the io.Writer interface, constructed once so the analyzer
// does not depend on the inspected package importing io.
var ioWriter = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig),
	}, nil)
	iface.Complete()
	return iface
}()

func implementsWriter(t types.Type) bool {
	if types.Implements(t, ioWriter) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriter)
	}
	return false
}
