// Package fixable carries findings whose suggested fixes shvet -fix
// applies; the .golden files beside each source are the expected
// post-fix contents.
package fixable

import (
	"net/http"
)

// Watch polls url once and reports the status code. It leaks its
// response body on every success path; the fix defers the close right
// after the error check.
func Watch(client *http.Client, url string) (int, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}
