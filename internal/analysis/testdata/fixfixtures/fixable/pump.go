// This file holds the timer fix: a drain goroutine whose ticker is
// never stopped gets a deferred Stop.
package fixable

import "time"

// Pump drains its ticker forever.
type Pump struct {
	d time.Duration
	n int
}

// Start spins the drain loop.
func (p *Pump) Start() {
	go func() {
		t := time.NewTicker(p.d)
		for {
			<-t.C
			p.n++
		}
	}()
}
