// This file holds the context fixes: a skipped cancel on an early
// return, a discarded CancelFunc, and a suppressed finding whose fix
// must be refused.
package fixable

import (
	"context"
	"errors"
	"time"
)

var errStale = errors.New("stale")

// Refresh cancels only on the happy path; the fix defers the cancel at
// the acquisition.
func Refresh(stale bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if stale {
		return errStale
	}
	<-ctx.Done()
	cancel()
	return nil
}

// Deadline discards the CancelFunc; the fix names and defers it.
func Deadline(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Second)
	return ctx
}

// Hold keeps its context alive until the deadline on purpose; the
// directive records that, and -fix must leave the file alone.
func Hold(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Minute) //shvet:ignore cancel-leak the deadline itself is the cleanup here
	return ctx
}
