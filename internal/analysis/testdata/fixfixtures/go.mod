module fixfixtures

go 1.22
