// Package synccopy exercises the sync-copy analyzer: sync primitives in
// by-value signatures are findings — directly, or embedded in structs and
// arrays; pointers and lock-free structs are near-misses.
package synccopy

import "sync"

// Guarded embeds a mutex by value, so copying Guarded copies the lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Plain carries no locks and may be copied freely.
type Plain struct {
	n int
}

func BadParam(mu sync.Mutex) { // want sync-copy
	mu.Lock()
}

func BadStructParam(g Guarded) { // want sync-copy
	_ = g.n
}

func BadResult() sync.WaitGroup { // want sync-copy
	var wg sync.WaitGroup
	return wg
}

func BadArrayParam(gs [2]Guarded) { // want sync-copy
	_ = gs[0].n
}

func (g Guarded) BadValueReceiver() int { // want sync-copy
	return g.n
}

func GoodPointer(mu *sync.Mutex, g *Guarded) {
	mu.Lock()
	defer mu.Unlock()
	g.n++
}

func (g *Guarded) GoodPointerReceiver() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func GoodPlain(p Plain, gs []Guarded) int {
	return p.n + len(gs)
}
