// Package synccopy exercises the sync-copy analyzer: sync primitives in
// by-value signatures are findings — directly, or embedded in structs and
// arrays; pointers and lock-free structs are near-misses.
package synccopy

import "sync"

// Guarded embeds a mutex by value, so copying Guarded copies the lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Plain carries no locks and may be copied freely.
type Plain struct {
	n int
}

// BadParam copies a bare mutex in.
func BadParam(mu sync.Mutex) { // want sync-copy
	mu.Lock() // want lock-balance
}

// BadStructParam copies a lock-bearing struct in.
func BadStructParam(g Guarded) { // want sync-copy
	_ = g.n
}

// BadResult copies a WaitGroup out.
func BadResult() sync.WaitGroup { // want sync-copy
	var wg sync.WaitGroup
	return wg
}

// BadArrayParam copies locks buried in an array.
func BadArrayParam(gs [2]Guarded) { // want sync-copy
	_ = gs[0].n
}

// BadValueReceiver copies the lock through its value receiver.
func (g Guarded) BadValueReceiver() int { // want sync-copy
	return g.n
}

// GoodPointer shares the locks behind pointers: no findings.
func GoodPointer(mu *sync.Mutex, g *Guarded) {
	mu.Lock()
	defer mu.Unlock()
	g.n++
}

// GoodPointerReceiver shares the lock through a pointer receiver.
func (g *Guarded) GoodPointerReceiver() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// GoodPlain takes a lock-free struct and a slice of lock-bearers: fine.
func GoodPlain(p Plain, gs []Guarded) int {
	return p.n + len(gs)
}
