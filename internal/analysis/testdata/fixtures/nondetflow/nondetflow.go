// Package nondetflow exercises the nondet-flow analyzer: nondeterminism
// sources that are transitively reachable from train/predict/experiment
// entry points are findings, reported at the source call site; the same
// sources in unreached helpers stay silent.
package nondetflow

import (
	"math/rand"
	"time"
)

// PredictJittered is an entry point; it reaches the clock two calls down.
func PredictJittered(x float64) float64 {
	return x + stamp()
}

func stamp() float64 {
	return clock()
}

func clock() float64 {
	return float64(time.Now().UnixNano()) // want nondet-flow
}

// TrainSampled is an entry point drawing from the global rand source.
func TrainSampled(n int) int {
	return sample(n)
}

func sample(n int) int {
	return rand.Intn(n) // want nondet-flow global-rand
}

// Model is the receiver for the method-entry case.
type Model struct{ w float64 }

// Fit is an entry-point method; it times itself with the real clock.
func (m *Model) Fit() float64 {
	start := time.Now() // want nondet-flow
	m.w = 1
	return tick(start)
}

func tick(start time.Time) float64 {
	return time.Since(start).Seconds() // want nondet-flow
}

// TableDump is an experiment entry leaking map order into its output.
func TableDump(counts map[string]int) []string {
	var out []string
	for k := range counts {
		out = append(out, k) // want map-order nondet-flow
	}
	return out
}

// Quiet touches the clock too, but nothing reachable from an entry point
// calls it, so nondet-flow stays silent about it.
func Quiet() time.Time {
	return time.Now()
}
