// Package lockbalance exercises the lock-balance analyzer: early returns
// and fall-through paths that leave a mutex locked, and blocking
// operations under a held lock, are findings; balanced and deferred
// unlocks are near-misses.
package lockbalance

import (
	"sync"
	"time"
)

// Counter is the mutex-guarded fixture type.
type Counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
}

// LeakOnError forgets the unlock on the error path.
func (c *Counter) LeakOnError(fail bool) int {
	c.mu.Lock()
	if fail {
		return -1 // want lock-balance
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// NeverUnlocked locks and falls off the end of the function.
func (c *Counter) NeverUnlocked() {
	c.mu.Lock() // want lock-balance
	c.n++
}

// SleepUnderLock holds the lock across a sleep.
func (c *Counter) SleepUnderLock() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want lock-balance
	c.mu.Unlock()
}

// SendUnderLock sends on a channel while holding the lock.
func (c *Counter) SendUnderLock() {
	c.mu.Lock()
	c.ch <- c.n // want lock-balance
	c.mu.Unlock()
}

// LeakRead forgets the read unlock on the early return.
func (c *Counter) LeakRead(fail bool) int {
	c.rw.RLock()
	if fail {
		return -1 // want lock-balance
	}
	n := c.n
	c.rw.RUnlock()
	return n
}

// GoodEarlyReturn unlocks on every path: no finding.
func (c *Counter) GoodEarlyReturn(fail bool) int {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// GoodDeferred relies on the deferred unlock: no finding.
func (c *Counter) GoodDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// GoodSelectDefault polls without blocking under the lock: no finding.
func (c *Counter) GoodSelectDefault() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-c.ch:
		return v
	default:
		return c.n
	}
}

// GoodAfterUnlock blocks only after releasing the lock: no finding.
func (c *Counter) GoodAfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	time.Sleep(time.Millisecond)
}
