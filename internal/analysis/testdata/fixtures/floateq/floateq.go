// Package floateq exercises the float-eq analyzer: exact float equality
// is a finding; zero-constant comparisons, the NaN self-compare idiom,
// integer comparisons and test files are near-misses.
package floateq

// Bad compares computed floats exactly.
func Bad(a, b float64) bool {
	if a == b { // want float-eq
		return true
	}
	return a != b+1 // want float-eq
}

// BadFloat32 fires on float32 too.
func BadFloat32(a, b float32) bool {
	return a == b // want float-eq
}

// GoodZero compares against the exactly-representable zero sentinel.
func GoodZero(a float64) bool {
	return a == 0 || a != 0.0
}

// GoodNaN is the standard self-comparison NaN test.
func GoodNaN(a float64) bool {
	return a != a
}

// GoodInt is not a float comparison at all.
func GoodInt(a, b int) bool {
	return a == b
}
