package floateq

import "testing"

// Exact float comparison in a _test.go file is exempt by design: tests
// assert exact expected values on purpose.
func TestExactCompareAllowed(t *testing.T) {
	a, b := 0.5, 0.25+0.25
	if a != b {
		t.Fatal("expected exact equality")
	}
}
