// Package suppress exercises //shvet:ignore handling: end-of-line and
// standalone directives silence the named analyzer with a reason;
// directives without a reason, or naming a different analyzer, do not.
package suppress

import "math/rand"

// SuppressedEndOfLine is silenced by an end-of-line directive.
func SuppressedEndOfLine() float64 {
	return rand.Float64() //shvet:ignore global-rand fixture: demonstrating end-of-line suppression
}

// SuppressedStandalone is silenced by a directive on its own line.
func SuppressedStandalone() float64 {
	//shvet:ignore global-rand fixture: demonstrating standalone suppression
	return rand.Float64()
}

// SuppressedAll uses the "all" analyzer list.
func SuppressedAll(a, b float64) bool {
	return a == b //shvet:ignore all fixture: demonstrating the all form
}

// WrongAnalyzer names an analyzer that did not fire on its line, so the
// real finding survives.
func WrongAnalyzer() float64 {
	return rand.Float64() //shvet:ignore float-eq fixture: wrong analyzer, must not suppress
	// want-above global-rand
}

// MissingReason is malformed (no reason given), so it must not suppress.
func MissingReason() float64 {
	return rand.Float64() //shvet:ignore global-rand
	// want-above global-rand
}
