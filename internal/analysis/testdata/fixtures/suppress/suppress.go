// Package suppress exercises //shvet:ignore handling: end-of-line and
// standalone directives silence the named analyzer with a reason;
// directives without a reason, or naming a different analyzer, do not.
package suppress

import "math/rand"

// SuppressedEndOfLine is silenced by an end-of-line directive.
func SuppressedEndOfLine() float64 {
	return rand.Float64() //shvet:ignore global-rand fixture: demonstrating end-of-line suppression
}

// SuppressedStandalone is silenced by a directive on its own line.
func SuppressedStandalone() float64 {
	//shvet:ignore global-rand fixture: demonstrating standalone suppression
	return rand.Float64()
}

// SuppressedAll uses the "all" analyzer list.
func SuppressedAll(a, b float64) bool {
	return a == b //shvet:ignore all fixture: demonstrating the all form
}

// SuppressedSpacedList is silenced by a multi-analyzer list written with
// a space after the comma.
func SuppressedSpacedList(a, b float64) bool {
	return a == b //shvet:ignore float-eq, global-rand fixture: spaced analyzer list covers both names
}

// SuppressedSpacedRand is silenced by a list whose comma floats between
// the names.
func SuppressedSpacedRand() float64 {
	//shvet:ignore global-rand , float-eq fixture: comma split across fields still parses
	return rand.Float64()
}

// WrongAnalyzer names an analyzer that did not fire on its line, so the
// real finding survives.
func WrongAnalyzer() float64 {
	return rand.Float64() //shvet:ignore float-eq fixture: wrong analyzer, must not suppress
	// want-above global-rand
}

// MissingReason is malformed (no reason given), so it must not suppress
// and the directive itself is a finding.
func MissingReason() float64 {
	return rand.Float64() //shvet:ignore global-rand
	// want-above global-rand directive
}

// UnknownAnalyzer names a nonexistent analyzer; the directive errors and
// the real finding survives.
func UnknownAnalyzer() float64 {
	return rand.Float64() //shvet:ignore no-such-pass fixture: typos must not silently match nothing
	// want-above global-rand directive
}
