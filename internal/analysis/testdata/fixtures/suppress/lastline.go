package suppress

// LastLine exists so this file can end with a dangling standalone
// directive, which applies to no line and must therefore be a finding.
func LastLine() int {
	return 1
}

//shvet:ignore global-rand fixture: dangling directive applies to nothing // want directive
