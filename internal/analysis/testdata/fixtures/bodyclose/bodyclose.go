// Package bodyclose exercises the body-close analyzer: responses whose
// Body is never closed, closed only on the happy path, discarded
// outright, or handed to a helper that provably never closes them are
// findings; deferred closes, closes on every path, err-branch early
// returns, ownership transfers to the caller, and helpers that do close
// are near-misses.
package bodyclose

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

var errBadStatus = errors.New("unexpected status")

// leakNever reads the status but never closes the body.
func leakNever(c *http.Client, req *http.Request) (int, error) {
	resp, err := c.Do(req) // want body-close
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// leakOnStatus closes on the happy path but leaks on the status check.
func leakOnStatus(url string) ([]byte, error) {
	resp, err := http.Get(url) // want body-close
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, errBadStatus
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// discarded drops the response; on success nobody can close it.
func discarded(c *http.Client, req *http.Request) error {
	_, err := c.Do(req) // want body-close
	return err
}

// leakViaHelper hands the response to a helper that only reads it.
func leakViaHelper(c *http.Client, req *http.Request, v any) error {
	resp, err := c.Do(req) // want body-close
	if err != nil {
		return err
	}
	return decodeInto(resp, v)
}

// decodeInto reads the response body but never closes it; the caller
// keeps the obligation.
func decodeInto(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// leakInLoop acquires per hedge attempt and closes only via defer, so
// every loser's connection stays pinned until the function returns.
func leakInLoop(c *http.Client, reqs []*http.Request) int {
	good := 0
	for _, req := range reqs {
		resp, err := c.Do(req) // want body-close
		if err != nil {
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			good++
		}
	}
	return good
}

// deferred is the canonical clean shape.
func deferred(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// everyPath closes explicitly on both paths, discarding the close error
// on the unhappy one.
func everyPath(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		_ = resp.Body.Close()
		return 0, errBadStatus
	}
	code := resp.StatusCode
	_ = resp.Body.Close()
	return code, nil
}

// closedByHelper hands the response to a helper that closes it.
func closedByHelper(c *http.Client, req *http.Request, v any) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return drainAndClose(resp, v)
}

// drainAndClose decodes and closes on behalf of its caller.
func drainAndClose(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// handoff transfers ownership to the caller.
func handoff(c *http.Client, req *http.Request) (*http.Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	return resp, nil
}
