// Package uncheckederr exercises the unchecked-err analyzer: discarded
// error results are findings; fmt calls, Builder/Buffer writes, explicit
// blank assigns and defer/go statements are near-misses.
package uncheckederr

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

// Bad drops errors from I/O calls.
func Bad(f *os.File, p []byte) {
	f.Close()           // want unchecked-err
	f.Write(p)          // want unchecked-err
	os.Remove(f.Name()) // want unchecked-err
}

// Good handles, explicitly discards, or calls exempt functions.
func Good(f *os.File, p []byte) error {
	fmt.Println("fmt is exempt by policy")
	fmt.Fprintf(os.Stderr, "also exempt\n")
	_ = f.Close() // explicit discard states intent

	var sb strings.Builder
	sb.WriteString("Builder errors are always nil")
	var buf bytes.Buffer
	buf.WriteByte('x')

	defer f.Close() // defer is exempt by design
	if _, err := f.Write(p); err != nil {
		return err
	}
	return nil
}

// GoodNoError calls something that cannot fail.
func GoodNoError(xs []int) int {
	return len(xs)
}
