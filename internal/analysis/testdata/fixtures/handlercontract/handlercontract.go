// Package handlercontract exercises the handler-contract analyzer:
// handlers that set the status twice, set it after body bytes are out,
// or feed request-sized input into the hot path without watching the
// request context are findings; single-write paths, per-iteration
// context checks, and admission-gated loops are near-misses.
package handlercontract

import (
	"fmt"
	"net/http"
)

// PredictScore is a hot-region entry the handler loops feed.
func PredictScore(rows []string) int { return len(rows) }

// Gate is a stand-in admission gate.
type Gate struct{ slots int }

// TryReserve claims one slot when available.
func (g *Gate) TryReserve() bool {
	if g.slots == 0 {
		return false
	}
	g.slots--
	return true
}

// InferGated is a hot-region entry that sheds load at the gate itself.
func InferGated(rows []string) int {
	g := &Gate{slots: 1}
	if !g.TryReserve() {
		return 0
	}
	return PredictScore(rows)
}

// doubleHeader sets the status twice on the same path.
func doubleHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
	w.WriteHeader(http.StatusOK) // want handler-contract
}

// headerAfterBody writes body bytes first, then tries to flip the
// status to an error.
func headerAfterBody(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "partial")
	w.WriteHeader(http.StatusInternalServerError) // want handler-contract
}

// sendError writes a plain-text error reply.
func sendError(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	fmt.Fprintln(w, msg)
}

// doubleViaHelper replies, then replies again through the helper.
func doubleViaHelper(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	sendError(w, http.StatusBadGateway, "late failure") // want handler-contract
}

// hotLoop feeds every query parameter into scoring without watching
// the request context.
func hotLoop(w http.ResponseWriter, r *http.Request) {
	total := 0
	for _, vs := range r.URL.Query() { // want handler-contract
		total += PredictScore(vs)
	}
	fmt.Fprintln(w, total)
}

// hotLoopChecked bails out as soon as the client goes away.
func hotLoopChecked(w http.ResponseWriter, r *http.Request) {
	total := 0
	for _, vs := range r.URL.Query() {
		if r.Context().Err() != nil {
			return
		}
		total += PredictScore(vs)
	}
	fmt.Fprintln(w, total)
}

// hotLoopGated sheds load at the admission gate before each unit of
// work.
func hotLoopGated(w http.ResponseWriter, r *http.Request) {
	g := &Gate{slots: 8}
	total := 0
	for _, vs := range r.URL.Query() {
		if !g.TryReserve() {
			break
		}
		total += PredictScore(vs)
	}
	fmt.Fprintln(w, total)
}

// hotLoopCalleeGated loops over an entry that gates internally.
func hotLoopCalleeGated(w http.ResponseWriter, r *http.Request) {
	total := 0
	for _, vs := range r.URL.Query() {
		total += InferGated(vs)
	}
	fmt.Fprintln(w, total)
}

// branchesExclusive writes exactly once on each path.
func branchesExclusive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "queued")
}
