// Package ctxflow exercises the ctx-flow analyzer: a function that
// receives a context must thread it down — replacing it with a fresh
// Background/TODO, or calling the ctx-less sibling of a ctx-aware API,
// detaches the callee from spans and deadlines.
package ctxflow

import "context"

// Process receives ctx but hands its callee a fresh Background.
func Process(ctx context.Context, n int) int {
	return step(context.Background(), n) // want ctx-flow
}

// ProcessTodo swaps the received ctx for TODO.
func ProcessTodo(ctx context.Context, n int) int {
	return step(context.TODO(), n) // want ctx-flow
}

func step(ctx context.Context, n int) int {
	return n + 1
}

// Lookup is the ctx-less variant callers should avoid once ctx is in hand.
func Lookup(key string) string {
	return key
}

// LookupCtx is the ctx-threaded sibling of Lookup.
func LookupCtx(ctx context.Context, key string) string {
	return key
}

// Resolve receives ctx but drops it by calling the ctx-less Lookup.
func Resolve(ctx context.Context, key string) string {
	return Lookup(key) // want ctx-flow
}

// Good threads its ctx all the way down: no finding.
func Good(ctx context.Context, n int) int {
	return step(ctx, n)
}

// Detached has no ctx parameter, so starting from Background is fine.
func Detached(n int) int {
	return step(context.Background(), n)
}
