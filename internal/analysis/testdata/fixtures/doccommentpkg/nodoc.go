package doccommentpkg // want doc-comment

// Exported is documented; only the missing package comment is flagged.
func Exported() {}
