// Package doccomment exercises the doc-comment analyzer: exported
// package-level identifiers need doc comments; group comments, end-of-line
// spec comments, unexported identifiers and methods on unexported
// receivers are all fine. The undocumented type/const/var cases are spread
// over two lines because a want marker trailing a one-line spec would
// itself count as the spec's end-of-line comment.
package doccomment

func Bad() {} // want doc-comment

// Good has a doc comment.
func Good() {}

func internal() {} // unexported: no doc required

type BadType struct { // want doc-comment
	X int
}

// GoodType has a doc comment.
type GoodType struct{}

func (GoodType) BadMethod() {} // want doc-comment

// Doc returns a constant; documented methods are fine.
func (GoodType) Doc() int { return 1 }

type helper struct{}

// String is exported by name, but helper is unexported: not flagged.
func (helper) String() string { return "" }

func (helper) Undoc() {} // unexported receiver: not flagged even without doc

const BadConst = 10 + // want doc-comment
	1

// GoodConst is documented.
const GoodConst = 2

// A group comment documents every spec in the group.
const (
	GroupedA = 1
	GroupedB = 2
)

var BadVar = 3 + // want doc-comment
	4

// GoodVar is documented.
var GoodVar = 5

var (
	SpecDocOK = 6 // end-of-line spec comments count

	BadGroupedVar = 7 + // want doc-comment
		8
)

func Suppressed() {} //shvet:ignore doc-comment suppression works for doc findings too

// use keeps the unexported helpers referenced.
func use() {
	internal()
	helper{}.Undoc()
}

// init wires use in so it is itself used.
func init() { use() }
