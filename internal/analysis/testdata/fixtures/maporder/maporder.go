// Package maporder exercises the map-order analyzer: map iteration
// leaking into appends, writers and fmt output is a finding; the
// collect-keys-then-sort idiom and slice iteration are near-misses.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// BadAppend grows a slice in map order and never sorts it.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want map-order
	}
	return keys
}

// BadPrint emits rows in map order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want map-order
	}
}

// BadWrite streams map entries into an io.Writer implementation.
func BadWrite(m map[string]float64) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want map-order
	}
	return b.String()
}

// GoodSortedAfter is the canonical fix: collect, sort, then use.
func GoodSortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodSliceSortAfter sorts with sort.Slice instead of sort.Strings.
func GoodSliceSortAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// GoodAggregate reduces over a map without exposing order.
func GoodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodSliceRange ranges a slice, not a map.
func GoodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
