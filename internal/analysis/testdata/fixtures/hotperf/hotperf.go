// Package hotperf exercises the four performance-cost analyzers
// (alloc-in-loop, string-churn, defer-in-loop, boxing) and, above all,
// their hot-region rooting: the same flagged patterns appear (a) reachable
// from the exported PredictBatch entry point, (b) in code only reachable
// from a test helper, and (c) under an explicit //shvet:hotpath root.
// Exactly (a) and (c) must report.
package hotperf

import (
	"fmt"
	"os"
)

// PredictBatch is a hot entry point by prefix; its callee carries the
// flagged patterns.
func PredictBatch(rows [][]float64) []float64 {
	var out []float64
	for _, row := range rows {
		out = append(out, scoreRow(row)) // want alloc-in-loop
	}
	return out
}

// scoreRow is hot transitively (PredictBatch -> scoreRow).
func scoreRow(row []float64) float64 {
	total := 0.0
	for i, v := range row {
		buf := make([]float64, 4) // want alloc-in-loop
		buf[0] = v
		weights := []float64{0.5, 0.25} // want alloc-in-loop
		total += buf[0]*weights[0] + float64(i)
	}
	return total
}

// label is hot via PredictBatch's sibling InferLabels below; it churns
// strings and boxes scalars per iteration.
func label(vals []float64) string {
	s := ""
	for i, v := range vals {
		s += fmt.Sprintf("%d=%v;", i, v) // want string-churn string-churn boxing boxing
	}
	return s
}

// InferLabels is a hot entry point by prefix.
func InferLabels(vals []float64) string {
	return label(vals)
}

// ExtractBytes round-trips every value through []byte inside the loop.
func ExtractBytes(vals []string) int {
	n := 0
	for _, v := range vals {
		b := []byte(v) // want string-churn
		n += len(b)
		v2 := string(b) // want string-churn
		n += len(v2)
	}
	return n
}

// FeaturizeFiles leaks deferred closes until the whole batch is done.
func FeaturizeFiles(paths []string) int {
	total := 0
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		defer f.Close() // want defer-in-loop
		total++
	}
	return total
}

// refresh is unexported and statically unreachable: only the pool's
// worker loop calls it through a channel the graph cannot see. The
// directive below roots it into the hot region anyway.
//
//shvet:hotpath worker-pool body; invoked per column via the task channel
func refresh(cols [][]string) int {
	n := 0
	for _, col := range cols {
		seen := map[string]bool{} // want alloc-in-loop
		for _, v := range col {
			seen[v] = true
		}
		n += len(seen)
	}
	return n
}

// coldMirror has every flagged pattern but is reachable only from a test
// helper (see hotperf_test.go), so the perf analyzers must stay silent:
// test-only reachability is not hot.
func coldMirror(vals []string) string {
	s := ""
	for i, v := range vals {
		b := []byte(v)
		buf := make([]byte, len(b))
		copy(buf, b)
		s += fmt.Sprintf("%d=%s;", i, string(buf))
	}
	return s
}

// hotNames documents the dangling-directive error: a //shvet:hotpath
// that attaches to a var instead of a function roots nothing and must be
// reported rather than silently ignored.
//
//shvet:hotpath dangling-on-purpose: vars cannot be hot roots
// want-above directive
var hotNames = []string{"score", "label"}

// PredictScores shows the silent shapes: capacity declared up front, and
// allocation hoisted out of the loop. Hot via the Predict prefix.
func PredictScores(rows [][]float64) []float64 {
	out := make([]float64, 0, len(rows))
	buf := make([]float64, 8)
	for _, row := range rows {
		buf[0] = row[0]
		out = append(out, buf[0])
	}
	return out
}
