package hotperf

import (
	"fmt"
	"os"
)

// InferQuiet carries one deliberately silenced finding per perf analyzer,
// exercising the //shvet:ignore round-trip for each new analyzer name.
// Every directive reason starts with "quiet:" so the test can assert the
// reason text survives the trip.
func InferQuiet(vals []float64, paths []string) int {
	n := 0
	for i, v := range vals {
		buf := make([]byte, 16) //shvet:ignore alloc-in-loop quiet: bounded 16-byte scratch, measured harmless
		n += len(buf)
		s := fmt.Sprintf("%v", v) //shvet:ignore string-churn,boxing quiet: debug labelling kept for parity with the paper's output
		n += len(s) + i
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		defer f.Close() //shvet:ignore defer-in-loop quiet: path list is bounded by the flag parser
		n++
	}
	return n
}
