package hotperf

// driveColdMirror is the only caller of coldMirror. Test files are
// excluded from the call graph, so coldMirror stays out of the hot
// region and none of its patterns report.
func driveColdMirror() string {
	return coldMirror([]string{"a", "b"})
}
