// Package timerstop exercises the timer-stop analyzer: tickers and
// timers in long-lived goroutines that are never stopped and whose
// loops have no external exit are findings, as is time.After allocating
// a fresh timer per loop iteration; deferred Stops, stop-channel exits,
// and tickers parked on the struct for the owner to stop are
// near-misses.
package timerstop

import "time"

// Pump is a stand-in for the fleet's background drainers and probers.
type Pump struct {
	d    time.Duration
	n    int
	t    *time.Ticker
	stop chan struct{}
}

// StartLeaky spins a goroutine whose ticker is never stopped and whose
// loop has no external exit.
func (p *Pump) StartLeaky() {
	go func() {
		t := time.NewTicker(p.d) // want timer-stop
		for {
			<-t.C
			p.n++
		}
	}()
}

// StartNamed spawns the named drain loop.
func (p *Pump) StartNamed() {
	go p.run()
}

// run resets its timer each round but never stops it.
func (p *Pump) run() {
	t := time.NewTimer(p.d) // want timer-stop
	for {
		<-t.C
		p.n++
		t.Reset(p.d)
	}
}

// StartAfterLoop allocates a fresh timer every round through time.After.
func (p *Pump) StartAfterLoop() {
	go func() {
		for {
			select {
			case <-time.After(p.d): // want timer-stop
				p.n++
			case <-p.stop:
				return
			}
		}
	}()
}

// StartStopped defers the stop; the ticker dies with the goroutine.
func (p *Pump) StartStopped() {
	go func() {
		t := time.NewTicker(p.d)
		defer t.Stop()
		for {
			<-t.C
			p.n++
		}
	}()
}

// StartWithExit stops the ticker and drains until told to stop.
func (p *Pump) StartWithExit() {
	go func() {
		t := time.NewTicker(p.d)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.n++
			case <-p.stop:
				return
			}
		}
	}()
}

// StartExternalExit never stops the ticker itself, but the goroutine
// can be shut down through the stop channel, and the ticker is
// collected when it exits.
func (p *Pump) StartExternalExit() {
	go func() {
		t := time.NewTicker(p.d)
		for {
			select {
			case <-t.C:
				p.n++
			case <-p.stop:
				return
			}
		}
	}()
}

// StartShared parks the ticker on the struct so the owner can stop it.
func (p *Pump) StartShared() {
	p.t = time.NewTicker(p.d)
	go func() {
		for range p.t.C {
			p.n++
		}
	}()
}
