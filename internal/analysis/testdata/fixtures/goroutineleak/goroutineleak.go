// Package goroutineleak exercises the goroutine-leak analyzer: spawned
// loops with no stop signal are findings; loops bounded by a channel,
// context, or WaitGroup — in the body or in the spawned function's own
// parameters — are near-misses, as are one-shot goroutines.
package goroutineleak

import (
	"context"
	"sync"
	"time"
)

// Poller owns the fixture goroutines.
type Poller struct {
	ch chan int
}

// StartPoller spawns an anonymous loop nothing can stop.
func (p *Poller) StartPoller() {
	go func() { // want goroutine-leak
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// StartSpinner spawns a named loop nothing can stop.
func (p *Poller) StartSpinner() {
	go spin() // want goroutine-leak
}

func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

// StartWorker ranges over a channel: closing it ends the goroutine.
func (p *Poller) StartWorker() {
	go func() {
		for v := range p.ch {
			_ = v
		}
	}()
}

// StartWithCtx loops under a context and exits on cancellation.
func (p *Poller) StartWithCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-p.ch:
				_ = v
			}
		}
	}()
}

// StartStoppable passes the stop signal through the spawned function's
// parameters, so the caller holds a handle by construction.
func StartStoppable(stop chan struct{}, wg *sync.WaitGroup) {
	go work(stop, wg)
}

func work(stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
	}
}

// StartOnce runs a one-shot goroutine; no loop, no finding.
func StartOnce(f func()) {
	go f()
}
