// Package cancelleak exercises the cancel-leak analyzer: CancelFuncs
// that are discarded, skipped on a path out of scope, shadowed by an
// inner leaking acquisition, or deferred inside a loop are findings;
// deferred cancels, cancels called on every path, and cancel funcs that
// escape to a caller or closure are near-misses.
package cancelleak

import (
	"context"
	"errors"
	"time"
)

var errBoom = errors.New("boom")

func use(ctx context.Context) bool { return ctx.Err() == nil }

// discard drops the CancelFunc outright; nothing can ever cancel early.
func discard() context.Context {
	ctx, _ := context.WithTimeout(context.Background(), time.Second) // want cancel-leak
	return ctx
}

// earlyReturn cancels on the happy path but not on the error path.
func earlyReturn(fail bool) error {
	ctx, cancel := context.WithCancel(context.Background()) // want cancel-leak
	if fail {
		return errBoom
	}
	use(ctx)
	cancel()
	return nil
}

// fallsOffEnd cancels only inside one branch and lets the other fall off
// the end of the scope.
func fallsOffEnd(fail bool) {
	ctx, cancel := context.WithCancel(context.Background()) // want cancel-leak
	if fail {
		cancel()
		return
	}
	use(ctx)
}

// shadowed defers the outer cancel, then shadows it with an inner
// acquisition that leaks on the early return.
func shadowed(fail bool) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if fail {
		inner, cancel := context.WithCancel(ctx) // want cancel-leak
		if use(inner) {
			cancel()
		}
		return
	}
	use(ctx)
}

// loopDeferred defers each iteration's cancel, so every context lives
// until function exit instead of its own iteration.
func loopDeferred(keys []string) {
	for range keys {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want cancel-leak
		defer cancel()
		use(ctx)
	}
}

// loopSkipped cancels only on one path of each iteration.
func loopSkipped(keys []string) {
	for _, k := range keys {
		ctx, cancel := context.WithCancel(context.Background()) // want cancel-leak
		if k != "" {
			cancel()
		}
		use(ctx)
	}
}

// deferred is the canonical clean shape.
func deferred() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	use(ctx)
}

// everyPath cancels explicitly on both paths; no finding.
func everyPath(fail bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if fail {
		cancel()
		return errBoom
	}
	use(ctx)
	cancel()
	return nil
}

// handoff returns the CancelFunc; the caller owns the obligation.
func handoff() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	return ctx, cancel
}

// closureCancel hands the cancel to a goroutine; escaped, not tracked.
func closureCancel(done chan struct{}) context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-done
		cancel()
	}()
	return ctx
}

// preDeclared binds an outer variable inside a branch and defers there;
// the walker follows the assignment form too.
func preDeclared(timeout time.Duration) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	use(ctx)
}
