// Package globalrand exercises the global-rand analyzer: top-level
// math/rand functions are findings, constructors and *rand.Rand methods
// are near-misses.
package globalrand

import "math/rand"

// Bad draws from the process-global source in several forms.
func Bad(n int) {
	_ = rand.Float64()               // want global-rand
	_ = rand.Intn(n)                 // want global-rand
	rand.Shuffle(n, func(i, j int) { // want global-rand
	})
	_ = rand.Perm(n) // want global-rand
}

// BadReference passes a global-source function as a value.
func BadReference() func() float64 {
	return rand.Float64 // want global-rand
}

// Good uses an explicitly seeded generator: constructors and methods on
// *rand.Rand must not fire.
func Good(seed int64, n int) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) {})
	_ = rng.Intn(n)
	return rng.Float64()
}
