package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the resource-lifecycle walker shared by cancel-leak,
// body-close, and timer-stop. A "resource" is a variable bound by an
// acquisition call (context.WithCancel, http.Client.Do, time.NewTicker)
// that carries a release obligation (cancel(), resp.Body.Close(),
// t.Stop()). The walker answers: is the release guaranteed on every
// path from the acquisition to the end of the variable's scope?
//
// The analysis is deliberately conservative in the direction of no
// false positives: any use of the resource the walker does not fully
// understand — passed whole to a call, returned, stored, captured by a
// closure, address taken — is an escape, and an escaped resource is
// assumed managed elsewhere. body-close sharpens the call-argument case
// interprocedurally (see bodyclose.go): a callee in the module graph
// that provably never closes the body does not discharge the
// obligation.

// acquisition is one tracked resource binding inside one function scope.
type acquisition struct {
	stmt   ast.Stmt      // the assignment statement binding the resource
	call   *ast.CallExpr // the acquiring call
	obj    types.Object  // the resource variable; nil when assigned to _
	name   string        // source name of the resource variable ("_" when blank)
	errObj types.Object  // paired error variable, when the call returns (res, err)
	scope  ast.Node      // enclosing function body: *ast.BlockStmt of the decl or a FuncLit
	stack  []ast.Node    // walkWithStack snapshot at the acquisition statement
}

// escapeKind classifies how a resource value left the walker's sight.
type escapeKind int

const (
	escNone    escapeKind = iota
	escCallArg            // passed whole as a call argument
	escOther              // returned, stored, captured, address taken, unknown use
)

// resRules parameterizes the walker per analyzer.
type resRules struct {
	// isRelease reports whether call releases the resource held in obj
	// (e.g. cancel(), resp.Body.Close(), t.Stop()).
	isRelease func(info *types.Info, obj types.Object, call *ast.CallExpr) bool
	// isBenignUse reports whether this identifier use of the resource is
	// neither a release nor an escape (field reads like resp.StatusCode,
	// nil checks, channel reads like t.C). The ident is the resource
	// variable itself; path is its ancestor chain, innermost first.
	isBenignUse func(info *types.Info, ident *ast.Ident, path []ast.Node) bool
	// classifyCallArg, when non-nil, refines escCallArg: return escNone
	// to keep tracking (the callee provably does not discharge the
	// obligation), escOther to treat the resource as managed elsewhere.
	classifyCallArg func(info *types.Info, call *ast.CallExpr, argIdx int) escapeKind
}

// resState is the per-path walker state.
type resState struct {
	released bool
	byDefer  bool // release was registered with defer
}

// resOutcome is what the walker concluded about one acquisition.
type resOutcome struct {
	escaped      bool      // resource escaped: no obligation locally
	leakPos      token.Pos // first position proving a leaking path; NoPos when none
	leakAtReturn bool      // leakPos is a return statement (vs scope end / acquisition)
	loopDefer    bool      // acquired per loop iteration but released only via defer
	anyRelease   bool      // some release call exists in the scope (partial coverage)
}

// resTracker runs the two-phase analysis for one acquisition.
type resTracker struct {
	info  *types.Info
	rules resRules
	acq   *acquisition
	out   resOutcome
}

// analyzeAcquisition runs escape scanning then the path walk.
func analyzeAcquisition(info *types.Info, rules resRules, acq *acquisition) resOutcome {
	t := &resTracker{info: info, rules: rules, acq: acq}
	// A resource bound to a variable whose scope outlives the enclosing
	// function scope (a captured outer variable, a package-level var, a
	// named parameter) can be released from code this walker never sees.
	if s := scopeOf(acq.obj); s != nil && s.End() > t.acq.scope.End() {
		t.out.escaped = true
		return t.out
	}
	if t.scanEscapes() {
		t.out.escaped = true
		return t.out
	}
	t.walkContinuations()
	return t.out
}

// scanEscapes visits every use of the resource variable inside its
// function scope and classifies it. Returns true when the resource
// escapes (obligation discharged from this walker's point of view).
func (t *resTracker) scanEscapes() bool {
	obj := t.acq.obj
	if obj == nil {
		return false // blank binding: nothing to use, nothing to escape
	}
	escaped := false
	walkWithStack(t.acq.scope, func(n ast.Node, stack []ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || t.info.Uses[id] != obj {
			return true
		}
		// Ancestor chain innermost-first, excluding the ident itself.
		path := make([]ast.Node, 0, len(stack)-1)
		for i := len(stack) - 2; i >= 0; i-- {
			path = append(path, stack[i])
		}
		switch t.classifyUse(id, path) {
		case escNone:
		case escCallArg, escOther:
			escaped = true
		}
		return true
	})
	return escaped
}

// classifyUse classifies one identifier use of the resource variable.
func (t *resTracker) classifyUse(id *ast.Ident, path []ast.Node) escapeKind {
	// A use inside a nested function literal is a closure capture; the
	// closure may release at any time (defer func() { cancel() }() is a
	// common idiom), so the obligation is considered managed.
	for _, anc := range path {
		if anc == t.acq.scope {
			break
		}
		if _, ok := anc.(*ast.FuncLit); ok {
			return escOther
		}
	}
	if len(path) == 0 {
		return escOther
	}
	// Release call: rules decide (covers cancel() and obj.Sel(...) forms).
	if call := enclosingReleaseCall(id, path); call != nil && t.rules.isRelease(t.info, t.acq.obj, call) {
		t.out.anyRelease = true
		return escNone
	}
	if t.rules.isBenignUse != nil && t.rules.isBenignUse(t.info, id, path) {
		return escNone
	}
	switch p := path[0].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(id) {
				return escNone // (re)binding, including the acquisition itself
			}
		}
		return escOther // resource on the RHS: aliased away
	case *ast.ValueSpec:
		return escOther
	case *ast.BinaryExpr:
		// nil comparison: if resp != nil { ... }
		if p.Op == token.EQL || p.Op == token.NEQ {
			return escNone
		}
		return escOther
	case *ast.CallExpr:
		for i, arg := range p.Args {
			if arg == ast.Expr(id) {
				if t.rules.classifyCallArg != nil {
					return t.rules.classifyCallArg(t.info, p, i)
				}
				return escCallArg
			}
		}
		return escOther
	}
	return escOther
}

// enclosingReleaseCall returns the call expression this ident
// participates in as (part of) the callee — cancel() where id is the
// Fun, or t.Stop() / resp.Body.Close() where id is the root of the
// selector chain — or nil.
func enclosingReleaseCall(id *ast.Ident, path []ast.Node) *ast.CallExpr {
	// Climb selector chains: id, id.Body, id.Body.Close ...
	var cur ast.Expr = id
	for _, anc := range path {
		switch v := anc.(type) {
		case *ast.SelectorExpr:
			if v.X != cur {
				return nil
			}
			cur = v
		case *ast.CallExpr:
			if v.Fun == cur {
				return v
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// contLevel is one segment of the continuation: the statements that run
// after the acquisition (or after the enclosing statement) in one
// enclosing block, plus whether completing this segment ends a loop
// iteration.
type contLevel struct {
	stmts    []ast.Stmt
	endsLoop bool
}

// walkContinuations runs the path walk from the acquisition statement to
// the end of the resource variable's lexical scope: first the rest of
// the acquisition's own block, then the rest of each enclosing block in
// turn, stopping at the variable's scope end or at a loop-iteration
// boundary.
func (t *resTracker) walkContinuations() {
	levels, ok := t.continuationLevels()
	if !ok {
		// Acquisition in a position the walker does not model (e.g. an
		// if-statement init). Treat as escaped: silence over noise.
		t.out.escaped = true
		return
	}

	st := resState{}
	for _, lv := range levels {
		if !st.released {
			var falls bool
			st, falls = t.walkStmts(lv.stmts, st)
			if !falls {
				return // leaks at returns were recorded in the walk
			}
		}
		if lv.endsLoop {
			// Leaving a loop iteration. A per-iteration resource must be
			// released before the iteration ends; defer only runs at
			// function exit, so a defer-release accumulates across
			// iterations.
			switch {
			case st.released && st.byDefer:
				t.out.loopDefer = true
			case !st.released:
				t.leakAt(t.acq.stmt.Pos(), false)
			}
			return
		}
		if st.released {
			return
		}
	}
	if !st.released {
		t.leakAt(t.acq.stmt.Pos(), false)
	}
}

// continuationLevels builds the walk segments from the acquisition's
// ancestor stack. ok is false when the acquisition sits in a position
// the walker does not model.
func (t *resTracker) continuationLevels() ([]contLevel, bool) {
	var levels []contLevel
	objScope := scopeOf(t.acq.obj)
	stack := t.acq.stack
	idx := len(stack) - 1
	for idx >= 0 && stack[idx] != ast.Node(t.acq.stmt) {
		idx--
	}
	if idx <= 0 {
		return nil, false
	}
	child := stack[idx]
	for i := idx - 1; i >= 0; i-- {
		parent := stack[i]
		switch p := parent.(type) {
		case *ast.BlockStmt:
			if inScope(objScope, p) {
				levels = append(levels, contLevel{stmts: stmtsAfter(p.List, child)})
			}
			if parent == t.acq.scope {
				return levels, true
			}
		case *ast.CaseClause:
			levels = append(levels, contLevel{stmts: stmtsAfter(p.Body, child)})
		case *ast.CommClause:
			levels = append(levels, contLevel{stmts: stmtsAfter(p.Body, child)})
		case *ast.ForStmt:
			if child != ast.Node(p.Body) {
				return nil, false // acquisition in init/cond/post: unmodeled
			}
			if len(levels) > 0 {
				levels[len(levels)-1].endsLoop = true
			}
		case *ast.RangeStmt:
			if child != ast.Node(p.Body) {
				return nil, false
			}
			if len(levels) > 0 {
				levels[len(levels)-1].endsLoop = true
			}
		case *ast.FuncLit:
			return levels, true // scope boundary
		case *ast.IfStmt:
			if child != ast.Node(p.Body) && child != p.Else {
				return nil, false // acquisition in an if init: unmodeled
			}
		case *ast.SwitchStmt:
			if p.Init == child {
				return nil, false
			}
		case *ast.TypeSwitchStmt:
			if p.Init == child {
				return nil, false
			}
		case *ast.SelectStmt, *ast.LabeledStmt:
			// Structural parents contribute no statements of their own.
		default:
			return nil, false
		}
		child = parent
	}
	return levels, true
}

// leakAt records the first leaking position.
func (t *resTracker) leakAt(pos token.Pos, atReturn bool) {
	if t.out.leakPos == token.NoPos {
		t.out.leakPos = pos
		t.out.leakAtReturn = atReturn
	}
}

// scopeOf returns the declaring scope of obj, or nil.
func scopeOf(obj types.Object) *types.Scope {
	if obj == nil {
		return nil
	}
	return obj.Parent()
}

// inScope reports whether the block lies within the variable's scope —
// i.e. whether a release could still legally appear there.
func inScope(s *types.Scope, blk *ast.BlockStmt) bool {
	if s == nil {
		return true
	}
	return blk.Pos() >= s.Pos() && blk.End() <= s.End()
}

// stmtsAfter returns the statements of list strictly after child.
func stmtsAfter(list []ast.Stmt, child ast.Node) []ast.Stmt {
	for i, s := range list {
		if ast.Node(s) == child {
			return list[i+1:]
		}
	}
	return nil
}

// walkStmts walks a statement list with the current path state and
// reports whether control falls off the end.
func (t *resTracker) walkStmts(stmts []ast.Stmt, st resState) (resState, bool) {
	for _, s := range stmts {
		var falls bool
		st, falls = t.walkStmt(s, st)
		if !falls {
			return st, false
		}
	}
	return st, true
}

func (t *resTracker) walkStmt(s ast.Stmt, st resState) (resState, bool) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if t.rules.isRelease(t.info, t.acq.obj, call) {
				return resState{released: true}, true
			}
			if isTerminalCall(t.info, call) {
				return st, false
			}
		}
		return st, true
	case *ast.DeferStmt:
		if t.rules.isRelease(t.info, t.acq.obj, v.Call) {
			return resState{released: true, byDefer: true}, true
		}
		return st, true
	case *ast.ReturnStmt:
		if !st.released {
			t.leakAt(v.Pos(), true)
		}
		return st, false
	case *ast.AssignStmt:
		// A release whose error is explicitly discarded or checked:
		// _ = resp.Body.Close(), err := t.Stop() and the like.
		for _, rhs := range v.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && t.rules.isRelease(t.info, t.acq.obj, call) {
				return resState{released: true}, true
			}
		}
		// Rebinding the resource variable ends this acquisition's story;
		// the new binding is tracked as its own acquisition.
		if t.acq.obj != nil {
			for _, lhs := range v.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && (t.info.Uses[id] == t.acq.obj || t.info.Defs[id] == t.acq.obj) {
					return resState{released: true}, true
				}
			}
		}
		return st, true
	case *ast.BlockStmt:
		return t.walkStmts(v.List, st)
	case *ast.LabeledStmt:
		return t.walkStmt(v.Stmt, st)
	case *ast.IfStmt:
		if v.Init != nil {
			st, _ = t.walkStmt(v.Init, st)
		}
		thenSt, elseSt := st, st
		// Error-path exemption: in the branch where the paired error is
		// non-nil, the resource is absent (resp == nil) — treat released.
		switch errBranch(t.info, t.acq.errObj, v.Cond) {
		case errNonNilThen:
			thenSt = resState{released: true}
		case errNonNilElse:
			elseSt = resState{released: true}
		}
		st1, falls1 := t.walkStmts(v.Body.List, thenSt)
		st2, falls2 := elseSt, true
		if v.Else != nil {
			st2, falls2 = t.walkStmt(v.Else, elseSt)
		}
		switch {
		case falls1 && falls2:
			return joinRes(st1, st2), true
		case falls1:
			return st1, true
		case falls2:
			return st2, true
		default:
			return st, false
		}
	case *ast.ForStmt:
		if v.Init != nil {
			st, _ = t.walkStmt(v.Init, st)
		}
		// The body may run zero times, so its releases are not
		// guaranteed; still walk it to catch leaks at returns inside.
		t.walkStmts(v.Body.List, st)
		if v.Cond == nil && !containsBreak(v.Body) {
			return st, false
		}
		return st, true
	case *ast.RangeStmt:
		t.walkStmts(v.Body.List, st)
		return st, true
	case *ast.SwitchStmt:
		if v.Init != nil {
			st, _ = t.walkStmt(v.Init, st)
		}
		return t.walkCases(v.Body.List, st)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			st, _ = t.walkStmt(v.Init, st)
		}
		return t.walkCases(v.Body.List, st)
	case *ast.SelectStmt:
		joined, anyFalls := st, false
		first := true
		for _, c := range v.Body.List {
			cc := c.(*ast.CommClause)
			cs, falls := t.walkStmts(cc.Body, st)
			if !falls {
				continue
			}
			anyFalls = true
			if first {
				joined, first = cs, false
			} else {
				joined = joinRes(joined, cs)
			}
		}
		if first {
			joined = st
		}
		return joined, anyFalls
	case *ast.BranchStmt:
		// break/continue/goto: control leaves this statement list. The
		// walker does not chase the target; no leak is reported here,
		// which errs toward silence.
		return st, false
	case *ast.GoStmt:
		return st, true
	default:
		return st, true
	}
}

// walkCases walks a switch body's case clauses with the incoming state
// and joins the falling branches; a missing default contributes the
// incoming state unchanged.
func (t *resTracker) walkCases(list []ast.Stmt, st resState) (resState, bool) {
	joined, anyFalls, first := st, false, true
	hasDefault := false
	for _, c := range list {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cs, falls := t.walkStmts(cc.Body, st)
		if !falls {
			continue
		}
		anyFalls = true
		if first {
			joined, first = cs, false
		} else {
			joined = joinRes(joined, cs)
		}
	}
	if !hasDefault {
		if first {
			joined = st
		} else {
			joined = joinRes(joined, st)
		}
		anyFalls = true
	}
	return joined, anyFalls
}

// joinRes merges two falling paths: the resource is released after the
// join only when it is released on both.
func joinRes(a, b resState) resState {
	return resState{
		released: a.released && b.released,
		byDefer:  (a.released && a.byDefer) || (b.released && b.byDefer),
	}
}

type errBranchKind int

const (
	errBranchNone errBranchKind = iota
	errNonNilThen               // if err != nil { <resource absent> }
	errNonNilElse               // if err == nil { <resource present> } else { <absent> }
)

// errBranch recognizes nil checks against the acquisition's paired
// error variable.
func errBranch(info *types.Info, errObj types.Object, cond ast.Expr) errBranchKind {
	if errObj == nil {
		return errBranchNone
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return errBranchNone
	}
	var other ast.Expr
	if id, ok := be.X.(*ast.Ident); ok && info.Uses[id] == errObj {
		other = be.Y
	} else if id, ok := be.Y.(*ast.Ident); ok && info.Uses[id] == errObj {
		other = be.X
	} else {
		return errBranchNone
	}
	if id, ok := other.(*ast.Ident); !ok || id.Name != "nil" {
		return errBranchNone
	}
	if be.Op == token.NEQ {
		return errNonNilThen
	}
	return errNonNilElse
}

// isTerminalCall reports whether the call never returns: panic, os.Exit,
// log.Fatal*, runtime.Goexit.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := calleeFuncInfo(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
	case "runtime":
		return fn.Name() == "Goexit"
	}
	return false
}

// containsBreak reports whether the loop body has a break that targets
// this loop (unlabeled, not inside a nested loop/switch/select).
func containsBreak(body *ast.BlockStmt) bool {
	found := false
	var visit func(s ast.Stmt)
	visitList := func(list []ast.Stmt) {
		for _, s := range list {
			visit(s)
		}
	}
	visit = func(s ast.Stmt) {
		if found {
			return
		}
		switch v := s.(type) {
		case *ast.BranchStmt:
			if v.Tok == token.BREAK {
				found = true
			}
		case *ast.BlockStmt:
			visitList(v.List)
		case *ast.IfStmt:
			visitList(v.Body.List)
			if v.Else != nil {
				visit(v.Else)
			}
		case *ast.LabeledStmt:
			visit(v.Stmt)
		case *ast.CaseClause:
			visitList(v.Body)
		case *ast.CommClause:
			visitList(v.Body)
		}
	}
	visitList(body.List)
	return found
}

// collectAcquisitions walks a function body and returns every
// acquisition matched by match. Each acquisition records its innermost
// enclosing function scope (the body itself or a nested FuncLit) and the
// ancestor stack needed by the path walk.
//
// match examines an assignment's single call RHS and returns the index
// of the resource variable on the left-hand side (plus the index of the
// paired error variable, or -1) — or ok=false when the call is not an
// acquisition.
func collectAcquisitions(info *types.Info, body *ast.BlockStmt,
	match func(call *ast.CallExpr) (resIdx, errIdx int, ok bool)) []*acquisition {

	var out []*acquisition
	walkWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		resIdx, errIdx, ok := match(call)
		if !ok || resIdx >= len(as.Lhs) {
			return true
		}
		acq := &acquisition{stmt: as, call: call, scope: body}
		// Innermost enclosing function literal, if any, bounds the scope.
		for i := len(stack) - 2; i >= 0; i-- {
			if lit, ok := stack[i].(*ast.FuncLit); ok {
				acq.scope = lit.Body
				break
			}
		}
		acq.stack = append([]ast.Node(nil), stack...)
		if id, ok := as.Lhs[resIdx].(*ast.Ident); ok {
			acq.name = id.Name
			if id.Name != "_" {
				if obj := info.Defs[id]; obj != nil {
					acq.obj = obj
				} else if obj := info.Uses[id]; obj != nil {
					acq.obj = obj
				}
			}
		} else {
			return true // resource bound to a field/index: managed elsewhere
		}
		if errIdx >= 0 && errIdx < len(as.Lhs) {
			if id, ok := as.Lhs[errIdx].(*ast.Ident); ok && id.Name != "_" {
				if obj := info.Defs[id]; obj != nil {
					acq.errObj = obj
				} else if obj := info.Uses[id]; obj != nil {
					acq.errObj = obj
				}
			}
		}
		out = append(out, acq)
		return true
	})
	return out
}

// enclosedByLoop reports whether the acquisition sits inside a for or
// range statement within its function scope.
func (a *acquisition) enclosedByLoop() bool {
	inScope := false
	for i := len(a.stack) - 1; i >= 0; i-- {
		n := a.stack[i]
		if n == a.scope {
			break
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inScope = true
		case *ast.FuncLit:
			return inScope
		}
	}
	return inScope
}
