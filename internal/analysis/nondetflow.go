package analysis

import "strings"

// AnalyzerNondetFlow reports any function reachable from an exported
// train/predict/experiment entry point that contains a nondeterminism
// source: a global math/rand call, time.Now/time.Since, or a map-order
// escape. The finding is reported at the source call site — so one
// suppression there covers every chain through it — with the full call
// chain from the entry point in the message.
//
// Reachability is a breadth-first search over the module call graph from
// all entry points at once; entries are seeded in sorted order and edges
// are visited in source order, so the recorded chains (and therefore the
// report text) are deterministic.
var AnalyzerNondetFlow = &Analyzer{
	Name:      "nondet-flow",
	Doc:       "nondeterminism sources reachable from train/predict/experiment entry points",
	RunModule: runNondetFlow,
}

// crumb records how the BFS first reached a node: through which caller,
// starting from which entry point.
type crumb struct {
	parent string
	entry  string
}

func runNondetFlow(mp *ModulePass) {
	g := mp.Graph
	seen := map[string]crumb{}
	var queue []string
	for _, id := range g.SortedIDs() {
		if g.Nodes[id].IsEntry {
			seen[id] = crumb{entry: id}
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, e := range g.Nodes[id].Calls {
			if _, ok := seen[e.Callee]; ok {
				continue
			}
			seen[e.Callee] = crumb{parent: id, entry: seen[id].entry}
			queue = append(queue, e.Callee)
		}
	}

	for _, id := range g.SortedIDs() {
		c, ok := seen[id]
		if !ok {
			continue
		}
		n := g.Nodes[id]
		// One finding per source kind per node, at the first occurrence:
		// fixing (or suppressing) that site addresses every chain through
		// this function.
		reported := map[string]bool{}
		for _, src := range n.Sources {
			if reported[src.Kind] {
				continue
			}
			reported[src.Kind] = true
			mp.ReportAtf(src.Pos,
				"%s is reachable from entry point %s (call chain: %s); nondeterminism here leaks into train/predict/experiment results — inject a seeded source or clock, or suppress with a reason",
				src.Kind, g.ShortID(c.entry), renderChain(g, seen, id))
		}
	}
}

// renderChain walks parent links from id back to its entry point and
// renders the chain entry -> ... -> id using short IDs.
func renderChain(g *CallGraph, seen map[string]crumb, id string) string {
	var rev []string
	for cur := id; cur != ""; {
		rev = append(rev, g.ShortID(cur))
		c, ok := seen[cur]
		if !ok {
			break
		}
		cur = c.parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return strings.Join(rev, " -> ")
}
