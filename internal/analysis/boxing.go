package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerBoxing reports interface conversions of scalar values inside
// hot-path loops (see hotpath.go): a non-constant numeric or boolean
// argument passed to an interface-typed parameter — fmt verbs, any/
// interface{} sinks, error wrappers — heap-allocates a box for the value
// on every iteration. Constants stay silent (the runtime interns small
// ones), as do string and composite arguments: strings are string-churn's
// business and composites are usually deliberate.
var AnalyzerBoxing = &Analyzer{
	Name:      "boxing",
	Doc:       "scalar-to-interface conversions in hot-path loops (one heap box per iteration)",
	RunModule: runBoxing,
}

func runBoxing(mp *ModulePass) {
	eachHotNode(mp, func(n *Node) {
		info := n.Pkg.Info
		chain := mp.hotChain(n.ID)
		walkWithStack(n.Decl.Body, func(x ast.Node, stack []ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok || !inLoop(stack) {
				return true
			}
			if tv, ok := info.Types[call.Fun]; !ok || tv.IsType() {
				return true // conversion or untyped; not a call
			}
			sig, ok := info.TypeOf(call.Fun).(*types.Signature)
			if !ok {
				return true
			}
			for i, arg := range call.Args {
				pt := paramType(sig, i)
				if pt == nil || !types.IsInterface(types.Unalias(pt).Underlying()) {
					continue
				}
				at := info.TypeOf(arg)
				if at == nil || !isScalarBasic(at) || isConstant(info, arg) {
					continue
				}
				mp.Reportf(arg.Pos(),
					"%s value boxed into an interface argument inside a loop allocates every iteration (%s); use a type-specific API (e.g. strconv.Append*) or hoist the formatting",
					types.Unalias(at).Underlying().String(), chain)
			}
			return true
		})
	})
}

// paramType resolves the static type of argument i, unrolling the final
// variadic parameter.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := params.At(n - 1).Type()
		if s, ok := types.Unalias(last).Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// isScalarBasic reports whether t is a numeric or boolean basic type —
// the values a conversion to interface must heap-box.
func isScalarBasic(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsNumeric|types.IsBoolean) != 0
}
