package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis. The
// in-package _test.go files are included (the "augmented" variant, like go
// vet analyzes); external test packages (package foo_test) appear as their
// own entries with ImportPath suffixed "_test".
type Package struct {
	ImportPath string
	Mod        string // module path of the enclosing module
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Src        map[string][]byte // filename -> source bytes, for directive scanning
}

// Loader discovers, parses and type-checks every package under a module
// root. Module-internal imports are resolved by recursively type-checking
// from source; everything else (the standard library) is delegated to the
// stdlib source importer, so the whole process works offline with no
// dependency beyond GOROOT.
type Loader struct {
	ModRoot string
	ModPath string
	Fset    *token.FileSet

	std      types.Importer
	base     map[string]*types.Package // import cache: non-test variant
	checking map[string]bool           // cycle guard for ensureBase
	src      map[string][]byte
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns its path and the declared module path.
func FindModuleRoot(dir string) (root, modpath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modpath, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot:  root,
		ModPath:  modpath,
		Fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		base:     map[string]*types.Package{},
		checking: map[string]bool{},
		src:      map[string][]byte{},
	}, nil
}

// Load type-checks every package under the module root and returns the
// augmented packages plus any external test packages, sorted by import
// path. Directories named testdata or vendor and hidden/underscore
// directories are skipped, as the go tool does.
func (l *Loader) Load() ([]*Package, error) {
	dirs, err := l.discover()
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkgs, err := l.checkDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkgs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

func (l *Loader) discover() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModRoot && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// importPath maps a directory under the module root to its import path.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	return filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
}

// Import implements types.Importer over the module: module-internal paths
// are type-checked from source (non-test variant), everything else is
// delegated to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		return l.ensureBase(path)
	}
	return l.std.Import(path)
}

// ensureBase type-checks the non-test variant of a module package; this is
// what other packages (and external test packages) compile against.
func (l *Loader) ensureBase(path string) (*types.Package, error) {
	if pkg, ok := l.base[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	files, _, _, err := l.parseDir(l.dirFor(path))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", l.dirFor(path))
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	l.base[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file in dir into three groups: non-test files,
// in-package test files, and external (package foo_test) test files.
func (l *Loader) parseDir(dir string) (base, intest, xtest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		full := filepath.Join(dir, name)
		data, rerr := os.ReadFile(full)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		l.src[full] = data
		f, perr := parser.ParseFile(l.Fset, full, data, parser.ParseComments)
		if perr != nil {
			return nil, nil, nil, fmt.Errorf("analysis: parsing %s: %w", full, perr)
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test") && strings.HasSuffix(name, "_test.go"):
			xtest = append(xtest, f)
		case strings.HasSuffix(name, "_test.go"):
			intest = append(intest, f)
		default:
			base = append(base, f)
		}
	}
	return base, intest, xtest, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// checkDir type-checks dir's augmented package (sources plus in-package
// test files) and, when present, its external test package.
func (l *Loader) checkDir(dir string) ([]*Package, error) {
	base, intest, xtest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPath(dir)
	var out []*Package

	if len(base)+len(intest) > 0 {
		// Cache the pure base variant first so imports (including the
		// augmented check's own dependencies) never see test symbols.
		if len(base) > 0 {
			if _, err := l.ensureBase(path); err != nil {
				return nil, err
			}
		}
		files := append(append([]*ast.File{}, base...), intest...)
		info := newInfo()
		conf := types.Config{Importer: l}
		tpkg, err := conf.Check(path, l.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		out = append(out, l.newPackage(path, dir, files, tpkg, info))
	}
	if len(xtest) > 0 {
		info := newInfo()
		conf := types.Config{Importer: l}
		tpkg, err := conf.Check(path+"_test", l.Fset, xtest, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s_test: %w", path, err)
		}
		out = append(out, l.newPackage(path+"_test", dir, xtest, tpkg, info))
	}
	return out, nil
}

func (l *Loader) newPackage(path, dir string, files []*ast.File, tpkg *types.Package, info *types.Info) *Package {
	src := map[string][]byte{}
	for _, f := range files {
		name := l.Fset.Position(f.Package).Filename
		src[name] = l.src[name]
	}
	return &Package{
		ImportPath: path,
		Mod:        l.ModPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Src:        src,
	}
}
