package analysis

import (
	"strings"
	"testing"
)

// TestRepoIsClean is the smoke test from the issue: the analyzer suite
// must run clean over this repository itself — zero unsuppressed findings
// across every package, test files included. A failure here means either
// new code introduced a determinism/correctness hazard or a suppression
// lost its directive; fix the code or add //shvet:ignore with a reason.
func TestRepoIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.ModPath != "sortinghat" {
		t.Fatalf("module path = %q, want sortinghat", loader.ModPath)
	}
	pkgs, err := loader.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Sanity: the loader saw the whole module, not a corner of it.
	byPath := map[string]bool{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = true
	}
	for _, want := range []string{
		"sortinghat",
		"sortinghat/internal/analysis",
		"sortinghat/internal/experiments",
		"sortinghat/internal/ml/tree",
		"sortinghat/cmd/shvet",
	} {
		if !byPath[want] {
			t.Errorf("loader missed package %s", want)
		}
	}

	findings := Analyze(pkgs, All())
	bad := Unsuppressed(findings)
	for _, f := range bad {
		t.Errorf("%s", f)
	}
	if len(bad) > 0 {
		t.Fatalf("shvet found %d unsuppressed finding(s) in the repository", len(bad))
	}

	// Every suppression that made it into the tree must carry a reason;
	// the directive parser enforces this, so an empty reason here means a
	// parser regression, not a policy violation.
	for _, f := range findings {
		if f.Suppressed && strings.TrimSpace(f.Reason) == "" {
			t.Errorf("%s: suppressed without a reason", f.Pos)
		}
	}
}
