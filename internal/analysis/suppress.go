package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"strings"
)

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// //shvet:ignore directives are reported. It is not a real pass and its
// findings cannot themselves be suppressed: a broken directive silently
// matching nothing is exactly the failure mode it exists to catch.
const DirectiveAnalyzer = "directive"

// suppression is one parsed //shvet:ignore directive.
type suppression struct {
	analyzers []string // analyzer names, or ["all"]
	reason    string
}

func (s suppression) covers(analyzer string) bool {
	for _, a := range s.analyzers {
		if a == "all" || a == analyzer {
			return true
		}
	}
	return false
}

// suppressions indexes directives by filename and the line they apply to.
type suppressions map[string]map[int][]suppression

func (s suppressions) match(pos token.Position, analyzer string) (reason string, ok bool) {
	for _, sup := range s[pos.Filename][pos.Line] {
		if sup.covers(analyzer) {
			return sup.reason, true
		}
	}
	return "", false
}

const directive = "shvet:ignore"

// parseDirective parses the payload of a //shvet:ignore comment (the text
// after the marker): a comma-separated analyzer list — spaces after the
// commas are allowed — followed by a mandatory free-text reason. Every
// listed name must be a known analyzer or the wildcard "all"; a typo here
// would otherwise suppress nothing while looking like it suppresses
// something.
func parseDirective(payload string, known map[string]bool) (suppression, error) {
	fields := strings.Fields(payload)
	if len(fields) == 0 {
		return suppression{}, fmt.Errorf("missing analyzer list and reason")
	}
	list := fields[0]
	i := 1
	for i < len(fields) && (strings.HasSuffix(list, ",") || strings.HasPrefix(fields[i], ",")) {
		list += fields[i]
		i++
	}
	var analyzers []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return suppression{}, fmt.Errorf("empty analyzer name in list %q", list)
		}
		if !known[name] {
			return suppression{}, fmt.Errorf("unknown analyzer %q (run shvet -list for valid names)", name)
		}
		analyzers = append(analyzers, name)
	}
	if i >= len(fields) {
		return suppression{}, fmt.Errorf("missing reason after analyzer list %q; every suppression must say why", list)
	}
	return suppression{analyzers: analyzers, reason: strings.Join(fields[i:], " ")}, nil
}

// collectSuppressions scans every comment in the package for
// //shvet:ignore directives, adding well-formed ones to out and reporting
// malformed ones as findings. A directive at the end of a code line
// applies to that line; a directive alone on its line applies to the next
// line — which must exist, so a trailing standalone directive is an error
// rather than a silent no-op.
func collectSuppressions(pkg *Package, known map[string]bool, out suppressions, findings *[]Finding) {
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Package).Filename
		src := pkg.Src[filename]
		lines := lineCount(src)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directive) {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				sup, err := parseDirective(strings.TrimPrefix(text, directive), known)
				if err != nil {
					*findings = append(*findings, Finding{
						Pos:      pos,
						Analyzer: DirectiveAnalyzer,
						Message:  fmt.Sprintf("malformed //shvet:ignore directive: %v", err),
					})
					continue
				}
				line := pos.Line
				if standalone(src, pos) {
					line++
					if line > lines {
						*findings = append(*findings, Finding{
							Pos:      pos,
							Analyzer: DirectiveAnalyzer,
							Message:  "standalone //shvet:ignore on the last line of the file applies to nothing",
						})
						continue
					}
				}
				if out[filename] == nil {
					out[filename] = map[int][]suppression{}
				}
				out[filename][line] = append(out[filename][line], sup)
			}
		}
	}
}

// lineCount returns the number of lines in src, counting a trailing
// partial line (no final newline) as a line.
func lineCount(src []byte) int {
	n := bytes.Count(src, []byte("\n"))
	if len(src) > 0 && src[len(src)-1] != '\n' {
		n++
	}
	return n
}

// standalone reports whether the comment starting at pos is the first
// non-blank content on its line.
func standalone(src []byte, pos token.Position) bool {
	if pos.Column == 1 {
		return true
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}
