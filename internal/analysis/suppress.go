package analysis

import (
	"go/token"
	"strings"
)

// suppression is one parsed //shvet:ignore directive.
type suppression struct {
	analyzers []string // analyzer names, or ["all"]
	reason    string
}

func (s suppression) covers(analyzer string) bool {
	for _, a := range s.analyzers {
		if a == "all" || a == analyzer {
			return true
		}
	}
	return false
}

// suppressions indexes directives by filename and the line they apply to.
type suppressions map[string]map[int][]suppression

func (s suppressions) match(pos token.Position, analyzer string) (reason string, ok bool) {
	for _, sup := range s[pos.Filename][pos.Line] {
		if sup.covers(analyzer) {
			return sup.reason, true
		}
	}
	return "", false
}

const directive = "shvet:ignore"

// collectSuppressions scans every comment in the package for
// //shvet:ignore directives. A directive at the end of a code line applies
// to that line; a directive alone on its line applies to the next line.
func collectSuppressions(pkg *Package) suppressions {
	out := suppressions{}
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Package).Filename
		src := pkg.Src[filename]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directive) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, directive))
				if len(fields) < 2 {
					// Malformed: a reason is required. Leave it unmatched so
					// the finding it meant to hide still fails the build.
					continue
				}
				sup := suppression{
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
				}
				pos := pkg.Fset.Position(c.Slash)
				line := pos.Line
				if standalone(src, pos) {
					line++
				}
				if out[filename] == nil {
					out[filename] = map[int][]suppression{}
				}
				out[filename][line] = append(out[filename][line], sup)
			}
		}
	}
	return out
}

// standalone reports whether the comment starting at pos is the first
// non-blank content on its line.
func standalone(src []byte, pos token.Position) bool {
	if pos.Column == 1 {
		return true
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}
