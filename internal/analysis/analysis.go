// Package analysis implements shvet, a small static-analysis framework
// built entirely on the standard library (go/parser, go/ast, go/types,
// go/token). It exists because this repository's value as a benchmark
// reproduction rests on bit-reproducible results: the analyzers are tuned
// to the failure modes that silently break determinism or correctness in
// numeric Go code.
//
// The six analyzers:
//
//   - global-rand: uses of top-level math/rand functions (rand.Float64,
//     rand.Shuffle, ...) that draw from the process-global source instead
//     of an injected, seeded *rand.Rand.
//   - map-order: range over a map whose body appends to a slice, writes to
//     an io.Writer, or calls a fmt print function, letting map iteration
//     order escape into results. Collecting keys and sorting them after
//     the loop is recognised and not flagged.
//   - float-eq: == or != on floating-point operands outside test files.
//     Comparisons against an exact-zero constant and self-comparisons
//     (the x != x NaN idiom) are exempt.
//   - unchecked-err: expression statements that discard an error result
//     from a non-fmt call. Deferred calls, go statements, fmt.*, and the
//     always-nil writers (strings.Builder, bytes.Buffer) are exempt;
//     assign to _ to discard explicitly.
//   - sync-copy: function signatures that pass or return sync.Mutex,
//     sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond, sync.Map or
//     sync.Pool by value (directly or embedded in a struct/array).
//   - doc-comment: exported package-level identifiers without a doc
//     comment, and packages without a package comment. Group comments,
//     end-of-line spec comments and methods on unexported receivers are
//     recognised; _test.go files are exempt.
//
// Findings can be suppressed with a directive comment:
//
//	//shvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// An end-of-line directive suppresses findings on its own line; a
// directive alone on a line suppresses findings on the following line.
// The analyzer list may be "all". A reason is required.
//
// To add an analyzer: create a file in this package defining an
// *Analyzer with a unique Name and a Run func that walks pass.Files and
// calls pass.Reportf, then append it to All. Add a fixture package under
// testdata/fixtures/<name>/ with "// want <name>" markers and it is
// picked up by the fixture test automatically.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool   // true when a //shvet:ignore directive covers it
	Reason     string // suppression reason, when Suppressed
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	Name string // short kebab-case identifier used in reports and directives
	Doc  string // one-line description
	Run  func(*Pass)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	analyzer string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf returns the type of e, or nil when untyped.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// All returns the full analyzer suite in report order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerGlobalRand,
		AnalyzerMapOrder,
		AnalyzerFloatEq,
		AnalyzerUncheckedErr,
		AnalyzerSyncCopy,
		AnalyzerDocComment,
	}
}

// Analyze runs every analyzer over every package and returns all findings
// (suppressed ones included, marked) sorted by position.
func Analyze(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Files:    pkg.Files,
				analyzer: a.Name,
				findings: &out,
			}
			start := len(out)
			a.Run(pass)
			for i := start; i < len(out); i++ {
				if reason, ok := sup.match(out[i].Pos, a.Name); ok {
					out[i].Suppressed = true
					out[i].Reason = reason
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Unsuppressed filters findings down to the ones not covered by a
// directive; these are the ones that fail CI.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
