package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool          // true when a //shvet:ignore directive covers it
	Reason     string        // suppression reason, when Suppressed
	Fix        *SuggestedFix // machine-applicable repair, when the analyzer has one
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named pass. Exactly one of Run and RunModule is set:
// Run is invoked once per package, RunModule once per module with the
// whole-module call graph available.
type Analyzer struct {
	Name      string // short kebab-case identifier used in reports and directives
	Doc       string // one-line description
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	analyzer string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf returns the type of e, or nil when untyped.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ModulePass carries the whole module — every package plus the call graph
// built over them — through a module-level analyzer run.
type ModulePass struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Graph *CallGraph

	analyzer string
	findings *[]Finding
	hot      map[string]crumb // lazily built hot region (see hotpath.go)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAtf(p.Fset.Position(pos), format, args...)
}

// ReportAtf records a finding at an already-resolved position.
func (p *ModulePass) ReportAtf(pos token.Position, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      pos,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in report order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerGlobalRand,
		AnalyzerMapOrder,
		AnalyzerFloatEq,
		AnalyzerUncheckedErr,
		AnalyzerSyncCopy,
		AnalyzerDocComment,
		AnalyzerLockBalance,
		AnalyzerNondetFlow,
		AnalyzerCtxFlow,
		AnalyzerGoroutineLeak,
		AnalyzerAllocInLoop,
		AnalyzerStringChurn,
		AnalyzerDeferInLoop,
		AnalyzerBoxing,
		AnalyzerCancelLeak,
		AnalyzerBodyClose,
		AnalyzerTimerStop,
		AnalyzerHandlerContract,
	}
}

// knownAnalyzerNames returns the set of names a //shvet:ignore directive
// may mention: every analyzer in the full suite plus the wildcard "all".
func knownAnalyzerNames() map[string]bool {
	names := map[string]bool{"all": true}
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// Analyze runs every analyzer over every package and returns all findings
// (suppressed ones included, marked) sorted by position. Per-package
// analyzers run package by package; module analyzers run once over the
// call graph built from the whole package set. Malformed //shvet:ignore
// directives surface as findings under the "directive" pseudo-analyzer,
// which cannot itself be suppressed.
func Analyze(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	known := knownAnalyzerNames()
	sup := suppressions{}
	for _, pkg := range pkgs {
		collectSuppressions(pkg, known, sup, &out)
	}

	var module []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			module = append(module, a)
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{
				Fset:     pkg.Fset,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Files:    pkg.Files,
				analyzer: a.Name,
				findings: &out,
			}
			a.Run(pass)
		}
	}
	if len(module) > 0 && len(pkgs) > 0 {
		mp := &ModulePass{
			Fset:     pkgs[0].Fset,
			Pkgs:     pkgs,
			Graph:    BuildCallGraph(pkgs),
			findings: &out,
		}
		for _, a := range module {
			mp.analyzer = a.Name
			a.RunModule(mp)
		}
	}

	for i := range out {
		if out[i].Analyzer == DirectiveAnalyzer {
			continue
		}
		if reason, ok := sup.match(out[i].Pos, out[i].Analyzer); ok {
			out[i].Suppressed = true
			out[i].Reason = reason
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Unsuppressed filters findings down to the ones not covered by a
// directive; these are the ones that fail CI.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
