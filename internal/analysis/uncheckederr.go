package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerUncheckedErr flags expression statements that call a function
// returning an error and silently drop it. Swallowed errors from
// persistence, I/O and training calls turn real failures into wrong
// numbers. Exemptions, by design:
//
//   - fmt.* (per policy; terminal print errors are not actionable here);
//   - methods on strings.Builder and bytes.Buffer, whose errors are
//     documented to always be nil;
//   - defer and go statements (the value is intentionally fire-and-forget
//     at that point; reviewers handle those case by case);
//   - explicit discards: "_ = f()" states intent and is not flagged.
var AnalyzerUncheckedErr = &Analyzer{
	Name: "unchecked-err",
	Doc:  "discarded error results from non-fmt calls",
	Run:  runUncheckedErr,
}

func runUncheckedErr(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call, errType) || exemptCall(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s includes an error that is discarded; handle it or assign to _ explicitly",
				types.ExprString(call.Fun))
			return true
		})
	}
}

func returnsError(pass *Pass, call *ast.CallExpr, errType types.Type) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return true // builtins, conversions, func-typed variables
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}
