package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

var (
	fixtureOnce     sync.Once
	fixtureFindings []Finding
	fixtureErr      error
)

// loadFixtures type-checks the testdata/fixtures module once per test
// binary and runs the full suite over it.
func loadFixtures(t *testing.T) []Finding {
	t.Helper()
	fixtureOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("testdata", "fixtures"))
		if err != nil {
			fixtureErr = err
			return
		}
		loader, err := NewLoader(root)
		if err != nil {
			fixtureErr = fmt.Errorf("NewLoader: %w", err)
			return
		}
		if loader.ModPath != "fixtures" {
			fixtureErr = fmt.Errorf("fixture module path = %q, want fixtures", loader.ModPath)
			return
		}
		pkgs, err := loader.Load()
		if err != nil {
			fixtureErr = fmt.Errorf("Load: %w", err)
			return
		}
		if len(pkgs) == 0 {
			fixtureErr = fmt.Errorf("no fixture packages loaded")
			return
		}
		fixtureFindings = Analyze(pkgs, All())
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureFindings
}

// expectation is a (file, line, analyzer) triple a fixture declares with a
// "// want <analyzer>..." end-of-line marker or a "// want-above
// <analyzer>..." marker on the following line.
type expectation struct {
	file     string
	line     int
	analyzer string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d: [%s]", e.file, e.line, e.analyzer)
}

func collectExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	var out []expectation
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if idx := strings.Index(line, "// want-above "); idx >= 0 {
				for _, name := range strings.Fields(line[idx+len("// want-above "):]) {
					out = append(out, expectation{file: path, line: i, analyzer: name})
				}
			} else if idx := strings.Index(line, "// want "); idx >= 0 {
				for _, name := range strings.Fields(line[idx+len("// want "):]) {
					out = append(out, expectation{file: path, line: i + 1, analyzer: name})
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFixtures asserts that, for every fixture package, the unsuppressed
// findings match the "// want" markers exactly — every analyzer has
// positive hits, near-misses stay silent, and suppressions hide findings.
func TestFixtures(t *testing.T) {
	findings := loadFixtures(t)

	fixtureDir, err := filepath.Abs(filepath.Join("testdata", "fixtures"))
	if err != nil {
		t.Fatal(err)
	}
	want := collectExpectations(t, fixtureDir)

	got := map[expectation]int{}
	for _, f := range Unsuppressed(findings) {
		got[expectation{file: f.Pos.Filename, line: f.Pos.Line, analyzer: f.Analyzer}]++
	}
	for _, e := range want {
		if got[e] == 0 {
			t.Errorf("expected finding missing: %s", e)
		} else {
			got[e]--
			if got[e] == 0 {
				delete(got, e)
			}
		}
	}
	var extra []string
	for e, n := range got {
		for i := 0; i < n; i++ {
			extra = append(extra, e.String())
		}
	}
	sort.Strings(extra)
	for _, e := range extra {
		t.Errorf("unexpected finding: %s", e)
	}
}

// TestEachAnalyzerFires is the explicit per-analyzer guarantee from the
// acceptance criteria: every analyzer in the suite produces at least one
// finding on its fixture package.
func TestEachAnalyzerFires(t *testing.T) {
	findings := loadFixtures(t)
	fired := map[string]bool{}
	for _, f := range Unsuppressed(findings) {
		fired[f.Analyzer] = true
	}
	for _, a := range All() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s produced no unsuppressed finding on its fixtures", a.Name)
		}
	}
}

// TestSuppressions asserts the directive machinery: the suppress fixture
// carries exactly five suppressed findings, each with the reason text
// from its directive.
func TestSuppressions(t *testing.T) {
	findings := loadFixtures(t)
	var suppressed []Finding
	for _, f := range findings {
		if strings.Contains(f.Pos.Filename, "suppress") && f.Suppressed {
			suppressed = append(suppressed, f)
		}
	}
	if len(suppressed) != 5 {
		t.Fatalf("suppress fixture: got %d suppressed findings, want 5:\n%v", len(suppressed), suppressed)
	}
	for _, f := range suppressed {
		if !strings.HasPrefix(f.Reason, "fixture:") {
			t.Errorf("%s: suppression reason %q does not carry the directive text", f.Pos, f.Reason)
		}
	}
}

// TestFindingString pins the report format CI greps for.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "float-eq", Message: "boom"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	if got, want := f.String(), "a/b.go:3:7: [float-eq] boom"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}
