package analysis

import "go/ast"

// AnalyzerDeferInLoop reports defer statements lexically inside a loop in
// hot functions (see hotpath.go). A defer in a loop does not run at the
// end of the iteration — it accumulates until the whole function returns,
// so N iterations pin N deferred frames (and whatever they close over)
// for the lifetime of the call: a memory cliff on a per-column hot path,
// and a latency cliff when the defers release locks or file handles.
// Defers inside a function literal in the loop run when the literal
// returns, so they are fine and stay silent.
var AnalyzerDeferInLoop = &Analyzer{
	Name:      "defer-in-loop",
	Doc:       "defer statements inside hot-path loops (they run at function exit, not per iteration)",
	RunModule: runDeferInLoop,
}

func runDeferInLoop(mp *ModulePass) {
	eachHotNode(mp, func(n *Node) {
		chain := mp.hotChain(n.ID)
		walkWithStack(n.Decl.Body, func(x ast.Node, stack []ast.Node) bool {
			d, ok := x.(*ast.DeferStmt)
			if !ok || !inLoop(stack) {
				return true
			}
			mp.Reportf(d.Pos(),
				"defer inside a loop accumulates until the function returns (%s); move the iteration body into a helper or release explicitly",
				chain)
			return true
		})
	})
}
