package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerGlobalRand flags any use of a top-level math/rand (or
// math/rand/v2) function that draws from the process-global source —
// rand.Float64, rand.Intn, rand.Shuffle, rand.Perm, rand.Seed and
// friends. The global source couples every caller to shared hidden state,
// so two experiments in one process perturb each other's streams and a
// fixed seed no longer pins results. Constructors that build an
// explicitly-seeded generator (rand.New, rand.NewSource, rand.NewZipf,
// rand.NewPCG, rand.NewChaCha8) are allowed; methods on *rand.Rand are
// allowed.
var AnalyzerGlobalRand = &Analyzer{
	Name: "global-rand",
	Doc:  "use of top-level math/rand functions instead of an injected *rand.Rand",
	Run:  runGlobalRand,
}

var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods on *rand.Rand are fine
				return true
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the global math/rand source; inject a seeded *rand.Rand instead", fn.Name())
			return true
		})
	}
}
