// Package analysis implements shvet, a small static-analysis framework
// built entirely on the standard library (go/parser, go/ast, go/types,
// go/token). It exists because this repository's value as a benchmark
// reproduction rests on bit-reproducible results: the analyzers are tuned
// to the failure modes that silently break determinism or correctness in
// numeric Go code.
//
// The eighteen analyzers:
//
//   - global-rand: uses of top-level math/rand functions (rand.Float64,
//     rand.Shuffle, ...) that draw from the process-global source instead
//     of an injected, seeded *rand.Rand.
//   - map-order: range over a map whose body appends to a slice, writes to
//     an io.Writer, or calls a fmt print function, letting map iteration
//     order escape into results. Collecting keys and sorting them after
//     the loop is recognised and not flagged.
//   - float-eq: == or != on floating-point operands outside test files.
//     Comparisons against an exact-zero constant and self-comparisons
//     (the x != x NaN idiom) are exempt.
//   - unchecked-err: expression statements that discard an error result
//     from a non-fmt call. Deferred calls, go statements, fmt.*, and the
//     always-nil writers (strings.Builder, bytes.Buffer) are exempt;
//     assign to _ to discard explicitly.
//   - sync-copy: function signatures that pass or return sync.Mutex,
//     sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond, sync.Map or
//     sync.Pool by value (directly or embedded in a struct/array).
//   - doc-comment: exported package-level identifiers without a doc
//     comment, and packages without a package comment. Group comments,
//     end-of-line spec comments and methods on unexported receivers are
//     recognised; _test.go files are exempt.
//   - lock-balance: intra-procedural Lock/Unlock pairing per mutex
//     object. Flags early returns and fall-through paths that leave a
//     mutex locked (unless a deferred unlock covers it) and locks held
//     across blocking operations: channel sends/receives, select without
//     a default, range over a channel, time.Sleep, and os/net I/O.
//   - nondet-flow (module-level): functions reachable from the exported
//     train/predict/experiment entry points that transitively reach a
//     nondeterminism source — global math/rand, time.Now/time.Since, or
//     a map-order escape. Reported at the source call site with the full
//     call chain from the entry point.
//   - ctx-flow (module-level): a function that receives a
//     context.Context but passes context.Background()/context.TODO() to
//     a ctx-accepting callee, or calls X when a ctx-threaded XCtx
//     sibling exists — both break span trees and deadline propagation.
//   - goroutine-leak (module-level): go statements whose goroutine body
//     loops forever with no termination signal in sight (no
//     context.Context, no channel or select, no sync.WaitGroup/Cond).
//   - alloc-in-loop (module-level, hot region only): allocations inside
//     loops on the serving hot path — make/new calls, slice and map
//     composite literals, and appends that grow a slice declared without
//     capacity outside the loop.
//   - string-churn (module-level, hot region only): per-iteration string
//     work in hot loops — string<->[]byte/[]rune conversions,
//     fmt.Sprintf/Sprint/Sprintln/Errorf calls, and string concatenation
//     that builds garbage each pass instead of using strings.Builder or
//     strconv.
//   - defer-in-loop (module-level, hot region only): defer statements
//     inside loops, which pile up until function exit (the classic
//     file-handle leak in batch loops).
//   - boxing (module-level, hot region only): non-constant numeric or
//     boolean values passed to interface-typed parameters inside hot
//     loops, heap-boxing one value per iteration.
//   - cancel-leak (module-level): context.CancelFuncs that are discarded
//     with _, shadowed by a redeclaration, or not called/deferred on
//     every return path out of the acquiring scope; defer cancel()
//     inside a loop is flagged too, since it runs at function exit.
//     Handing the context/cancel pair to a callee or returning it
//     transfers the obligation and is not flagged.
//   - body-close (module-level): http.Response bodies not closed on
//     every path past the error check, or discarded at the call site.
//     Interprocedural: a response handed to a helper is resolved
//     through the call graph (depth-bounded) to see whether the helper
//     closes it on the caller's behalf.
//   - timer-stop (module-level): time.NewTicker/time.NewTimer acquired
//     in a long-lived goroutine that never calls Stop and has no
//     external exit signal (no context, no non-timer channel bounding
//     the loop), and time.After inside loops (one orphan timer per
//     iteration).
//   - handler-contract (module-level): http.Handler bodies that write
//     the header twice on one path or set a status after the body has
//     started — helper calls are resolved interprocedurally, so a
//     WriteHeader buried in a sendError helper is caught — and
//     hot-region handler loops that neither check r.Context() nor run
//     behind the admission gate.
//
// The resource-lifecycle analyzers (cancel-leak, body-close,
// timer-stop) share a resource-flow walker (resflow.go) that tracks an
// acquisition through branches, loops, defers, and rebinding, crediting
// a release only when every falling path reaches one; any use the
// walker cannot model (escape to a field, channel, or return value)
// disqualifies the acquisition silently. Where the repair is
// unambiguous these analyzers attach a SuggestedFix (insert a deferred
// release, name a discarded CancelFunc); ApplyFixes applies them with
// suppression refusal, atomic overlap rejection, and a gofmt
// round-trip, and cmd/shvet exposes the engine as -fix / -fix -dry-run.
//
// The four performance-cost analyzers report only inside the hot region:
// the call-graph closure of the exported Predict*/Infer*/Featurize*/
// Extract* entry points, plus any function explicitly rooted with a
//
//	//shvet:hotpath <reason>
//
// directive on (or directly above) its declaration — the escape hatch for
// hot code the static graph cannot see, such as worker-pool bodies invoked
// through channels. A hotpath directive that attaches to no function
// declaration is reported under the "directive" pseudo-analyzer, exactly
// like a malformed //shvet:ignore. Everything outside the hot region may
// allocate freely: cold-path clarity beats cold-path microtuning. Each
// finding carries the entry-point chain that makes it hot, and the
// committed benchmark baseline (BENCH_serve.json, enforced by
// cmd/benchdiff) pins the resulting allocation counts.
//
// The module-level analyzers run over a whole-module call graph (see
// CallGraph) built on the same loader; nodes and edges are
// deterministically ordered, so reports are byte-stable run to run.
//
// Findings can be suppressed with a directive comment:
//
//	//shvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// An end-of-line directive suppresses findings on its own line; a
// directive alone on a line suppresses findings on the following line.
// The analyzer list may be "all" and may contain spaces after commas. A
// reason is required. A malformed directive — unknown analyzer name,
// missing reason, or a standalone directive on the last line of a file —
// is itself reported as a finding (analyzer "directive") and cannot be
// suppressed.
//
// To add an analyzer: create a file in this package defining an
// *Analyzer with a unique Name and either a Run func that walks
// pass.Files and calls pass.Reportf, or a RunModule func that consumes
// the call graph, then append it to All. Add a fixture package under
// testdata/fixtures/<name>/ with "// want <name>" markers and it is
// picked up by the fixture test automatically.
package analysis
