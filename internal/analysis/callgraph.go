package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is a whole-module static call graph built over the loader's
// type-checked packages. Nodes are the functions and methods declared in
// non-test files; edges are the statically resolvable calls between them
// (direct calls and method calls on named types — calls through function
// values or interfaces are out of scope). Node iteration via SortedIDs
// and per-node edge order are deterministic, so everything derived from
// the graph is byte-stable run to run.
type CallGraph struct {
	Mod   string           // module path, trimmed from rendered IDs
	Nodes map[string]*Node // keyed by types.Func.FullName()
	ids   []string         // sorted node IDs, fixed at build time
}

// Node is one declared function or method in the graph.
type Node struct {
	ID      string // types.Func.FullName(), e.g. "(*mod/pkg.T).Method"
	Fn      *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	HasCtx  bool // takes a context.Context parameter
	IsEntry bool // exported train/predict/experiment entry point
	Calls   []Edge
	Sources []Source      // nondeterminism sources inside the body
	Gos     []*ast.GoStmt // go statements inside the body (incl. nested literals)
}

// Edge is one static call site, kept in source order with duplicates to
// the same callee collapsed onto the first occurrence.
type Edge struct {
	Callee string // node ID of the callee
	Pos    token.Pos
}

// Source is a nondeterminism source observed inside a node's body:
// "time.Now", "time.Since", "rand.<Fn>" (global math/rand), or
// "map-order escape".
type Source struct {
	Kind string
	Pos  token.Position
}

// entryPrefixes match the exported API surface whose results the paper's
// benchmark numbers depend on: training, prediction/inference, and the
// experiment drivers that render tables and figures.
var entryPrefixes = []string{"Train", "Predict", "Infer", "Fit", "Table", "Figure", "Experiment"}

func isEntryPoint(fn *types.Func) bool {
	name := fn.Name()
	if !ast.IsExported(name) {
		return false
	}
	for _, p := range entryPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// sourceKind classifies a statically-resolved callee as a nondeterminism
// source, or returns "" for anything else. Methods (e.g. on a seeded
// *rand.Rand) and the explicit-seed constructors are not sources.
func sourceKind(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return "rand." + fn.Name()
		}
	}
	return ""
}

// BuildCallGraph builds the module call graph from the loaded packages.
// External test packages and _test.go files are excluded: the graph
// models the shipped module, not its tests.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[string]*Node{}}
	if len(pkgs) > 0 {
		g.Mod = pkgs[0].Mod
	}

	// A node per function declared in a non-test file, plus its line span
	// so package-level findings (map-order) can be attributed to it.
	type span struct {
		start, end int
		node       *Node
	}
	spans := map[string][]span{}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.ImportPath, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			filename := pkg.Fset.Position(file.Package).Filename
			if strings.HasSuffix(filename, "_test.go") {
				continue
			}
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{
					ID:      fn.FullName(),
					Fn:      fn,
					Decl:    fd,
					Pkg:     pkg,
					HasCtx:  hasContextParam(fn),
					IsEntry: isEntryPoint(fn),
				}
				g.Nodes[n.ID] = n
				spans[filename] = append(spans[filename], span{
					start: pkg.Fset.Position(fd.Pos()).Line,
					end:   pkg.Fset.Position(fd.End()).Line,
					node:  n,
				})
			}
		}
	}

	// Edges, intrinsic sources, and go statements. Function literals are
	// attributed to their enclosing declaration. Per-node slices follow
	// ast.Inspect order, which is source order, so they are deterministic
	// even though the node map itself is iterated unordered here.
	for _, n := range g.Nodes {
		g.scanBody(n)
	}

	// Map-order escapes, found by the map-order analyzer over the same
	// files and attributed to the enclosing declaration. Top-level decls
	// do not nest, so at most one span matches a finding.
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.ImportPath, "_test") {
			continue
		}
		var files []*ast.File
		for _, f := range pkg.Files {
			if !strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
				files = append(files, f)
			}
		}
		if len(files) == 0 {
			continue
		}
		var scratch []Finding
		pass := &Pass{
			Fset: pkg.Fset, Pkg: pkg.Types, Info: pkg.Info, Files: files,
			analyzer: AnalyzerMapOrder.Name, findings: &scratch,
		}
		runMapOrder(pass)
		for _, f := range scratch {
			for _, sp := range spans[f.Pos.Filename] {
				if f.Pos.Line >= sp.start && f.Pos.Line <= sp.end {
					sp.node.Sources = append(sp.node.Sources, Source{Kind: "map-order escape", Pos: f.Pos})
					break
				}
			}
		}
	}

	g.ids = make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		g.ids = append(g.ids, id)
	}
	sort.Strings(g.ids)
	return g
}

// scanBody fills in a node's edges, sources, and go statements.
func (g *CallGraph) scanBody(n *Node) {
	info := n.Pkg.Info
	seen := map[string]bool{}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.GoStmt:
			n.Gos = append(n.Gos, v)
		case *ast.CallExpr:
			fn := calleeFuncInfo(info, v)
			if fn == nil {
				return true
			}
			if kind := sourceKind(fn); kind != "" {
				n.Sources = append(n.Sources, Source{Kind: kind, Pos: n.Pkg.Fset.Position(v.Pos())})
				return true
			}
			if !g.inModule(fn) {
				return true
			}
			id := fn.FullName()
			if id == n.ID || seen[id] {
				return true
			}
			if _, ok := g.Nodes[id]; !ok {
				return true // no body in the graph (interface method, generated decl)
			}
			seen[id] = true
			n.Calls = append(n.Calls, Edge{Callee: id, Pos: v.Pos()})
		}
		return true
	})
}

func (g *CallGraph) inModule(fn *types.Func) bool {
	if fn.Pkg() == nil || g.Mod == "" {
		return false
	}
	p := fn.Pkg().Path()
	return p == g.Mod || strings.HasPrefix(p, g.Mod+"/")
}

// SortedIDs returns every node ID in lexical order; iterate this, never
// the Nodes map, when determinism matters.
func (g *CallGraph) SortedIDs() []string {
	return g.ids
}

// ShortID trims the module path out of a node ID, leaving package-local
// names like "core.TrainCtx" or "(*serve.Server).enqueue".
func (g *CallGraph) ShortID(id string) string {
	if g.Mod == "" {
		return id
	}
	return strings.ReplaceAll(id, g.Mod+"/", "")
}

// Dump renders the whole graph deterministically — nodes in sorted ID
// order, edges and sources in source order — for tests and debugging.
func (g *CallGraph) Dump() string {
	var b strings.Builder
	for _, id := range g.ids {
		n := g.Nodes[id]
		b.WriteString("node ")
		b.WriteString(g.ShortID(id))
		if n.IsEntry {
			b.WriteString(" entry")
		}
		if n.HasCtx {
			b.WriteString(" ctx")
		}
		b.WriteByte('\n')
		for _, e := range n.Calls {
			fmt.Fprintf(&b, "  call %s\n", g.ShortID(e.Callee))
		}
		for _, s := range n.Sources {
			fmt.Fprintf(&b, "  source %s line %d\n", s.Kind, s.Pos.Line)
		}
		if len(n.Gos) > 0 {
			fmt.Fprintf(&b, "  go x%d\n", len(n.Gos))
		}
	}
	return b.String()
}
