package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerAllocInLoop reports per-iteration heap allocations inside hot
// functions (see hotpath.go for how the hot region is computed): make and
// new calls in loop bodies, slice/map composite literals in loop bodies,
// and append calls in a loop whose destination slice was declared in the
// same function, outside the loop, without any preallocated capacity —
// the classic grow-chain that reallocates O(log n) times per column.
//
// Allocations whose size is paid once (declared outside every loop, or
// preallocated with make(..., 0, cap) / a non-empty literal) stay silent,
// as does everything in cold code: an allocation in an offline experiment
// driver is not a serving-cost regression.
var AnalyzerAllocInLoop = &Analyzer{
	Name:      "alloc-in-loop",
	Doc:       "per-iteration make/new/literal allocations and growing appends in hot-path loops",
	RunModule: runAllocInLoop,
}

// sliceDecl records how a function-local slice variable was declared, for
// the append-without-preallocation check.
type sliceDecl struct {
	pos          int  // declaration offset within the file
	preallocated bool // carries capacity (make with cap/len, non-empty literal, or unknown origin)
}

func runAllocInLoop(mp *ModulePass) {
	eachHotNode(mp, func(n *Node) {
		info := n.Pkg.Info
		chain := mp.hotChain(n.ID)

		// Pass 1: how each function-local slice variable is declared.
		decls := map[types.Object]sliceDecl{}
		walkWithStack(n.Decl.Body, func(x ast.Node, stack []ast.Node) bool {
			switch v := x.(type) {
			case *ast.ValueSpec:
				for i, name := range v.Names {
					obj := info.Defs[name]
					if obj == nil || !isSliceType(obj.Type()) {
						continue
					}
					pre := false
					if i < len(v.Values) {
						pre = preallocates(info, v.Values[i])
					}
					decls[obj] = sliceDecl{pos: int(name.Pos()), preallocated: pre}
				}
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					name, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[name] // := definitions only
					if obj == nil || !isSliceType(obj.Type()) {
						continue
					}
					pre := true // unknown RHS shapes stay silent
					if i < len(v.Rhs) {
						pre = preallocates(info, v.Rhs[i])
					}
					decls[obj] = sliceDecl{pos: int(name.Pos()), preallocated: pre}
				}
			}
			return true
		})

		// Pass 2: report per-iteration allocations.
		walkWithStack(n.Decl.Body, func(x ast.Node, stack []ast.Node) bool {
			if !inLoop(stack) {
				return true
			}
			switch v := x.(type) {
			case *ast.CallExpr:
				switch builtinName(info, v.Fun) {
				case "make":
					mp.Reportf(v.Pos(),
						"make inside a loop allocates every iteration (%s); hoist it out or reuse a buffer",
						chain)
				case "new":
					mp.Reportf(v.Pos(),
						"new inside a loop allocates every iteration (%s); hoist it out or reuse a buffer",
						chain)
				case "append":
					if len(v.Args) == 0 {
						return true
					}
					dst, ok := v.Args[0].(*ast.Ident)
					if !ok {
						return true
					}
					obj := info.Uses[dst]
					d, declared := decls[obj]
					if !declared || d.preallocated {
						return true
					}
					if loop := nearestLoop(stack); loop != nil && d.pos < int(loop.Pos()) {
						mp.Reportf(v.Pos(),
							"append to %s grows an unpreallocated slice inside a loop (%s); declare it with make(..., 0, cap)",
							dst.Name, chain)
					}
				}
			case *ast.CompositeLit:
				t := info.TypeOf(v)
				if t == nil {
					return true
				}
				switch types.Unalias(t).Underlying().(type) {
				case *types.Slice:
					mp.Reportf(v.Pos(),
						"slice literal inside a loop allocates every iteration (%s); hoist it out or reuse a buffer",
						chain)
				case *types.Map:
					mp.Reportf(v.Pos(),
						"map literal inside a loop allocates every iteration (%s); hoist it out or reuse and clear it",
						chain)
				}
			}
			return true
		})
	})
}

// builtinName returns the name of the builtin a call expression invokes,
// or "" when the callee is not a builtin.
func builtinName(info *types.Info, fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Slice)
	return ok
}

// preallocates reports whether a slice-producing expression carries
// capacity: make with an explicit cap or non-zero length, a non-empty
// composite literal, or any origin the analyzer cannot see through
// (function results, slicing) — those stay silent rather than guessed at.
func preallocates(info *types.Info, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if builtinName(info, v.Fun) != "make" {
			return true // unknown origin
		}
		if len(v.Args) >= 3 {
			return true // explicit capacity
		}
		if len(v.Args) == 2 {
			// make([]T, n): preallocated unless n is the literal 0.
			if lit, ok := ast.Unparen(v.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
				return false
			}
			return true
		}
		return false
	case *ast.CompositeLit:
		return len(v.Elts) > 0
	case *ast.Ident:
		return v.Name != "nil"
	}
	return true
}
