package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// AnalyzerFloatEq flags == and != between floating-point operands outside
// test files. Accumulated rounding error makes exact float equality a
// correctness trap in numeric code; compare against a tolerance instead.
//
// Two idioms are exempt because they are exact by construction:
//   - comparison against a constant zero (x == 0 after "does this feature
//     ever fire" style guards — zero is exactly representable and these
//     sentinels are assigned, not computed);
//   - self-comparison (x != x), the standard NaN test.
var AnalyzerFloatEq = &Analyzer{
	Name: "float-eq",
	Doc:  "exact ==/!= on floating-point operands outside tests",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Package) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
				return true
			}
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true // x != x NaN idiom
			}
			pass.Reportf(bin.OpPos,
				"%s on float operands; compare with a tolerance (math.Abs(a-b) < eps) or justify with //shvet:ignore float-eq", bin.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	f, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	return ok && f == 0
}
