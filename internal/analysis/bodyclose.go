package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerBodyClose flags *http.Response values whose Body is not closed
// on every path. An unclosed body pins the underlying connection, so the
// client cannot reuse it and under load the fleet bleeds sockets —
// exactly the hedge-loser and early-error paths the gateway exercises.
// The check is interprocedural one hop deep: passing the response to a
// callee in the module that provably never closes (or re-escapes) it
// does not discharge the obligation. The branch where the paired error
// is non-nil is exempt, since the response is nil there by contract.
var AnalyzerBodyClose = &Analyzer{
	Name:      "body-close",
	Doc:       "http.Response bodies not closed on every path",
	RunModule: runBodyClose,
}

func runBodyClose(mp *ModulePass) {
	closes := map[string]bool{} // memo for closesOrEscapesBody, keyed id\x00paramIdx
	for _, id := range mp.Graph.SortedIDs() {
		n := mp.Graph.Nodes[id]
		info := n.Pkg.Info
		for _, acq := range collectAcquisitions(info, n.Decl.Body, func(call *ast.CallExpr) (int, int, bool) {
			return matchResponseCall(info, call)
		}) {
			if acq.name == "_" {
				mp.Reportf(acq.call.Pos(),
					"the *http.Response from this call is discarded; on success its body is never closed and the connection cannot be reused")
				continue
			}
			if acq.obj == nil {
				continue
			}
			passedTo := "" // first in-module callee seen that never closes the body
			rules := resRules{
				isRelease: isBodyCloseCall,
				isBenignUse: func(info *types.Info, ident *ast.Ident, path []ast.Node) bool {
					// Field and method access through the response —
					// resp.StatusCode, resp.Header, resp.Body handed to a
					// reader — neither closes nor hides the body.
					_, ok := path[0].(*ast.SelectorExpr)
					return ok
				},
				classifyCallArg: func(info *types.Info, call *ast.CallExpr, argIdx int) escapeKind {
					fn := calleeFuncInfo(info, call)
					if fn == nil {
						return escOther // function value: assume it manages the body
					}
					callee, ok := mp.Graph.Nodes[fn.FullName()]
					if !ok {
						return escOther // outside the module graph
					}
					sig, _ := fn.Type().(*types.Signature)
					if sig == nil || sig.Variadic() || argIdx >= sig.Params().Len() {
						return escOther
					}
					if closesOrEscapesBody(mp.Graph, closes, callee, argIdx, 0) {
						return escOther
					}
					if passedTo == "" {
						passedTo = mp.Graph.ShortID(callee.ID)
					}
					return escNone // callee provably never closes: keep tracking
				},
			}
			out := analyzeAcquisition(info, rules, acq)
			switch {
			case out.escaped:
			case out.loopDefer:
				mp.Reportf(acq.stmt.Pos(),
					"response body of %s acquired inside a loop is closed only via defer, which runs at function exit; close each iteration's body before the next one starts", acq.name)
			case out.leakPos != token.NoPos:
				where := "before its scope ends"
				if out.leakAtReturn {
					where = "on an early-return path"
				}
				suffix := ""
				if passedTo != "" {
					suffix = "; it is passed to " + passedTo + ", which never closes it"
				}
				mp.ReportFixf(acq.stmt.Pos(), bodyCloseFix(info, acq, out),
					"response body of %s is not closed %s%s; the connection cannot be reused", acq.name, where, suffix)
			}
		}
	}
}

// matchResponseCall reports whether call yields a caller-owned
// *http.Response: the result list is (*http.Response) or
// (*http.Response, error).
func matchResponseCall(info *types.Info, call *ast.CallExpr) (resIdx, errIdx int, ok bool) {
	t := info.TypeOf(call)
	switch v := t.(type) {
	case *types.Tuple:
		if v.Len() != 2 || !isHTTPResponsePtr(v.At(0).Type()) {
			return 0, 0, false
		}
		if !types.Identical(v.At(1).Type(), types.Universe.Lookup("error").Type()) {
			return 0, 0, false
		}
		return 0, 1, true
	default:
		if t != nil && isHTTPResponsePtr(t) {
			return 0, -1, true
		}
	}
	return 0, 0, false
}

func isHTTPResponsePtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

// isBodyCloseCall recognizes obj.Body.Close().
func isBodyCloseCall(info *types.Info, obj types.Object, call *ast.CallExpr) bool {
	closeSel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || closeSel.Sel.Name != "Close" {
		return false
	}
	bodySel, ok := closeSel.X.(*ast.SelectorExpr)
	if !ok || bodySel.Sel.Name != "Body" {
		return false
	}
	id, ok := bodySel.X.(*ast.Ident)
	return ok && obj != nil && info.Uses[id] == obj
}

// bodyCloseFix builds a "defer name.Body.Close()" insertion when it is
// provably safe: either the call has no paired error, or the statement
// immediately after the acquisition is the `if err != nil` check whose
// branch terminates — the defer then goes after that check, where the
// response is known non-nil.
func bodyCloseFix(info *types.Info, acq *acquisition, out resOutcome) *SuggestedFix {
	if out.anyRelease || acq.enclosedByLoop() {
		return nil
	}
	insert := acq.stmt.End()
	if acq.errObj != nil {
		next := nextStmtInBlock(acq)
		ifs, ok := next.(*ast.IfStmt)
		if !ok || ifs.Init != nil || ifs.Else != nil {
			return nil
		}
		if errBranch(info, acq.errObj, ifs.Cond) != errNonNilThen || !blockTerminates(ifs.Body) {
			return nil
		}
		insert = ifs.End()
	}
	return &SuggestedFix{
		Message: "insert defer " + acq.name + ".Body.Close() once the response is known good",
		Edits:   []TextEdit{{Start: insert, End: insert, NewText: "\ndefer " + acq.name + ".Body.Close()"}},
	}
}

// nextStmtInBlock returns the statement immediately after the
// acquisition in its enclosing block, or nil.
func nextStmtInBlock(acq *acquisition) ast.Stmt {
	for i := len(acq.stack) - 1; i > 0; i-- {
		if acq.stack[i] != ast.Node(acq.stmt) {
			continue
		}
		var list []ast.Stmt
		switch p := acq.stack[i-1].(type) {
		case *ast.BlockStmt:
			list = p.List
		case *ast.CaseClause:
			list = p.Body
		case *ast.CommClause:
			list = p.Body
		default:
			return nil
		}
		rest := stmtsAfter(list, acq.stmt)
		if len(rest) > 0 {
			return rest[0]
		}
		return nil
	}
	return nil
}

// blockTerminates reports whether the block's last statement leaves the
// function: return, panic, os.Exit, log.Fatal.
func blockTerminates(blk *ast.BlockStmt) bool {
	if len(blk.List) == 0 {
		return false
	}
	switch last := blk.List[len(blk.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if pkg, ok := sel.X.(*ast.Ident); ok {
					if pkg.Name == "os" && name == "Exit" {
						return true
					}
					if pkg.Name == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln") {
						return true
					}
				}
			}
		}
	}
	return false
}

// closesOrEscapesBody reports whether the callee, given the response as
// its paramIdx-th parameter, either closes its body or lets it escape
// further than the walker can see (returned, stored, captured, handed
// to an unknown callee). Only a false answer — the callee provably just
// reads the response — keeps the caller's obligation alive.
func closesOrEscapesBody(g *CallGraph, memo map[string]bool, n *Node, paramIdx int, depth int) bool {
	key := n.ID + "\x00" + string(rune('0'+paramIdx))
	if v, ok := memo[key]; ok {
		return v
	}
	if depth > 3 {
		return true
	}
	memo[key] = true // break recursion cycles toward the safe answer
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil || paramIdx >= sig.Params().Len() {
		return true
	}
	pvar := sig.Params().At(paramIdx)
	info := n.Pkg.Info

	result := false
	walkWithStack(n.Decl.Body, func(x ast.Node, stack []ast.Node) bool {
		if result {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok || info.Uses[id] != types.Object(pvar) {
			return true
		}
		path := make([]ast.Node, 0, len(stack)-1)
		for i := len(stack) - 2; i >= 0; i-- {
			path = append(path, stack[i])
		}
		if call := enclosingReleaseCall(id, path); call != nil && isBodyCloseCall(info, pvar, call) {
			result = true
			return true
		}
		if len(path) == 0 {
			result = true
			return true
		}
		switch p := path[0].(type) {
		case *ast.SelectorExpr:
			return true // field/method read
		case *ast.BinaryExpr:
			if p.Op == token.EQL || p.Op == token.NEQ {
				return true // nil check
			}
			result = true
		case *ast.CallExpr:
			for i, arg := range p.Args {
				if arg != ast.Expr(id) {
					continue
				}
				fn := calleeFuncInfo(info, p)
				if fn == nil {
					result = true
					return true
				}
				callee, ok := g.Nodes[fn.FullName()]
				if !ok {
					result = true
					return true
				}
				csig, _ := fn.Type().(*types.Signature)
				if csig == nil || csig.Variadic() || i >= csig.Params().Len() {
					result = true
					return true
				}
				if closesOrEscapesBody(g, memo, callee, i, depth+1) {
					result = true
				}
				return true
			}
			result = true
		default:
			result = true // returned, stored, captured, address taken, ...
		}
		return true
	})
	memo[key] = result
	return result
}
