package analysis

import (
	"strings"
	"testing"
)

// TestParseDirective is the table-driven contract for //shvet:ignore
// payload parsing: comma lists (with or without spaces), the "all"
// wildcard, mandatory reasons, and unknown-name rejection.
func TestParseDirective(t *testing.T) {
	known := knownAnalyzerNames()
	tests := []struct {
		name      string
		payload   string
		analyzers []string
		reason    string
		errSubstr string // non-empty means an error is expected
	}{
		{
			name:      "single analyzer",
			payload:   " global-rand seeded elsewhere",
			analyzers: []string{"global-rand"},
			reason:    "seeded elsewhere",
		},
		{
			name:      "tight comma list",
			payload:   " global-rand,float-eq both fine here",
			analyzers: []string{"global-rand", "float-eq"},
			reason:    "both fine here",
		},
		{
			name:      "space after comma",
			payload:   " global-rand, float-eq, map-order spaced list",
			analyzers: []string{"global-rand", "float-eq", "map-order"},
			reason:    "spaced list",
		},
		{
			name:      "comma floating between names",
			payload:   " global-rand , float-eq detached comma",
			analyzers: []string{"global-rand", "float-eq"},
			reason:    "detached comma",
		},
		{
			name:      "all wildcard",
			payload:   " all demo code",
			analyzers: []string{"all"},
			reason:    "demo code",
		},
		{
			name:      "module analyzers are known",
			payload:   " nondet-flow, ctx-flow, lock-balance, goroutine-leak new suite",
			analyzers: []string{"nondet-flow", "ctx-flow", "lock-balance", "goroutine-leak"},
			reason:    "new suite",
		},
		{
			name:      "empty payload",
			payload:   "",
			errSubstr: "missing analyzer list",
		},
		{
			name:      "missing reason",
			payload:   " global-rand",
			errSubstr: "missing reason",
		},
		{
			name:      "missing reason after spaced list",
			payload:   " global-rand, float-eq",
			errSubstr: "missing reason",
		},
		{
			name:      "unknown analyzer",
			payload:   " no-such-pass because reasons",
			errSubstr: `unknown analyzer "no-such-pass"`,
		},
		{
			name:      "unknown name buried in list",
			payload:   " global-rand,typo-here some reason",
			errSubstr: `unknown analyzer "typo-here"`,
		},
		{
			name:      "trailing comma swallows the next word",
			payload:   " global-rand, some reason",
			errSubstr: `unknown analyzer "some"`,
		},
		{
			name:      "empty name from doubled comma",
			payload:   " global-rand,, float-eq reason",
			errSubstr: "empty analyzer name",
		},
		{
			name:      "directive pseudo-analyzer is not suppressible",
			payload:   " directive hush",
			errSubstr: `unknown analyzer "directive"`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			sup, err := parseDirective(tc.payload, known)
			if tc.errSubstr != "" {
				if err == nil {
					t.Fatalf("parseDirective(%q) = %+v, want error containing %q", tc.payload, sup, tc.errSubstr)
				}
				if !strings.Contains(err.Error(), tc.errSubstr) {
					t.Fatalf("parseDirective(%q) error = %q, want substring %q", tc.payload, err, tc.errSubstr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseDirective(%q): %v", tc.payload, err)
			}
			if got, want := strings.Join(sup.analyzers, "|"), strings.Join(tc.analyzers, "|"); got != want {
				t.Errorf("analyzers = %q, want %q", got, want)
			}
			if sup.reason != tc.reason {
				t.Errorf("reason = %q, want %q", sup.reason, tc.reason)
			}
		})
	}
}

// TestParseDirectiveCoverage ties the table above to covers(): a spaced
// list suppresses every listed analyzer and nothing else.
func TestParseDirectiveCoverage(t *testing.T) {
	sup, err := parseDirective(" global-rand, float-eq spaced", knownAnalyzerNames())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"global-rand", "float-eq"} {
		if !sup.covers(name) {
			t.Errorf("covers(%q) = false, want true", name)
		}
	}
	if sup.covers("map-order") {
		t.Error("covers(map-order) = true, want false")
	}
}

// TestLineCount pins the trailing-newline edge the last-line directive
// check depends on.
func TestLineCount(t *testing.T) {
	tests := []struct {
		src  string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"a\n", 1},
		{"a\nb", 2},
		{"a\nb\n", 2},
	}
	for _, tc := range tests {
		if got := lineCount([]byte(tc.src)); got != tc.want {
			t.Errorf("lineCount(%q) = %d, want %d", tc.src, got, tc.want)
		}
	}
}
