package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file implements the shared machinery of the performance-cost
// analyzers (alloc-in-loop, string-churn, defer-in-loop, boxing): the
// *hot region* of the module call graph, and a loop-aware AST walk over
// the bodies of hot functions.
//
// The hot region is the set of functions reachable on the call graph
// from a hot entry point. Hot entry points are the exported inference
// surface — functions and methods whose name starts with Predict, Infer,
// Featurize or Extract — plus any function explicitly rooted with a
//
//	//shvet:hotpath [reason]
//
// directive placed in (or immediately above) the function's doc comment.
// The directive exists for hot code that is only reachable dynamically:
// worker-pool bodies, handler closures behind an http mux, and similar
// call edges the static graph cannot see. A hotpath directive that does
// not attach to any function declaration is reported as a "directive"
// finding, the same policy as a dangling //shvet:ignore.
//
// Cold code — everything outside the region — is deliberately out of
// scope for the perf analyzers: an allocation in an offline experiment
// driver is not a serving-cost regression, and reporting it would train
// people to ignore the analyzers.

// hotPrefixes match the serving-cost entry points: per-column inference
// and featurization. Deliberately narrower than entryPrefixes (no Train,
// Table, Figure): training and experiment drivers are offline.
var hotPrefixes = []string{"Predict", "Infer", "Featurize", "Extract"}

// hotDirective marks a function as a hot-region root.
const hotDirective = "shvet:hotpath"

func isHotEntry(n *Node) bool {
	name := n.Fn.Name()
	if !ast.IsExported(name) {
		return false
	}
	for _, p := range hotPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// hotRegion returns (building on first use) the hot region of the module
// graph: node ID -> crumb recording how the BFS first reached it, exactly
// like nondet-flow's reachability, so chains render deterministically.
// Dangling //shvet:hotpath directives are reported once, on first build.
func (p *ModulePass) hotRegion() map[string]crumb {
	if p.hot != nil {
		return p.hot
	}
	g := p.Graph

	// Collect //shvet:hotpath directive positions from the non-test files
	// the graph was built over.
	type directivePos struct {
		pos  token.Position
		used bool
	}
	var directives []*directivePos
	byFile := map[string][]*directivePos{}
	for _, pkg := range p.Pkgs {
		if strings.HasSuffix(pkg.ImportPath, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
				continue
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if text != hotDirective && !strings.HasPrefix(text, hotDirective+" ") {
						continue
					}
					d := &directivePos{pos: pkg.Fset.Position(c.Slash)}
					directives = append(directives, d)
					byFile[d.pos.Filename] = append(byFile[d.pos.Filename], d)
				}
			}
		}
	}

	// A node is rooted when a directive sits on the declaration line, on
	// the line directly above it, or anywhere inside its doc comment.
	rooted := map[string]bool{}
	for _, id := range g.SortedIDs() {
		n := g.Nodes[id]
		declPos := n.Pkg.Fset.Position(n.Decl.Pos())
		lo := declPos.Line - 1
		if n.Decl.Doc != nil {
			lo = n.Pkg.Fset.Position(n.Decl.Doc.Pos()).Line
		}
		for _, d := range byFile[declPos.Filename] {
			if d.pos.Line >= lo && d.pos.Line <= declPos.Line {
				rooted[id] = true
				d.used = true
			}
		}
	}
	for _, d := range directives {
		if !d.used {
			*p.findings = append(*p.findings, Finding{
				Pos:      d.pos,
				Analyzer: DirectiveAnalyzer,
				Message:  "//shvet:hotpath directive does not attach to any function declaration; place it in (or directly above) the function's doc comment",
			})
		}
	}

	seen := map[string]crumb{}
	var queue []string
	for _, id := range g.SortedIDs() {
		if isHotEntry(g.Nodes[id]) || rooted[id] {
			seen[id] = crumb{entry: id}
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, e := range g.Nodes[id].Calls {
			if _, ok := seen[e.Callee]; ok {
				continue
			}
			seen[e.Callee] = crumb{parent: id, entry: seen[id].entry}
			queue = append(queue, e.Callee)
		}
	}
	p.hot = seen
	return seen
}

// hotChain renders "entry E, chain: E -> ... -> id" for a hot node, the
// suffix every perf finding carries so the reader sees why the function
// is considered hot.
func (p *ModulePass) hotChain(id string) string {
	region := p.hotRegion()
	c := region[id]
	return "hot via entry " + p.Graph.ShortID(c.entry) + ", chain: " + renderChain(p.Graph, region, id)
}

// inLoop reports whether the node at the top of stack executes once per
// iteration of an enclosing for/range statement in the same function: it
// is inside a loop body (or a for-loop's condition/post statement, which
// also run per iteration), with no function-literal boundary in between.
// A range expression runs once, so it does not count.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		switch v := stack[i-1].(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			c := stack[i]
			if c == ast.Node(v.Body) || c == ast.Node(v.Cond) || c == ast.Node(v.Post) {
				return true
			}
		case *ast.RangeStmt:
			if stack[i] == ast.Node(v.Body) {
				return true
			}
		}
	}
	return false
}

// nearestLoop returns the innermost enclosing for/range statement of the
// node at the top of stack (under the same function-literal boundary), or
// nil when there is none.
func nearestLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i > 0; i-- {
		switch v := stack[i-1].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.ForStmt:
			c := stack[i]
			if c == ast.Node(v.Body) || c == ast.Node(v.Cond) || c == ast.Node(v.Post) {
				return v
			}
		case *ast.RangeStmt:
			if stack[i] == ast.Node(v.Body) {
				return v
			}
		}
	}
	return nil
}

// walkWithStack runs fn over every node of body in source order, passing
// the ancestor stack (stack[len-1] is the node itself). fn returning
// false prunes the subtree, like ast.Inspect.
func walkWithStack(body ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// Keep the stack balanced: Inspect still sends the nil pop
			// only for nodes it descended into, so pop here instead.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// eachHotNode invokes fn for every function in the hot region, in sorted
// node-ID order.
func eachHotNode(mp *ModulePass, fn func(n *Node)) {
	region := mp.hotRegion()
	for _, id := range mp.Graph.SortedIDs() {
		if _, ok := region[id]; !ok {
			continue
		}
		fn(mp.Graph.Nodes[id])
	}
}
