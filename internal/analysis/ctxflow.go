package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxFlow flags functions that receive a context.Context but fail
// to thread it through: either passing a fresh context.Background() or
// context.TODO() to a ctx-accepting callee, or calling a ctx-less
// function X when a ctx-threaded sibling XCtx exists in the module. Both
// detach the callee from the caller's span tree and deadline — the exact
// regression the obs tracing layer exists to prevent.
var AnalyzerCtxFlow = &Analyzer{
	Name:      "ctx-flow",
	Doc:       "received context.Context dropped or replaced with Background/TODO on the way down",
	RunModule: runCtxFlow,
}

func runCtxFlow(mp *ModulePass) {
	g := mp.Graph
	for _, id := range g.SortedIDs() {
		n := g.Nodes[id]
		if !n.HasCtx {
			continue
		}
		info := n.Pkg.Info
		short := g.ShortID(id)
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFuncInfo(info, call)
			if fn == nil {
				return true
			}
			if hasContextParam(fn) {
				for _, arg := range call.Args {
					if name := freshContextCall(info, arg); name != "" {
						mp.Reportf(arg.Pos(),
							"%s receives a context but passes context.%s() to %s, detaching it from the caller's spans and deadline; thread ctx through instead",
							short, name, fn.Name())
					}
				}
				return true
			}
			if sib, ok := g.Nodes[fn.FullName()+"Ctx"]; ok && sib.HasCtx {
				mp.Reportf(call.Pos(),
					"%s receives a context but calls %s, dropping it; use %s so spans and deadlines propagate",
					short, fn.Name(), fn.Name()+"Ctx")
			}
			return true
		})
	}
}

// freshContextCall reports whether e is a direct context.Background() or
// context.TODO() call, returning the function name or "".
func freshContextCall(info *types.Info, e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFuncInfo(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}
