package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerCancelLeak flags context.WithCancel/WithTimeout/WithDeadline
// calls whose CancelFunc is discarded, or is not guaranteed to be called
// on every path out of the variable's scope. A context whose cancel
// never runs pins its parent's resources (and, for WithTimeout, a timer)
// until the deadline fires — or forever. Contexts created per loop
// iteration whose cancel is merely deferred are flagged too: the defers
// pile up until function exit. Where the repair is mechanical the
// finding carries a fix inserting "defer cancel()".
var AnalyzerCancelLeak = &Analyzer{
	Name:      "cancel-leak",
	Doc:       "context CancelFuncs discarded or not called on every path",
	RunModule: runCancelLeak,
}

// ctxWithFuncs are the context constructors that return a cancel func as
// their second result. The bool marks the plain CancelFunc variants
// (niladic), for which inserting "defer cancel()" is mechanical.
var ctxWithFuncs = map[string]bool{
	"WithCancel":        true,
	"WithTimeout":       true,
	"WithDeadline":      true,
	"WithCancelCause":   false,
	"WithTimeoutCause":  false,
	"WithDeadlineCause": false,
}

func runCancelLeak(mp *ModulePass) {
	for _, id := range mp.Graph.SortedIDs() {
		n := mp.Graph.Nodes[id]
		info := n.Pkg.Info
		for _, acq := range collectAcquisitions(info, n.Decl.Body, func(call *ast.CallExpr) (int, int, bool) {
			if ctxCancelCtor(info, call) == "" {
				return 0, 0, false
			}
			return 1, -1, true
		}) {
			ctor := ctxCancelCtor(info, acq.call)
			if acq.name == "_" {
				fix := discardedCancelFix(mp, n, acq, ctor)
				mp.ReportFixf(acq.call.Pos(), fix,
					"CancelFunc from context.%s is discarded; the context can never be canceled early and leaks its resources until the deadline, if there is one", ctor)
				continue
			}
			if acq.obj == nil {
				continue
			}
			out := analyzeAcquisition(info, cancelLeakRules(), acq)
			switch {
			case out.escaped:
			case out.loopDefer:
				mp.Reportf(acq.stmt.Pos(),
					"context.%s inside a loop releases %s only via defer, which runs at function exit; cancel each iteration's context before the next one starts", ctor, acq.name)
			case out.leakPos != token.NoPos:
				// CancelFuncs are documented idempotent, so a blanket
				// "defer cancel()" right after the acquisition is safe
				// even when some path already cancels directly.
				var fix *SuggestedFix
				if ctxWithFuncs[ctor] && !acq.enclosedByLoop() {
					fix = &SuggestedFix{
						Message: "insert defer " + acq.name + "() after the acquisition",
						Edits:   []TextEdit{{Start: acq.stmt.End(), End: acq.stmt.End(), NewText: "\ndefer " + acq.name + "()"}},
					}
				}
				where := "before its scope ends"
				if out.leakAtReturn {
					where = "on an early-return path"
				}
				mp.ReportFixf(acq.stmt.Pos(), fix,
					"CancelFunc %s from context.%s is not called %s; the context leaks", acq.name, ctor, where)
			}
		}
	}
}

// cancelLeakRules: the only legitimate local uses of a cancel func are
// calling it and deferring it; anything else is an escape.
func cancelLeakRules() resRules {
	return resRules{
		isRelease: func(info *types.Info, obj types.Object, call *ast.CallExpr) bool {
			id, ok := call.Fun.(*ast.Ident)
			return ok && obj != nil && info.Uses[id] == obj
		},
	}
}

// ctxCancelCtor returns the context constructor name ("WithCancel", ...)
// when call is one, or "".
func ctxCancelCtor(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFuncInfo(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if _, ok := ctxWithFuncs[fn.Name()]; !ok {
		return ""
	}
	return fn.Name()
}

// discardedCancelFix builds the fix for `ctx, _ := context.WithX(...)`:
// name the cancel func and defer it. Skipped when "cancel" is already in
// scope (the rename would shadow or collide) or the constructor's cancel
// func takes arguments.
func discardedCancelFix(mp *ModulePass, n *Node, acq *acquisition, ctor string) *SuggestedFix {
	if !ctxWithFuncs[ctor] || acq.enclosedByLoop() {
		return nil
	}
	as, ok := acq.stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 2 || as.Tok != token.DEFINE {
		return nil
	}
	blank, ok := as.Lhs[1].(*ast.Ident)
	if !ok || blank.Name != "_" {
		return nil
	}
	if scope := n.Pkg.Types.Scope().Innermost(acq.stmt.Pos()); scope != nil {
		if _, obj := scope.LookupParent("cancel", acq.stmt.Pos()); obj != nil {
			return nil
		}
	}
	return &SuggestedFix{
		Message: "name the CancelFunc and defer it",
		Edits: []TextEdit{
			{Start: blank.Pos(), End: blank.End(), NewText: "cancel"},
			{Start: acq.stmt.End(), End: acq.stmt.End(), NewText: "\ndefer cancel()"},
		},
	}
}
