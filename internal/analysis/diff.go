package analysis

import (
	"fmt"
	"strings"
)

// UnifiedDiff renders a unified diff (3 lines of context) between a and
// b, labeled "--- a/name" / "+++ b/name". It returns "" when the inputs
// are byte-identical. The implementation is a plain longest-common-
// subsequence line diff — quadratic, which is fine for source files —
// so `shvet -fix -dry-run` needs nothing outside the standard library.
func UnifiedDiff(name string, a, b []byte) string {
	if string(a) == string(b) {
		return ""
	}
	al := splitLines(a)
	bl := splitLines(b)

	// LCS table over lines. lcs[i][j] = length of the LCS of al[i:], bl[j:].
	lcs := make([][]int, len(al)+1)
	for i := range lcs {
		lcs[i] = make([]int, len(bl)+1)
	}
	for i := len(al) - 1; i >= 0; i-- {
		for j := len(bl) - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	// Walk the table into an edit script of keep/delete/insert ops.
	type op struct {
		kind byte // ' ', '-', '+'
		text string
	}
	var ops []op
	i, j := 0, 0
	for i < len(al) && j < len(bl) {
		switch {
		case al[i] == bl[j]:
			ops = append(ops, op{' ', al[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, op{'-', al[i]})
			i++
		default:
			ops = append(ops, op{'+', bl[j]})
			j++
		}
	}
	for ; i < len(al); i++ {
		ops = append(ops, op{'-', al[i]})
	}
	for ; j < len(bl); j++ {
		ops = append(ops, op{'+', bl[j]})
	}

	// Group changed ops into hunks with up to `context` common lines on
	// each side; hunks closer than 2*context merge.
	const context = 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", name, name)
	aLine, bLine := 1, 1 // 1-based line numbers of the next op's position
	k := 0
	for k < len(ops) {
		if ops[k].kind == ' ' {
			aLine++
			bLine++
			k++
			continue
		}
		// Found a change at ops[k]; open a hunk spanning every change
		// within 2*context common lines of the previous one.
		start := k - context
		if start < 0 {
			start = 0
		}
		lead := k - start // common lines re-included before the change
		end := k
		last := k // index just past the last changed op in the hunk
		for end < len(ops) {
			if ops[end].kind != ' ' {
				end++
				last = end
				continue
			}
			run := 0
			for end+run < len(ops) && ops[end+run].kind == ' ' {
				run++
			}
			if end+run < len(ops) && run <= 2*context {
				end += run // common gap small enough: keep extending
				continue
			}
			break
		}
		tail := last + context
		if tail > len(ops) {
			tail = len(ops)
		}
		hunk := ops[start:tail]

		aStart, bStart := aLine-lead, bLine-lead
		var aCount, bCount int
		for _, o := range hunk {
			switch o.kind {
			case ' ':
				aCount++
				bCount++
			case '-':
				aCount++
			case '+':
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart, aCount, bStart, bCount)
		for _, o := range hunk {
			sb.WriteByte(o.kind)
			sb.WriteString(o.text)
			sb.WriteByte('\n')
		}
		for _, o := range ops[k:tail] {
			switch o.kind {
			case ' ':
				aLine++
				bLine++
			case '-':
				aLine++
			case '+':
				bLine++
			}
		}
		k = tail
	}
	return sb.String()
}

// splitLines splits src into lines without their newlines; a trailing
// newline does not produce a final empty line.
func splitLines(src []byte) []string {
	s := string(src)
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}
