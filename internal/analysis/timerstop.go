package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerTimerStop flags timer misuse in long-lived goroutines — the
// health probers, queue drainers, and flight recorders this fleet runs
// for its whole lifetime. Two shapes are caught: a time.NewTicker /
// time.NewTimer whose Stop is never called in a goroutine whose loop
// also has no external exit (no ctx.Done, no done channel — the timer
// and the goroutine both live forever), and time.After inside a loop,
// which allocates a fresh timer every iteration with nothing ever
// stopping them. Missing Stops get a "defer t.Stop()" fix.
var AnalyzerTimerStop = &Analyzer{
	Name:      "timer-stop",
	Doc:       "unstopped tickers/timers and per-iteration time.After in long-lived goroutines",
	RunModule: runTimerStop,
}

func runTimerStop(mp *ModulePass) {
	// The same callee body can be spawned from several go statements;
	// collect findings keyed by position so each is reported once. The
	// node walk is deterministic, so insertion order is too; Analyze
	// sorts all findings by position at the end regardless.
	type tsFinding struct {
		fix *SuggestedFix
		msg string
	}
	found := map[token.Pos]tsFinding{}
	var order []token.Pos
	record := func(pos token.Pos, f tsFinding) {
		if _, ok := found[pos]; ok {
			return
		}
		found[pos] = f
		order = append(order, pos)
	}

	for _, id := range mp.Graph.SortedIDs() {
		n := mp.Graph.Nodes[id]
		for _, goStmt := range n.Gos {
			body, info := timerGoroutineBody(mp.Graph, n, goStmt)
			if body == nil || !containsLoop(body) {
				continue
			}

			// time.After allocating a timer per loop iteration.
			walkWithStack(body, func(x ast.Node, stack []ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok || !isTimeCtor(info, call, "After") {
					return true
				}
				if !loopEnclosedAnywhere(stack, body) {
					return true
				}
				record(call.Pos(), tsFinding{msg: "time.After inside this goroutine's loop allocates a new timer every iteration and none are ever stopped; hoist a time.NewTimer or time.NewTicker out of the loop"})
				return true
			})

			// NewTicker/NewTimer without Stop and without an external exit.
			for _, acq := range collectAcquisitions(info, body, func(call *ast.CallExpr) (int, int, bool) {
				if isTimeCtor(info, call, "NewTicker") || isTimeCtor(info, call, "NewTimer") {
					return 0, -1, true
				}
				return 0, 0, false
			}) {
				ctor := "NewTicker"
				if isTimeCtor(info, acq.call, "NewTimer") {
					ctor = "NewTimer"
				}
				if acq.name == "_" {
					record(acq.call.Pos(), tsFinding{msg: "the " + kindOfTimeCtor(ctor) + " from time." + ctor + " is discarded and can never be stopped"})
					continue
				}
				if acq.obj == nil {
					continue
				}
				// The path walk's leak positions are beside the point here:
				// a timer in a forever-goroutine leaks unless Stop appears
				// somewhere (the usual shape, `for { <-t.C }`, never falls
				// off any path at all). Never-stopped and never-escaped is
				// the finding.
				out := analyzeAcquisition(info, timerStopRules(), acq)
				if out.escaped || out.anyRelease {
					continue
				}
				if hasExternalExit(info, body, acq.obj) {
					// The goroutine can be told to stop; the unstopped
					// timer is collected when it exits.
					continue
				}
				var fix *SuggestedFix
				if !acq.enclosedByLoop() {
					fix = &SuggestedFix{
						Message: "insert defer " + acq.name + ".Stop() after the acquisition",
						Edits:   []TextEdit{{Start: acq.stmt.End(), End: acq.stmt.End(), NewText: "\ndefer " + acq.name + ".Stop()"}},
					}
				}
				record(acq.stmt.Pos(), tsFinding{
					fix: fix,
					msg: "time." + ctor + " in a long-lived goroutine is never stopped and its loop has no external exit (no context or done channel); the " + kindOfTimeCtor(ctor) + " and the goroutine leak",
				})
			}
		}
	}

	for _, pos := range order {
		f := found[pos]
		mp.ReportFixf(pos, f.fix, "%s", f.msg)
	}
}

// timerStopRules: Stop releases; channel reads (t.C) and Reset are
// benign; handing the timer anywhere else escapes.
func timerStopRules() resRules {
	return resRules{
		isRelease: func(info *types.Info, obj types.Object, call *ast.CallExpr) bool {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Stop" {
				return false
			}
			id, ok := sel.X.(*ast.Ident)
			return ok && obj != nil && info.Uses[id] == obj
		},
		isBenignUse: func(info *types.Info, ident *ast.Ident, path []ast.Node) bool {
			_, ok := path[0].(*ast.SelectorExpr)
			return ok // t.C, t.Reset(...)
		},
	}
}

// timerGoroutineBody resolves the body a go statement runs — the
// function literal itself or the declaration of a statically-resolved
// callee in the module. Unlike goroutine-leak's resolver it does not
// stop at signal-carrying parameters: timer hygiene matters even in
// goroutines that can be shut down.
func timerGoroutineBody(g *CallGraph, n *Node, goStmt *ast.GoStmt) (*ast.BlockStmt, *types.Info) {
	if lit, ok := goStmt.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, n.Pkg.Info
	}
	fn := calleeFuncInfo(n.Pkg.Info, goStmt.Call)
	if fn == nil {
		return nil, nil
	}
	callee, ok := g.Nodes[fn.FullName()]
	if !ok {
		return nil, nil
	}
	return callee.Decl.Body, callee.Pkg.Info
}

// isTimeCtor reports whether call is time.<name>(...).
func isTimeCtor(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFuncInfo(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == name
}

func kindOfTimeCtor(ctor string) string {
	if ctor == "NewTimer" {
		return "timer"
	}
	return "ticker"
}

// loopEnclosedAnywhere reports whether the node at the top of the stack
// sits inside a for/range statement within body. Function literals cut
// the search: a time.After inside a nested literal runs on that
// literal's schedule, not once per iteration of the outer loop.
func loopEnclosedAnywhere(stack []ast.Node, body *ast.BlockStmt) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
		if stack[i] == ast.Node(body) {
			return false
		}
	}
	return false
}

// hasExternalExit reports whether the goroutine body can be told to
// stop from outside: it reads ctx.Done()/ctx.Err(), or touches a
// channel other than the timer's own C field.
func hasExternalExit(info *types.Info, body *ast.BlockStmt, timerObj types.Object) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.CallExpr:
			if fn := calleeFuncInfo(info, v); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
					isContextType(sig.Recv().Type()) && (fn.Name() == "Done" || fn.Name() == "Err") {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if isChanValued(info.TypeOf(v)) && !selectorRootedAt(info, v, timerObj) {
				found = true
			}
		case *ast.Ident:
			// A field ident is the Sel half of some selector (t.C, p.stop)
			// and is judged above with its root; only standalone
			// channel-typed identifiers count here.
			if vv, ok := info.Uses[v].(*types.Var); ok && vv.IsField() {
				return true
			}
			if isChanValued(info.TypeOf(v)) && info.Uses[v] != timerObj {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChanValued(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok
}

// selectorRootedAt reports whether the selector chain bottoms out at an
// identifier bound to obj (e.g. t.C for the tracked timer t).
func selectorRootedAt(info *types.Info, sel *ast.SelectorExpr, obj types.Object) bool {
	cur := sel.X
	for {
		switch v := cur.(type) {
		case *ast.SelectorExpr:
			cur = v.X
		case *ast.Ident:
			return obj != nil && info.Uses[v] == obj
		default:
			return false
		}
	}
}
