package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerSyncCopy flags function signatures that pass or return a
// sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond,
// sync.Map or sync.Pool by value — directly, or buried inside a struct or
// array. A copied lock guards nothing: the copy and the original
// synchronise independently, which is a silent data race. Pointers,
// slices, maps and channels of lock-bearing types are fine.
var AnalyzerSyncCopy = &Analyzer{
	Name: "sync-copy",
	Doc:  "sync primitives passed or returned by value",
	Run:  runSyncCopy,
}

var syncNoCopy = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

func runSyncCopy(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ft *ast.FuncType
			var recv *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, recv = fn.Type, fn.Recv
			case *ast.FuncLit:
				ft = fn.Type
			default:
				return true
			}
			checkFieldList(pass, recv, "receiver")
			checkFieldList(pass, ft.Params, "parameter")
			checkFieldList(pass, ft.Results, "result")
			return true
		})
	}
}

func checkFieldList(pass *Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if name, ok := carriesLock(t, map[types.Type]bool{}); ok {
			pass.Reportf(field.Type.Pos(),
				"%s copies sync.%s by value; pass a pointer so both sides share one %s", kind, name, name)
		}
	}
}

// carriesLock reports whether copying a value of type t copies a sync
// primitive, and which one. seen guards against recursive types.
func carriesLock(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if pkg := u.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" && syncNoCopy[u.Obj().Name()] {
			return u.Obj().Name(), true
		}
		return carriesLock(u.Underlying(), seen)
	case *types.Alias:
		return carriesLock(types.Unalias(u), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := carriesLock(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return carriesLock(u.Elem(), seen)
	}
	return "", false
}
