package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// buildFixtureGraph loads the fixture module from scratch — fresh
// FileSet, fresh type-checker — and builds its call graph.
func buildFixtureGraph(t *testing.T) *CallGraph {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "fixtures"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load()
	if err != nil {
		t.Fatal(err)
	}
	return BuildCallGraph(pkgs)
}

// TestCallGraphDeterministic builds the fixture graph twice from
// independent loaders and requires byte-identical dumps: node order,
// edge order, source order, everything.
func TestCallGraphDeterministic(t *testing.T) {
	a := buildFixtureGraph(t).Dump()
	b := buildFixtureGraph(t).Dump()
	if a != b {
		t.Fatalf("call graph dump differs between two builds:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("call graph dump is empty")
	}
}

// TestCallGraphShape spot-checks the fixture graph: entries, ctx
// detection, edges, and sources land where the analyzers assume.
func TestCallGraphShape(t *testing.T) {
	g := buildFixtureGraph(t)

	node := func(id string) *Node {
		t.Helper()
		n, ok := g.Nodes[id]
		if !ok {
			t.Fatalf("node %q missing from graph; have %v", id, g.SortedIDs())
		}
		return n
	}

	entry := node("fixtures/nondetflow.PredictJittered")
	if !entry.IsEntry {
		t.Error("PredictJittered not detected as entry point")
	}
	if len(entry.Calls) != 1 || entry.Calls[0].Callee != "fixtures/nondetflow.stamp" {
		t.Errorf("PredictJittered calls = %+v, want one edge to stamp", entry.Calls)
	}

	fit := node("(*fixtures/nondetflow.Model).Fit")
	if !fit.IsEntry {
		t.Error("(*Model).Fit not detected as entry point")
	}

	clock := node("fixtures/nondetflow.clock")
	if clock.IsEntry {
		t.Error("unexported clock marked as entry point")
	}
	if len(clock.Sources) != 1 || clock.Sources[0].Kind != "time.Now" {
		t.Errorf("clock sources = %+v, want one time.Now", clock.Sources)
	}

	sample := node("fixtures/nondetflow.sample")
	if len(sample.Sources) != 1 || sample.Sources[0].Kind != "rand.Intn" {
		t.Errorf("sample sources = %+v, want one rand.Intn", sample.Sources)
	}

	dump := node("fixtures/nondetflow.TableDump")
	if len(dump.Sources) != 1 || dump.Sources[0].Kind != "map-order escape" {
		t.Errorf("TableDump sources = %+v, want one map-order escape", dump.Sources)
	}

	if n := node("fixtures/ctxflow.Good"); !n.HasCtx {
		t.Error("ctxflow.Good not detected as ctx-carrying")
	}
	if n := node("fixtures/ctxflow.Lookup"); n.HasCtx {
		t.Error("ctxflow.Lookup wrongly detected as ctx-carrying")
	}

	if n := node("(*fixtures/goroutineleak.Poller).StartPoller"); len(n.Gos) != 1 {
		t.Errorf("StartPoller go statements = %d, want 1", len(n.Gos))
	}

	if got, want := g.ShortID("(*fixtures/nondetflow.Model).Fit"), "(*nondetflow.Model).Fit"; got != want {
		t.Errorf("ShortID = %q, want %q", got, want)
	}

	for _, id := range g.SortedIDs() {
		if strings.HasSuffix(id, "_test") || strings.Contains(id, "_test.") {
			t.Errorf("test symbol %q leaked into the graph", id)
		}
	}
}
