package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoroutineLeak flags go statements whose goroutine can never be
// told to stop: the body loops (for/range) but contains no termination
// signal — no context.Context value, no channel operation or select, no
// sync.WaitGroup or sync.Cond — and none arrive through the spawned
// function's parameters. A straight-line goroutine finishes by itself
// and is fine; an unbounded loop with no signal outlives every caller.
var AnalyzerGoroutineLeak = &Analyzer{
	Name:      "goroutine-leak",
	Doc:       "go statements spawning unbounded loops with no termination signal",
	RunModule: runGoroutineLeak,
}

func runGoroutineLeak(mp *ModulePass) {
	g := mp.Graph
	for _, id := range g.SortedIDs() {
		n := g.Nodes[id]
		for _, goStmt := range n.Gos {
			body, info, sigFromParams := goroutineBody(g, n, goStmt)
			if body == nil || sigFromParams {
				continue
			}
			if !containsLoop(body) {
				continue
			}
			if hasTerminationSignal(info, body) {
				continue
			}
			mp.Reportf(goStmt.Pos(),
				"goroutine started by %s loops forever with no termination signal (no context, channel, select, or WaitGroup in its body); it cannot be shut down",
				g.ShortID(id))
		}
	}
}

// goroutineBody resolves the body the go statement will run: the literal
// itself, or the declaration of a statically-resolved callee within the
// module. sigFromParams is true when the spawned function's own
// parameters carry a stop signal (context, channel, or *sync.WaitGroup),
// in which case the caller has a handle on it by construction.
func goroutineBody(g *CallGraph, n *Node, goStmt *ast.GoStmt) (body *ast.BlockStmt, info *types.Info, sigFromParams bool) {
	if lit, ok := goStmt.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, n.Pkg.Info, false
	}
	fn := calleeFuncInfo(n.Pkg.Info, goStmt.Call)
	if fn == nil {
		return nil, nil, false
	}
	if signalInSignature(fn) {
		return nil, nil, true
	}
	callee, ok := g.Nodes[fn.FullName()]
	if !ok {
		return nil, nil, false
	}
	return callee.Decl.Body, callee.Pkg.Info, false
}

func signalInSignature(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isSignalType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isSignalType reports whether t can carry a stop signal: a channel, a
// context.Context, or a sync.WaitGroup/Cond (usually by pointer).
func isSignalType(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if isContextType(t) {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "WaitGroup" || obj.Name() == "Cond"
}

// containsLoop reports whether the body has any for or range statement.
func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
			return false
		}
		return !found
	})
	return found
}

// hasTerminationSignal reports whether the goroutine body touches
// anything that can end it: a select, a channel operation or
// channel-typed value, a context.Context value, or a WaitGroup/Cond.
func hasTerminationSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.Ident:
			if sigObjectType(info.TypeOf(v)) {
				found = true
			}
		case *ast.SelectorExpr:
			if sigObjectType(info.TypeOf(v)) {
				found = true
			}
		}
		return !found
	})
	return found
}

func sigObjectType(t types.Type) bool {
	return t != nil && isSignalType(t)
}
