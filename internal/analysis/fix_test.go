package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadDir loads the module rooted at root and runs the full suite.
func loadDir(t *testing.T, root string) ([]*Package, []Finding) {
	t.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", root, err)
	}
	pkgs, err := loader.Load()
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", root)
	}
	return pkgs, Analyze(pkgs, All())
}

// copyTree copies the fixfixtures module into a temp dir so applying
// fixes cannot dirty the checked-in tree.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// readGoSources returns filename -> bytes for every .go file under root.
func readGoSources(t *testing.T, root string) map[string][]byte {
	t.Helper()
	src := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		src[path] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestFixGolden applies the suite's suggested fixes to the fixfixtures
// module and compares every file against its .golden counterpart; it
// then re-analyzes the fixed tree and asserts a second pass is a no-op.
// Set SHVET_UPDATE_GOLDEN=1 to regenerate the goldens.
func TestFixGolden(t *testing.T) {
	orig, err := filepath.Abs(filepath.Join("testdata", "fixfixtures"))
	if err != nil {
		t.Fatal(err)
	}
	work := t.TempDir()
	copyTree(t, orig, work)

	pkgs, findings := loadDir(t, work)
	src := readGoSources(t, work)
	changed, applied, skipped, err := ApplyFixes(pkgs[0].Fset, src, findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(applied) != 4 {
		t.Errorf("applied %d fixes, want 4:", len(applied))
		for _, f := range applied {
			t.Logf("  applied: %s", f)
		}
	}
	suppressedSkips := 0
	for _, s := range skipped {
		if strings.Contains(s.Reason, "suppressed") {
			suppressedSkips++
		}
	}
	if suppressedSkips != 1 {
		t.Errorf("got %d suppressed-fix skips, want 1: %+v", suppressedSkips, skipped)
	}
	for path, data := range changed {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Every fixed file must match its golden; files without a golden
	// must come out untouched.
	err = filepath.WalkDir(work, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(work, path)
		if err != nil {
			return err
		}
		got, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		golden := filepath.Join(orig, rel+".golden")
		want, gerr := os.ReadFile(golden)
		if os.IsNotExist(gerr) {
			want, gerr = os.ReadFile(filepath.Join(orig, rel))
		}
		if gerr != nil {
			return gerr
		}
		if bytes.Equal(got, want) {
			return nil
		}
		if os.Getenv("SHVET_UPDATE_GOLDEN") != "" {
			return os.WriteFile(golden, got, 0o644)
		}
		t.Errorf("%s: post-fix content does not match golden\n--- got ---\n%s--- want ---\n%s", rel, got, want)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}

	// Idempotence: a second pass over the fixed tree changes nothing.
	pkgs2, findings2 := loadDir(t, work)
	src2 := readGoSources(t, work)
	changed2, applied2, _, err := ApplyFixes(pkgs2[0].Fset, src2, findings2)
	if err != nil {
		t.Fatalf("second ApplyFixes: %v", err)
	}
	if len(changed2) != 0 || len(applied2) != 0 {
		t.Errorf("second fix pass is not a no-op: %d files changed, %d fixes applied", len(changed2), len(applied2))
	}
}

// synthFinding builds a finding over the given source with one edit.
func synthFinding(fset *token.FileSet, file *token.File, start, end int, text, msg string) Finding {
	return Finding{
		Pos:      fset.Position(file.Pos(start)),
		Analyzer: "synthetic",
		Message:  msg,
		Fix: &SuggestedFix{
			Message: msg,
			Edits:   []TextEdit{{Start: file.Pos(start), End: file.Pos(end), NewText: text}},
		},
	}
}

func synthFile(src string) (*token.FileSet, *token.File) {
	fset := token.NewFileSet()
	f := fset.AddFile("p.go", -1, len(src))
	f.SetLinesForContent([]byte(src))
	return fset, f
}

const synthSrc = "package p\n\nfunc f() {}\n"

func TestFixOverlapRejected(t *testing.T) {
	fset, f := synthFile(synthSrc)
	// Both fixes rename the "f" ident (offset 16); the second must be
	// skipped whole.
	findings := []Finding{
		synthFinding(fset, f, 16, 17, "g", "first"),
		synthFinding(fset, f, 16, 17, "h", "second"),
	}
	changed, applied, skipped, err := ApplyFixes(fset, map[string][]byte{"p.go": []byte(synthSrc)}, findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(applied) != 1 || applied[0].Message != "first" {
		t.Fatalf("applied = %v, want just the first fix", applied)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0].Reason, "overlap") {
		t.Fatalf("skipped = %+v, want one overlap skip", skipped)
	}
	if got := string(changed["p.go"]); !strings.Contains(got, "func g()") {
		t.Errorf("changed content = %q, want func g()", got)
	}
}

func TestFixSameOffsetInsertionsRejected(t *testing.T) {
	fset, f := synthFile(synthSrc)
	end := len(synthSrc)
	findings := []Finding{
		synthFinding(fset, f, end, end, "\nfunc g() {}\n", "first"),
		synthFinding(fset, f, end, end, "\nfunc h() {}\n", "second"),
	}
	_, applied, skipped, err := ApplyFixes(fset, map[string][]byte{"p.go": []byte(synthSrc)}, findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(applied) != 1 || len(skipped) != 1 || !strings.Contains(skipped[0].Reason, "overlap") {
		t.Fatalf("applied=%v skipped=%+v, want second insertion rejected as ambiguous", applied, skipped)
	}
}

func TestFixSuppressedRefused(t *testing.T) {
	fset, f := synthFile(synthSrc)
	fdg := synthFinding(fset, f, 16, 17, "g", "rename")
	fdg.Suppressed = true
	fdg.Reason = "intentional"
	changed, applied, skipped, err := ApplyFixes(fset, map[string][]byte{"p.go": []byte(synthSrc)}, []Finding{fdg})
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(changed) != 0 || len(applied) != 0 {
		t.Fatalf("suppressed fix was applied: changed=%v applied=%v", changed, applied)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0].Reason, "suppressed") {
		t.Fatalf("skipped = %+v, want one suppressed-refusal", skipped)
	}
}

func TestFixUnformattableFails(t *testing.T) {
	fset, f := synthFile(synthSrc)
	findings := []Finding{synthFinding(fset, f, len(synthSrc), len(synthSrc), "}}}", "breakage")}
	if _, _, _, err := ApplyFixes(fset, map[string][]byte{"p.go": []byte(synthSrc)}, findings); err == nil {
		t.Fatal("ApplyFixes accepted a fix producing unparsable output")
	}
}

func TestUnifiedDiff(t *testing.T) {
	if d := UnifiedDiff("x.go", []byte("a\nb\n"), []byte("a\nb\n")); d != "" {
		t.Errorf("diff of identical content = %q, want empty", d)
	}
	d := UnifiedDiff("x.go", []byte("a\nb\nc\n"), []byte("a\nX\nc\n"))
	for _, want := range []string{"--- a/x.go", "+++ b/x.go", "@@", "-b", "+X"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
}
