package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerHandlerContract checks functions with the http.HandlerFunc
// signature against the ResponseWriter protocol: WriteHeader must not
// run twice on any path, must not run after the body has been written
// (net/http drops it with a log line and the client sees the wrong
// status), and a loop that feeds request-sized input into the hot
// inference path must either watch r.Context() or sit behind the
// admission gate — otherwise a canceled client keeps burning worker
// time. Helpers like writeJSON/writeError count as writes: the walk
// follows the ResponseWriter argument through module-internal calls.
var AnalyzerHandlerContract = &Analyzer{
	Name:      "handler-contract",
	Doc:       "double WriteHeader, writes after body, and uncancellable hot loops in HTTP handlers",
	RunModule: runHandlerContract,
}

// Write states for one path through a handler.
const (
	wNone   = 0 // nothing sent
	wHeader = 1 // WriteHeader ran
	wBody   = 2 // body bytes written (header implied)
)

// Effect bits for what a call does through a ResponseWriter it receives
// as an argument. Writing body bytes after the header is the normal
// sequence; setting the status a second time is the contract violation,
// so the two must be tracked separately.
const (
	effHeader = 1 << iota // sets the status (calls WriteHeader, directly or not)
	effBody               // writes body bytes
)

func runHandlerContract(mp *ModulePass) {
	writes := map[string]int{} // memo for writerEffect, keyed id\x00paramIdx
	for _, id := range mp.Graph.SortedIDs() {
		n := mp.Graph.Nodes[id]
		wObj, _ := handlerParams(n.Fn)
		if wObj == nil {
			continue
		}
		hw := &handlerWalk{
			mp:       mp,
			node:     n,
			info:     n.Pkg.Info,
			wObj:     wObj,
			writes:   writes,
			reported: map[token.Pos]bool{},
		}
		hw.walkStmts(n.Decl.Body.List, wNone)
		checkHandlerLoops(mp, n)
	}
}

// handlerParams returns the (ResponseWriter, *Request) parameter objects
// when fn has the http.HandlerFunc signature, else nils.
func handlerParams(fn *types.Func) (w, r *types.Var) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return nil, nil
	}
	p0, p1 := sig.Params().At(0), sig.Params().At(1)
	if !isNamedNetHTTP(p0.Type(), "ResponseWriter") {
		return nil, nil
	}
	ptr, ok := types.Unalias(p1.Type()).(*types.Pointer)
	if !ok || !isNamedNetHTTP(ptr.Elem(), "Request") {
		return nil, nil
	}
	return p0, p1
}

func isNamedNetHTTP(t types.Type, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

// handlerWalk is the per-handler write-state path walk. Branch joins
// take the minimum state, so a second WriteHeader is only reported when
// every path to it has already written — zero false positives at the
// cost of missing some single-path bugs behind conditions.
type handlerWalk struct {
	mp       *ModulePass
	node     *Node
	info     *types.Info
	wObj     *types.Var
	writes   map[string]int
	reported map[token.Pos]bool
}

func (h *handlerWalk) report(pos token.Pos, format string, args ...any) {
	if h.reported[pos] {
		return
	}
	h.reported[pos] = true
	h.mp.Reportf(pos, format, args...)
}

func (h *handlerWalk) walkStmts(stmts []ast.Stmt, st int) (int, bool) {
	for _, s := range stmts {
		var falls bool
		st, falls = h.walkStmt(s, st)
		if !falls {
			return st, false
		}
	}
	return st, true
}

func (h *handlerWalk) walkStmt(s ast.Stmt, st int) (int, bool) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if isTerminalCall(h.info, call) {
				return st, false
			}
			return h.applyCall(call, st), true
		}
		return st, true
	case *ast.ReturnStmt:
		return st, false
	case *ast.BlockStmt:
		return h.walkStmts(v.List, st)
	case *ast.LabeledStmt:
		return h.walkStmt(v.Stmt, st)
	case *ast.IfStmt:
		if v.Init != nil {
			st, _ = h.walkStmt(v.Init, st)
		}
		st1, falls1 := h.walkStmts(v.Body.List, st)
		st2, falls2 := st, true
		if v.Else != nil {
			st2, falls2 = h.walkStmt(v.Else, st)
		}
		switch {
		case falls1 && falls2:
			return min(st1, st2), true
		case falls1:
			return st1, true
		case falls2:
			return st2, true
		default:
			return st, false
		}
	case *ast.ForStmt:
		if v.Init != nil {
			st, _ = h.walkStmt(v.Init, st)
		}
		h.walkStmts(v.Body.List, st)
		if v.Cond == nil && !containsBreak(v.Body) {
			return st, false
		}
		return st, true
	case *ast.RangeStmt:
		h.walkStmts(v.Body.List, st)
		return st, true
	case *ast.SwitchStmt:
		if v.Init != nil {
			st, _ = h.walkStmt(v.Init, st)
		}
		return h.walkCases(v.Body.List, st)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			st, _ = h.walkStmt(v.Init, st)
		}
		return h.walkCases(v.Body.List, st)
	case *ast.SelectStmt:
		joined, anyFalls, first := st, false, true
		for _, c := range v.Body.List {
			cc := c.(*ast.CommClause)
			cs, falls := h.walkStmts(cc.Body, st)
			if !falls {
				continue
			}
			anyFalls = true
			if first {
				joined, first = cs, false
			} else {
				joined = min(joined, cs)
			}
		}
		if first {
			joined = st
		}
		return joined, anyFalls
	case *ast.BranchStmt:
		return st, false
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				st = h.applyCall(call, st)
			}
		}
		return st, true
	case *ast.DeferStmt, *ast.GoStmt:
		return st, true
	default:
		return st, true
	}
}

func (h *handlerWalk) walkCases(list []ast.Stmt, st int) (int, bool) {
	joined, anyFalls, first := st, false, true
	hasDefault := false
	for _, c := range list {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cs, falls := h.walkStmts(cc.Body, st)
		if !falls {
			continue
		}
		anyFalls = true
		if first {
			joined, first = cs, false
		} else {
			joined = min(joined, cs)
		}
	}
	if !hasDefault {
		if first {
			joined = st
		} else {
			joined = min(joined, st)
		}
		anyFalls = true
	}
	return joined, anyFalls
}

// applyCall advances the write state through one call and reports
// contract violations at it.
func (h *handlerWalk) applyCall(call *ast.CallExpr, st int) int {
	// Direct method call on the writer: w.WriteHeader / w.Write.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && h.info.Uses[id] == types.Object(h.wObj) {
			switch sel.Sel.Name {
			case "WriteHeader":
				switch st {
				case wBody:
					h.report(call.Pos(), "%s calls WriteHeader after the body has been written; net/http ignores it and the client already got a different status",
						h.mp.Graph.ShortID(h.node.ID))
				case wHeader:
					h.report(call.Pos(), "%s calls WriteHeader twice on the same path; the second status is dropped",
						h.mp.Graph.ShortID(h.node.ID))
				}
				if st < wHeader {
					return wHeader
				}
				return st
			case "Write":
				return wBody
			}
			return st
		}
	}
	// The writer handed to something that writes through it.
	mask := 0
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || h.info.Uses[id] != types.Object(h.wObj) {
			continue
		}
		mask = h.callWriteEffect(call, i)
		break
	}
	if mask == 0 {
		return st
	}
	// More body bytes are always legal; a second status is not.
	if mask&effHeader != 0 && st >= wHeader {
		h.report(call.Pos(), "%s sets the response status again through this call after the header was already sent; the earlier status wins and the second is dropped",
			h.mp.Graph.ShortID(h.node.ID))
	}
	switch {
	case mask&effBody != 0 && wBody > st:
		return wBody
	case mask&effHeader != 0 && wHeader > st:
		return wHeader
	}
	return st
}

// callWriteEffect classifies what a call does to the ResponseWriter it
// receives as argument argIdx, as an effHeader/effBody mask: http.Error
// and friends set a status and write a body, fmt.Fprint* writes body
// only, module helpers get the recursive treatment. Zero means the walk
// cannot prove the call writes anything.
func (h *handlerWalk) callWriteEffect(call *ast.CallExpr, argIdx int) int {
	fn := calleeFuncInfo(h.info, call)
	if fn == nil || fn.Pkg() == nil {
		return 0
	}
	switch fn.Pkg().Path() {
	case "net/http":
		switch fn.Name() {
		case "Error", "NotFound", "Redirect", "ServeContent", "ServeFile":
			return effHeader | effBody
		}
		return 0
	case "fmt":
		if argIdx == 0 && (fn.Name() == "Fprintf" || fn.Name() == "Fprint" || fn.Name() == "Fprintln") {
			return effBody
		}
		return 0
	}
	callee, ok := h.mp.Graph.Nodes[fn.FullName()]
	if !ok {
		return 0
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Variadic() || argIdx >= sig.Params().Len() {
		return 0
	}
	return writerEffect(h.mp.Graph, h.writes, callee, argIdx, 0)
}

// writerEffect reports (memoized) the effHeader/effBody mask of what the
// callee does through its argIdx-th parameter, directly or up to three
// more hops down.
func writerEffect(g *CallGraph, memo map[string]int, n *Node, paramIdx int, depth int) int {
	key := n.ID + "\x00" + string(rune('0'+paramIdx))
	if v, ok := memo[key]; ok {
		return v
	}
	if depth > 3 {
		return 0
	}
	memo[key] = 0 // break cycles toward "no effect"
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil || paramIdx >= sig.Params().Len() {
		return 0
	}
	pvar := sig.Params().At(paramIdx)
	info := n.Pkg.Info

	effect := 0
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if effect == effHeader|effBody {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && info.Uses[id] == types.Object(pvar) {
				switch sel.Sel.Name {
				case "Write":
					effect |= effBody
				case "WriteHeader":
					effect |= effHeader
				}
				return true
			}
		}
		for i, arg := range call.Args {
			id, ok := arg.(*ast.Ident)
			if !ok || info.Uses[id] != types.Object(pvar) {
				continue
			}
			fn := calleeFuncInfo(info, call)
			if fn == nil || fn.Pkg() == nil {
				continue
			}
			if fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
				effect |= effHeader | effBody
			} else if fn.Pkg().Path() == "fmt" && i == 0 &&
				(fn.Name() == "Fprintf" || fn.Name() == "Fprint" || fn.Name() == "Fprintln") {
				effect |= effBody
			} else if callee, ok := g.Nodes[fn.FullName()]; ok {
				if csig, _ := fn.Type().(*types.Signature); csig != nil && !csig.Variadic() && i < csig.Params().Len() {
					effect |= writerEffect(g, memo, callee, i, depth+1)
				}
			}
		}
		return true
	})
	memo[key] = effect
	return effect
}

// checkHandlerLoops flags loops in the handler that call into the hot
// region without watching the request context and without the admission
// gate anywhere on the path.
func checkHandlerLoops(mp *ModulePass, n *Node) {
	hot := mp.hotRegion()
	info := n.Pkg.Info
	if bodyCallsGate(info, n.Decl.Body) {
		return // the whole handler is behind the admission gate
	}
	walkWithStack(n.Decl.Body, func(x ast.Node, stack []ast.Node) bool {
		var body *ast.BlockStmt
		switch v := x.(type) {
		case *ast.ForStmt:
			body = v.Body
		case *ast.RangeStmt:
			body = v.Body
		default:
			return true
		}
		// Only the outermost qualifying loop is reported.
		for _, anc := range stack[:len(stack)-1] {
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				return true
			}
		}
		if !loopCallsHot(mp, info, body, hot) {
			return true
		}
		if loopChecksCtx(info, body) || bodyCallsGate(info, body) || loopCalleeGates(mp, info, body) {
			return true
		}
		mp.Reportf(x.Pos(),
			"loop in handler %s feeds request-sized input into the hot path without checking r.Context(); a canceled client keeps consuming worker time — check ctx.Err() per iteration or shed at the admission gate",
			mp.Graph.ShortID(n.ID))
		return true
	})
}

// loopCallsHot reports whether the loop body calls a function inside the
// hot region.
func loopCallsHot(mp *ModulePass, info *types.Info, body *ast.BlockStmt, hot map[string]crumb) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFuncInfo(info, call)
		if fn == nil {
			return true
		}
		if _, ok := hot[fn.FullName()]; ok {
			found = true
		}
		return !found
	})
	return found
}

// loopChecksCtx reports whether the loop body consults a context: a
// Done()/Err() method call on a context value, or a select statement.
func loopChecksCtx(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if fn := calleeFuncInfo(info, v); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
					isContextType(sig.Recv().Type()) && (fn.Name() == "Done" || fn.Name() == "Err") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// gateMethods are the admission-gate entry points; a call to any of them
// means the work is bounded by the gate.
var gateMethods = map[string]bool{"TryReserve": true, "Reserve": true, "Acquire": true, "TryAcquire": true}

// bodyCallsGate reports whether the block calls an admission-gate method
// directly.
func bodyCallsGate(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFuncInfo(info, call); fn != nil && gateMethods[fn.Name()] {
			found = true
		}
		return !found
	})
	return found
}

// loopCalleeGates reports whether a module function called from the loop
// body itself reserves at the admission gate (e.g. a handler loop over
// InferBatch, which gates internally).
func loopCalleeGates(mp *ModulePass, info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFuncInfo(info, call)
		if fn == nil {
			return true
		}
		if callee, ok := mp.Graph.Nodes[fn.FullName()]; ok {
			if bodyCallsGate(callee.Pkg.Info, callee.Decl.Body) {
				found = true
			}
		}
		return !found
	})
	return found
}
