package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerLockBalance checks Lock/Unlock pairing per mutex object within
// each function body: a path that returns (or falls off the end) while a
// mutex is still locked is flagged unless a deferred unlock covers it,
// and so is any blocking operation — channel send/receive, select
// without a default, range over a channel, time.Sleep, os/net I/O —
// executed while a lock is held. Read locks (RLock/RUnlock) are tracked
// as their own object. The analysis is intra-procedural and path-merges
// if/else by intersection, so a lock released on every branch is clean.
var AnalyzerLockBalance = &Analyzer{
	Name: "lock-balance",
	Doc:  "mutexes left locked on early returns or held across blocking operations",
	Run:  runLockBalance,
}

func runLockBalance(pass *Pass) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockBalance(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkLockBalance(pass, fn.Body)
			}
			return true
		})
	}
}

// lockUse tracks one acquired lock within a function.
type lockUse struct {
	pos  token.Pos // the Lock/RLock call site
	expr string    // rendered receiver expression, for messages
}

// lockState maps a lock key (receiver expression, "/r"-suffixed for read
// locks) to its acquisition site.
type lockState map[string]lockUse

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect keeps only the locks held in both states — the merge rule
// for control-flow joins.
func intersect(a, b lockState) lockState {
	out := lockState{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func sortedKeys(s lockState) []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockChecker carries the per-function-body analysis state.
type lockChecker struct {
	pass     *Pass
	deferred map[string]bool // lock keys with a deferred unlock seen so far
}

func checkLockBalance(pass *Pass, body *ast.BlockStmt) {
	c := &lockChecker{pass: pass, deferred: map[string]bool{}}
	held, falls := c.walkStmts(body.List, lockState{})
	if !falls {
		return
	}
	for _, key := range sortedKeys(held) {
		if c.deferred[key] {
			continue
		}
		use := held[key]
		c.pass.Reportf(use.pos,
			"%s is locked here but never unlocked on the fall-through path; unlock before the function ends or defer the unlock", use.expr)
	}
}

// walkStmts runs the statement list through the checker, returning the
// out-state and whether control falls through the end of the list.
func (c *lockChecker) walkStmts(stmts []ast.Stmt, held lockState) (lockState, bool) {
	for _, st := range stmts {
		var falls bool
		held, falls = c.walkStmt(st, held)
		if !falls {
			return held, false
		}
	}
	return held, true
}

func (c *lockChecker) walkStmt(st ast.Stmt, held lockState) (lockState, bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if op, key, expr, pos := c.lockOp(s.X); op != "" {
			switch op {
			case "lock":
				held[key] = lockUse{pos: pos, expr: expr}
			case "unlock":
				delete(held, key)
			}
			return held, true
		}
		c.checkBlockingExpr(s.X, held)
		return held, true
	case *ast.DeferStmt:
		c.markDeferredUnlocks(s)
		return held, true
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkBlockingExpr(r, held)
		}
		for _, key := range sortedKeys(held) {
			if c.deferred[key] {
				continue
			}
			use := held[key]
			c.pass.Reportf(s.Pos(),
				"return while %s is still locked (Lock at line %d); unlock before returning or defer the unlock",
				use.expr, c.pass.Fset.Position(use.pos).Line)
		}
		return held, false
	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line path; treat it as
		// terminated rather than modeling label targets.
		return held, false
	case *ast.BlockStmt:
		return c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(s.Init, held)
		}
		c.checkBlockingExpr(s.Cond, held)
		thenOut, thenFalls := c.walkStmts(s.Body.List, held.clone())
		elseOut, elseFalls := held, true
		if s.Else != nil {
			elseOut, elseFalls = c.walkStmt(s.Else, held.clone())
		}
		switch {
		case thenFalls && elseFalls:
			return intersect(thenOut, elseOut), true
		case thenFalls:
			return thenOut, true
		case elseFalls:
			return elseOut, true
		default:
			return held, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkBlockingExpr(s.Cond, held)
		}
		// Loop-body lock effects stay local: one iteration is checked
		// with the entry state, and the loop is assumed balanced.
		c.walkStmts(s.Body.List, held.clone())
		return held, true
	case *ast.RangeStmt:
		if t := c.pass.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				c.reportBlocked(s.Pos(), "a range over a channel", held)
			}
		}
		c.walkStmts(s.Body.List, held.clone())
		return held, true
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			c.reportBlocked(s.Pos(), "a select with no default", held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, held.clone())
			}
		}
		return held, true
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkBlockingExpr(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, held.clone())
			}
		}
		return held, true
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, held.clone())
			}
		}
		return held, true
	case *ast.SendStmt:
		c.reportBlocked(s.Arrow, "a channel send", held)
		return held, true
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkBlockingExpr(e, held)
		}
		return held, true
	case *ast.GoStmt:
		return held, true // the goroutine runs elsewhere; its body gets its own pass
	default:
		return held, true
	}
}

// lockOp classifies a call expression as a lock or unlock on a sync
// mutex, returning ("lock"|"unlock", state key, display expr, call pos)
// or op == "" for anything else.
func (c *lockChecker) lockOp(e ast.Expr) (op, key, expr string, pos token.Pos) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", "", "", token.NoPos
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", "", token.NoPos
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", token.NoPos
	}
	recv := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return "lock", recv, recv, call.Pos()
	case "Unlock":
		return "unlock", recv, recv, call.Pos()
	case "RLock":
		return "lock", recv + "/r", recv + " (read lock)", call.Pos()
	case "RUnlock":
		return "unlock", recv + "/r", recv + " (read lock)", call.Pos()
	}
	return "", "", "", token.NoPos
}

// markDeferredUnlocks records unlocks scheduled by a defer statement,
// either directly (defer mu.Unlock()) or inside a deferred closure.
func (c *lockChecker) markDeferredUnlocks(s *ast.DeferStmt) {
	if op, key, _, _ := c.lockOp(s.Call); op == "unlock" {
		c.deferred[key] = true
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if op, key, _, _ := c.lockOp(call); op == "unlock" {
					c.deferred[key] = true
				}
			}
			return true
		})
	}
}

// checkBlockingExpr flags blocking operations buried in an expression —
// channel receives and calls to known-blocking functions — when locks
// are held. Function literal bodies are skipped; they execute elsewhere.
func (c *lockChecker) checkBlockingExpr(e ast.Expr, held lockState) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				c.reportBlocked(v.Pos(), "a channel receive", held)
			}
		case *ast.CallExpr:
			if what := blockingCall(c.pass, v); what != "" {
				c.reportBlocked(v.Pos(), what, held)
			}
		}
		return true
	})
}

// blockingCall classifies calls that block on external events: sleeps and
// os/net I/O. Calls into the module are not classified — lock-balance is
// deliberately intra-procedural.
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case path == "os" || path == "net" || path == "net/http":
		return "a call to " + path + "." + fn.Name()
	}
	return ""
}

func (c *lockChecker) reportBlocked(pos token.Pos, what string, held lockState) {
	if len(held) == 0 {
		return
	}
	for _, key := range sortedKeys(held) {
		c.pass.Reportf(pos,
			"%s is held across %s; blocking while holding the lock stalls every goroutine contending for it",
			held[key].expr, what)
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
