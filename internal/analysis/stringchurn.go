package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerStringChurn reports per-iteration string traffic inside hot
// functions (see hotpath.go): string<->[]byte/[]rune conversions in loop
// bodies (each one copies the payload), fmt.Sprintf/Sprint/Sprintln/
// Errorf calls in loops (formatting allocates, and the verbs box their
// operands), and non-constant string concatenation with + or += in loops
// — the quadratic builder anti-pattern strings.Builder exists to replace.
//
// Conversions the compiler performs for free (ranging over []byte(s))
// never execute per iteration and are not reported; neither is anything
// in cold code.
var AnalyzerStringChurn = &Analyzer{
	Name:      "string-churn",
	Doc:       "string/[]byte conversions, fmt.Sprintf and + concatenation in hot-path loops",
	RunModule: runStringChurn,
}

// sprintFuncs are the fmt formatters whose result is a fresh string.
var sprintFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func runStringChurn(mp *ModulePass) {
	eachHotNode(mp, func(n *Node) {
		info := n.Pkg.Info
		chain := mp.hotChain(n.ID)
		walkWithStack(n.Decl.Body, func(x ast.Node, stack []ast.Node) bool {
			if !inLoop(stack) {
				return true
			}
			switch v := x.(type) {
			case *ast.CallExpr:
				if tv, ok := info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
					reportConversion(mp, info, v, chain)
					return true
				}
				if name := fmtSprintCallee(info, v); name != "" {
					mp.Reportf(v.Pos(),
						"fmt.%s inside a loop allocates a string every iteration (%s); use strconv or a reused strings.Builder",
						name, chain)
				}
			case *ast.BinaryExpr:
				if v.Op != token.ADD || !isStringExpr(info, v) || isConstant(info, v) {
					return true
				}
				// Report only the outermost + of a chain: a+b+c is one
				// finding, not two.
				if parent, ok := stack[len(stack)-2].(*ast.BinaryExpr); ok &&
					parent.Op == token.ADD && isStringExpr(info, parent) {
					return true
				}
				mp.Reportf(v.Pos(),
					"string concatenation with + inside a loop reallocates every iteration (%s); use a strings.Builder",
					chain)
			case *ast.AssignStmt:
				if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isStringExpr(info, v.Lhs[0]) {
					mp.Reportf(v.Pos(),
						"string += inside a loop reallocates every iteration (%s); use a strings.Builder",
						chain)
				}
			}
			return true
		})
	})
}

// reportConversion reports string<->[]byte/[]rune conversions; other
// conversions (numeric, named types) are free of payload copies.
func reportConversion(mp *ModulePass, info *types.Info, v *ast.CallExpr, chain string) {
	dst := info.TypeOf(v.Fun)
	src := info.TypeOf(v.Args[0])
	if dst == nil || src == nil {
		return
	}
	switch {
	case isStringType(src) && isByteOrRuneSlice(dst):
		mp.Reportf(v.Pos(),
			"string-to-slice conversion inside a loop copies the payload every iteration (%s); hoist it or hash/scan the string directly",
			chain)
	case isByteOrRuneSlice(src) && isStringType(dst):
		mp.Reportf(v.Pos(),
			"slice-to-string conversion inside a loop copies the payload every iteration (%s); hoist it or keep the bytes",
			chain)
	}
}

// fmtSprintCallee returns the fmt formatter name a call invokes, or "".
func fmtSprintCallee(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return ""
	}
	if sprintFuncs[fn.Name()] {
		return fn.Name()
	}
	return ""
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	return isStringType(info.TypeOf(e))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
