package analysis

import (
	"fmt"
	"go/format"
	"go/token"
	"sort"
)

// This file is the autofix engine: analyzers may attach a SuggestedFix to
// a finding (ReportFixf), and ApplyFixes turns the fixes of a findings
// list into new file contents. The engine is deliberately conservative —
// it refuses overlapping edits, refuses to touch suppressed findings, and
// round-trips every rewritten file through gofmt so an applied fix can
// never leave the tree unformatted or unparsable. cmd/shvet exposes it as
// the -fix flag (-dry-run prints unified diffs instead of writing).

// TextEdit is one replacement of the source range [Start, End) with
// NewText. Start == End inserts. Positions are token.Pos values from the
// same FileSet the findings were produced under.
type TextEdit struct {
	Start, End token.Pos
	NewText    string
}

// SuggestedFix is a machine-applicable repair attached to a finding:
// one or more non-overlapping text edits plus a short description of
// what applying them does.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// ReportFixf records a finding at pos carrying a suggested fix.
func (p *ModulePass) ReportFixf(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// SkippedFix records a fix ApplyFixes declined to apply and why.
type SkippedFix struct {
	Finding Finding
	Reason  string
}

// resolvedEdit is a TextEdit resolved to a concrete file and byte range.
type resolvedEdit struct {
	file       string
	start, end int
	newText    string
}

// ApplyFixes applies the suggested fixes of findings to src (filename ->
// original file bytes) and returns the rewritten files, the findings
// whose fixes were applied, and the ones skipped with a reason. Policy:
//
//   - a suppressed finding's fix is never applied: the //shvet:ignore
//     directive records a human decision that the code is intentional,
//     and -fix must not overrule it;
//   - fixes are considered in the findings' sorted order, and a fix any
//     of whose edits overlaps an already-accepted edit is skipped whole
//     (fixes are atomic — applying half of one is worse than none);
//   - every rewritten file is run through gofmt; a fix that produces
//     unformattable output is a bug in its analyzer and fails the whole
//     call rather than silently writing a broken file.
func ApplyFixes(fset *token.FileSet, src map[string][]byte, findings []Finding) (changed map[string][]byte, applied []Finding, skipped []SkippedFix, err error) {
	accepted := map[string][]resolvedEdit{}
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		if f.Suppressed {
			skipped = append(skipped, SkippedFix{Finding: f,
				Reason: "finding is suppressed by a //shvet:ignore directive; remove the directive first"})
			continue
		}
		edits, rerr := resolveEdits(fset, src, f.Fix.Edits)
		if rerr != nil {
			skipped = append(skipped, SkippedFix{Finding: f, Reason: rerr.Error()})
			continue
		}
		if overlapsAccepted(accepted, edits) {
			skipped = append(skipped, SkippedFix{Finding: f,
				Reason: "edits overlap a fix already applied in this run; re-run shvet -fix after the first pass lands"})
			continue
		}
		for _, e := range edits {
			accepted[e.file] = append(accepted[e.file], e)
		}
		applied = append(applied, f)
	}

	changed = map[string][]byte{}
	files := make([]string, 0, len(accepted))
	for file := range accepted {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := accepted[file]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		out := append([]byte(nil), src[file]...)
		for _, e := range edits {
			out = append(out[:e.start], append([]byte(e.newText), out[e.end:]...)...)
		}
		formatted, ferr := format.Source(out)
		if ferr != nil {
			return nil, nil, nil, fmt.Errorf("analysis: fix for %s produced unformattable output: %w", file, ferr)
		}
		changed[file] = formatted
	}
	return changed, applied, skipped, nil
}

// resolveEdits maps a fix's token.Pos edits onto file byte ranges,
// validating that every range falls inside a file we hold sources for.
func resolveEdits(fset *token.FileSet, src map[string][]byte, edits []TextEdit) ([]resolvedEdit, error) {
	if len(edits) == 0 {
		return nil, fmt.Errorf("fix has no edits")
	}
	out := make([]resolvedEdit, 0, len(edits))
	for _, e := range edits {
		start := fset.Position(e.Start)
		end := fset.Position(e.End)
		if start.Filename == "" || start.Filename != end.Filename {
			return nil, fmt.Errorf("fix edit spans files (%s vs %s)", start.Filename, end.Filename)
		}
		data, ok := src[start.Filename]
		if !ok {
			return nil, fmt.Errorf("fix edit in %s, which is not part of the analyzed sources", start.Filename)
		}
		if start.Offset > end.Offset || end.Offset > len(data) {
			return nil, fmt.Errorf("fix edit range [%d,%d) outside %s (%d bytes)", start.Offset, end.Offset, start.Filename, len(data))
		}
		out = append(out, resolvedEdit{file: start.Filename, start: start.Offset, end: end.Offset, newText: e.NewText})
	}
	return out, nil
}

// overlapsAccepted reports whether any candidate edit overlaps an edit
// already accepted for the same file. Two insertions at the same offset
// also count as overlapping: their order would be ambiguous.
func overlapsAccepted(accepted map[string][]resolvedEdit, edits []resolvedEdit) bool {
	for _, e := range edits {
		for _, a := range accepted[e.file] {
			if e.start < a.end && a.start < e.end {
				return true
			}
			if e.start == e.end && a.start == a.end && e.start == a.start {
				return true
			}
			// An insertion at the boundary of a replacement is ambiguous
			// too: refuse rather than guess which side it lands on.
			if (e.start == e.end && e.start > a.start && e.start < a.end) ||
				(a.start == a.end && a.start > e.start && a.start < e.end) {
				return true
			}
		}
	}
	return false
}
