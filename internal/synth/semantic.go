package synth

import (
	"math/rand"

	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// genCountry emits a Country column for the vocabulary-extension study
// (Appendix I.4): country names or ISO-style abbreviations. The
// abbreviation sub-kind is the hard case the paper reports Random Forest
// struggling with.
func genCountry(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, []string{"country", "nation", "country_name", "origin_country", "cntry"})
	pool := countryList
	if rng.Float64() < 0.35 { // abbreviations: AFG, ALB, ...
		pool = countryCodes
		name = pick(rng, []string{"country_code", "iso3", "cc", "nation_code"})
	}
	domain := append([]string(nil), pool...)
	rng.Shuffle(len(domain), func(i, j int) { domain[i], domain[j] = domain[j], domain[i] })
	n := rng.Intn(len(domain)-3) + 3
	domain = domain[:n]
	vals := make([]string, rows)
	for i := range vals {
		vals[i] = domain[rng.Intn(len(domain))]
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.2))}
}

// genState emits a State column for the vocabulary-extension study: state /
// province names or two-letter abbreviations, mixing US and non-US regions
// as the paper notes its State domain does.
func genState(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, []string{"state", "province", "state_name", "region_state", "st"})
	pool := stateList
	if rng.Float64() < 0.4 { // abbreviations: CA, AL, ...
		pool = stateAbbrevs
		name = pick(rng, []string{"state_abbr", "st", "state_code_2", "prov"})
	}
	domain := append([]string(nil), pool...)
	rng.Shuffle(len(domain), func(i, j int) { domain[i], domain[j] = domain[j], domain[i] })
	n := rng.Intn(len(domain)-3) + 3
	domain = domain[:n]
	vals := make([]string, rows)
	for i := range vals {
		vals[i] = domain[rng.Intn(len(domain))]
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.2))}
}

// ExtensionConfig controls generation of the extra labeled examples used to
// extend the 9-class vocabulary with a semantic type (Appendix I.4).
type ExtensionConfig struct {
	Type    ftype.FeatureType // Country or State
	TrainN  int               // extra training examples (paper: 100 or 200)
	TestN   int               // extra held-out examples (paper: 100)
	Seed    int64
	MinRows int
	MaxRows int
}

// GenerateExtension emits labeled train and test examples of the extension
// type, standing in for the (weakly labeled) Sherlock data repository
// columns the paper imports.
func GenerateExtension(cfg ExtensionConfig) (train, test []data.LabeledColumn) {
	if cfg.MinRows <= 0 {
		cfg.MinRows = 40
	}
	if cfg.MaxRows < cfg.MinRows {
		cfg.MaxRows = cfg.MinRows + 400
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := Generator(cfg.Type)
	emit := func(n int, fileBase int) []data.LabeledColumn {
		out := make([]data.LabeledColumn, n)
		for i := range out {
			rows := cfg.MinRows + rng.Intn(cfg.MaxRows-cfg.MinRows+1)
			out[i] = data.LabeledColumn{
				Column: gen(rng, rows),
				Label:  cfg.Type,
				FileID: fileBase + i,
			}
		}
		return out
	}
	return emit(cfg.TrainN, 1_000_000), emit(cfg.TestN, 2_000_000)
}
