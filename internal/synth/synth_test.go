package synth

import (
	"math/rand"
	"testing"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/stats"
)

func TestCorpusQuotasAndGrouping(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.N = 2000
	corpus := GenerateCorpus(cfg)
	if len(corpus) != 2000 {
		t.Fatalf("corpus size = %d", len(corpus))
	}
	counts := map[ftype.FeatureType]int{}
	files := map[int]int{}
	for _, c := range corpus {
		counts[c.Label]++
		files[c.FileID]++
		if len(c.Values) == 0 {
			t.Fatalf("column %q has no values", c.Name)
		}
	}
	dist := PaperDistribution()
	for _, cls := range ftype.BaseClasses() {
		want := int(float64(cfg.N) * dist[cls])
		got := counts[cls]
		slack := want / 10
		if slack < 5 {
			slack = 5
		}
		if got < want-slack || got > want+slack+cfg.N/50 {
			t.Errorf("class %v count = %d, want ≈ %d", cls, got, want)
		}
	}
	for id, n := range files {
		if n < 1 || n > cfg.ColsPerFileMax {
			t.Errorf("file %d has %d columns", id, n)
		}
	}
}

func TestCorpusDeterminism(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.N = 300
	a := GenerateCorpus(cfg)
	b := GenerateCorpus(cfg)
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Label != b[i].Label || len(a[i].Values) != len(b[i].Values) {
			t.Fatalf("example %d differs between runs", i)
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatalf("example %d cell %d differs", i, j)
			}
		}
	}
	cfg.Seed = 99
	c := GenerateCorpus(cfg)
	same := true
	for i := range a {
		if a[i].Name != c[i].Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

// classSample collects generated columns of one class.
func classSample(t *testing.T, cls ftype.FeatureType, n int) []data.Column {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	gen := Generator(cls)
	if gen == nil {
		t.Fatalf("no generator for %v", cls)
	}
	out := make([]data.Column, n)
	for i := range out {
		out[i] = gen(rng, 120)
	}
	return out
}

func castableFrac(col *data.Column) float64 {
	n, c := 0, 0
	for _, v := range col.Values {
		if data.IsMissing(v) {
			continue
		}
		n++
		if _, ok := stats.ParseFloat(v); ok {
			c++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(c) / float64(n)
}

func TestNumericColumnsAreCastable(t *testing.T) {
	for _, col := range classSample(t, ftype.Numeric, 40) {
		if castableFrac(&col) < 0.999 {
			t.Errorf("numeric column %q has non-castable values", col.Name)
		}
	}
}

func TestURLColumnsMatchURLSyntax(t *testing.T) {
	for _, col := range classSample(t, ftype.URL, 25) {
		bad := 0
		for _, v := range col.NonMissing() {
			if !stats.IsURL(v) {
				bad++
			}
		}
		if bad > 0 {
			t.Errorf("URL column %q has %d non-URL values", col.Name, bad)
		}
	}
}

func TestListColumnsAreDelimited(t *testing.T) {
	for _, col := range classSample(t, ftype.List, 25) {
		hits := 0
		nm := col.NonMissing()
		for _, v := range nm {
			if stats.IsList(v) {
				hits++
			}
		}
		if len(nm) > 0 && float64(hits)/float64(len(nm)) < 0.9 {
			t.Errorf("list column %q: only %d/%d values look like lists", col.Name, hits, len(nm))
		}
	}
}

func TestCategoricalLowCardinality(t *testing.T) {
	for _, col := range classSample(t, ftype.Categorical, 40) {
		distinct := len(col.DistinctNonMissing())
		if distinct > 250 {
			t.Errorf("categorical column %q has %d distinct values", col.Name, distinct)
		}
	}
}

func TestDatetimeColumnsConsistentFormat(t *testing.T) {
	// At least the easy-format datetime columns must parse as dates.
	cols := classSample(t, ftype.Datetime, 60)
	parseable := 0
	for _, col := range cols {
		nm := col.NonMissing()
		if len(nm) == 0 {
			continue
		}
		hits := 0
		for _, v := range nm[:minI(len(nm), 10)] {
			if stats.IsDate(v) {
				hits++
			}
		}
		if hits >= 8 {
			parseable++
		}
	}
	if parseable < len(cols)/2 {
		t.Errorf("only %d/%d datetime columns parse under the broad parser; generator likely broken", parseable, len(cols))
	}
}

func TestNotGeneralizableShapes(t *testing.T) {
	sawConstant, sawAllNaN, sawUnique := false, false, false
	for _, col := range classSample(t, ftype.NotGeneralizable, 80) {
		distinct := len(col.DistinctNonMissing())
		nm := len(col.NonMissing())
		switch {
		case nm == 0 || nm <= 3:
			sawAllNaN = true
		case distinct == 1:
			sawConstant = true
		case distinct == nm:
			sawUnique = true
		}
	}
	if !sawConstant || !sawAllNaN || !sawUnique {
		t.Errorf("NG generator missing shapes: constant=%v allNaN=%v unique=%v",
			sawConstant, sawAllNaN, sawUnique)
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestExtensionGenerators(t *testing.T) {
	train, test := GenerateExtension(ExtensionConfig{Type: ftype.Country, TrainN: 20, TestN: 10, Seed: 1})
	if len(train) != 20 || len(test) != 10 {
		t.Fatalf("sizes %d/%d", len(train), len(test))
	}
	for _, c := range train {
		if c.Label != ftype.Country {
			t.Fatal("wrong label")
		}
		if len(c.DistinctNonMissing()) < 2 {
			t.Errorf("country column %q nearly constant", c.Name)
		}
	}
	_, st := GenerateExtension(ExtensionConfig{Type: ftype.State, TrainN: 5, TestN: 5, Seed: 2})
	if st[0].Label != ftype.State {
		t.Error("state label wrong")
	}
}
