package synth

import "fmt"

// The downstream benchmark suite: 30 generated datasets named and shaped
// after Table 5 of the paper — same column counts, target-class counts,
// task types, and feature-type compositions (including primary keys,
// integer-coded categoricals, dates, free text, URLs, lists and junk).

// kindNamePools assigns realistic attribute names per column kind so that
// a trained type-inference model sees the same name signal it saw in the
// labeled corpus.
func kindName(k ColKind, i int) string {
	at := func(pool []string) string { return pool[i%len(pool)] }
	switch k {
	case KindNumFloat, KindNumInt:
		return at(numericNames)
	case KindNumIntSmall:
		return at(numericNames)
	case KindCatInt:
		return at([]string{"zipcode", "item_code", "state_code", "product_code", "county_code", "region_code", "dept_code", "route_code"})
	case KindCatStr:
		return at([]string{"color", "status", "category", "brand", "region", "type", "segment", "grade", "genre", "language"})
	case KindCatOrd:
		return at([]string{"rating", "grade_level", "tier", "severity", "priority", "stage"})
	case KindCatBin:
		return at([]string{"flag", "is_active", "smoker", "approved", "union_member", "churn_flag"})
	case KindDate:
		return at(datetimeNames)
	case KindSentence:
		return at(sentenceNames)
	case KindURL:
		return at(urlNames)
	case KindEmbedNum:
		return at([]string{"income_str", "price_usd", "engine_power", "fuel_consumption", "budget_str", "size_str"})
	case KindPK:
		return at([]string{"id", "case_number", "record_id", "row_id"})
	case KindConst:
		return "batch"
	case KindCSJunk:
		return at([]string{"payload", "extra", "raw_json", "metadata"})
	default:
		return at([]string{"xq7", "ad119", "v42", "kplr3"})
	}
}

// block appends n columns of one kind with uniform weight.
func block(cols []ColSpec, k ColKind, n int, w float64, card int) []ColSpec {
	start := 0
	for _, c := range cols {
		if c.Kind == k {
			start++
		}
	}
	for j := 0; j < n; j++ {
		name := kindName(k, start+j)
		if start+j >= poolLen(k) {
			name = fmt.Sprintf("%s_%d", name, (start+j)/poolLen(k))
		}
		cols = append(cols, ColSpec{Name: name, Kind: k, Weight: w, Card: card})
	}
	return cols
}

func poolLen(k ColKind) int {
	switch k {
	case KindNumFloat, KindNumInt:
		return len(numericNames)
	case KindNumIntSmall:
		return len(numericNames)
	case KindCatInt:
		return 8
	case KindCatStr:
		return 10
	case KindCatOrd:
		return 6
	case KindCatBin:
		return 6
	case KindDate:
		return len(datetimeNames)
	case KindSentence:
		return len(sentenceNames)
	case KindURL:
		return len(urlNames)
	case KindEmbedNum:
		return 6
	case KindPK:
		return 4
	case KindCSJunk:
		return 4
	case KindConst:
		return 1
	default:
		return 4
	}
}

// SuiteSpecs returns the 30 downstream dataset specifications. Column
// counts per dataset match Table 5 (|A|, excluding the target), summing to
// the paper's 566 columns.
func SuiteSpecs(seed int64) []DatasetSpec {
	b := func(parts ...[]ColSpec) []ColSpec {
		var out []ColSpec
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	c := func(k ColKind, n int, w float64, card int) []ColSpec {
		return block(nil, k, n, w, card)
	}
	specs := []DatasetSpec{
		// --- Classification (25 datasets) ---
		{Name: "Cancer", Rows: 500, Classes: 2, Noise: 1.2,
			Cols: b(c(KindNumFloat, 5, 0.8, 0), c(KindNumInt, 4, 0.6, 0))},
		{Name: "Mfeat", Rows: 700, Classes: 10, Noise: 0.5,
			Cols: b(c(KindNumIntSmall, 60, 0.55, 0), c(KindNumIntSmall, 156, 0.08, 0))},
		{Name: "Nursery", Rows: 900, Classes: 5, Noise: 0.35,
			Cols: c(KindCatStr, 8, 0.9, 4)},
		{Name: "Audiology", Rows: 800, Classes: 24, Noise: 0.15,
			Cols: b(c(KindCatStr, 24, 0.8, 4), c(KindCatStr, 45, 0.05, 3))},
		{Name: "Hayes", Rows: 400, Classes: 3, Noise: 0.5,
			Cols: c(KindCatInt, 4, 1.0, 4)},
		{Name: "Supreme", Rows: 800, Classes: 2, Noise: 0.4,
			Cols: b(c(KindCatOrd, 4, 1.0, 5), c(KindCatBin, 3, 0.8, 0))},
		{Name: "Flares", Rows: 600, Classes: 2, Noise: 1.0,
			Cols: b(c(KindCatInt, 6, 0.7, 4), c(KindCatStr, 4, 0.7, 4))},
		{Name: "Kropt", Rows: 1000, Classes: 18, Noise: 0.12,
			Cols: b(c(KindCatInt, 3, 1.0, 8), c(KindCatStr, 3, 1.0, 8))},
		{Name: "Boxing", Rows: 350, Classes: 2, Noise: 0.55,
			Cols: b(c(KindCatInt, 2, 1.0, 5), c(KindCatStr, 1, 1.0, 4))},
		{Name: "Flags", Rows: 500, Classes: 2, Noise: 0.9,
			Cols: b(c(KindCatInt, 10, 0.5, 5), c(KindCatStr, 14, 0.4, 5), c(KindCatBin, 4, 0.5, 0))},
		{Name: "Diggle", Rows: 600, Classes: 2, Noise: 0.3,
			Cols: b(c(KindNumFloat, 4, 1.0, 0), c(KindNumIntSmall, 1, 0.9, 0), c(KindCatInt, 3, 0.8, 4))},
		{Name: "Hearts", Rows: 600, Classes: 2, Noise: 1.1,
			Cols: b(c(KindNumFloat, 4, 0.7, 0), c(KindNumInt, 4, 0.6, 0), c(KindCatInt, 5, 0.7, 4))},
		{Name: "Sleuth", Rows: 500, Classes: 2, Noise: 1.3,
			Cols: b(c(KindNumInt, 6, 0.6, 0), c(KindCatOrd, 4, 0.7, 4))},
		{Name: "Apnea2", Rows: 500, Classes: 2, Noise: 0.7,
			Cols: b(c(KindCatStr, 2, 1.0, 4), c(KindPK, 1, 0, 0))},
		{Name: "Auto-MPG", Rows: 450, Classes: 3, Noise: 0.5,
			Cols: b(c(KindNumFloat, 3, 0.8, 0), c(KindNumIntSmall, 2, 0.6, 0), c(KindCatInt, 2, 0.9, 4), c(KindSentence, 1, 0.8, 0))},
		{Name: "Churn", Rows: 800, Classes: 2, Noise: 1.2,
			Cols: b(c(KindNumFloat, 6, 0.5, 0), c(KindNumInt, 4, 0.4, 0), c(KindCatStr, 4, 0.5, 4), c(KindCatInt, 3, 0.5, 5), c(KindEmbedNum, 2, 0.5, 0))},
		{Name: "NYC", Rows: 900, Classes: 15, Noise: 0.25,
			Cols: b(c(KindNumFloat, 2, 0.9, 0), c(KindDate, 2, 0.9, 0), c(KindEmbedNum, 2, 0.9, 0))},
		{Name: "BBC", Rows: 600, Classes: 5, Noise: 0.25,
			Cols: c(KindSentence, 1, 1.6, 5)},
		{Name: "Articles", Rows: 500, Classes: 2, Noise: 0.4,
			Cols: b(c(KindDate, 2, 0.7, 0), c(KindSentence, 1, 1.2, 3))},
		{Name: "Clothing", Rows: 700, Classes: 5, Noise: 0.8,
			Cols: b(c(KindNumFloat, 3, 0.6, 0), c(KindCatStr, 4, 0.6, 5), c(KindSentence, 2, 0.7, 3), c(KindPK, 1, 0, 0))},
		{Name: "IOT", Rows: 800, Classes: 2, Noise: 0.6,
			Cols: b(c(KindNumFloat, 2, 0.9, 0), c(KindDate, 1, 0.8, 0), c(KindPK, 1, 0, 0))},
		{Name: "Zoo", Rows: 500, Classes: 5, Noise: 0.5,
			Cols: b(c(KindCatBin, 13, 0.55, 0), c(KindPK, 2, 0, 0), c(KindConst, 1, 0, 0), c(KindCSJunk, 1, 0, 0))},
		{Name: "PBCseq", Rows: 700, Classes: 2, Noise: 1.2,
			Cols: b(c(KindNumFloat, 5, 0.5, 0), c(KindNumInt, 3, 0.4, 0), c(KindCatInt, 4, 0.5, 4), c(KindCatBin, 2, 0.5, 0), c(KindEmbedNum, 2, 0.5, 0), c(KindPK, 1, 0, 0), c(KindConst, 1, 0, 0))},
		{Name: "Pokemon", Rows: 900, Classes: 36, Noise: 0.1,
			Cols: b(c(KindNumFloat, 12, 0.45, 0), c(KindNumInt, 8, 0.4, 0), c(KindCatStr, 6, 0.5, 6), c(KindCatInt, 4, 0.5, 5), c(KindList, 2, 0.6, 0), c(KindPK, 2, 0, 0), c(KindConst, 2, 0, 0), c(KindCSJunk, 2, 0, 0), c(KindCSCode, 2, 0, 0))},
		{Name: "President", Rows: 1100, Classes: 57, Noise: 0.08,
			Cols: b(c(KindNumFloat, 4, 0.5, 0), c(KindNumInt, 2, 0.45, 0), c(KindCatStr, 5, 0.55, 6), c(KindCatInt, 3, 0.5, 6), c(KindDate, 4, 0.45, 0), c(KindURL, 2, 0.5, 0), c(KindPK, 2, 0, 0), c(KindConst, 1, 0, 0), c(KindCSJunk, 2, 0, 0), c(KindCSCode, 1, 0, 0))},

		// --- Regression (5 datasets) ---
		{Name: "MBA", Rows: 500, Classes: 0, Noise: 0.35,
			Cols: c(KindCatInt, 2, 1.0, 5)},
		{Name: "Vineyard", Rows: 400, Classes: 0, Noise: 0.5,
			Cols: b(c(KindNumInt, 2, 0.8, 0), c(KindCatOrd, 1, 0.9, 5))},
		{Name: "Apnea", Rows: 500, Classes: 0, Noise: 0.5,
			Cols: b(c(KindNumInt, 1, 0.9, 0), c(KindCatStr, 1, 0.9, 4), c(KindCatInt, 1, 0.9, 4))},
		{Name: "Accident", Rows: 600, Classes: 0, Noise: 0.45,
			Cols: c(KindDate, 1, 1.2, 0)},
		{Name: "Car Fuel", Rows: 600, Classes: 0, Noise: 0.6,
			Cols: b(c(KindNumFloat, 3, 0.6, 0), c(KindNumInt, 1, 0.5, 0), c(KindCatStr, 2, 0.6, 4), c(KindCatInt, 1, 0.6, 4), c(KindEmbedNum, 2, 0.7, 0), c(KindPK, 1, 0, 0), c(KindConst, 1, 0, 0))},
	}
	for i := range specs {
		specs[i].Seed = seed + int64(i)*101
	}
	return specs
}

// GenerateSuite builds the full 30-dataset downstream benchmark.
func GenerateSuite(seed int64) []*Downstream {
	specs := SuiteSpecs(seed)
	out := make([]*Downstream, len(specs))
	for i, sp := range specs {
		out[i] = Generate(sp)
	}
	return out
}

// SuiteColumnCount returns the total feature-column count across the suite
// (the paper reports 566).
func SuiteColumnCount(specs []DatasetSpec) int {
	n := 0
	for _, sp := range specs {
		n += len(sp.Cols)
	}
	return n
}
