package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// ColKind selects a downstream column generator. Every kind produces both a
// cell value and a latent signal; the dataset target is a function of the
// weighted latents, so recovering a column's signal requires the
// featurization its true type routes to (one-hot for nominal categories,
// TF-IDF for text, etc.). This reproduces the mechanism behind the paper's
// Table 5: wrong type inference breaks the routing and costs accuracy.
type ColKind int

// Downstream column kinds.
const (
	KindNumFloat    ColKind = iota // float measurements (Numeric)
	KindNumInt                     // integer measurements (Numeric)
	KindNumIntSmall                // low-domain integer measurements (Numeric; the paper's Mfeat trap)
	KindCatInt                     // nominal categories coded as integers (Categorical)
	KindCatStr                     // nominal string categories (Categorical)
	KindCatOrd                     // ordinal integer categories (Categorical)
	KindCatBin                     // binary integer flags (Categorical)
	KindDate                       // dates; signal in the month (Datetime)
	KindSentence                   // free text; signal in topic keywords (Sentence)
	KindURL                        // URLs; signal in the domain (URL)
	KindEmbedNum                   // decorated numbers, e.g. "USD 45" (Embedded Number)
	KindList                       // item lists; signal = key item presence (List)
	KindPK                         // primary key (Not-Generalizable)
	KindConst                      // constant column (Not-Generalizable)
	KindCSJunk                     // junk strings, no signal (Context-Specific)
	KindCSCode                     // cryptic integer codes, no signal (Context-Specific)
)

// TrueType returns the ground-truth feature type of a column kind.
func (k ColKind) TrueType() ftype.FeatureType {
	switch k {
	case KindNumFloat, KindNumInt, KindNumIntSmall:
		return ftype.Numeric
	case KindCatInt, KindCatStr, KindCatOrd, KindCatBin:
		return ftype.Categorical
	case KindDate:
		return ftype.Datetime
	case KindSentence:
		return ftype.Sentence
	case KindURL:
		return ftype.URL
	case KindEmbedNum:
		return ftype.EmbeddedNumber
	case KindList:
		return ftype.List
	case KindPK, KindConst:
		return ftype.NotGeneralizable
	default:
		return ftype.ContextSpecific
	}
}

// ColSpec describes one downstream column.
type ColSpec struct {
	Name   string
	Kind   ColKind
	Weight float64 // contribution of the column's latent to the target
	Card   int     // category cardinality where applicable (default 6)
}

// DatasetSpec describes one downstream dataset.
type DatasetSpec struct {
	Name    string
	Rows    int
	Classes int     // 0 = regression
	Noise   float64 // target noise level
	Cols    []ColSpec
	Seed    int64
}

// Downstream holds a generated downstream dataset: the table (last column
// is the prediction target), ground-truth feature types for the feature
// columns, and the task type.
type Downstream struct {
	Spec      DatasetSpec
	Data      *data.Dataset // feature columns + final "target" column
	TrueTypes []ftype.FeatureType
	TargetCls []int     // classification labels (nil for regression)
	TargetReg []float64 // regression targets (nil for classification)
}

// IsRegression reports whether the dataset is a regression task.
func (d *Downstream) IsRegression() bool { return d.Spec.Classes == 0 }

// colState is the per-column generation state: category effects, etc.
type colState struct {
	spec    ColSpec
	effects []float64 // per-category / per-month / per-topic latent effects
	perm    []int     // category code shuffling (non-monotone encodings)
	domain  []string  // string category names
	layout  string
	base    int64
	scale   float64 // per-column value scale (KindNumIntSmall)
	offset  float64
	max     int
}

func newColState(spec ColSpec, rng *rand.Rand) *colState {
	st := &colState{spec: spec}
	card := spec.Card
	if card <= 0 {
		card = 6
	}
	mkEffects := func(n int) {
		st.effects = make([]float64, n)
		for i := range st.effects {
			st.effects[i] = rng.NormFloat64()
		}
	}
	switch spec.Kind {
	case KindCatInt:
		mkEffects(card)
		st.perm = rng.Perm(card * 7) // sparse, shuffled integer codes
		if card >= 3 {
			// Remove the linear-in-code component of the effects so a
			// Numeric routing of this column retains (near) zero signal
			// while one-hot recovers it fully — the nominal-categorical
			// mechanism of Table 5. (Binary domains are deliberately left
			// alone: there a numeric encoding is equivalent to one-hot,
			// the paper's Supreme/Flags observation.)
			var sx, sy, sxx, sxy float64
			n := float64(card)
			for c := 0; c < card; c++ {
				x := float64(st.perm[c])
				sx += x
				sy += st.effects[c]
				sxx += x * x
				sxy += x * st.effects[c]
			}
			denom := n*sxx - sx*sx
			if denom != 0 {
				b := (n*sxy - sx*sy) / denom
				a := (sy - b*sx) / n
				var ss float64
				for c := 0; c < card; c++ {
					st.effects[c] -= a + b*float64(st.perm[c])
					ss += st.effects[c] * st.effects[c]
				}
				if variance := ss / n; variance > 1e-12 {
					scale := 1 / math.Sqrt(variance)
					for c := range st.effects {
						st.effects[c] *= scale
					}
				}
			}
		}
	case KindCatStr:
		mkEffects(card)
		st.domain = make([]string, card)
		pools := [][]string{colorList, statusList, genreList, stateList, countryList}
		pool := pools[rng.Intn(len(pools))]
		used := map[string]bool{}
		for i := range st.domain {
			v := pick(rng, pool)
			for used[v] {
				v = pick(rng, pool) + fmt.Sprintf("_%d", rng.Intn(90))
			}
			used[v] = true
			st.domain[i] = v
		}
	case KindCatOrd:
		// Ordinal: effects monotone in the code, so even a Numeric routing
		// retains signal (the paper's Supreme/Vineyard observation).
		st.effects = make([]float64, card)
		for i := range st.effects {
			st.effects[i] = float64(i)/float64(card-1)*2 - 1
		}
	case KindCatBin:
		st.effects = []float64{-1, 1}
	case KindNumIntSmall:
		// Per-column scale: most columns realize 50+ distinct values and
		// read numeric; a minority are genuinely tiny-domain and flip the
		// trained model toward Categorical, as the paper observed on Mfeat.
		if rng.Float64() < 0.15 {
			st.scale, st.offset, st.max = 5, 16, 35
		} else {
			st.scale, st.offset, st.max = 16, 55, 120
		}
	case KindDate:
		mkEffects(12) // month effects
		st.layout = easyDateFormats[rng.Intn(len(easyDateFormats))]
		st.base = int64(1.0e9 * (0.5 + rng.Float64()))
	case KindSentence:
		mkEffects(len(sentenceTopics))
	case KindURL:
		mkEffects(6)
	case KindList:
		st.effects = []float64{-1, 1}
	}
	return st
}

// sample generates one cell and its latent contribution.
func (st *colState) sample(rng *rand.Rand, row int) (cell string, latent float64) {
	card := len(st.effects)
	switch st.spec.Kind {
	case KindNumFloat:
		z := rng.NormFloat64()
		return fmt.Sprintf("%.3f", z*37.5+110), z
	case KindNumInt:
		z := rng.NormFloat64()
		return fmt.Sprintf("%d", int(z*250+1000)), z
	case KindNumIntSmall:
		// Genuinely numeric, but the small integer domain makes the column
		// look like an integer-coded categorical — the ambiguity behind the
		// paper's OurRF errors on Mfeat/Auto-MPG/Diggle.
		z := rng.NormFloat64()
		return fmt.Sprintf("%d", clampInt(int(z*st.scale+st.offset), 0, st.max)), z
	case KindCatInt:
		c := rng.Intn(card)
		return fmt.Sprintf("%d", st.perm[c]), st.effects[c]
	case KindCatStr:
		c := rng.Intn(card)
		return st.domain[c], st.effects[c]
	case KindCatOrd, KindCatBin:
		c := rng.Intn(card)
		return fmt.Sprintf("%d", c), st.effects[c]
	case KindDate:
		month := rng.Intn(12)
		day := rng.Intn(28) + 1
		year := 2000 + rng.Intn(20)
		t := time.Date(year, time.Month(month+1), day, 0, 0, 0, 0, time.UTC)
		return t.Format(st.layout), st.effects[month]
	case KindSentence:
		topic := rng.Intn(card)
		return sentence(rng, rng.Intn(12)+5, topic), st.effects[topic]
	case KindURL:
		d := rng.Intn(card)
		return fmt.Sprintf("https://www.%s.com/%s/%d", domainWords[d], pick(rng, wordBank), rng.Intn(9999)), st.effects[d]
	case KindEmbedNum:
		z := rng.NormFloat64()
		return fmt.Sprintf("USD %s", group(int64(z*800+4000))), z
	case KindList:
		has := rng.Intn(2)
		n := rng.Intn(3) + 2
		items := make([]string, 0, n+1)
		for j := 0; j < n; j++ {
			items = append(items, pick(rng, genreList))
		}
		if has == 1 {
			items[rng.Intn(len(items))] = "jazz"
		} else {
			for j := range items {
				if items[j] == "jazz" {
					items[j] = "rock"
				}
			}
		}
		out := items[0]
		for _, it := range items[1:] {
			out += "; " + it
		}
		return out, st.effects[has]
	case KindPK:
		return fmt.Sprintf("%d", 10000+row), 0
	case KindConst:
		return "batch_a", 0
	case KindCSJunk:
		return fmt.Sprintf(`{"k":%d,"t":"%s"}`, rng.Intn(999), pick(rng, wordBank)), 0
	default: // KindCSCode
		return []string{"-99", "0", "1", "7"}[rng.Intn(4)], 0
	}
}

// Generate builds the downstream dataset from its spec. Classification
// tasks with clusterThreshold or more classes use class-conditional
// (cluster-mode) generation; everything else uses the weighted-latent score
// mode.
func Generate(spec DatasetSpec) *Downstream {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.Classes >= clusterThreshold {
		return generateCluster(spec, rng)
	}
	states := make([]*colState, len(spec.Cols))
	for i, cs := range spec.Cols {
		states[i] = newColState(cs, rng)
	}
	cols := make([]data.Column, len(spec.Cols))
	types := make([]ftype.FeatureType, len(spec.Cols))
	for i, cs := range spec.Cols {
		cols[i] = data.Column{Name: cs.Name, Values: make([]string, spec.Rows)}
		types[i] = cs.Kind.TrueType()
	}
	scores := make([]float64, spec.Rows)
	for r := 0; r < spec.Rows; r++ {
		var score float64
		for i := range spec.Cols {
			cell, latent := states[i].sample(rng, r)
			cols[i].Values[r] = cell
			score += spec.Cols[i].Weight * latent
		}
		scores[r] = score + rng.NormFloat64()*spec.Noise
	}

	down := &Downstream{Spec: spec, TrueTypes: types}
	target := data.Column{Name: "target", Values: make([]string, spec.Rows)}
	if spec.Classes > 0 {
		down.TargetCls = bucketize(scores, spec.Classes)
		for r, c := range down.TargetCls {
			target.Values[r] = fmt.Sprintf("class_%d", c)
		}
	} else {
		down.TargetReg = scores
		for r, v := range scores {
			target.Values[r] = fmt.Sprintf("%.4f", v)
		}
	}
	down.Data = &data.Dataset{Name: spec.Name, Columns: append(cols, target)}
	return down
}

// clampInt bounds v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// bucketize assigns each score to one of k quantile buckets.
func bucketize(scores []float64, k int) []int {
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	cuts := make([]float64, k-1)
	for i := 1; i < k; i++ {
		cuts[i-1] = sorted[i*len(sorted)/k]
	}
	out := make([]int, len(scores))
	for i, s := range scores {
		c := 0
		for c < k-1 && s >= cuts[c] {
			c++
		}
		out[i] = c
	}
	return out
}
