// Package synth generates the benchmark's labeled corpus and downstream
// datasets. It stands in for the paper's 1,240 hand-labeled Kaggle/UCI CSV
// files (see DESIGN.md, "Substitutions"): a deterministic generator emits
// columns whose names, values and descriptive-statistic profiles match the
// per-class characteristics reported in the paper (Section 2.5 and Appendix
// Table 18), including the cross-class ambiguities that make the task hard
// for rule- and syntax-based tools.
package synth

// Name pools per class. Pools deliberately overlap across classes (e.g.
// "code", "year", "area", "rank" appear in several) so attribute names are
// a strong but imperfect signal, as in real data.

var numericNames = []string{
	"salary", "price", "age", "height", "weight", "temperature", "score",
	"amount", "balance", "total_sales", "revenue", "quantity", "distance",
	"duration_sec", "num_children", "avg_rating", "pct_change", "income",
	"petal_length", "petal_width", "sepal_length", "blood_pressure",
	"cholesterol", "glucose", "bmi", "area_sqft", "population", "gdp",
	"elevation", "speed", "horsepower", "mpg", "displacement", "acceleration",
	"loan_amount", "credit_limit", "interest_rate", "tax", "discount",
	"profit", "cost", "expenses", "budget", "units_sold", "clicks",
	"impressions", "views", "likes", "followers", "points", "goals",
	"assists", "rebounds", "at_bats", "hits", "runs", "errors_count",
	"depth_m", "rainfall_mm", "humidity", "wind_speed", "pressure_hpa",
	"voltage", "current_ma", "frequency", "capacity_l", "volume",
	"density", "mass_kg", "length_cm", "width_cm", "radius", "perimeter",
	"median_value", "mean_value", "std_dev", "variance", "total", "subtotal",
	"count", "freq", "measurement", "reading", "level", "concentration",
	"dose_mg", "heart_rate", "steps", "calories", "protein_g", "fat_g",
}

// numericNameTemplates produce composite numeric names like
// "temperature_jan" or "sales_q3".
var numericSuffixes = []string{
	"_jan", "_feb", "_mar", "_apr", "_may", "_jun", "_jul", "_aug",
	"_q1", "_q2", "_q3", "_q4", "_2018", "_2019", "_2020", "_avg", "_min",
	"_max", "_total", "_per_capita", "_rate", "1", "2", "3",
}

var categoricalNames = []string{
	"gender", "zipcode", "zip_code", "state_code", "country", "item_code",
	"status", "grade", "category", "type", "class", "color", "day_of_week",
	"year", "blood_type", "marital_status", "education", "region",
	"product_code", "rank", "quality", "size", "brand", "department",
	"league", "division", "position", "team", "species", "genre", "format",
	"language", "currency", "payment_method", "shipping_mode", "segment",
	"priority", "severity", "outcome", "result", "flag", "is_active",
	"smoker", "churn", "approved", "tier", "plan", "level_code", "race",
	"ethnicity", "religion", "occupation", "industry", "sector", "month",
	"quarter", "season", "weekday", "age_group", "income_bracket",
	"vehicle_type", "fuel_type", "transmission", "body_style", "route",
	"store_id_code", "warehouse", "shift", "job_family", "union_member",
	"tenure_status", "visa_type", "citizenship", "continent", "timezone",
	"county_code", "district", "precinct", "ward", "survey_answer",
	"satisfaction", "likelihood", "agreement_level", "credit_class",
}

var datetimeNames = []string{
	"date", "hire_date", "created_at", "updated_at", "timestamp", "dob",
	"birth_date", "birthdate", "start_date", "end_date", "last_login",
	"order_date", "ship_date", "delivery_date", "event_time", "arrival",
	"departure", "checkin", "checkout", "published", "release_date",
	"expiry_date", "due_date", "registered_on", "modified", "time",
	"start", "end", "opened", "closed", "observed_at", "recorded",
	"first_seen", "last_seen", "admission_date", "discharge_date",
}

var sentenceNames = []string{
	"description", "review", "comment", "text", "summary", "notes",
	"abstract", "body", "message", "feedback", "remarks", "details",
	"synopsis", "caption", "bio", "about", "answer", "question_text",
	"headline", "content", "transcript", "instructions", "explanation",
	"requirement", "observation", "diagnosis_notes", "complaint",
}

var urlNames = []string{
	"url", "link", "website", "homepage", "image_url", "href", "source_url",
	"profile_url", "thumbnail", "photo_link", "video_url", "download_link",
	"repo_url", "docs_link", "api_endpoint", "reference_url", "site",
}

var embeddedNames = []string{
	"price", "cost", "salary_range", "income", "pct_white", "%white",
	"weight", "duration", "file_size", "capacity", "plays", "sales",
	"range", "rank_str", "market_cap", "budget", "revenue", "fee",
	"donation", "prize_money", "bandwidth", "storage", "memory",
	"screen_size", "engine", "mileage", "fuel_economy", "power",
	"torque", "download_speed", "attendance", "transfer_fee",
	"net_worth", "valuation", "funding", "grant_amount",
}

var listNames = []string{
	"genres", "tags", "countries", "languages", "collection", "items",
	"categories", "keywords", "skills", "ingredients", "authors",
	"cast", "platforms", "features", "amenities", "topics", "colors",
	"sizes", "teams", "members", "stops", "aliases", "symptoms",
	"medications", "hobbies", "interests", "toppings",
}

var notGenNames = []string{
	"id", "cust_id", "customer_id", "uuid", "index", "row_id", "case_number",
	"record_id", "key", "serial_no", "order_id", "transaction_id",
	"session_id", "user_id", "account_no", "policy_number", "ticket_no",
	"invoice_id", "tracking_number", "isbn", "vin", "ssn_hash", "ref",
	"seq", "line_number", "unnamed_0", "objectid", "pk", "guid",
	"q19TalToolResumeScreen", "q7ReviewPanel", "constant_field",
	"batch_ref", "entry_id",
}

var contextNames = []string{
	"xyz", "ad744", "ad7125", "col_17", "x1", "v23", "q19x", "abc123",
	"field_7", "livshrmd", "s1p1c2val", "kdqpr", "zzz9", "tmp_col",
	"var_41", "m3x", "aux2", "wq_7", "hh12", "bnr3", "ftq", "xx_1",
	"name", "address", "location", "person", "artist", "company",
	"product", "creator", "owner", "jockey", "team_name", "publisher",
	"director", "organisation", "birth_place", "album", "venue",
	"full_name", "street", "geo", "coordinates", "raw_json", "payload",
	"metadata", "extra", "misc", "blob",
}

// wordBank supplies vocabulary for generated sentences.
var wordBank = []string{
	"the", "a", "of", "and", "to", "in", "is", "was", "with", "for",
	"customer", "service", "product", "quality", "delivery", "great",
	"excellent", "poor", "average", "fast", "slow", "arrived", "ordered",
	"recommend", "experience", "staff", "friendly", "helpful", "clean",
	"room", "location", "price", "value", "time", "day", "night", "food",
	"taste", "fresh", "cold", "warm", "package", "damaged", "perfect",
	"works", "well", "battery", "screen", "sound", "quality", "easy",
	"difficult", "setup", "install", "return", "refund", "support",
	"team", "played", "match", "season", "goal", "score", "win", "loss",
	"patient", "treatment", "symptoms", "improved", "condition", "doctor",
	"study", "results", "data", "analysis", "model", "report", "shows",
	"increase", "decrease", "significant", "annual", "growth", "market",
	"company", "announced", "launch", "new", "version", "update", "users",
	"movie", "plot", "acting", "story", "characters", "ending", "scenes",
	"book", "chapter", "author", "writing", "pages", "journey", "history",
	"beautiful", "amazing", "terrible", "disappointing", "wonderful",
	"house", "garden", "view", "walk", "beach", "city", "quiet", "noisy",
}

// sentenceTopics are keyword clusters used to plant recoverable signal in
// downstream Sentence columns.
var sentenceTopics = [][]string{
	{"excellent", "great", "perfect", "wonderful", "amazing", "recommend"},
	{"terrible", "poor", "damaged", "disappointing", "refund", "slow"},
	{"average", "okay", "fine", "acceptable", "decent", "expected"},
	{"match", "season", "goal", "played", "team", "win"},
	{"patient", "treatment", "doctor", "symptoms", "condition", "improved"},
}

var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "carlos", "maria", "wei", "yuki",
	"ahmed", "fatima", "ivan", "olga", "pierre", "claire", "raj", "priya",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"kim", "nguyen", "chen", "patel", "singh", "kumar", "ali", "khan",
}

var streetNames = []string{
	"main st", "oak ave", "park rd", "maple dr", "cedar ln", "elm st",
	"washington blvd", "lake view dr", "hill rd", "river st", "sunset ave",
	"broadway", "2nd ave", "5th st", "highland ave", "church st",
}

var cityNames = []string{
	"springfield", "riverton", "fairview", "kingston", "ashland",
	"georgetown", "salem", "clinton", "arlington", "burlington",
	"centerville", "dayton", "franklin", "greenville", "jackson",
	"lebanon", "madison", "milton", "newport", "oxford",
}

// countryList backs both the Categorical generator and the Country
// extension class.
var countryList = []string{
	"United States", "Canada", "Mexico", "Brazil", "Argentina", "Chile",
	"United Kingdom", "France", "Germany", "Spain", "Italy", "Portugal",
	"Netherlands", "Belgium", "Sweden", "Norway", "Denmark", "Finland",
	"Poland", "Austria", "Switzerland", "Greece", "Turkey", "Russia",
	"China", "Japan", "South Korea", "India", "Indonesia", "Thailand",
	"Vietnam", "Philippines", "Australia", "New Zealand", "South Africa",
	"Egypt", "Nigeria", "Kenya", "Morocco", "Israel", "Saudi Arabia",
}

var countryCodes = []string{
	"USA", "CAN", "MEX", "BRA", "ARG", "CHL", "GBR", "FRA", "DEU", "ESP",
	"ITA", "PRT", "NLD", "BEL", "SWE", "NOR", "DNK", "FIN", "POL", "AUT",
	"CHE", "GRC", "TUR", "RUS", "CHN", "JPN", "KOR", "IND", "IDN", "THA",
}

// stateList backs both the Categorical generator and the State extension.
var stateList = []string{
	"California", "Texas", "Florida", "New York", "Pennsylvania",
	"Illinois", "Ohio", "Georgia", "North Carolina", "Michigan",
	"New Jersey", "Virginia", "Washington", "Arizona", "Massachusetts",
	"Tennessee", "Indiana", "Missouri", "Maryland", "Wisconsin",
	"Ontario", "Quebec", "British Columbia", "Bavaria", "Catalonia",
	"Queensland", "Victoria", "Maharashtra", "Punjab", "Hokkaido",
}

var stateAbbrevs = []string{
	"CA", "TX", "FL", "NY", "PA", "IL", "OH", "GA", "NC", "MI",
	"NJ", "VA", "WA", "AZ", "MA", "TN", "IN", "MO", "MD", "WI",
	"ON", "QC", "BC", "AL", "AK", "AR", "CO", "CT", "DE", "HI",
}

var colorList = []string{
	"red", "blue", "green", "yellow", "black", "white", "orange",
	"purple", "brown", "pink", "gray", "silver", "gold",
}

var statusList = []string{
	"active", "inactive", "pending", "closed", "open", "cancelled",
	"approved", "rejected", "on hold", "in progress", "completed",
}

var genreList = []string{
	"rock", "pop", "jazz", "classical", "hiphop", "country", "blues",
	"metal", "folk", "electronic", "reggae", "soul", "punk", "indie",
}

var domainWords = []string{
	"example", "acme", "widgets", "datahub", "mystore", "bestbuyers",
	"cloudapi", "fastcdn", "openstats", "mediafiles", "newsfeed",
	"sportsline", "healthinfo", "traveldeals", "gamezone", "musicbox",
}

var tlds = []string{"com", "org", "net", "io", "co", "edu", "gov"}

var unitsList = []string{
	"kg", "lbs", "lbs.", "Mhz", "GHz", "GB", "MB", "km", "mi", "cm",
	"mm", "in", "ft", "hrs", "min", "sec", "kwh", "mpg", "ml", "oz",
}

var currencyPrefixes = []string{"USD", "$", "EUR", "€", "GBP", "£", "INR", "Rs"}

// genericNames are uninformative attribute names occasionally substituted
// onto columns of any class, bounding how far name signal alone can go.
var genericNames = []string{
	"value", "data", "field", "info", "column", "attr", "item", "record",
	"entry", "measure", "detail", "var", "feature", "input", "output",
}
