package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// pick returns a uniformly random element of pool.
func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}

// cryptic builds a meaningless attribute name like "ad744" or "s1p1c2x".
func cryptic(rng *rand.Rand) string {
	consonants := "bcdfghklmnpqrstvwxz"
	switch rng.Intn(4) {
	case 0: // letters + number: ad744
		return fmt.Sprintf("%c%c%d", consonants[rng.Intn(len(consonants))],
			"aeiou"[rng.Intn(5)], rng.Intn(9000)+10)
	case 1: // vN style: v23
		return fmt.Sprintf("%c%d", "vxqmz"[rng.Intn(5)], rng.Intn(99)+1)
	case 2: // segment code: s1p1c2area
		tails := []string{"area", "val", "cnt", "idx", "x", "q", "resp"}
		return fmt.Sprintf("s%dp%dc%d%s", rng.Intn(4)+1, rng.Intn(4)+1,
			rng.Intn(4)+1, tails[rng.Intn(len(tails))])
	default: // consonant soup: livshrmd
		n := rng.Intn(4) + 5
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(consonants[rng.Intn(len(consonants))])
		}
		return b.String()
	}
}

// withNaNs replaces approximately frac of values with a missing token.
func withNaNs(rng *rand.Rand, vals []string, frac float64) []string {
	if frac <= 0 {
		return vals
	}
	tokens := []string{"", "NA", "NaN", "null", "?"}
	tok := tokens[rng.Intn(len(tokens))]
	for i := range vals {
		if rng.Float64() < frac {
			vals[i] = tok
		}
	}
	return vals
}

// maybeNaNFrac draws a typical missing-value fraction: zero half the time,
// otherwise up to maxFrac.
func maybeNaNFrac(rng *rand.Rand, maxFrac float64) float64 {
	if rng.Float64() < 0.5 {
		return 0
	}
	return rng.Float64() * maxFrac
}

// --- Numeric -------------------------------------------------------------

// genNumeric emits a Numeric column: floats or wide-range integers, with a
// deliberate hard tail of low-domain integers and cryptically named integer
// columns that collide with Categorical and Context-Specific.
func genNumeric(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, numericNames)
	if rng.Float64() < 0.3 {
		name += pick(rng, numericSuffixes)
	}
	vals := make([]string, rows)
	kind := rng.Float64()
	switch {
	case kind < 0.45: // floats
		mean := rng.Float64()*1000 - 200
		std := rng.Float64()*200 + 1
		dec := rng.Intn(4) + 1
		for i := range vals {
			vals[i] = fmt.Sprintf("%.*f", dec, rng.NormFloat64()*std+mean)
		}
	case kind < 0.75: // wide-range integers
		lo := rng.Intn(2000) - 500
		span := rng.Intn(100000) + 100
		for i := range vals {
			vals[i] = fmt.Sprintf("%d", lo+rng.Intn(span))
		}
	case kind < 0.85: // low-domain integers (hard vs Categorical)
		span := rng.Intn(70) + 8
		for i := range vals {
			vals[i] = fmt.Sprintf("%d", rng.Intn(span))
		}
	default: // cryptic name + integers (irreducibly hard vs Context-Specific)
		name = cryptic(rng)
		crypticIntValues(rng, vals)
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.45))}
}

// crypticIntValues fills vals with integer codes whose distribution is
// shared between the Numeric and Context-Specific generators: without a
// meaningful attribute name, nothing in the values distinguishes a genuine
// measurement from an opaque survey code. This is the irreducible ambiguity
// behind the paper's Numeric↔Context-Specific confusion (Table 3 examples
// A and H).
func crypticIntValues(rng *rand.Rand, vals []string) {
	if rng.Float64() < 0.5 { // wide-range integers
		span := rng.Intn(5000) + 50
		for i := range vals {
			vals[i] = fmt.Sprintf("%d", rng.Intn(span))
		}
	} else { // low-domain codes, possibly with a sentinel
		domain := []string{}
		if rng.Float64() < 0.5 {
			domain = append(domain, "-99")
		}
		n := rng.Intn(12) + 2
		for k := 0; k < n; k++ {
			domain = append(domain, fmt.Sprintf("%d", rng.Intn(500)))
		}
		for i := range vals {
			vals[i] = domain[rng.Intn(len(domain))]
		}
	}
}

// --- Categorical ----------------------------------------------------------

// stringDomains are the themed value domains for string categoricals.
func stringDomain(rng *rand.Rand) []string {
	switch rng.Intn(9) {
	case 0:
		return []string{"M", "F"}
	case 1:
		return colorList
	case 2:
		return statusList
	case 3:
		return countryList[:rng.Intn(20)+5]
	case 4:
		return stateList[:rng.Intn(20)+5]
	case 5:
		return []string{"A", "B", "C", "D", "E", "F"}[:rng.Intn(4)+2]
	case 6:
		return genreList[:rng.Intn(8)+3]
	case 7:
		return []string{"yes", "no"}
	default:
		return stateAbbrevs[:rng.Intn(15)+4]
	}
}

// genCategorical emits a Categorical column. Roughly 40% are integer-coded
// categories (zip codes, item codes, years, ratings, binary flags), which
// is the central failure mode of syntax-based tools; the rest are string
// categories, including a hard tail of multi-token phrases.
func genCategorical(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, categoricalNames)
	vals := make([]string, rows)
	kind := rng.Float64()
	switch {
	case kind < 0.40: // integer-coded categories
		var domain []string
		switch rng.Intn(5) {
		case 0: // zip codes
			name = []string{"zipcode", "zip_code", "zip", "postal_code"}[rng.Intn(4)]
			n := rng.Intn(40) + 8
			domain = make([]string, n)
			for i := range domain {
				domain[i] = fmt.Sprintf("%05d", rng.Intn(90000)+10000)
			}
		case 1: // small item/state codes
			n := rng.Intn(18) + 3
			domain = make([]string, n)
			for i := range domain {
				domain[i] = fmt.Sprintf("%d", rng.Intn(100))
			}
		case 2: // years (ordinal)
			name = []string{"year", "model_year", "season", "cohort"}[rng.Intn(4)]
			base := 1950 + rng.Intn(50)
			n := rng.Intn(40) + 5
			domain = make([]string, n)
			for i := range domain {
				domain[i] = fmt.Sprintf("%d", base+i)
			}
		case 3: // ratings 1..k (ordinal)
			k := rng.Intn(8) + 2
			domain = make([]string, k)
			for i := range domain {
				domain[i] = fmt.Sprintf("%d", i+1)
			}
		default: // binary flags
			domain = []string{"0", "1"}
		}
		for i := range vals {
			vals[i] = domain[rng.Intn(len(domain))]
		}
	case kind < 0.82: // string categories
		domain := stringDomain(rng)
		for i := range vals {
			vals[i] = domain[rng.Intn(len(domain))]
		}
	case kind < 0.92: // multi-token phrases (hard vs Sentence)
		// Generated phrase domains like "Own house, rent lot": a handful of
		// distinct multi-word strings. Names deliberately overlap with the
		// Sentence name pool part of the time.
		n := rng.Intn(18) + 3
		domain := make([]string, n)
		for i := range domain {
			domain[i] = title(sentence(rng, rng.Intn(4)+2, -1))
			domain[i] = strings.TrimSuffix(domain[i], ".")
		}
		if rng.Float64() < 0.4 {
			name = pick(rng, []string{"tenure_status", "employment", "survey_answer", "education", "answer", "response"})
		} else {
			name = pick(rng, sentenceNames)
		}
		for i := range vals {
			vals[i] = domain[rng.Intn(len(domain))]
		}
	default: // high-domain string categories (hard vs Not-Generalizable)
		n := rng.Intn(150) + 50
		domain := make([]string, n)
		for i := range domain {
			domain[i] = fmt.Sprintf("%s-%d", strings.ToUpper(pick(rng, genreList)[:3]), rng.Intn(900)+100)
		}
		name = []string{"product_code", "route", "precinct", "store_id_code"}[rng.Intn(4)]
		for i := range vals {
			vals[i] = domain[rng.Intn(len(domain))]
		}
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.3))}
}

// --- Datetime ---------------------------------------------------------------

// dateFormats are the per-column output formats. Formats are grouped by how
// hard they are for syntax-driven parsers: "easy" ones are ISO-like, "hard"
// ones (bare digit runs, duration-style strings, verbose month names) defeat
// most tools' rules but leave name/stat signal for ML models.
var easyDateFormats = []string{
	"2006-01-02", "2006/01/02", "2006-01-02 15:04:05", "2006-01-02T15:04:05",
}
var midDateFormats = []string{
	"01/02/2006", "1/2/2006", "01-02-2006", "Jan 2, 2006", "02-Jan-2006",
	"15:04:05", "01/02/2006 15:04",
}
var hardDateFormats = []string{
	"20060102", "January 2, 2006", "2-Jan-06", "hms",
}

// genDatetime emits a Datetime column in one consistent format.
func genDatetime(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, datetimeNames)
	var layout string
	switch r := rng.Float64(); {
	case r < 0.45:
		layout = easyDateFormats[rng.Intn(len(easyDateFormats))]
	case r < 0.80:
		layout = midDateFormats[rng.Intn(len(midDateFormats))]
	default:
		layout = hardDateFormats[rng.Intn(len(hardDateFormats))]
		if layout == "20060102" {
			name = []string{"birthdate", "dob", "obs_date", "yyyymmdd"}[rng.Intn(4)]
		}
	}
	base := int64(1.0e9 * (0.2 + rng.Float64()*1.4)) // ~1976..2020 in epoch seconds
	span := int64(rng.Intn(20)+1) * 365 * 86400
	vals := make([]string, rows)
	for i := range vals {
		t := base + rng.Int63n(span)
		if layout == "hms" {
			vals[i] = fmt.Sprintf("%dhrs:%dmin:%dsec", t%24, t%60, (t/7)%60)
		} else {
			vals[i] = timeFormat(t, layout)
		}
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.2))}
}

// --- Sentence ----------------------------------------------------------------

// sentence builds a pseudo-natural sentence of n words; topic >= 0 injects
// topic keywords for downstream signal.
func sentence(rng *rand.Rand, n, topic int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = pick(rng, wordBank)
	}
	if topic >= 0 {
		k := 1 + rng.Intn(2)
		for j := 0; j < k; j++ {
			words[rng.Intn(n)] = pick(rng, sentenceTopics[topic])
		}
	}
	s := strings.Join(words, " ")
	return strings.ToUpper(s[:1]) + s[1:] + "."
}

// genSentence emits a Sentence column of free text. A hard tail of short,
// partially repeating answers overlaps with the phrase-valued Categorical
// generator (the paper's Table 3 example B confusion).
func genSentence(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, sentenceNames)
	vals := make([]string, rows)
	if rng.Float64() < 0.25 { // short free-text answers, partially repeated
		pool := make([]string, rng.Intn(14)+6)
		for i := range pool {
			pool[i] = sentence(rng, rng.Intn(5)+2, -1)
		}
		for i := range vals {
			if rng.Float64() < 0.75 {
				vals[i] = pool[rng.Intn(len(pool))]
			} else {
				vals[i] = sentence(rng, rng.Intn(5)+2, -1)
			}
		}
		return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.25))}
	}
	minW := 4 + rng.Intn(6)
	spanW := 5 + rng.Intn(25)
	for i := range vals {
		vals[i] = sentence(rng, minW+rng.Intn(spanW), -1)
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.25))}
}

// --- URL ---------------------------------------------------------------------

func genOneURL(rng *rand.Rand) string {
	proto := []string{"http", "https", "https", "https"}[rng.Intn(4)]
	sub := []string{"www.", "", "cdn.", "api."}[rng.Intn(4)]
	dom := pick(rng, domainWords)
	tld := pick(rng, tlds)
	path := ""
	if rng.Float64() < 0.7 {
		segs := rng.Intn(3) + 1
		for s := 0; s < segs; s++ {
			path += "/" + pick(rng, wordBank)
		}
		if rng.Float64() < 0.4 {
			path += fmt.Sprintf("/%d", rng.Intn(100000))
		}
	}
	return fmt.Sprintf("%s://%s%s.%s%s", proto, sub, dom, tld, path)
}

// genURL emits a URL column.
func genURL(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, urlNames)
	vals := make([]string, rows)
	for i := range vals {
		vals[i] = genOneURL(rng)
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.2))}
}

// --- Embedded Number ------------------------------------------------------------

// genEmbedded emits an Embedded Number column: numbers wrapped in units,
// currencies, percents, grouped digits, or rank decorations.
func genEmbedded(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, embeddedNames)
	vals := make([]string, rows)
	kind := rng.Intn(5)
	unit := pick(rng, unitsList)
	cur := pick(rng, currencyPrefixes)
	for i := range vals {
		n := rng.Float64() * 100000
		switch kind {
		case 0: // currency: "USD 45", "$1,234.56"
			if strings.HasSuffix(cur, "$") || cur == "€" || cur == "£" {
				vals[i] = fmt.Sprintf("%s%s", cur, group(int64(n)))
			} else {
				vals[i] = fmt.Sprintf("%s %d", cur, int64(n))
			}
		case 1: // units: "30 Mhz", "95 lbs."
			vals[i] = fmt.Sprintf("%d %s", int64(math.Mod(n, 500)), unit)
		case 2: // percent: "18.90%"
			vals[i] = fmt.Sprintf("%.2f%%", math.Mod(n, 100))
		case 3: // grouped digits: "1,846" / "5,00,000"
			if rng.Float64() < 0.3 {
				vals[i] = indianGroup(int64(n))
			} else {
				vals[i] = group(int64(n))
			}
		default: // decorated rank: "RB - #3"
			vals[i] = fmt.Sprintf("%s - #%d", strings.ToUpper(pick(rng, genreList)[:2]), rng.Intn(99)+1)
		}
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.2))}
}

// group formats n with comma thousand separators.
func group(n int64) string {
	s := fmt.Sprintf("%d", n)
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}

// indianGroup formats n in the Indian lakh/crore grouping, e.g. "5,00,000".
func indianGroup(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	head := s[:len(s)-3]
	tail := s[len(s)-3:]
	var out []byte
	for i, c := range []byte(head) {
		if i > 0 && (len(head)-i)%2 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out) + "," + tail
}

// --- List -------------------------------------------------------------------

// genList emits a List column: delimiter-separated item collections.
func genList(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, listNames)
	sep := []string{"; ", " | ", ", ", ";"}[rng.Intn(4)]
	pools := [][]string{genreList, colorList, countryCodes, stateAbbrevs, wordBank}
	pool := pools[rng.Intn(len(pools))]
	numeric := rng.Float64() < 0.2 // numeric item lists like "1, 5, 8" (hard vs Embedded Number)
	maxItems := rng.Intn(20) + 3
	if numeric {
		maxItems = rng.Intn(4) + 2
		sep = ", "
	}
	minItems := 2
	if strings.Contains(sep, ",") {
		// Comma lists need 3+ items to be unambiguous (two comma-separated
		// tokens read as ordinary prose).
		minItems = 3
	}
	vals := make([]string, rows)
	for i := range vals {
		n := rng.Intn(maxItems) + minItems
		items := make([]string, n)
		for j := range items {
			if numeric {
				items[j] = fmt.Sprintf("%d", rng.Intn(900)+1)
			} else {
				items[j] = pick(rng, pool)
			}
		}
		vals[i] = strings.Join(items, sep)
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.3))}
}

// --- Not-Generalizable ---------------------------------------------------------

// genNotGen emits a Not-Generalizable column: primary keys, uuid-like
// hashes, constants, all-NaN columns, and degenerate two-value columns.
func genNotGen(rng *rand.Rand, rows int) data.Column {
	name := pick(rng, notGenNames)
	vals := make([]string, rows)
	switch r := rng.Float64(); {
	case r < 0.35: // integer primary keys
		start := rng.Intn(100000)
		if rng.Float64() < 0.5 { // sequential
			for i := range vals {
				vals[i] = fmt.Sprintf("%d", start+i)
			}
		} else { // random unique
			seen := map[int]bool{}
			for i := range vals {
				v := rng.Intn(rows * 100)
				for seen[v] {
					v = rng.Intn(rows * 100)
				}
				seen[v] = true
				vals[i] = fmt.Sprintf("%d", v)
			}
		}
	case r < 0.47: // uuid-ish strings
		for i := range vals {
			vals[i] = fmt.Sprintf("%08x-%04x-%04x", rng.Uint32(), rng.Intn(1<<16), rng.Intn(1<<16))
		}
	case r < 0.62: // constant column
		c := pick(rng, append(append([]string{}, colorList...), "0", "1", "unknown", "2020"))
		for i := range vals {
			vals[i] = c
		}
	case r < 0.70: // (almost) all NaN
		fill := []string{"", "NA", "NaN"}[rng.Intn(3)]
		for i := range vals {
			vals[i] = fill
		}
		for k := 0; k < rng.Intn(3); k++ { // a stray value or two
			vals[rng.Intn(rows)] = fmt.Sprintf("%d", rng.Intn(10))
		}
	case r < 0.80: // degenerate two-value with an error token
		other := pick(rng, wordBank)
		for i := range vals {
			if rng.Float64() < 0.97 {
				vals[i] = "#NULL!"
			} else {
				vals[i] = other
			}
		}
		name = pick(rng, []string{"q19TalToolResumeScreen", "q7ReviewPanel", "survey_q3_flag"})
		return data.Column{Name: name, Values: vals}
	default: // near-unique string codes (hard vs high-domain Categorical)
		domain := rows/3 + rng.Intn(rows) + 2
		for i := range vals {
			vals[i] = fmt.Sprintf("%s-%06d", strings.ToUpper(pick(rng, tlds)), rng.Intn(domain)+100000)
		}
	}
	return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.5))}
}

// --- Context-Specific -----------------------------------------------------------

// genContext emits a Context-Specific column: cryptically named survey-style
// integer codes, free-form entity names, addresses, JSON blobs, and
// geo-coordinates — all requiring human judgement.
func genContext(rng *rand.Rand, rows int) data.Column {
	vals := make([]string, rows)
	switch r := rng.Float64(); {
	case r < 0.50: // cryptic integer codes (irreducibly hard vs Numeric)
		name := cryptic(rng)
		if rng.Float64() < 0.25 {
			// A tail of fixed real-world-style opaque names (xyz, ad744, ...).
			name = pick(rng, contextNames[:22])
		}
		crypticIntValues(rng, vals)
		return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.55))}
	case r < 0.65: // entity names (people, companies, products)
		name := pick(rng, []string{"name", "person", "artist", "company", "product", "owner", "creator", "jockey", "team_name", "publisher", "director"})
		if rng.Float64() < 0.5 {
			// Repeating entity pool: low uniqueness, which collides with
			// high-domain Categorical columns (the paper's CS↔CA confusion).
			pool := make([]string, rng.Intn(40)+10)
			for i := range pool {
				pool[i] = title(pick(rng, firstNames)) + " " + title(pick(rng, lastNames))
			}
			for i := range vals {
				vals[i] = pool[rng.Intn(len(pool))]
			}
		} else {
			for i := range vals {
				vals[i] = title(pick(rng, firstNames)) + " " + title(pick(rng, lastNames))
			}
		}
		return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.2))}
	case r < 0.77: // street addresses
		name := pick(rng, []string{"address", "location", "street", "venue"})
		for i := range vals {
			vals[i] = fmt.Sprintf("%d %s", rng.Intn(9000)+1, title(pick(rng, streetNames)))
			if rng.Float64() < 0.4 {
				vals[i] += ", " + title(pick(rng, cityNames))
			}
		}
		return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.2))}
	case r < 0.89: // JSON blobs
		name := pick(rng, []string{"raw_json", "payload", "metadata", "extra", "blob"})
		for i := range vals {
			vals[i] = fmt.Sprintf(`{"id":%d,"tag":"%s","v":%0.2f}`, rng.Intn(10000), pick(rng, wordBank), rng.Float64()*100)
		}
		return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.2))}
	default: // geo coordinates
		name := pick(rng, []string{"geo", "coordinates", "lat_long", "position"})
		for i := range vals {
			vals[i] = fmt.Sprintf("(%.4f, %.4f)", rng.Float64()*180-90, rng.Float64()*360-180)
		}
		return data.Column{Name: name, Values: withNaNs(rng, vals, maybeNaNFrac(rng, 0.2))}
	}
}

// timeFormat renders epoch seconds under a Go layout without importing the
// time package at every call site.
func timeFormat(epoch int64, layout string) string {
	return timeUnix(epoch).Format(layout)
}

// Generator returns the column generator for a feature type.
func Generator(t ftype.FeatureType) func(*rand.Rand, int) data.Column {
	switch t {
	case ftype.Numeric:
		return genNumeric
	case ftype.Categorical:
		return genCategorical
	case ftype.Datetime:
		return genDatetime
	case ftype.Sentence:
		return genSentence
	case ftype.URL:
		return genURL
	case ftype.EmbeddedNumber:
		return genEmbedded
	case ftype.List:
		return genList
	case ftype.NotGeneralizable:
		return genNotGen
	case ftype.ContextSpecific:
		return genContext
	case ftype.Country:
		return genCountry
	case ftype.State:
		return genState
	default:
		return nil
	}
}
