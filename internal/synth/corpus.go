package synth

import (
	"fmt"
	"math/rand"
	"time"

	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// timeUnix converts epoch seconds to a UTC time.Time.
func timeUnix(epoch int64) time.Time { return time.Unix(epoch, 0).UTC() }

// title uppercases the first letter of each space-separated word.
func title(s string) string {
	out := []byte(s)
	up := true
	for i, c := range out {
		if up && c >= 'a' && c <= 'z' {
			out[i] = c - 32
		}
		up = c == ' '
	}
	return string(out)
}

// PaperDistribution is the class-label distribution of the paper's labeled
// dataset (Section 2.5).
func PaperDistribution() map[ftype.FeatureType]float64 {
	return map[ftype.FeatureType]float64{
		ftype.Numeric:          0.366,
		ftype.Categorical:      0.233,
		ftype.Datetime:         0.070,
		ftype.Sentence:         0.039,
		ftype.URL:              0.015,
		ftype.EmbeddedNumber:   0.057,
		ftype.List:             0.024,
		ftype.NotGeneralizable: 0.106,
		ftype.ContextSpecific:  0.089,
	}
}

// PaperCorpusSize is the number of labeled examples in the paper's dataset.
const PaperCorpusSize = 9921

// CorpusConfig controls labeled-corpus generation.
type CorpusConfig struct {
	N    int   // number of labeled columns (0 = PaperCorpusSize)
	Seed int64 // generator seed

	// Rows bounds the per-file row count; files are small by default to
	// keep featurization cheap on modest machines.
	MinRows, MaxRows int

	// ColsPerFileMin/Max bound how many columns share one synthetic source
	// file (for leave-datafile-out CV).
	ColsPerFileMin, ColsPerFileMax int

	// Dist overrides the class distribution (defaults to the paper's).
	Dist map[ftype.FeatureType]float64
}

// DefaultCorpusConfig mirrors the paper's corpus: 9,921 columns drawn from
// ~1,240 files with the published class distribution.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		N: PaperCorpusSize, Seed: 7,
		MinRows: 40, MaxRows: 1200,
		ColsPerFileMin: 4, ColsPerFileMax: 12,
	}
}

// GenerateCorpus emits a labeled corpus of cfg.N columns grouped into
// synthetic source files. Class quotas follow the configured distribution
// exactly (up to rounding); within a file, classes are drawn from the
// remaining quotas so every file mixes types like real CSVs do.
func GenerateCorpus(cfg CorpusConfig) []data.LabeledColumn {
	if cfg.N <= 0 {
		cfg.N = PaperCorpusSize
	}
	if cfg.MinRows <= 0 {
		cfg.MinRows = 40
	}
	if cfg.MaxRows < cfg.MinRows {
		cfg.MaxRows = cfg.MinRows + 1
	}
	if cfg.ColsPerFileMin <= 0 {
		cfg.ColsPerFileMin = 4
	}
	if cfg.ColsPerFileMax < cfg.ColsPerFileMin {
		cfg.ColsPerFileMax = cfg.ColsPerFileMin
	}
	dist := cfg.Dist
	if dist == nil {
		dist = PaperDistribution()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Exact class quotas; leftovers from rounding go to Numeric.
	quota := map[ftype.FeatureType]int{}
	total := 0
	for _, t := range ftype.BaseClasses() {
		q := int(float64(cfg.N) * dist[t])
		quota[t] = q
		total += q
	}
	quota[ftype.Numeric] += cfg.N - total

	// Build a shuffled label sequence respecting the quotas.
	labels := make([]ftype.FeatureType, 0, cfg.N)
	for _, t := range ftype.BaseClasses() {
		for i := 0; i < quota[t]; i++ {
			labels = append(labels, t)
		}
	}
	rng.Shuffle(len(labels), func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })

	out := make([]data.LabeledColumn, 0, cfg.N)
	fileID := 0
	for len(labels) > 0 {
		rows := cfg.MinRows + rng.Intn(cfg.MaxRows-cfg.MinRows+1)
		nCols := cfg.ColsPerFileMin + rng.Intn(cfg.ColsPerFileMax-cfg.ColsPerFileMin+1)
		if nCols > len(labels) {
			nCols = len(labels)
		}
		for c := 0; c < nCols; c++ {
			label := labels[len(labels)-1]
			labels = labels[:len(labels)-1]
			col := Generator(label)(rng, rows)
			// Real files have a tail of uninformative attribute names;
			// replacing ~10% of names with generic tokens keeps the name
			// signal strong but imperfect, as in the paper's corpus.
			if rng.Float64() < 0.10 {
				col.Name = pick(rng, genericNames)
				if rng.Float64() < 0.5 {
					col.Name = fmt.Sprintf("%s%d", col.Name, rng.Intn(30)+1)
				}
			}
			out = append(out, data.LabeledColumn{Column: col, Label: label, FileID: fileID})
		}
		fileID++
	}
	return out
}
