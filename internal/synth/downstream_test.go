package synth

import (
	"testing"

	"sortinghat/ftype"
)

func TestGenerateDownstreamShape(t *testing.T) {
	spec := DatasetSpec{
		Name: "t", Rows: 200, Classes: 3, Noise: 0.2, Seed: 1,
		Cols: []ColSpec{
			{Name: "x", Kind: KindNumFloat, Weight: 1},
			{Name: "zip", Kind: KindCatInt, Weight: 1, Card: 5},
			{Name: "id", Kind: KindPK},
		},
	}
	d := Generate(spec)
	if d.Data.NumRows() != 200 {
		t.Fatalf("rows = %d", d.Data.NumRows())
	}
	if d.Data.NumCols() != 4 { // 3 features + target
		t.Fatalf("cols = %d", d.Data.NumCols())
	}
	if d.IsRegression() {
		t.Fatal("classes=3 should be classification")
	}
	if len(d.TargetCls) != 200 || d.TargetReg != nil {
		t.Fatal("classification targets wrong")
	}
	want := []ftype.FeatureType{ftype.Numeric, ftype.Categorical, ftype.NotGeneralizable}
	for i, w := range want {
		if d.TrueTypes[i] != w {
			t.Errorf("TrueTypes[%d] = %v, want %v", i, d.TrueTypes[i], w)
		}
	}
	// Quantile bucketing: classes roughly balanced.
	counts := map[int]int{}
	for _, c := range d.TargetCls {
		counts[c]++
	}
	for c := 0; c < 3; c++ {
		if counts[c] < 40 || counts[c] > 100 {
			t.Errorf("class %d count = %d, want roughly balanced", c, counts[c])
		}
	}
}

func TestGenerateRegression(t *testing.T) {
	spec := DatasetSpec{
		Name: "r", Rows: 100, Classes: 0, Noise: 0.1, Seed: 2,
		Cols: []ColSpec{{Name: "x", Kind: KindNumInt, Weight: 1}},
	}
	d := Generate(spec)
	if !d.IsRegression() {
		t.Fatal("classes=0 must be regression")
	}
	if len(d.TargetReg) != 100 || d.TargetCls != nil {
		t.Fatal("regression targets wrong")
	}
}

func TestPKColumnIsUnique(t *testing.T) {
	spec := DatasetSpec{Name: "p", Rows: 150, Classes: 2, Seed: 3,
		Cols: []ColSpec{{Name: "id", Kind: KindPK}, {Name: "x", Kind: KindNumFloat, Weight: 1}}}
	d := Generate(spec)
	if got := len(d.Data.Columns[0].DistinctNonMissing()); got != 150 {
		t.Errorf("PK distinct = %d, want 150", got)
	}
	if got := len(d.Data.Columns[1].DistinctNonMissing()); got < 100 {
		t.Errorf("float column distinct = %d", got)
	}
}

func TestKindTrueTypesComplete(t *testing.T) {
	kinds := []ColKind{KindNumFloat, KindNumInt, KindNumIntSmall, KindCatInt, KindCatStr,
		KindCatOrd, KindCatBin, KindDate, KindSentence, KindURL,
		KindEmbedNum, KindList, KindPK, KindConst, KindCSJunk, KindCSCode}
	for _, k := range kinds {
		if tt := k.TrueType(); !tt.Valid() {
			t.Errorf("kind %d has invalid true type %v", k, tt)
		}
	}
}

func TestSuiteSpecsShape(t *testing.T) {
	specs := SuiteSpecs(9)
	if len(specs) != 30 {
		t.Fatalf("suite has %d datasets, want 30", len(specs))
	}
	if got := SuiteColumnCount(specs); got != 566 {
		t.Errorf("total columns = %d, want the paper's 566", got)
	}
	reg := 0
	names := map[string]bool{}
	for _, sp := range specs {
		if names[sp.Name] {
			t.Errorf("duplicate dataset name %q", sp.Name)
		}
		names[sp.Name] = true
		if sp.Classes == 0 {
			reg++
		}
		if sp.Rows < 100 {
			t.Errorf("%s has too few rows", sp.Name)
		}
	}
	if reg != 5 {
		t.Errorf("regression datasets = %d, want 5", reg)
	}
	// Spot-check signature datasets from Table 5.
	byName := map[string]DatasetSpec{}
	for _, sp := range specs {
		byName[sp.Name] = sp
	}
	if len(byName["Mfeat"].Cols) != 216 {
		t.Errorf("Mfeat |A| = %d, want 216", len(byName["Mfeat"].Cols))
	}
	if byName["Mfeat"].Classes != 10 {
		t.Errorf("Mfeat |Y| = %d", byName["Mfeat"].Classes)
	}
	if len(byName["BBC"].Cols) != 1 || byName["BBC"].Cols[0].Kind != KindSentence {
		t.Error("BBC should be a single Sentence column")
	}
	if len(byName["President"].Cols) != 26 || byName["President"].Classes != 57 {
		t.Error("President shape wrong")
	}
}

func TestGenerateSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation is moderately slow")
	}
	suite := GenerateSuite(4)
	if len(suite) != 30 {
		t.Fatalf("generated %d datasets", len(suite))
	}
	for _, d := range suite {
		if d.Data.NumRows() != d.Spec.Rows {
			t.Errorf("%s rows %d != %d", d.Spec.Name, d.Data.NumRows(), d.Spec.Rows)
		}
		if d.Data.NumCols()-1 != len(d.Spec.Cols) {
			t.Errorf("%s cols mismatch", d.Spec.Name)
		}
	}
}

func TestClusterModeCarriesSignal(t *testing.T) {
	// In cluster mode, an informative categorical column's distribution
	// must differ across classes; a zero-weight junk column must not.
	spec := DatasetSpec{
		Name: "cl", Rows: 2000, Classes: 6, Seed: 11,
		Cols: []ColSpec{
			{Name: "seg", Kind: KindCatStr, Weight: 1.2, Card: 6},
			{Name: "junk", Kind: KindCSCode, Weight: 0},
		},
	}
	d := Generate(spec)
	if len(d.TargetCls) != 2000 {
		t.Fatal("cluster mode should produce classification targets")
	}
	// Class balance from round-robin assignment.
	counts := map[int]int{}
	for _, c := range d.TargetCls {
		counts[c]++
	}
	for c := 0; c < 6; c++ {
		if counts[c] < 300 || counts[c] > 370 {
			t.Errorf("class %d count = %d, want ~333", c, counts[c])
		}
	}
	// Mutual information proxy: the majority category per class should
	// differ for at least two classes for the informative column.
	major := func(col int, class int) string {
		freq := map[string]int{}
		for r, c := range d.TargetCls {
			if c == class {
				freq[d.Data.Columns[col].Values[r]]++
			}
		}
		best, bn := "", -1
		for v, n := range freq {
			if n > bn {
				best, bn = v, n
			}
		}
		return best
	}
	distinctMajors := map[string]bool{}
	for c := 0; c < 6; c++ {
		distinctMajors[major(0, c)] = true
	}
	if len(distinctMajors) < 2 {
		t.Error("informative column has identical majority category across classes")
	}
}

func TestNumIntSmallDomain(t *testing.T) {
	spec := DatasetSpec{
		Name: "sm", Rows: 700, Classes: 2, Seed: 4,
		Cols: []ColSpec{{Name: "pix", Kind: KindNumIntSmall, Weight: 1}},
	}
	d := Generate(spec)
	distinct := len(d.Data.Columns[0].DistinctNonMissing())
	if distinct < 5 || distinct > 130 {
		t.Errorf("small-int distinct = %d, want a modest integer domain", distinct)
	}
}
