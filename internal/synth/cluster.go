package synth

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// Cluster-mode target generation for multi-class downstream datasets.
//
// Quantile-bucketing a weighted latent sum (the score mode in
// downstream.go) works well for binary and small-|Y| tasks, but for tasks
// like Mfeat (10 digit classes) or Kropt (18 chess endgames) the real
// datasets are *class-conditional*: each class induces its own distribution
// over the columns. Cluster mode reproduces that: a class is drawn first,
// and every informative column samples its value from a class-conditional
// distribution, so the class is recoverable by any model that can read the
// column under its correct featurization.

// clusterThreshold: classification tasks with at least this many classes
// use cluster-mode generation.
const clusterThreshold = 5

// condState holds the class-conditional sampler for one column.
type condState struct {
	spec ColSpec
	// For discrete kinds: per-class cumulative distributions over the
	// category/topic/month/domain index.
	cond [][]float64
	// For numeric kinds: per-class centroids, plus the within-class spread.
	centroids []float64
	spread    float64

	perm   []int
	domain []string
	layout string
	scale  float64 // per-column value scale (KindNumIntSmall)
	offset float64
	max    int
}

// softmaxDist builds a sharpened distribution over n items for one class.
func softmaxDist(rng *rand.Rand, n int, sharp float64) []float64 {
	w := make([]float64, n)
	var max float64
	for i := range w {
		w[i] = rng.NormFloat64() * sharp
		if i == 0 || w[i] > max {
			max = w[i]
		}
	}
	var sum float64
	for i := range w {
		w[i] = math.Exp(w[i] - max)
		sum += w[i]
	}
	cum := 0.0
	for i := range w {
		cum += w[i] / sum
		w[i] = cum
	}
	return w
}

func sampleCum(rng *rand.Rand, cum []float64) int {
	r := rng.Float64()
	for i, c := range cum {
		if r < c {
			return i
		}
	}
	return len(cum) - 1
}

// newCondState builds the class-conditional sampler for a column. Weight
// scales how informative the column is: 0 means class-independent.
func newCondState(spec ColSpec, classes int, rng *rand.Rand) *condState {
	st := &condState{spec: spec, spread: 0.55}
	card := spec.Card
	if card <= 0 {
		card = 6
	}
	sharp := 1.6 * spec.Weight
	discrete := func(n int) {
		st.cond = make([][]float64, classes)
		for c := range st.cond {
			st.cond[c] = softmaxDist(rng, n, sharp)
		}
	}
	switch spec.Kind {
	case KindCatInt:
		st.perm = rng.Perm(card * 7)
		discrete(card)
	case KindCatStr:
		st.domain = make([]string, card)
		pools := [][]string{colorList, statusList, genreList, stateList, countryList}
		pool := pools[rng.Intn(len(pools))]
		used := map[string]bool{}
		for i := range st.domain {
			v := pick(rng, pool)
			for used[v] {
				v = pick(rng, pool) + fmt.Sprintf("_%d", rng.Intn(90))
			}
			used[v] = true
			st.domain[i] = v
		}
		discrete(card)
	case KindCatOrd, KindCatBin:
		if spec.Kind == KindCatBin {
			card = 2
		}
		discrete(card)
	case KindDate:
		st.layout = easyDateFormats[rng.Intn(len(easyDateFormats))]
		discrete(12)
	case KindSentence:
		discrete(len(sentenceTopics))
	case KindURL:
		discrete(6)
	case KindList:
		discrete(2)
	case KindNumFloat, KindNumInt, KindNumIntSmall, KindEmbedNum:
		st.centroids = make([]float64, classes)
		for c := range st.centroids {
			st.centroids[c] = rng.NormFloat64() * spec.Weight
		}
		if spec.Kind == KindNumIntSmall {
			if rng.Float64() < 0.15 {
				st.scale, st.offset, st.max = 5, 16, 35
			} else {
				st.scale, st.offset, st.max = 16, 55, 120
			}
		}
	}
	return st
}

// sampleCond generates one cell conditioned on the class.
func (st *condState) sampleCond(rng *rand.Rand, row, class int) string {
	switch st.spec.Kind {
	case KindNumFloat:
		z := st.centroids[class] + rng.NormFloat64()*st.spread
		return fmt.Sprintf("%.3f", z*37.5+110)
	case KindNumInt:
		z := st.centroids[class] + rng.NormFloat64()*st.spread
		return fmt.Sprintf("%d", int(z*250+1000))
	case KindNumIntSmall:
		z := st.centroids[class] + rng.NormFloat64()*st.spread
		return fmt.Sprintf("%d", clampInt(int(z*st.scale+st.offset), 0, st.max))
	case KindEmbedNum:
		z := st.centroids[class] + rng.NormFloat64()*st.spread
		return fmt.Sprintf("USD %s", group(int64(z*800+4000)))
	case KindCatInt:
		return fmt.Sprintf("%d", st.perm[sampleCum(rng, st.cond[class])])
	case KindCatStr:
		return st.domain[sampleCum(rng, st.cond[class])]
	case KindCatOrd, KindCatBin:
		return fmt.Sprintf("%d", sampleCum(rng, st.cond[class]))
	case KindDate:
		month := sampleCum(rng, st.cond[class])
		day := rng.Intn(28) + 1
		year := 2000 + rng.Intn(20)
		t := time.Date(year, time.Month(month+1), day, 0, 0, 0, 0, time.UTC)
		return t.Format(st.layout)
	case KindSentence:
		topic := sampleCum(rng, st.cond[class])
		return sentence(rng, rng.Intn(12)+5, topic)
	case KindURL:
		d := sampleCum(rng, st.cond[class])
		return fmt.Sprintf("https://www.%s.com/%s/%d", domainWords[d], pick(rng, wordBank), rng.Intn(9999))
	case KindList:
		has := sampleCum(rng, st.cond[class])
		n := rng.Intn(3) + 2
		items := make([]string, n)
		for j := range items {
			items[j] = pick(rng, genreList)
			if items[j] == "jazz" {
				items[j] = "rock"
			}
		}
		if has == 1 {
			items[rng.Intn(len(items))] = "jazz"
		}
		out := items[0]
		for _, it := range items[1:] {
			out += "; " + it
		}
		return out
	case KindPK:
		return fmt.Sprintf("%d", 10000+row)
	case KindConst:
		return "batch_a"
	case KindCSJunk:
		return fmt.Sprintf(`{"k":%d,"t":"%s"}`, rng.Intn(999), pick(rng, wordBank))
	default: // KindCSCode
		return []string{"-99", "0", "1", "7"}[rng.Intn(4)]
	}
}

// generateCluster builds a cluster-mode classification dataset.
func generateCluster(spec DatasetSpec, rng *rand.Rand) *Downstream {
	states := make([]*condState, len(spec.Cols))
	for i, cs := range spec.Cols {
		states[i] = newCondState(cs, spec.Classes, rng)
	}
	cols := make([]data.Column, len(spec.Cols))
	types := make([]ftype.FeatureType, len(spec.Cols))
	for i, cs := range spec.Cols {
		cols[i] = data.Column{Name: cs.Name, Values: make([]string, spec.Rows)}
		types[i] = cs.Kind.TrueType()
	}
	// Balanced, shuffled class assignment.
	classes := make([]int, spec.Rows)
	for r := range classes {
		classes[r] = r % spec.Classes
	}
	rng.Shuffle(len(classes), func(i, j int) { classes[i], classes[j] = classes[j], classes[i] })

	for r := 0; r < spec.Rows; r++ {
		for i := range spec.Cols {
			cols[i].Values[r] = states[i].sampleCond(rng, r, classes[r])
		}
	}
	down := &Downstream{Spec: spec, TrueTypes: types, TargetCls: classes}
	target := data.Column{Name: "target", Values: make([]string, spec.Rows)}
	for r, c := range classes {
		target.Values[r] = fmt.Sprintf("class_%d", c)
	}
	down.Data = &data.Dataset{Name: spec.Name, Columns: append(cols, target)}
	return down
}
