// Package knn implements the benchmark's nearest-neighbour model with the
// paper's task-adapted distance (Section 3.3.3):
//
//	d = ED(X_name) + γ·EC(X_stats)
//
// where ED is the Levenshtein edit distance between attribute names and EC
// the Euclidean distance between descriptive-stat vectors; γ is tuned on a
// validation split.
package knn

import (
	"fmt"
	"math"
	"sort"
)

// KNN is a k-nearest-neighbour classifier over (name, stats) examples.
type KNN struct {
	K     int
	Gamma float64 // weight of the Euclidean stats distance
	// UseName/UseStats toggle the two distance components, enabling the
	// Table-2 ablations (edit distance only, Euclidean only, weighted).
	UseName  bool
	UseStats bool

	names   [][]rune
	stats   [][]float64
	labels  []int
	classes int
}

// New returns a KNN with the defaults used in the benchmark (k=5, γ=1,
// both distance components active).
func New() *KNN {
	return &KNN{K: 5, Gamma: 1, UseName: true, UseStats: true}
}

// Fit memorizes the training examples. names and statsVecs must be aligned
// with labels; either may be nil when the corresponding component is
// disabled.
func (m *KNN) Fit(names []string, statsVecs [][]float64, labels []int, k int) error {
	if len(labels) == 0 {
		return fmt.Errorf("knn: empty training set")
	}
	if m.UseName && len(names) != len(labels) {
		return fmt.Errorf("knn: names and labels size mismatch: %d vs %d", len(names), len(labels))
	}
	if m.UseStats && len(statsVecs) != len(labels) {
		return fmt.Errorf("knn: stats and labels size mismatch: %d vs %d", len(statsVecs), len(labels))
	}
	if !m.UseName && !m.UseStats {
		return fmt.Errorf("knn: at least one distance component must be enabled")
	}
	if m.K <= 0 {
		m.K = 5
	}
	m.classes = k
	m.labels = labels
	m.stats = statsVecs
	m.names = make([][]rune, len(names))
	for i, n := range names {
		m.names[i] = []rune(n)
	}
	return nil
}

// distance computes the weighted task distance to training example i.
func (m *KNN) distance(name []rune, stats []float64, i int) float64 {
	var d float64
	if m.UseName {
		d += float64(Levenshtein(name, m.names[i]))
	}
	if m.UseStats {
		d += m.Gamma * euclid(stats, m.stats[i])
	}
	return d
}

// PredictOne classifies a single example by majority vote among the K
// nearest training examples (distance-weighted to break ties).
func (m *KNN) PredictOne(name string, stats []float64) int {
	probs := m.PredictProba(name, stats)
	best := 0
	for c := 1; c < len(probs); c++ {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best
}

// PredictProba returns the neighbour-vote distribution over classes.
func (m *KNN) PredictProba(name string, stats []float64) []float64 {
	nr := []rune(name)
	type cand struct {
		dist  float64
		label int
	}
	cands := make([]cand, len(m.labels))
	for i := range m.labels {
		cands[i] = cand{m.distance(nr, stats, i), m.labels[i]}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	k := m.K
	if k > len(cands) {
		k = len(cands)
	}
	votes := make([]float64, m.classes)
	var total float64
	for _, c := range cands[:k] {
		w := 1 / (1 + c.dist)
		votes[c.label] += w
		total += w
	}
	if total > 0 {
		for c := range votes {
			votes[c] /= total
		}
	}
	return votes
}

// Predict classifies a batch of examples.
func (m *KNN) Predict(names []string, statsVecs [][]float64) []int {
	n := len(names)
	if n == 0 {
		n = len(statsVecs)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		var nm string
		var st []float64
		if i < len(names) {
			nm = names[i]
		}
		if i < len(statsVecs) {
			st = statsVecs[i]
		}
		out[i] = m.PredictOne(nm, st)
	}
	return out
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Levenshtein computes the edit distance between two rune slices with the
// standard two-row dynamic program.
func Levenshtein(a, b []rune) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
