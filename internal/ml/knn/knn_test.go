package knn

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"zipcode", "zip_code", 1},
	}
	for _, c := range cases {
		if got := Levenshtein([]rune(c.a), []rune(c.b)); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Properties: symmetry, identity, and the length bounds of edit distance.
func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		ra, rb := []rune(a), []rune(b)
		d := Levenshtein(ra, rb)
		if d != Levenshtein(rb, ra) {
			return false
		}
		if a == b && d != 0 {
			return false
		}
		diff := len(ra) - len(rb)
		if diff < 0 {
			diff = -diff
		}
		max := len(ra)
		if len(rb) > max {
			max = len(rb)
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKNNNameDistance(t *testing.T) {
	m := New()
	m.UseStats = false
	m.K = 1
	names := []string{"salary", "zipcode", "hire_date"}
	labels := []int{0, 1, 2}
	if err := m.Fit(names, nil, labels, 3); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := m.PredictOne("salaries", nil); got != 0 {
		t.Errorf("salaries -> %d, want 0", got)
	}
	if got := m.PredictOne("zip_code", nil); got != 1 {
		t.Errorf("zip_code -> %d, want 1", got)
	}
	if got := m.PredictOne("hire_dt", nil); got != 2 {
		t.Errorf("hire_dt -> %d, want 2", got)
	}
}

func TestKNNStatsDistance(t *testing.T) {
	m := New()
	m.UseName = false
	m.K = 3
	stats := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {5, 5}, {5.1, 5}, {5, 5.1}}
	labels := []int{0, 0, 0, 1, 1, 1}
	if err := m.Fit(nil, stats, labels, 2); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := m.PredictOne("", []float64{0.05, 0.05}); got != 0 {
		t.Errorf("near-origin -> %d", got)
	}
	if got := m.PredictOne("", []float64{4.9, 5.2}); got != 1 {
		t.Errorf("near-(5,5) -> %d", got)
	}
}

func TestKNNWeightedCombination(t *testing.T) {
	// Name says class 0, stats say class 1; gamma controls who wins.
	names := []string{"alpha", "omega"}
	stats := [][]float64{{10, 10}, {0, 0}}
	labels := []int{0, 1}
	query := "alphz" // near "alpha"
	qstats := []float64{0.5, 0.5}

	nameHeavy := New()
	nameHeavy.K = 1
	nameHeavy.Gamma = 0.001
	if err := nameHeavy.Fit(names, stats, labels, 2); err != nil {
		t.Fatal(err)
	}
	if got := nameHeavy.PredictOne(query, qstats); got != 0 {
		t.Errorf("tiny gamma should let the name dominate, got %d", got)
	}

	statsHeavy := New()
	statsHeavy.K = 1
	statsHeavy.Gamma = 100
	if err := statsHeavy.Fit(names, stats, labels, 2); err != nil {
		t.Fatal(err)
	}
	if got := statsHeavy.PredictOne(query, qstats); got != 1 {
		t.Errorf("large gamma should let the stats dominate, got %d", got)
	}
}

func TestKNNProbaDistribution(t *testing.T) {
	m := New()
	if err := m.Fit([]string{"a", "b", "c"}, [][]float64{{0}, {1}, {2}}, []int{0, 1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	p := m.PredictProba("b", []float64{1})
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("bad proba %v", p)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("proba sums to %f", sum)
	}
}

func TestKNNGobRoundTrip(t *testing.T) {
	m := New()
	if err := m.Fit([]string{"salary", "zip"}, [][]float64{{1, 2}, {3, 4}}, []int{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back KNN
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.PredictOne("salaries", []float64{1, 2}) != m.PredictOne("salaries", []float64{1, 2}) {
		t.Error("gob round-trip changed predictions")
	}
}

func TestKNNErrors(t *testing.T) {
	m := New()
	if err := m.Fit(nil, nil, nil, 2); err == nil {
		t.Error("empty fit must error")
	}
	if err := m.Fit([]string{"a"}, nil, []int{0, 1}, 2); err == nil {
		t.Error("name/label mismatch must error")
	}
	bad := New()
	bad.UseName, bad.UseStats = false, false
	if err := bad.Fit([]string{"a"}, [][]float64{{1}}, []int{0}, 2); err == nil {
		t.Error("no distance component must error")
	}
}
