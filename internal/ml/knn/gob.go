package knn

import (
	"bytes"
	"encoding/gob"
)

// knnWire is the exported serialization mirror of KNN.
type knnWire struct {
	K        int
	Gamma    float64
	UseName  bool
	UseStats bool
	Names    []string
	Stats    [][]float64
	Labels   []int
	Classes  int
}

// GobEncode implements gob.GobEncoder for trained models.
func (m *KNN) GobEncode() ([]byte, error) {
	w := knnWire{
		K: m.K, Gamma: m.Gamma, UseName: m.UseName, UseStats: m.UseStats,
		Stats: m.stats, Labels: m.labels, Classes: m.classes,
	}
	w.Names = make([]string, len(m.names))
	for i, r := range m.names {
		w.Names[i] = string(r)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *KNN) GobDecode(b []byte) error {
	var w knnWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	m.K, m.Gamma, m.UseName, m.UseStats = w.K, w.Gamma, w.UseName, w.UseStats
	m.stats, m.labels, m.classes = w.Stats, w.Labels, w.Classes
	m.names = make([][]rune, len(w.Names))
	for i, s := range w.Names {
		m.names[i] = []rune(s)
	}
	return nil
}
