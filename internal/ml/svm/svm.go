// Package svm implements the benchmark's RBF-SVM. Exact kernel SVMs need an
// n×n kernel matrix, which is impractical for the ~8k-example training set
// on a small machine, so the Gaussian kernel is approximated with random
// Fourier features (Rahimi & Recht, 2007): z(x) = sqrt(2/D)·cos(Wx + b) with
// W ~ N(0, 2γ). A one-vs-rest linear SVM with hinge loss is then trained on
// z(x) by Pegasos-style SGD. This substitution is documented in DESIGN.md;
// the C/γ hyper-parameter grid matches the paper's Appendix B.
package svm

import (
	"fmt"
	"math"
	"math/rand"
)

// RBFSVM is a multi-class (one-vs-rest) support vector machine with an
// RBF kernel approximated by random Fourier features.
type RBFSVM struct {
	C      float64 // misclassification penalty (larger = harder margin)
	Gamma  float64 // RBF bandwidth, k(x,y)=exp(-γ‖x−y‖²)
	D      int     // number of random Fourier features
	Epochs int
	Seed   int64

	W       [][]float64 // classes × (D+1) hinge-loss separators (incl. bias)
	Omega   [][]float64 // D × d random projection
	Phase   []float64   // D random phases
	Classes int
}

// NewRBFSVM returns an SVM with the defaults used in the benchmark
// (C=1, automatic γ, 512 Fourier features, 20 epochs). A zero Gamma selects
// γ = 1/d at fit time (scikit-learn's "scale"-style default), which keeps
// the kernel bandwidth sensible across feature sets of very different
// dimensionality; the paper instead tunes γ on its Appendix-B grid.
func NewRBFSVM() *RBFSVM {
	return &RBFSVM{C: 1, D: 512, Epochs: 20, Seed: 1}
}

// Fit trains one-vs-rest hinge separators on the Fourier-lifted data.
func (m *RBFSVM) Fit(X [][]float64, y []int, k int) error {
	if len(X) == 0 {
		return fmt.Errorf("svm: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("svm: X and y size mismatch: %d vs %d", len(X), len(y))
	}
	if m.D <= 0 {
		m.D = 512
	}
	if m.Epochs <= 0 {
		m.Epochs = 20
	}
	if m.C <= 0 {
		m.C = 1
	}
	d := len(X[0])
	if m.Gamma <= 0 {
		m.Gamma = 1 / float64(d)
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.Classes = k

	// Draw the random features: ω ~ N(0, 2γ I), phase ~ U[0, 2π).
	sigma := math.Sqrt(2 * m.Gamma)
	m.Omega = make([][]float64, m.D)
	m.Phase = make([]float64, m.D)
	for i := 0; i < m.D; i++ {
		m.Omega[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			m.Omega[i][j] = rng.NormFloat64() * sigma
		}
		m.Phase[i] = rng.Float64() * 2 * math.Pi
	}

	// Lift the training set once.
	Z := make([][]float64, len(X))
	for i := range X {
		Z[i] = m.lift(X[i])
	}

	// Pegasos-style SGD on each one-vs-rest hinge problem, sharing the pass
	// over the data: λ = 1/(C·n).
	n := len(Z)
	lambda := 1 / (m.C * float64(n))
	m.W = make([][]float64, k)
	for c := range m.W {
		m.W[c] = make([]float64, m.D+1)
	}
	order := rng.Perm(n)
	t := 1.0
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			eta := 1 / (lambda * t)
			if eta > 100 {
				eta = 100
			}
			t++
			z := Z[i]
			for c := 0; c < k; c++ {
				w := m.W[c]
				label := -1.0
				if y[i] == c {
					label = 1.0
				}
				s := w[m.D]
				for j, zj := range z {
					s += w[j] * zj
				}
				// Shrink then (if margin violated) push.
				shrink := 1 - eta*lambda
				if shrink < 0 {
					shrink = 0
				}
				for j := 0; j < m.D; j++ {
					w[j] *= shrink
				}
				if label*s < 1 {
					step := eta * label
					for j, zj := range z {
						w[j] += step * zj
					}
					w[m.D] += step
				}
			}
		}
	}
	return nil
}

// lift maps x into the random Fourier feature space.
func (m *RBFSVM) lift(x []float64) []float64 {
	z := make([]float64, m.D)
	scale := math.Sqrt(2 / float64(m.D))
	for i := 0; i < m.D; i++ {
		s := m.Phase[i]
		w := m.Omega[i]
		for j, xj := range x {
			if xj != 0 {
				s += w[j] * xj
			}
		}
		z[i] = scale * math.Cos(s)
	}
	return z
}

// DecisionFunction returns the per-class margins for x.
func (m *RBFSVM) DecisionFunction(x []float64) []float64 {
	z := m.lift(x)
	out := make([]float64, m.Classes)
	for c := 0; c < m.Classes; c++ {
		w := m.W[c]
		s := w[m.D]
		for j, zj := range z {
			s += w[j] * zj
		}
		out[c] = s
	}
	return out
}

// PredictProba returns softmax-calibrated pseudo-probabilities over the
// class margins (the paper's tools expose confidences; an SVM's margins are
// squashed the usual way).
func (m *RBFSVM) PredictProba(x []float64) []float64 {
	out := m.DecisionFunction(x)
	max := out[0]
	for _, v := range out[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i := range out {
		out[i] = math.Exp(out[i] - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// PredictOne returns the class with the largest margin.
func (m *RBFSVM) PredictOne(x []float64) int {
	df := m.DecisionFunction(x)
	best := 0
	for c := 1; c < len(df); c++ {
		if df[c] > df[best] {
			best = c
		}
	}
	return best
}

// Predict classifies every row of X.
func (m *RBFSVM) Predict(X [][]float64) []int {
	out := make([]int, len(X))
	for i := range X {
		out[i] = m.PredictOne(X[i])
	}
	return out
}
