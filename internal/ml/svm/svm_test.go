package svm

import (
	"math"
	"math/rand"
	"testing"
)

// rings generates two concentric rings: linearly inseparable, trivially
// separable with an RBF kernel — the case the random Fourier features must
// preserve.
func rings(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := rng.Intn(2)
		radius := 1.0
		if c == 1 {
			radius = 4.0
		}
		angle := rng.Float64() * 2 * math.Pi
		r := radius + rng.NormFloat64()*0.2
		X[i] = []float64{r * math.Cos(angle), r * math.Sin(angle)}
		y[i] = c
	}
	return X, y
}

func TestRBFSVMSeparatesRings(t *testing.T) {
	X, y := rings(500, 1)
	m := NewRBFSVM()
	m.Gamma = 0.5
	m.Epochs = 30
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	Xte, yte := rings(300, 2)
	hits := 0
	for i := range Xte {
		if m.PredictOne(Xte[i]) == yte[i] {
			hits++
		}
	}
	acc := float64(hits) / float64(len(Xte))
	if acc < 0.9 {
		t.Errorf("ring accuracy = %.3f, want >= 0.9 (RBF should separate rings)", acc)
	}
}

func TestRBFSVMMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []int
	centers := [][2]float64{{0, 0}, {6, 0}, {0, 6}}
	for i := 0; i < 450; i++ {
		c := rng.Intn(3)
		X = append(X, []float64{centers[c][0] + rng.NormFloat64()*0.5, centers[c][1] + rng.NormFloat64()*0.5})
		y = append(y, c)
	}
	m := NewRBFSVM()
	m.Gamma = 0.2
	if err := m.Fit(X, y, 3); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	pred := m.Predict(X)
	hits := 0
	for i := range pred {
		if pred[i] == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(y)); acc < 0.95 {
		t.Errorf("3-class blob accuracy = %.3f", acc)
	}
}

func TestRBFSVMProbabilities(t *testing.T) {
	X, y := rings(200, 5)
	m := NewRBFSVM()
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	p := m.PredictProba(X[0])
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("bad probability %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %f", sum)
	}
	df := m.DecisionFunction(X[0])
	if len(df) != 2 {
		t.Errorf("decision function size %d", len(df))
	}
}

func TestRBFSVMDeterministicWithSeed(t *testing.T) {
	X, y := rings(150, 7)
	a := NewRBFSVM()
	b := NewRBFSVM()
	if err := a.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if a.PredictOne(X[i]) != b.PredictOne(X[i]) {
			t.Fatal("same seed must give identical predictions")
		}
	}
}

func TestRBFSVMErrors(t *testing.T) {
	m := NewRBFSVM()
	if err := m.Fit(nil, nil, 2); err == nil {
		t.Error("empty training set must error")
	}
	if err := m.Fit([][]float64{{1}}, []int{0, 1}, 2); err == nil {
		t.Error("size mismatch must error")
	}
}
