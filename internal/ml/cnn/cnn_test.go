package cnn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// prefixTask builds a toy char-classification problem: class is determined
// by the string prefix, which the conv filters must learn.
func prefixTask(n int, seed int64) ([]Example, []int) {
	rng := rand.New(rand.NewSource(seed))
	prefixes := []string{"date_", "url_", "num_"}
	examples := make([]Example, n)
	labels := make([]int, n)
	for i := range examples {
		c := rng.Intn(3)
		labels[i] = c
		examples[i] = Example{Texts: []string{fmt.Sprintf("%sfield%d", prefixes[c], rng.Intn(1000))}}
	}
	return examples, labels
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.EmbedDim = 16
	cfg.NumFilters = 16
	cfg.Neurons = 32
	cfg.Epochs = 8
	cfg.Classes = 3
	cfg.Dropout = 0.1
	return cfg
}

func TestCNNLearnsPrefixes(t *testing.T) {
	examples, labels := prefixTask(300, 1)
	m := New(smallConfig())
	if err := m.Fit(examples, labels); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	test, testLabels := prefixTask(150, 2)
	pred := m.Predict(test)
	hits := 0
	for i := range pred {
		if pred[i] == testLabels[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(pred)); acc < 0.9 {
		t.Errorf("prefix accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestCNNUsesStatsInput(t *testing.T) {
	// Signal lives only in the stats vector; text is uninformative.
	rng := rand.New(rand.NewSource(3))
	cfg := smallConfig()
	cfg.Classes = 2
	cfg.StatsDim = 2
	cfg.Epochs = 10
	n := 300
	examples := make([]Example, n)
	labels := make([]int, n)
	for i := range examples {
		c := rng.Intn(2)
		labels[i] = c
		examples[i] = Example{
			Texts: []string{"constant"},
			Stats: []float64{float64(c)*2 - 1 + rng.NormFloat64()*0.2, rng.NormFloat64()},
		}
	}
	m := New(cfg)
	if err := m.Fit(examples, labels); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range examples {
		if m.PredictOne(&examples[i]) == labels[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(n); acc < 0.9 {
		t.Errorf("stats-only accuracy = %.3f", acc)
	}
}

func TestCNNMultiHead(t *testing.T) {
	// Class signal in the second text head.
	rng := rand.New(rand.NewSource(5))
	cfg := smallConfig()
	cfg.TextInputs = 2
	cfg.Classes = 2
	cfg.Epochs = 10
	n := 240
	examples := make([]Example, n)
	labels := make([]int, n)
	for i := range examples {
		c := rng.Intn(2)
		labels[i] = c
		second := "xxxx"
		if c == 1 {
			second = "2020-01-02"
		}
		examples[i] = Example{Texts: []string{"name", second}}
	}
	m := New(cfg)
	if err := m.Fit(examples, labels); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range examples {
		if m.PredictOne(&examples[i]) == labels[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(n); acc < 0.9 {
		t.Errorf("second-head accuracy = %.3f", acc)
	}
}

func TestCNNProbabilities(t *testing.T) {
	examples, labels := prefixTask(60, 7)
	cfg := smallConfig()
	cfg.Epochs = 2
	m := New(cfg)
	if err := m.Fit(examples, labels); err != nil {
		t.Fatal(err)
	}
	for _, ex := range []Example{{Texts: []string{"anything"}}, {Texts: []string{""}}, {}} {
		p := m.PredictProba(&ex)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("bad probability vector %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("probabilities sum to %f", sum)
		}
	}
}

func TestCNNGobRoundTrip(t *testing.T) {
	examples, labels := prefixTask(120, 9)
	cfg := smallConfig()
	cfg.Epochs = 3
	m := New(cfg)
	if err := m.Fit(examples, labels); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Model
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range examples {
		if m.PredictOne(&examples[i]) != back.PredictOne(&examples[i]) {
			t.Fatal("gob round-trip changed predictions")
		}
	}
}

func TestCNNErrors(t *testing.T) {
	m := New(smallConfig())
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty fit must error")
	}
	if err := m.Fit([]Example{{}}, []int{0, 1}); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestEncodeChar(t *testing.T) {
	if encodeChar(' ') != 1 {
		t.Error("space should be the first printable slot")
	}
	if encodeChar(0) != vocabSize-1 {
		t.Error("non-printable bytes map to the overflow slot")
	}
	if encodeChar('~') != 95 {
		t.Errorf("'~' -> %d", encodeChar('~'))
	}
}
