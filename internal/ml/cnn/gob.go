package cnn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
)

// cnnWire is the exported serialization mirror of Model: the configuration
// plus the value buffers of every parameter tensor in registration order.
// Adam moments are not persisted; a loaded model is for inference or a
// fresh optimizer run.
type cnnWire struct {
	Cfg    Config
	Values [][]float64
	Rows   []int
	Cols   []int
}

// GobEncode implements gob.GobEncoder for trained networks.
func (m *Model) GobEncode() ([]byte, error) {
	w := cnnWire{Cfg: m.Cfg}
	for _, p := range m.params {
		w.Values = append(w.Values, p.v)
		w.Rows = append(w.Rows, p.rows)
		w.Cols = append(w.Cols, p.cols)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Model) GobDecode(b []byte) error {
	var w cnnWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	fresh := New(w.Cfg)
	if len(fresh.params) != len(w.Values) {
		return fmt.Errorf("cnn: decode: parameter count mismatch: %d vs %d",
			len(fresh.params), len(w.Values))
	}
	for i, p := range fresh.params {
		if p.rows != w.Rows[i] || p.cols != w.Cols[i] {
			return fmt.Errorf("cnn: decode: tensor %d shape mismatch", i)
		}
		copy(p.v, w.Values[i])
	}
	*m = *fresh
	m.rng = rand.New(rand.NewSource(w.Cfg.Seed))
	return nil
}
