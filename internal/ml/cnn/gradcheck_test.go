package cnn

import (
	"math"
	"math/rand"
	"testing"
)

// TestGradientCheck verifies the analytic backpropagation gradients against
// central finite differences on a tiny network. This covers every layer:
// embeddings, both convolutions, max pooling routing, and the MLP.
func TestGradientCheck(t *testing.T) {
	cfg := Config{
		SeqLen: 8, EmbedDim: 5, NumFilters: 4, FilterSize: 2,
		Neurons: 6, Dropout: 0, Epochs: 1, LR: 1e-3, Seed: 3,
		TextInputs: 2, StatsDim: 3, Classes: 3,
	}
	m := New(cfg)
	ex := Example{Texts: []string{"zip_code", "92092"}, Stats: []float64{0.5, -1.2, 2.0}}
	label := 1

	loss := func() float64 {
		st := m.forward(&ex, false)
		return -math.Log(st.probs[label] + 1e-300)
	}

	// Analytic gradients.
	st := m.forward(&ex, false)
	m.backward(&ex, st, label)

	rng := rand.New(rand.NewSource(9))
	const eps = 1e-5
	checked, failures := 0, 0
	for pi, p := range m.params {
		// Probe a handful of random coordinates per tensor.
		for probe := 0; probe < 6; probe++ {
			i := rng.Intn(len(p.v))
			analytic := p.g[i]
			orig := p.v[i]
			p.v[i] = orig + eps
			up := loss()
			p.v[i] = orig - eps
			down := loss()
			p.v[i] = orig
			numeric := (up - down) / (2 * eps)
			checked++
			diff := math.Abs(analytic - numeric)
			scale := math.Max(1e-4, math.Abs(analytic)+math.Abs(numeric))
			if diff/scale > 0.02 {
				// Max-pool argmax ties can flip under perturbation; allow a
				// small number of such discontinuities but not systematic
				// mismatch.
				failures++
				t.Logf("tensor %d coord %d: analytic %.6g numeric %.6g", pi, i, analytic, numeric)
			}
		}
	}
	if failures > checked/10 {
		t.Errorf("gradient check failed on %d/%d probes", failures, checked)
	}
}

// TestGradientAccumulationZeroedByAdam ensures adamStep consumes and clears
// gradients so successive steps do not double-count.
func TestGradientAccumulationZeroedByAdam(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EmbedDim, cfg.NumFilters, cfg.Neurons, cfg.Classes = 4, 4, 4, 2
	m := New(cfg)
	ex := Example{Texts: []string{"abc"}}
	st := m.forward(&ex, true)
	m.backward(&ex, st, 0)
	m.adamStep(1)
	for pi, p := range m.params {
		for i, g := range p.g {
			if g != 0 {
				t.Fatalf("tensor %d grad[%d] = %g after adamStep", pi, i, g)
			}
		}
	}
}

// TestCNNLossDecreases trains briefly and checks the training loss drops.
func TestCNNLossDecreases(t *testing.T) {
	examples, labels := prefixTask(120, 11)
	cfg := smallConfig()
	cfg.Epochs = 1
	m := New(cfg)
	avgLoss := func() float64 {
		var sum float64
		for i := range examples {
			p := m.PredictProba(&examples[i])
			sum += -math.Log(p[labels[i]] + 1e-300)
		}
		return sum / float64(len(examples))
	}
	before := avgLoss()
	if err := m.Fit(examples, labels); err != nil {
		t.Fatal(err)
	}
	after := avgLoss()
	if after >= before {
		t.Errorf("training did not reduce loss: %.4f -> %.4f", before, after)
	}
}
