// Package cnn implements the paper's character-level convolutional network
// (Appendix F) from scratch: each text input (attribute name, sample
// values) flows through an embedding layer and a CNN module of two 1-D
// convolutions followed by global max pooling; the pooled features are
// concatenated with the descriptive statistics and fed to a two-hidden-layer
// MLP with a softmax output. Training is end-to-end backpropagation with
// the Adam optimizer and dropout regularization.
package cnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Config holds the architecture and training hyper-parameters. The tunable
// fields mirror the paper's grid: EmbedDim, NumFilters, FilterSize, Neurons
// (MLP hidden width), and Dropout.
type Config struct {
	SeqLen     int // characters kept per text input (pad/truncate)
	EmbedDim   int
	NumFilters int
	FilterSize int
	Neurons    int     // width of each of the two MLP hidden layers
	Dropout    float64 // drop probability on hidden activations
	Epochs     int
	LR         float64 // Adam step size
	Seed       int64

	TextInputs int // number of text heads (1=name, 2=+sample1, 3=+sample2)
	StatsDim   int // descriptive-stats vector width (0 to disable)
	Classes    int
}

// DefaultConfig returns a compact configuration suitable for the benchmark
// corpus on a small machine.
func DefaultConfig() Config {
	return Config{
		SeqLen: 24, EmbedDim: 32, NumFilters: 32, FilterSize: 2,
		Neurons: 250, Dropout: 0.25, Epochs: 6, LR: 1e-3, Seed: 1,
		TextInputs: 1, StatsDim: 0, Classes: 2,
	}
}

// vocabSize covers printable ASCII plus an out-of-range bucket and padding.
const vocabSize = 98

// encodeChar maps a byte to an embedding row: 0 is padding, 1..95 printable
// ASCII, 96 everything else.
func encodeChar(b byte) int {
	if b >= 32 && b < 127 {
		return int(b-32) + 1
	}
	return vocabSize - 1
}

// head is the per-text-input module: embedding + 2 conv layers.
type head struct {
	embed *tensor // vocabSize × embedDim
	w1    *tensor // filters × (filterSize*embedDim)
	b1    *tensor // filters
	w2    *tensor // filters × (filterSize*filters)
	b2    *tensor // filters
}

// Model is the trained network.
type Model struct {
	Cfg   Config
	heads []*head
	// MLP: concat(heads..., stats) -> h1 -> h2 -> classes
	w3, b3 *tensor
	w4, b4 *tensor
	w5, b5 *tensor

	params []*tensor
	rng    *rand.Rand
}

// tensor is a flat float64 buffer with Adam state.
type tensor struct {
	v, g, m, u []float64
	rows, cols int
}

func newTensor(rows, cols int, scale float64, rng *rand.Rand) *tensor {
	t := &tensor{
		v: make([]float64, rows*cols), g: make([]float64, rows*cols),
		m: make([]float64, rows*cols), u: make([]float64, rows*cols),
		rows: rows, cols: cols,
	}
	for i := range t.v {
		t.v[i] = rng.NormFloat64() * scale
	}
	return t
}

// New builds an untrained model from the configuration.
func New(cfg Config) *Model {
	if cfg.SeqLen <= 0 {
		cfg.SeqLen = 24
	}
	if cfg.FilterSize <= 0 {
		cfg.FilterSize = 2
	}
	if cfg.TextInputs <= 0 {
		cfg.TextInputs = 1
	}
	m := &Model{Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	ed, nf, fs := cfg.EmbedDim, cfg.NumFilters, cfg.FilterSize
	for i := 0; i < cfg.TextInputs; i++ {
		h := &head{
			embed: newTensor(vocabSize, ed, 0.1, m.rng),
			w1:    newTensor(nf, fs*ed, math.Sqrt(2/float64(fs*ed)), m.rng),
			b1:    newTensor(1, nf, 0, m.rng),
			w2:    newTensor(nf, fs*nf, math.Sqrt(2/float64(fs*nf)), m.rng),
			b2:    newTensor(1, nf, 0, m.rng),
		}
		m.heads = append(m.heads, h)
		m.params = append(m.params, h.embed, h.w1, h.b1, h.w2, h.b2)
	}
	concat := cfg.TextInputs*nf + cfg.StatsDim
	m.w3 = newTensor(cfg.Neurons, concat, math.Sqrt(2/float64(concat)), m.rng)
	m.b3 = newTensor(1, cfg.Neurons, 0, m.rng)
	m.w4 = newTensor(cfg.Neurons, cfg.Neurons, math.Sqrt(2/float64(cfg.Neurons)), m.rng)
	m.b4 = newTensor(1, cfg.Neurons, 0, m.rng)
	m.w5 = newTensor(cfg.Classes, cfg.Neurons, math.Sqrt(2/float64(cfg.Neurons)), m.rng)
	m.b5 = newTensor(1, cfg.Classes, 0, m.rng)
	m.params = append(m.params, m.w3, m.b3, m.w4, m.b4, m.w5, m.b5)
	return m
}

// Example is one training/inference input: up to TextInputs strings and an
// optional stats vector of width StatsDim.
type Example struct {
	Texts []string
	Stats []float64
}

// headState caches the forward pass of one head for backprop.
type headState struct {
	ids          []int
	conv1, conv2 [][]float64 // pre-pool activations (post-ReLU)
	pooledIdx    []int       // argmax positions per filter
	pooled       []float64
}

func (m *Model) forwardHead(h *head, text string) *headState {
	cfg := m.Cfg
	L, ed, nf, fs := cfg.SeqLen, cfg.EmbedDim, cfg.NumFilters, cfg.FilterSize
	st := &headState{ids: make([]int, L)}
	for i := 0; i < L; i++ {
		if i < len(text) {
			st.ids[i] = encodeChar(text[i])
		}
	}
	// conv1 over embeddings
	l1 := L - fs + 1
	st.conv1 = make([][]float64, l1)
	c1 := make([]float64, l1*nf) // one backing array for every conv1 row
	for t := 0; t < l1; t++ {
		row := c1[t*nf : (t+1)*nf : (t+1)*nf]
		for f := 0; f < nf; f++ {
			s := h.b1.v[f]
			w := h.w1.v[f*fs*ed : (f+1)*fs*ed]
			for k := 0; k < fs; k++ {
				ev := h.embed.v[st.ids[t+k]*ed : st.ids[t+k]*ed+ed]
				wk := w[k*ed : k*ed+ed]
				for c := 0; c < ed; c++ {
					s += wk[c] * ev[c]
				}
			}
			if s < 0 {
				s = 0
			}
			row[f] = s
		}
		st.conv1[t] = row
	}
	// conv2 over conv1
	l2 := l1 - fs + 1
	st.conv2 = make([][]float64, l2)
	c2 := make([]float64, l2*nf) // one backing array for every conv2 row
	for t := 0; t < l2; t++ {
		row := c2[t*nf : (t+1)*nf : (t+1)*nf]
		for g := 0; g < nf; g++ {
			s := h.b2.v[g]
			w := h.w2.v[g*fs*nf : (g+1)*fs*nf]
			for k := 0; k < fs; k++ {
				cv := st.conv1[t+k]
				wk := w[k*nf : k*nf+nf]
				for f := 0; f < nf; f++ {
					s += wk[f] * cv[f]
				}
			}
			if s < 0 {
				s = 0
			}
			row[g] = s
		}
		st.conv2[t] = row
	}
	// global max pool
	st.pooled = make([]float64, nf)
	st.pooledIdx = make([]int, nf)
	for g := 0; g < nf; g++ {
		best, bi := st.conv2[0][g], 0
		for t := 1; t < l2; t++ {
			if st.conv2[t][g] > best {
				best, bi = st.conv2[t][g], t
			}
		}
		st.pooled[g] = best
		st.pooledIdx[g] = bi
	}
	return st
}

func (m *Model) backwardHead(h *head, st *headState, gradPooled []float64) {
	cfg := m.Cfg
	ed, nf, fs := cfg.EmbedDim, cfg.NumFilters, cfg.FilterSize
	l1 := len(st.conv1)
	// Route pooled grads to argmax rows of conv2, then through conv2 to
	// conv1 and parameters.
	gradConv1 := make([][]float64, l1)
	for g := 0; g < nf; g++ {
		gp := gradPooled[g]
		if gp == 0 {
			continue
		}
		t := st.pooledIdx[g]
		if st.conv2[t][g] <= 0 {
			continue // ReLU gate
		}
		h.b2.g[g] += gp
		w := h.w2.v[g*fs*nf : (g+1)*fs*nf]
		wg := h.w2.g[g*fs*nf : (g+1)*fs*nf]
		for k := 0; k < fs; k++ {
			cv := st.conv1[t+k]
			if gradConv1[t+k] == nil {
				gradConv1[t+k] = make([]float64, nf)
			}
			gc := gradConv1[t+k]
			wk := w[k*nf : k*nf+nf]
			wgk := wg[k*nf : k*nf+nf]
			for f := 0; f < nf; f++ {
				wgk[f] += gp * cv[f]
				gc[f] += gp * wk[f]
			}
		}
	}
	// conv1 -> embeddings and parameters.
	for t := 0; t < l1; t++ {
		gc := gradConv1[t]
		if gc == nil {
			continue
		}
		for f := 0; f < nf; f++ {
			g := gc[f]
			if g == 0 || st.conv1[t][f] <= 0 {
				continue
			}
			h.b1.g[f] += g
			w := h.w1.v[f*fs*ed : (f+1)*fs*ed]
			wg := h.w1.g[f*fs*ed : (f+1)*fs*ed]
			for k := 0; k < fs; k++ {
				id := st.ids[t+k]
				ev := h.embed.v[id*ed : id*ed+ed]
				eg := h.embed.g[id*ed : id*ed+ed]
				wk := w[k*ed : k*ed+ed]
				wgk := wg[k*ed : k*ed+ed]
				for c := 0; c < ed; c++ {
					wgk[c] += g * ev[c]
					eg[c] += g * wk[c]
				}
			}
		}
	}
}

// forward runs the full network; when train is true, dropout masks are
// sampled and returned for backprop.
type fwdState struct {
	heads  []*headState
	concat []float64
	h1, h2 []float64
	mask1  []bool
	mask2  []bool
	probs  []float64
}

func (m *Model) forward(ex *Example, train bool) *fwdState {
	cfg := m.Cfg
	st := &fwdState{}
	for i, h := range m.heads {
		text := ""
		if i < len(ex.Texts) {
			text = ex.Texts[i]
		}
		st.heads = append(st.heads, m.forwardHead(h, text))
	}
	st.concat = make([]float64, 0, cfg.TextInputs*cfg.NumFilters+cfg.StatsDim)
	for _, hs := range st.heads {
		st.concat = append(st.concat, hs.pooled...)
	}
	if cfg.StatsDim > 0 {
		stats := ex.Stats
		if len(stats) < cfg.StatsDim {
			padded := make([]float64, cfg.StatsDim)
			copy(padded, stats)
			stats = padded
		}
		st.concat = append(st.concat, stats[:cfg.StatsDim]...)
	}
	dense := func(w, b *tensor, in []float64) []float64 {
		out := make([]float64, w.rows)
		for r := 0; r < w.rows; r++ {
			s := b.v[r]
			wr := w.v[r*w.cols : (r+1)*w.cols]
			for c, x := range in {
				if x != 0 {
					s += wr[c] * x
				}
			}
			out[r] = s
		}
		return out
	}
	relu := func(v []float64) {
		for i := range v {
			if v[i] < 0 {
				v[i] = 0
			}
		}
	}
	st.h1 = dense(m.w3, m.b3, st.concat)
	relu(st.h1)
	st.mask1 = m.dropout(st.h1, train)
	st.h2 = dense(m.w4, m.b4, st.h1)
	relu(st.h2)
	st.mask2 = m.dropout(st.h2, train)
	logits := dense(m.w5, m.b5, st.h2)
	// softmax
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i := range logits {
		logits[i] = math.Exp(logits[i] - max)
		sum += logits[i]
	}
	for i := range logits {
		logits[i] /= sum
	}
	st.probs = logits
	return st
}

// dropout zeroes activations in place with probability p during training and
// scales survivors by 1/(1-p) (inverted dropout). Returns the keep mask.
func (m *Model) dropout(v []float64, train bool) []bool {
	p := m.Cfg.Dropout
	if !train || p <= 0 {
		return nil
	}
	mask := make([]bool, len(v))
	scale := 1 / (1 - p)
	for i := range v {
		if m.rng.Float64() < p {
			v[i] = 0
		} else {
			mask[i] = true
			v[i] *= scale
		}
	}
	return mask
}

func (m *Model) backward(ex *Example, st *fwdState, label int) {
	cfg := m.Cfg
	// dLogits = probs - onehot(label)
	dOut := append([]float64(nil), st.probs...)
	dOut[label] -= 1

	denseBack := func(w, b *tensor, in, dOut []float64) []float64 {
		dIn := make([]float64, len(in))
		for r := 0; r < w.rows; r++ {
			g := dOut[r]
			if g == 0 {
				continue
			}
			b.g[r] += g
			wr := w.v[r*w.cols : (r+1)*w.cols]
			wgr := w.g[r*w.cols : (r+1)*w.cols]
			for c, x := range in {
				wgr[c] += g * x
				dIn[c] += g * wr[c]
			}
		}
		return dIn
	}
	dh2 := denseBack(m.w5, m.b5, st.h2, dOut)
	for i := range dh2 {
		if st.h2[i] <= 0 {
			dh2[i] = 0
		}
		if st.mask2 != nil && !st.mask2[i] {
			dh2[i] = 0
		}
	}
	dh1 := denseBack(m.w4, m.b4, st.h1, dh2)
	for i := range dh1 {
		if st.h1[i] <= 0 {
			dh1[i] = 0
		}
		if st.mask1 != nil && !st.mask1[i] {
			dh1[i] = 0
		}
	}
	dConcat := denseBack(m.w3, m.b3, st.concat, dh1)
	off := 0
	for i, h := range m.heads {
		m.backwardHead(h, st.heads[i], dConcat[off:off+cfg.NumFilters])
		off += cfg.NumFilters
	}
	// Stats input has no parameters upstream; its gradient is discarded.
}

// adamStep applies one Adam update to all parameters and zeroes gradients.
func (m *Model) adamStep(step int) {
	lr := m.Cfg.LR
	const b1, b2, eps = 0.9, 0.999, 1e-8
	bc1 := 1 - math.Pow(b1, float64(step))
	bc2 := 1 - math.Pow(b2, float64(step))
	for _, p := range m.params {
		for i, g := range p.g {
			if g == 0 {
				continue
			}
			p.m[i] = b1*p.m[i] + (1-b1)*g
			p.u[i] = b2*p.u[i] + (1-b2)*g*g
			mh := p.m[i] / bc1
			uh := p.u[i] / bc2
			p.v[i] -= lr * mh / (math.Sqrt(uh) + eps)
			p.g[i] = 0
		}
	}
}

// Fit trains the network on the examples with integer labels in
// [0, Cfg.Classes).
func (m *Model) Fit(examples []Example, labels []int) error {
	if len(examples) == 0 {
		return fmt.Errorf("cnn: empty training set")
	}
	if len(examples) != len(labels) {
		return fmt.Errorf("cnn: examples and labels size mismatch: %d vs %d", len(examples), len(labels))
	}
	order := m.rng.Perm(len(examples))
	step := 0
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			st := m.forward(&examples[i], true)
			m.backward(&examples[i], st, labels[i])
			step++
			m.adamStep(step)
		}
	}
	return nil
}

// PredictProba returns class probabilities for one example.
func (m *Model) PredictProba(ex *Example) []float64 {
	return m.forward(ex, false).probs
}

// PredictOne returns the most probable class for one example.
func (m *Model) PredictOne(ex *Example) int {
	probs := m.PredictProba(ex)
	best := 0
	for c := 1; c < len(probs); c++ {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best
}

// Predict classifies a batch of examples.
func (m *Model) Predict(examples []Example) []int {
	out := make([]int, len(examples))
	for i := range examples {
		out[i] = m.PredictOne(&examples[i])
	}
	return out
}
