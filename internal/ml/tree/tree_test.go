package tree

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

func blobs(n, k int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := rng.Intn(k)
		y[i] = c
		X[i] = []float64{float64(c)*4 + rng.NormFloat64(), rng.NormFloat64()}
	}
	return X, y
}

func TestForestLearnsBlobs(t *testing.T) {
	X, y := blobs(600, 3, 1)
	f := NewClassifier(25, 10)
	if err := f.Fit(X, y, 3); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	Xte, yte := blobs(300, 3, 2)
	pred := f.Predict(Xte)
	hits := 0
	for i := range pred {
		if pred[i] == yte[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(yte)); acc < 0.95 {
		t.Errorf("blob accuracy = %.3f", acc)
	}
}

func TestForestLearnsXOR(t *testing.T) {
	// XOR: impossible for a linear model, easy for trees.
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []int
	for i := 0; i < 600; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		if (a > 0.5) != (b > 0.5) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	f := NewClassifier(30, 12)
	f.MaxFeatures = 2
	if err := f.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	pred := f.Predict(X)
	hits := 0
	for i := range pred {
		if pred[i] == y[i] {
			hits++
		}
	}
	if acc := float64(hits) / float64(len(y)); acc < 0.95 {
		t.Errorf("XOR accuracy = %.3f", acc)
	}
}

func TestForestProbabilities(t *testing.T) {
	X, y := blobs(200, 2, 5)
	f := NewClassifier(10, 8)
	if err := f.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	p := f.PredictProba(X[0])
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("bad proba %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %f", sum)
	}
}

func TestRegressionForest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 800
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64() * 10
		X[i] = []float64{x}
		y[i] = math.Sin(x) + rng.NormFloat64()*0.05
	}
	f := NewRegressor(30, 12)
	f.MaxFeatures = 1
	if err := f.FitRegression(X, y); err != nil {
		t.Fatalf("FitRegression: %v", err)
	}
	var sse, n2 float64
	for i := 0; i < n; i += 4 {
		d := f.PredictValueOne(X[i]) - math.Sin(X[i][0])
		sse += d * d
		n2++
	}
	if rmse := math.Sqrt(sse / n2); rmse > 0.2 {
		t.Errorf("regression RMSE = %.3f", rmse)
	}
}

func TestTreeDepthLimit(t *testing.T) {
	X, y := blobs(500, 3, 9)
	rng := rand.New(rand.NewSource(1))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	tr := growTree(X, y, nil, idx, Params{MaxDepth: 3, MinSamplesSplit: 2, MaxFeatures: 2, Classes: 3}, rng)
	if d := tr.Depth(); d > 3 {
		t.Errorf("depth = %d, want <= 3", d)
	}
	if tr.NumNodes() == 0 {
		t.Error("tree has no nodes")
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	rng := rand.New(rand.NewSource(1))
	tr := growTree(X, y, nil, []int{0, 1, 2}, Params{MinSamplesSplit: 2, MaxFeatures: 1, Classes: 2}, rng)
	if tr.NumNodes() != 1 {
		t.Errorf("pure node should be a single leaf, got %d nodes", tr.NumNodes())
	}
	if p := tr.PredictProba([]float64{9}); p[1] != 1 {
		t.Errorf("leaf proba = %v", p)
	}
}

func TestForestDeterminism(t *testing.T) {
	X, y := blobs(300, 3, 4)
	a := NewClassifier(10, 10)
	b := NewClassifier(10, 10)
	if err := a.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		pa, pb := a.PredictProba(X[i]), b.PredictProba(X[i])
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatal("same seed must reproduce the same forest")
			}
		}
	}
}

// TestForestWorkerCountInvariance pins the package's central concurrency
// invariant (see the package comment): per-tree seeds are derived before
// the fan-out, so the trained forest is bit-identical no matter how many
// workers the runtime grants.
func TestForestWorkerCountInvariance(t *testing.T) {
	X, y := blobs(300, 3, 4)
	serial := NewClassifier(12, 10)
	prev := runtime.GOMAXPROCS(1)
	err := serial.Fit(X, y, 3)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	parallel := NewClassifier(12, 10)
	if err := parallel.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		pa, pb := serial.PredictProba(X[i]), parallel.PredictProba(X[i])
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatalf("row %d class %d: serial %v != parallel %v", i, c, pa[c], pb[c])
			}
		}
	}
}

func TestForestGobRoundTrip(t *testing.T) {
	X, y := blobs(200, 2, 6)
	f := NewClassifier(8, 8)
	if err := f.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Forest
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range X {
		if f.PredictOne(X[i]) != back.PredictOne(X[i]) {
			t.Fatal("gob round-trip changed predictions")
		}
	}
}

func TestForestErrors(t *testing.T) {
	f := NewClassifier(5, 5)
	if err := f.Fit(nil, nil, 2); err == nil {
		t.Error("empty fit must error")
	}
	if err := f.Fit([][]float64{{1}}, []int{0, 1}, 2); err == nil {
		t.Error("size mismatch must error")
	}
	if err := f.FitRegression([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("FitRegression on classifier must error")
	}
	r := NewRegressor(5, 5)
	if err := r.Fit([][]float64{{1}}, []int{0}, 2); err == nil {
		t.Error("Fit on regressor must error")
	}
	if err := r.FitRegression([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("regression size mismatch must error")
	}
}

// Property: leaf probabilities always form a distribution.
func TestLeafDistributionProperty(t *testing.T) {
	X, y := blobs(300, 4, 8)
	f := NewClassifier(6, 6)
	if err := f.Fit(X, y, 4); err != nil {
		t.Fatal(err)
	}
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		p := f.PredictProba([]float64{a, b})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFeatureImportances(t *testing.T) {
	// Only feature 0 carries signal; its importance must dominate.
	rng := rand.New(rand.NewSource(17))
	n := 400
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := rng.Intn(2)
		y[i] = c
		X[i] = []float64{float64(c)*4 + rng.NormFloat64()*0.3, rng.NormFloat64(), rng.NormFloat64()}
	}
	f := NewClassifier(15, 8)
	f.MaxFeatures = 3
	if err := f.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportances()
	if len(imp) != 3 {
		t.Fatalf("importances = %v", imp)
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Errorf("negative importance %v", imp)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %f", sum)
	}
	if imp[0] < 0.7 {
		t.Errorf("signal feature importance = %f, want dominant", imp[0])
	}
	if (&Forest{}).FeatureImportances() != nil {
		t.Error("untrained forest should return nil")
	}
}

func TestOOBScore(t *testing.T) {
	X, y := blobs(500, 3, 23)
	f := NewClassifier(20, 10)
	f.TrackOOB = true
	if err := f.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	oob, ok := f.OOBScore()
	if !ok {
		t.Fatal("OOB score unavailable despite TrackOOB")
	}
	if oob < 0.9 {
		t.Errorf("OOB accuracy = %.3f on separable blobs", oob)
	}
	// OOB should roughly agree with held-out accuracy.
	Xte, yte := blobs(300, 3, 24)
	pred := f.Predict(Xte)
	hits := 0
	for i := range pred {
		if pred[i] == yte[i] {
			hits++
		}
	}
	holdout := float64(hits) / float64(len(yte))
	if diff := oob - holdout; diff > 0.08 || diff < -0.08 {
		t.Errorf("OOB (%.3f) far from held-out accuracy (%.3f)", oob, holdout)
	}
	// Without tracking, unavailable.
	g := NewClassifier(5, 5)
	if err := g.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.OOBScore(); ok {
		t.Error("OOB should be unavailable without TrackOOB")
	}
}
