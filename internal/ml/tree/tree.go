// Package tree implements CART decision trees and Random Forests from
// scratch, for both classification (Gini impurity) and regression (variance
// reduction). Random Forest is the benchmark's best-performing model for
// feature type inference and its low-bias downstream model; the
// NumEstimator/MaxDepth hyper-parameter grid follows Appendix B.
//
// # Concurrency invariants
//
// Forest training fans out across a worker pool (see Forest.fit); the
// code is run under the race detector in CI and relies on these
// invariants — keep them when changing the training loop:
//
//   - Ownership by index: worker t'th job writes only f.Trees[t] and
//     f.inBag[t]. Both slices are fully allocated before any goroutine
//     starts, so workers never append, grow, or share an element.
//   - Read-only inputs: X, yc, yf, the Params value and the seeds slice
//     are never written after the fan-out begins.
//   - Seed independence: every tree derives its *rand.Rand from
//     seeds[t], which is precomputed sequentially from Forest.Seed.
//     Results therefore depend only on the seed, never on goroutine
//     scheduling, and a forest trained with N workers is bit-identical
//     to one trained with 1.
//   - Synchronisation: the jobs channel plus wg.Wait() form the only
//     synchronisation; wg.Wait() happens-after every tree write, so the
//     caller may read f.Trees without further locking once Fit returns.
//
// Prediction (PredictProba and friends) only reads the fitted trees and
// is safe to call concurrently from many goroutines.
package tree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// node is one tree node. Leaves carry class counts (classification) or a
// mean target value (regression); internal nodes carry a split.
type node struct {
	feature   int
	threshold float64
	left      int32
	right     int32
	leaf      bool
	probs     []float64 // classification: class distribution at the leaf
	value     float64   // regression: mean target at the leaf
}

// Tree is a single CART tree.
type Tree struct {
	nodes      []node
	classes    int // 0 for regression trees
	regression bool
	gains      []float64 // per-feature impurity decrease accumulated at fit
}

// Params configure tree induction.
type Params struct {
	MaxDepth        int // 0 means unlimited
	MinSamplesSplit int // minimum node size to attempt a split
	MaxFeatures     int // features considered per split; 0 = heuristic
	Classes         int // number of classes (classification only)
	Regression      bool
}

type builder struct {
	X       [][]float64
	yc      []int
	yf      []float64
	p       Params
	rng     *rand.Rand
	nodes   []node
	gains   []float64 // per-feature accumulated impurity decrease
	scratch []int
}

// growClassifier builds a classification tree on the given row indices.
func growTree(X [][]float64, yc []int, yf []float64, idx []int, p Params, rng *rand.Rand) *Tree {
	if p.MinSamplesSplit < 2 {
		p.MinSamplesSplit = 2
	}
	d := len(X[0])
	if p.MaxFeatures <= 0 || p.MaxFeatures > d {
		if p.Regression {
			p.MaxFeatures = (d + 2) / 3
		} else {
			p.MaxFeatures = int(math.Sqrt(float64(d))) + 1
		}
		if p.MaxFeatures > d {
			p.MaxFeatures = d
		}
	}
	b := &builder{X: X, yc: yc, yf: yf, p: p, rng: rng, gains: make([]float64, d)}
	b.build(idx, 0)
	return &Tree{nodes: b.nodes, classes: p.Classes, regression: p.Regression, gains: b.gains}
}

// build recursively grows the subtree for idx and returns its node index.
func (b *builder) build(idx []int, depth int) int32 {
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{})

	stop := len(idx) < b.p.MinSamplesSplit ||
		(b.p.MaxDepth > 0 && depth >= b.p.MaxDepth) || b.pure(idx)
	if !stop {
		feat, thr, gain, ok := b.bestSplit(idx)
		if ok {
			lo, hi := partition(b.X, idx, feat, thr)
			if len(lo) > 0 && len(hi) > 0 {
				b.gains[feat] += gain * float64(len(idx))
				n := node{feature: feat, threshold: thr}
				b.nodes[self] = n
				left := b.build(lo, depth+1)
				right := b.build(hi, depth+1)
				b.nodes[self].left = left
				b.nodes[self].right = right
				return self
			}
		}
	}
	b.nodes[self] = b.makeLeaf(idx)
	return self
}

func (b *builder) pure(idx []int) bool {
	if b.p.Regression {
		first := b.yf[idx[0]]
		for _, i := range idx[1:] {
			if b.yf[i] != first { //shvet:ignore float-eq purity wants bit-identical targets, not approximate ones
				return false
			}
		}
		return true
	}
	first := b.yc[idx[0]]
	for _, i := range idx[1:] {
		if b.yc[i] != first {
			return false
		}
	}
	return true
}

func (b *builder) makeLeaf(idx []int) node {
	if b.p.Regression {
		var sum float64
		for _, i := range idx {
			sum += b.yf[i]
		}
		return node{leaf: true, value: sum / float64(len(idx))}
	}
	probs := make([]float64, b.p.Classes)
	for _, i := range idx {
		probs[b.yc[i]]++
	}
	for c := range probs {
		probs[c] /= float64(len(idx))
	}
	return node{leaf: true, probs: probs}
}

// bestSplit searches MaxFeatures random features for the best threshold.
func (b *builder) bestSplit(idx []int) (feature int, threshold float64, bestGain float64, ok bool) {
	d := len(b.X[0])
	bestGain = 1e-12
	// Sample features without replacement.
	feats := b.sampleFeatures(d)
	sorted := append([]int(nil), idx...)
	for _, f := range feats {
		sort.Slice(sorted, func(i, j int) bool { return b.X[sorted[i]][f] < b.X[sorted[j]][f] })
		var gain, thr float64
		var found bool
		if b.p.Regression {
			gain, thr, found = b.sweepRegression(sorted, f)
		} else {
			gain, thr, found = b.sweepClassification(sorted, f)
		}
		if found && gain > bestGain {
			bestGain, feature, threshold, ok = gain, f, thr, true
		}
	}
	return feature, threshold, bestGain, ok
}

func (b *builder) sampleFeatures(d int) []int {
	if b.p.MaxFeatures >= d {
		out := make([]int, d)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return b.rng.Perm(d)[:b.p.MaxFeatures]
}

// sweepClassification scans thresholds on feature f over pre-sorted indices,
// maximizing the Gini impurity decrease.
func (b *builder) sweepClassification(sorted []int, f int) (bestGain, bestThr float64, ok bool) {
	n := len(sorted)
	k := b.p.Classes
	total := make([]float64, k)
	for _, i := range sorted {
		total[b.yc[i]]++
	}
	parentGini := gini(total, float64(n))
	left := make([]float64, k)
	nl := 0.0
	for i := 0; i < n-1; i++ {
		left[b.yc[sorted[i]]]++
		nl++
		xi, xj := b.X[sorted[i]][f], b.X[sorted[i+1]][f]
		if xi == xj { //shvet:ignore float-eq duplicate stored values define no split point; exact compare intended
			continue
		}
		nr := float64(n) - nl
		gl := giniDiff(total, left, nl, nr)
		gain := parentGini - (nl*gl.l+nr*gl.r)/float64(n)
		if gain > bestGain {
			bestGain, bestThr, ok = gain, (xi+xj)/2, true
		}
	}
	return bestGain, bestThr, ok
}

type lrGini struct{ l, r float64 }

func gini(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := c / n
		s -= p * p
	}
	return s
}

func giniDiff(total, left []float64, nl, nr float64) lrGini {
	var sl, sr float64
	for c := range total {
		pl := left[c] / nl
		pr := (total[c] - left[c]) / nr
		sl += pl * pl
		sr += pr * pr
	}
	return lrGini{1 - sl, 1 - sr}
}

// sweepRegression scans thresholds on feature f over pre-sorted indices,
// maximizing the variance (SSE) reduction.
func (b *builder) sweepRegression(sorted []int, f int) (bestGain, bestThr float64, ok bool) {
	n := len(sorted)
	var sum, sumsq float64
	for _, i := range sorted {
		v := b.yf[i]
		sum += v
		sumsq += v * v
	}
	parentSSE := sumsq - sum*sum/float64(n)
	var ls, lss, nl float64
	for i := 0; i < n-1; i++ {
		v := b.yf[sorted[i]]
		ls += v
		lss += v * v
		nl++
		xi, xj := b.X[sorted[i]][f], b.X[sorted[i+1]][f]
		if xi == xj { //shvet:ignore float-eq duplicate stored values define no split point; exact compare intended
			continue
		}
		nr := float64(n) - nl
		rs := sum - ls
		rss := sumsq - lss
		sse := (lss - ls*ls/nl) + (rss - rs*rs/nr)
		gain := parentSSE - sse
		if gain > bestGain {
			bestGain, bestThr, ok = gain, (xi+xj)/2, true
		}
	}
	return bestGain, bestThr, ok
}

// partition splits idx into values <= thr and > thr on feature f.
func partition(X [][]float64, idx []int, f int, thr float64) (lo, hi []int) {
	lo = make([]int, 0, len(idx))
	hi = make([]int, 0, len(idx))
	for _, i := range idx {
		if X[i][f] <= thr {
			lo = append(lo, i)
		} else {
			hi = append(hi, i)
		}
	}
	return lo, hi
}

// predictNode walks x down the tree and returns the reached leaf.
func (t *Tree) predictNode(x []float64) *node {
	n, _ := t.predictNodeDepth(x)
	return n
}

// predictNodeDepth walks x down the tree, returning the reached leaf and
// the traversal depth (root = 0). The depth feeds the forest's optional
// observability sink.
func (t *Tree) predictNodeDepth(x []float64) (*node, int) {
	i := int32(0)
	depth := 0
	for {
		n := &t.nodes[i]
		if n.leaf {
			return n, depth
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
		depth++
	}
}

// PredictProba returns the leaf class distribution for x.
func (t *Tree) PredictProba(x []float64) []float64 { return t.predictNode(x).probs }

// PredictValue returns the leaf mean target for x (regression trees).
func (t *Tree) PredictValue(x []float64) float64 { return t.predictNode(x).value }

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of leaf nodes in the tree.
func (t *Tree) NumLeaves() int {
	leaves := 0
	for i := range t.nodes {
		if t.nodes[i].leaf {
			leaves++
		}
	}
	return leaves
}

// NumSplits returns the number of internal (split) nodes created while
// fitting the tree — every split the induction committed to.
func (t *Tree) NumSplits() int { return len(t.nodes) - t.NumLeaves() }

// Depth returns the maximum depth of the tree (root = depth 0).
func (t *Tree) Depth() int {
	var walk func(i int32, d int) int
	walk = func(i int32, d int) int {
		n := &t.nodes[i]
		if n.leaf {
			return d
		}
		l := walk(n.left, d+1)
		r := walk(n.right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}

// errEmpty is returned when fitting on no data.
var errEmpty = fmt.Errorf("tree: empty training set")
