package tree

import (
	"bytes"
	"encoding/gob"
)

// treeWire is the exported serialization mirror of Tree.
type treeWire struct {
	Features   []int
	Thresholds []float64
	Left       []int32
	Right      []int32
	Leaf       []bool
	Probs      [][]float64
	Values     []float64
	Classes    int
	Regression bool
	Gains      []float64
}

// GobEncode implements gob.GobEncoder for trained trees.
func (t *Tree) GobEncode() ([]byte, error) {
	w := treeWire{
		Features:   make([]int, len(t.nodes)),
		Thresholds: make([]float64, len(t.nodes)),
		Left:       make([]int32, len(t.nodes)),
		Right:      make([]int32, len(t.nodes)),
		Leaf:       make([]bool, len(t.nodes)),
		Probs:      make([][]float64, len(t.nodes)),
		Values:     make([]float64, len(t.nodes)),
		Classes:    t.classes,
		Regression: t.regression,
		Gains:      t.gains,
	}
	for i, n := range t.nodes {
		w.Features[i] = n.feature
		w.Thresholds[i] = n.threshold
		w.Left[i] = n.left
		w.Right[i] = n.right
		w.Leaf[i] = n.leaf
		w.Probs[i] = n.probs
		w.Values[i] = n.value
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tree) GobDecode(b []byte) error {
	var w treeWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	t.nodes = make([]node, len(w.Features))
	for i := range t.nodes {
		t.nodes[i] = node{
			feature:   w.Features[i],
			threshold: w.Thresholds[i],
			left:      w.Left[i],
			right:     w.Right[i],
			leaf:      w.Leaf[i],
			probs:     w.Probs[i],
			value:     w.Values[i],
		}
	}
	t.classes = w.Classes
	t.regression = w.Regression
	t.gains = w.Gains
	return nil
}
