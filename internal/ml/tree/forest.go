package tree

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"sortinghat/internal/obs"
)

// Forest is a Random Forest: bagged CART trees with per-split feature
// subsampling. It serves both classification and regression depending on
// the Regression flag.
type Forest struct {
	NumTrees        int
	MaxDepth        int
	MinSamplesSplit int
	MaxFeatures     int // 0 = sqrt(d) classification, d/3 regression
	Regression      bool
	Seed            int64
	// TrackOOB records each tree's bootstrap sample so OOBScore can
	// compute the out-of-bag accuracy estimate after Fit. Off by default
	// (it retains per-tree membership bitmaps).
	TrackOOB bool

	Trees   []*Tree
	Classes int

	inBag [][]bool // per-tree bootstrap membership (TrackOOB only)
	oobX  [][]float64
	oobY  []int

	// met is the optional observability sink (SetObs). Unexported so
	// encoding/gob never tries to serialise live metric state with a
	// saved model.
	met *Metrics
}

// Metrics is the optional observability sink of a Forest. Attach one
// with SetObs; a nil sink (the default) costs nothing on the prediction
// hot path.
type Metrics struct {
	// TraversalDepth, when non-nil, receives the per-tree traversal
	// depth of every tree consulted by a prediction. Deep traversals on
	// served traffic reveal how far real columns sink into the trees
	// versus the MaxDepth cap that training paid for.
	TraversalDepth *obs.Summary
}

// SetObs attaches (or, with nil, detaches) an observability sink. Not
// safe to call concurrently with predictions; set it once at startup.
func (f *Forest) SetObs(m *Metrics) { f.met = m }

// SplitNodes returns the total number of internal (split) nodes across
// the fitted trees: the training split count the induction committed to.
func (f *Forest) SplitNodes() int {
	total := 0
	for _, t := range f.Trees {
		total += t.NumSplits()
	}
	return total
}

// LeafNodes returns the total number of leaves across the fitted trees.
func (f *Forest) LeafNodes() int {
	total := 0
	for _, t := range f.Trees {
		total += t.NumLeaves()
	}
	return total
}

// MaxTreeDepth returns the deepest fitted tree's depth (root = 0), or 0
// for an unfitted forest.
func (f *Forest) MaxTreeDepth() int {
	max := 0
	for _, t := range f.Trees {
		if d := t.Depth(); d > max {
			max = d
		}
	}
	return max
}

// NewClassifier returns a classification forest with the benchmark's
// default configuration (100 trees, depth 25), the best grid point reported
// by the paper.
func NewClassifier(numTrees, maxDepth int) *Forest {
	return &Forest{NumTrees: numTrees, MaxDepth: maxDepth, MinSamplesSplit: 2, Seed: 1}
}

// NewRegressor returns a regression forest.
func NewRegressor(numTrees, maxDepth int) *Forest {
	return &Forest{NumTrees: numTrees, MaxDepth: maxDepth, MinSamplesSplit: 2,
		Regression: true, Seed: 1}
}

// Fit trains a classification forest on X with labels y in [0,k).
func (f *Forest) Fit(X [][]float64, y []int, k int) error {
	if f.Regression {
		return fmt.Errorf("tree: Fit called on a regression forest")
	}
	if len(X) == 0 {
		return errEmpty
	}
	if len(X) != len(y) {
		return fmt.Errorf("tree: X and y size mismatch: %d vs %d", len(X), len(y))
	}
	f.Classes = k
	return f.fit(X, y, nil)
}

// FitRegression trains a regression forest on X with targets y.
func (f *Forest) FitRegression(X [][]float64, y []float64) error {
	if !f.Regression {
		return fmt.Errorf("tree: FitRegression called on a classification forest")
	}
	if len(X) == 0 {
		return errEmpty
	}
	if len(X) != len(y) {
		return fmt.Errorf("tree: X and y size mismatch: %d vs %d", len(X), len(y))
	}
	return f.fit(X, nil, y)
}

func (f *Forest) fit(X [][]float64, yc []int, yf []float64) error {
	if f.NumTrees <= 0 {
		f.NumTrees = 100
	}
	n := len(X)
	f.Trees = make([]*Tree, f.NumTrees)
	p := Params{
		MaxDepth:        f.MaxDepth,
		MinSamplesSplit: f.MinSamplesSplit,
		MaxFeatures:     f.MaxFeatures,
		Classes:         f.Classes,
		Regression:      f.Regression,
	}
	// Per-tree seeds are derived deterministically so results don't depend
	// on goroutine scheduling.
	seeds := make([]int64, f.NumTrees)
	seedRng := rand.New(rand.NewSource(f.Seed))
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}
	if f.TrackOOB && !f.Regression {
		f.inBag = make([][]bool, f.NumTrees)
		f.oobX, f.oobY = X, yc
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > f.NumTrees {
		workers = f.NumTrees
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				rng := rand.New(rand.NewSource(seeds[t]))
				idx := make([]int, n)
				var bag []bool
				if f.inBag != nil {
					bag = make([]bool, n)
				}
				for i := range idx {
					idx[i] = rng.Intn(n) // bootstrap sample
					if bag != nil {
						bag[idx[i]] = true
					}
				}
				if f.inBag != nil {
					f.inBag[t] = bag
				}
				f.Trees[t] = growTree(X, yc, yf, idx, p, rng)
			}
		}()
	}
	for t := 0; t < f.NumTrees; t++ {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	return nil
}

// PredictProba averages leaf class distributions over the trees.
func (f *Forest) PredictProba(x []float64) []float64 {
	return f.PredictProbaInto(make([]float64, f.Classes), x)
}

// PredictProbaInto is PredictProba writing into a caller-provided slice,
// which must have length Classes; it returns out. Serving predicts one
// column at a time, so letting the caller reuse the probability buffer
// keeps the per-request allocation count flat. Callers that cache the
// result (or hand it to a cache) must pass a fresh slice.
func (f *Forest) PredictProbaInto(out, x []float64) []float64 {
	observe := f.met != nil && f.met.TraversalDepth != nil
	for i := range out {
		out[i] = 0
	}
	for _, t := range f.Trees {
		leaf, depth := t.predictNodeDepth(x)
		if observe {
			f.met.TraversalDepth.Observe(float64(depth))
		}
		for c, p := range leaf.probs {
			out[c] += p
		}
	}
	for c := range out {
		out[c] /= float64(len(f.Trees))
	}
	return out
}

// PredictOne returns the majority-vote class for x.
func (f *Forest) PredictOne(x []float64) int {
	return argmax(f.PredictProba(x))
}

// Predict classifies every row of X, reusing one probability buffer for
// the whole batch.
func (f *Forest) Predict(X [][]float64) []int {
	out := make([]int, len(X))
	probs := make([]float64, f.Classes)
	for i := range X {
		out[i] = argmax(f.PredictProbaInto(probs, X[i]))
	}
	return out
}

// argmax returns the index of the largest probability.
func argmax(probs []float64) int {
	best := 0
	for c := 1; c < len(probs); c++ {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best
}

// PredictValueOne returns the forest-mean regression estimate for x.
func (f *Forest) PredictValueOne(x []float64) float64 {
	var sum float64
	for _, t := range f.Trees {
		sum += t.PredictValue(x)
	}
	return sum / float64(len(f.Trees))
}

// PredictValues returns regression estimates for every row of X.
func (f *Forest) PredictValues(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i := range X {
		out[i] = f.PredictValueOne(X[i])
	}
	return out
}

// OOBScore returns the out-of-bag accuracy estimate: each training example
// is classified by majority vote of only the trees whose bootstrap sample
// excluded it. Requires TrackOOB to have been set before Fit; returns
// (0, false) otherwise or when no example was ever out of bag.
func (f *Forest) OOBScore() (float64, bool) {
	if f.inBag == nil || f.Regression || len(f.oobX) == 0 {
		return 0, false
	}
	hits, counted := 0, 0
	votes := make([]float64, f.Classes)
	for i := range f.oobX {
		for c := range votes {
			votes[c] = 0
		}
		voted := false
		for t, tree := range f.Trees {
			if f.inBag[t][i] {
				continue
			}
			for c, p := range tree.PredictProba(f.oobX[i]) {
				votes[c] += p
			}
			voted = true
		}
		if !voted {
			continue
		}
		best := 0
		for c := 1; c < len(votes); c++ {
			if votes[c] > votes[best] {
				best = c
			}
		}
		counted++
		if best == f.oobY[i] {
			hits++
		}
	}
	if counted == 0 {
		return 0, false
	}
	return float64(hits) / float64(counted), true
}

// FeatureImportances returns the normalised mean impurity decrease per
// feature across the forest's trees (summing to 1 when any split occurred).
// It mirrors scikit-learn's default feature_importances_ and backs the
// paper's observation that descriptive stats and attribute names carry
// most of the signal.
func (f *Forest) FeatureImportances() []float64 {
	if len(f.Trees) == 0 {
		return nil
	}
	var out []float64
	for _, t := range f.Trees {
		if out == nil {
			out = make([]float64, len(t.gains))
		}
		for i, g := range t.gains {
			out[i] += g
		}
	}
	var total float64
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}
