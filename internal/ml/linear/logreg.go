// Package linear implements the linear models of the benchmark from
// scratch: L2-regularized multinomial logistic regression (one of the five
// Section 3.3 model families, used both as a type-inference model in
// Tables 1/2 and as the high-bias downstream classifier of Section 5) and
// L2-regularized (ridge) linear regression (the downstream regressor).
// The C grid follows Appendix B.
package linear

import (
	"fmt"
	"math"
	"math/rand"
)

// LogisticRegression is a multinomial (softmax) logistic regression trained
// by mini-batch SGD with an L2 penalty. C is the inverse regularization
// strength, matching scikit-learn's parameterization used in the paper's
// grid (Appendix B): larger C, weaker regularization.
type LogisticRegression struct {
	C         float64 // inverse regularization strength
	Epochs    int     // passes over the training set
	BatchSize int
	LR        float64 // initial learning rate
	Seed      int64

	W       [][]float64 // classes × (features+1); last column is the bias
	Classes int
}

// NewLogisticRegression returns a model with the defaults used throughout
// the benchmark (C=1, 30 epochs, batch 32).
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{C: 1, Epochs: 30, BatchSize: 32, LR: 0.1, Seed: 1}
}

// Fit trains on X (n×d) with integer labels y in [0,k).
func (m *LogisticRegression) Fit(X [][]float64, y []int, k int) error {
	if len(X) == 0 {
		return fmt.Errorf("linear: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("linear: X and y size mismatch: %d vs %d", len(X), len(y))
	}
	d := len(X[0])
	m.Classes = k
	m.W = make([][]float64, k)
	for c := range m.W {
		m.W[c] = make([]float64, d+1)
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 32
	}
	if m.Epochs <= 0 {
		m.Epochs = 30
	}
	if m.LR <= 0 {
		m.LR = 0.1
	}
	if m.C <= 0 {
		m.C = 1
	}
	rng := rand.New(rand.NewSource(m.Seed))
	n := len(X)
	order := rng.Perm(n)
	lambda := 1 / (m.C * float64(n))
	probs := make([]float64, k)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		lr := m.LR / (1 + 0.1*float64(epoch))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.BatchSize {
			end := start + m.BatchSize
			if end > n {
				end = n
			}
			scale := lr / float64(end-start)
			for _, i := range order[start:end] {
				m.scores(X[i], probs)
				softmaxInPlace(probs)
				for c := 0; c < k; c++ {
					g := probs[c]
					if c == y[i] {
						g -= 1
					}
					g *= scale
					w := m.W[c]
					for j, xj := range X[i] {
						if xj != 0 {
							w[j] -= g * xj
						}
					}
					w[d] -= g
				}
			}
			// L2 shrink once per batch (bias excluded).
			shrink := 1 - lr*lambda*float64(end-start)
			if shrink < 0 {
				shrink = 0
			}
			for c := 0; c < k; c++ {
				w := m.W[c]
				for j := 0; j < d; j++ {
					w[j] *= shrink
				}
			}
		}
	}
	return nil
}

// scores fills out with the raw class scores for x.
func (m *LogisticRegression) scores(x []float64, out []float64) {
	d := len(x)
	for c := range m.W {
		w := m.W[c]
		s := w[d]
		for j, xj := range x {
			if xj != 0 {
				s += w[j] * xj
			}
		}
		out[c] = s
	}
}

func softmaxInPlace(v []float64) {
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i := range v {
		v[i] = math.Exp(v[i] - max)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// PredictProba returns the class probability vector for x.
func (m *LogisticRegression) PredictProba(x []float64) []float64 {
	out := make([]float64, m.Classes)
	m.scores(x, out)
	softmaxInPlace(out)
	return out
}

// PredictOne returns the most probable class for x.
func (m *LogisticRegression) PredictOne(x []float64) int {
	out := make([]float64, m.Classes)
	m.scores(x, out)
	best := 0
	for c := 1; c < len(out); c++ {
		if out[c] > out[best] {
			best = c
		}
	}
	return best
}

// Predict returns the most probable class for every row of X.
func (m *LogisticRegression) Predict(X [][]float64) []int {
	out := make([]int, len(X))
	for i := range X {
		out[i] = m.PredictOne(X[i])
	}
	return out
}
