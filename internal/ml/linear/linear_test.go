package linear

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates k well-separated Gaussian clusters.
func blobs(n, k, d int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := rng.Intn(k)
		y[i] = c
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()*0.4 + float64(c)*3
		}
		// make dimensions differ by class direction
		row[c%d] += 2
		X[i] = row
	}
	return X, y
}

func TestLogisticRegressionLearnsBlobs(t *testing.T) {
	X, y := blobs(600, 3, 4, 1)
	m := NewLogisticRegression()
	if err := m.Fit(X, y, 3); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	Xte, yte := blobs(300, 3, 4, 2)
	hits := 0
	for i := range Xte {
		if m.PredictOne(Xte[i]) == yte[i] {
			hits++
		}
	}
	acc := float64(hits) / float64(len(Xte))
	if acc < 0.95 {
		t.Errorf("accuracy on separable blobs = %.3f, want >= 0.95", acc)
	}
}

func TestLogisticRegressionProbabilities(t *testing.T) {
	X, y := blobs(200, 2, 3, 3)
	m := NewLogisticRegression()
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		x := []float64{clamp(a), clamp(b), clamp(c)}
		p := m.PredictProba(x)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clamp(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	if v > 1e6 {
		return 1e6
	}
	if v < -1e6 {
		return -1e6
	}
	return v
}

func TestLogisticRegressionRegularization(t *testing.T) {
	X, y := blobs(300, 2, 3, 5)
	strong := NewLogisticRegression()
	strong.C = 1e-4 // heavy regularization -> small weights
	if err := strong.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	weak := NewLogisticRegression()
	weak.C = 1e4
	if err := weak.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if norm(strong.W) >= norm(weak.W) {
		t.Errorf("stronger L2 should shrink weights: %f vs %f", norm(strong.W), norm(weak.W))
	}
}

func norm(W [][]float64) float64 {
	var s float64
	for _, row := range W {
		for _, v := range row[:len(row)-1] { // bias excluded
			s += v * v
		}
	}
	return math.Sqrt(s)
}

func TestLogisticRegressionErrors(t *testing.T) {
	m := NewLogisticRegression()
	if err := m.Fit(nil, nil, 2); err == nil {
		t.Error("empty training set must error")
	}
	if err := m.Fit([][]float64{{1}}, []int{0, 1}, 2); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, d := 400, 3
	wTrue := []float64{2, -1, 0.5}
	const bias = 4.0
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = bias
		for j := range row {
			y[i] += wTrue[j] * row[j]
		}
		y[i] += rng.NormFloat64() * 0.01
	}
	m := NewRidge(1e-6)
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for j := range wTrue {
		if math.Abs(m.W[j]-wTrue[j]) > 0.05 {
			t.Errorf("W[%d] = %f, want %f", j, m.W[j], wTrue[j])
		}
	}
	if math.Abs(m.Bias-bias) > 0.05 {
		t.Errorf("Bias = %f, want %f", m.Bias, bias)
	}
	// Predictions close to targets.
	pred := m.Predict(X[:10])
	for i := range pred {
		if math.Abs(pred[i]-y[i]) > 0.1 {
			t.Errorf("pred[%d] = %f, want %f", i, pred[i], y[i])
		}
	}
}

func TestRidgeShrinkage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
		y[i] = 3 * X[i][0]
	}
	small := NewRidge(1e-9)
	big := NewRidge(1e6)
	if err := small.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := big.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(big.W[0]) >= math.Abs(small.W[0]) {
		t.Errorf("large lambda should shrink: %f vs %f", big.W[0], small.W[0])
	}
}

func TestRidgeCollinearColumns(t *testing.T) {
	// Perfectly collinear features: solvable only thanks to the L2 term.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	m := NewRidge(0.1)
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit on collinear data: %v", err)
	}
	if p := m.PredictOne([]float64{5, 5}); math.Abs(p-10) > 0.5 {
		t.Errorf("prediction = %f, want ~10", p)
	}
}

func TestRidgeErrors(t *testing.T) {
	m := NewRidge(1)
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty fit must error")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	// Huge logits must not overflow to NaN.
	v := []float64{1000, -1000, 999}
	softmaxInPlace(v)
	var sum float64
	for _, x := range v {
		if math.IsNaN(x) || x < 0 || x > 1 {
			t.Fatalf("softmax unstable: %v", v)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %f", sum)
	}
}

func TestLogisticRegressionDeterministicSeed(t *testing.T) {
	X, y := blobs(200, 2, 3, 21)
	a := NewLogisticRegression()
	b := NewLogisticRegression()
	if err := a.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	for c := range a.W {
		for j := range a.W[c] {
			if a.W[c][j] != b.W[c][j] {
				t.Fatal("same seed must reproduce weights")
			}
		}
	}
}
