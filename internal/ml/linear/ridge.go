package linear

import (
	"fmt"
	"math"
)

// Ridge is L2-regularized linear regression solved in closed form via the
// normal equations with a Cholesky factorization: (XᵀX + λI)w = Xᵀy.
// It is the paper's downstream "Linear Regression – L2 Regularization".
type Ridge struct {
	Lambda float64 // L2 penalty strength

	W    []float64 // learned weights
	Bias float64
}

// NewRidge returns a ridge regressor with penalty lambda (1.0 default if
// lambda <= 0 at fit time).
func NewRidge(lambda float64) *Ridge { return &Ridge{Lambda: lambda} }

// Fit solves the regularized least squares problem on X (n×d), y (n).
func (m *Ridge) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return fmt.Errorf("linear: ridge: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("linear: ridge: X and y size mismatch: %d vs %d", len(X), len(y))
	}
	if m.Lambda <= 0 {
		m.Lambda = 1
	}
	n, d := len(X), len(X[0])

	// Center y and X so the bias can be recovered without regularizing it.
	xMean := make([]float64, d)
	var yMean float64
	for i := 0; i < n; i++ {
		yMean += y[i]
		for j, v := range X[i] {
			xMean[j] += v
		}
	}
	yMean /= float64(n)
	for j := range xMean {
		xMean[j] /= float64(n)
	}

	// A = XcᵀXc + λI, b = Xcᵀyc
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	b := make([]float64, d)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			row[j] = X[i][j] - xMean[j]
		}
		yc := y[i] - yMean
		for j := 0; j < d; j++ {
			if row[j] == 0 {
				continue
			}
			b[j] += row[j] * yc
			aj := A[j]
			rj := row[j]
			for k := j; k < d; k++ {
				aj[k] += rj * row[k]
			}
		}
	}
	for j := 0; j < d; j++ {
		for k := 0; k < j; k++ {
			A[j][k] = A[k][j]
		}
		A[j][j] += m.Lambda
	}

	w, err := solveCholesky(A, b)
	if err != nil {
		return fmt.Errorf("linear: ridge: %w", err)
	}
	m.W = w
	m.Bias = yMean
	for j := 0; j < d; j++ {
		m.Bias -= w[j] * xMean[j]
	}
	return nil
}

// PredictOne returns the regression estimate for x.
func (m *Ridge) PredictOne(x []float64) float64 {
	s := m.Bias
	for j, v := range x {
		if v != 0 {
			s += m.W[j] * v
		}
	}
	return s
}

// Predict returns estimates for every row of X.
func (m *Ridge) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i := range X {
		out[i] = m.PredictOne(X[i])
	}
	return out
}

// solveCholesky solves Aw = b for symmetric positive-definite A, with a
// diagonal jitter retry if the factorization stalls numerically.
func solveCholesky(A [][]float64, b []float64) ([]float64, error) {
	d := len(A)
	L := make([][]float64, d)
	for i := range L {
		L[i] = make([]float64, d)
	}
	jitter := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		ok := true
		for i := 0; i < d && ok; i++ {
			for j := 0; j <= i; j++ {
				sum := A[i][j]
				if i == j {
					sum += jitter
				}
				for k := 0; k < j; k++ {
					sum -= L[i][k] * L[j][k]
				}
				if i == j {
					if sum <= 0 || math.IsNaN(sum) {
						ok = false
						break
					}
					L[i][i] = math.Sqrt(sum)
				} else {
					L[i][j] = sum / L[j][j]
				}
			}
		}
		if ok {
			// Forward solve Lz = b, back solve Lᵀw = z.
			z := make([]float64, d)
			for i := 0; i < d; i++ {
				s := b[i]
				for k := 0; k < i; k++ {
					s -= L[i][k] * z[k]
				}
				z[i] = s / L[i][i]
			}
			w := make([]float64, d)
			for i := d - 1; i >= 0; i-- {
				s := z[i]
				for k := i + 1; k < d; k++ {
					s -= L[k][i] * w[k]
				}
				w[i] = s / L[i][i]
			}
			return w, nil
		}
		if jitter == 0 {
			jitter = 1e-6
		} else {
			jitter *= 1000
		}
	}
	return nil, fmt.Errorf("cholesky factorization failed (matrix not positive definite)")
}
