// Package modelsel provides data-splitting and model-selection utilities:
// stratified train/test splits, k-fold cross-validation, grouped
// (leave-datafile-out) cross-validation, and grid search scaffolding,
// following the methodology of Section 4.1 of the paper.
package modelsel

import (
	"math/rand"
	"sort"
)

// StratifiedSplit partitions example indices into train and test sets with
// approximately testFrac of each class in the test set. Order within each
// split is shuffled by rng.
func StratifiedSplit(y []int, testFrac float64, rng *rand.Rand) (train, test []int) {
	byClass := map[int][]int{}
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTest := int(float64(len(idx))*testFrac + 0.5)
		if nTest >= len(idx) {
			// Keep at least one example of every class in the training set.
			nTest = len(idx) - 1
		}
		test = append(test, idx[:nTest]...)
		train = append(train, idx[nTest:]...)
	}
	rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
	rng.Shuffle(len(test), func(i, j int) { test[i], test[j] = test[j], test[i] })
	return train, test
}

// Fold is one cross-validation fold: indices to train on and to validate on.
type Fold struct {
	Train []int
	Val   []int
}

// KFold produces k stratified folds over the labels.
func KFold(y []int, k int, rng *rand.Rand) []Fold {
	byClass := map[int][]int{}
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	assign := make([]int, len(y)) // example -> fold
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for j, e := range idx {
			assign[e] = j % k
		}
	}
	folds := make([]Fold, k)
	for e, f := range assign {
		for g := range folds {
			if g == f {
				folds[g].Val = append(folds[g].Val, e)
			} else {
				folds[g].Train = append(folds[g].Train, e)
			}
		}
	}
	return folds
}

// GroupedSplit partitions indices by group (e.g. source data file) into
// train/val/test with the given fractions of groups, reproducing the
// paper's leave-datafile-out methodology where every column of a file lands
// in the same partition.
func GroupedSplit(groups []int, trainFrac, valFrac float64, rng *rand.Rand) (train, val, test []int) {
	uniq := map[int]bool{}
	for _, g := range groups {
		uniq[g] = true
	}
	ids := make([]int, 0, len(uniq))
	for g := range uniq {
		ids = append(ids, g)
	}
	sort.Ints(ids)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	nTrain := int(float64(len(ids)) * trainFrac)
	nVal := int(float64(len(ids)) * valFrac)
	part := map[int]int{} // group -> 0 train, 1 val, 2 test
	for i, g := range ids {
		switch {
		case i < nTrain:
			part[g] = 0
		case i < nTrain+nVal:
			part[g] = 1
		default:
			part[g] = 2
		}
	}
	for i, g := range groups {
		switch part[g] {
		case 0:
			train = append(train, i)
		case 1:
			val = append(val, i)
		default:
			test = append(test, i)
		}
	}
	return train, val, test
}

// Gather selects rows of a float matrix by index.
func Gather(X [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = X[j]
	}
	return out
}

// GatherInts selects elements of an int slice by index.
func GatherInts(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// GatherFloats selects elements of a float slice by index.
func GatherFloats(y []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// GridPoint is one hyper-parameter assignment.
type GridPoint map[string]float64

// Grid expands a named grid specification into the cross product of all
// parameter values, in deterministic order.
func Grid(params map[string][]float64) []GridPoint {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	points := []GridPoint{{}}
	for _, n := range names {
		var next []GridPoint
		for _, p := range points {
			for _, v := range params[n] {
				q := GridPoint{}
				for k, w := range p {
					q[k] = w
				}
				q[n] = v
				next = append(next, q)
			}
		}
		points = next
	}
	return points
}

// BestGridPoint runs evaluate for every grid point and returns the point
// with the highest score (ties resolved toward the earlier point).
func BestGridPoint(points []GridPoint, evaluate func(GridPoint) float64) (GridPoint, float64) {
	best := points[0]
	bestScore := evaluate(points[0])
	for _, p := range points[1:] {
		if s := evaluate(p); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best, bestScore
}
