package modelsel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func labelsFixture(n, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(k)
	}
	return y
}

func TestStratifiedSplit(t *testing.T) {
	y := labelsFixture(1000, 4, 1)
	train, test := StratifiedSplit(y, 0.2, rand.New(rand.NewSource(2)))
	if len(train)+len(test) != len(y) {
		t.Fatalf("split sizes %d+%d != %d", len(train), len(test), len(y))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	// Class proportions in test within 5 points of 20%.
	counts := map[int]int{}
	totals := map[int]int{}
	for _, i := range test {
		counts[y[i]]++
	}
	for _, c := range y {
		totals[c]++
	}
	for c, total := range totals {
		frac := float64(counts[c]) / float64(total)
		if frac < 0.15 || frac > 0.25 {
			t.Errorf("class %d test fraction = %f", c, frac)
		}
	}
}

func TestStratifiedSplitTinyClass(t *testing.T) {
	// A class with a single example must stay in train.
	y := []int{0, 0, 0, 0, 1}
	train, test := StratifiedSplit(y, 0.5, rand.New(rand.NewSource(1)))
	for _, i := range test {
		if y[i] == 1 {
			t.Error("singleton class leaked into test")
		}
	}
	if len(train)+len(test) != 5 {
		t.Error("split dropped examples")
	}
}

func TestKFold(t *testing.T) {
	y := labelsFixture(100, 3, 5)
	folds := KFold(y, 5, rand.New(rand.NewSource(7)))
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	valSeen := map[int]int{}
	for _, f := range folds {
		if len(f.Train)+len(f.Val) != len(y) {
			t.Errorf("fold covers %d examples", len(f.Train)+len(f.Val))
		}
		inVal := map[int]bool{}
		for _, i := range f.Val {
			valSeen[i]++
			inVal[i] = true
		}
		for _, i := range f.Train {
			if inVal[i] {
				t.Error("index in both train and val of the same fold")
			}
		}
	}
	for i := range y {
		if valSeen[i] != 1 {
			t.Errorf("index %d is in %d validation folds, want exactly 1", i, valSeen[i])
		}
	}
}

func TestGroupedSplit(t *testing.T) {
	groups := make([]int, 300)
	for i := range groups {
		groups[i] = i / 6 // 50 groups of 6
	}
	train, val, test := GroupedSplit(groups, 0.6, 0.2, rand.New(rand.NewSource(3)))
	if len(train)+len(val)+len(test) != len(groups) {
		t.Fatalf("partition sizes %d+%d+%d", len(train), len(val), len(test))
	}
	part := map[int]string{}
	record := func(idx []int, name string) {
		for _, i := range idx {
			g := groups[i]
			if prev, ok := part[g]; ok && prev != name {
				t.Fatalf("group %d split across %s and %s", g, prev, name)
			}
			part[g] = name
		}
	}
	record(train, "train")
	record(val, "val")
	record(test, "test")
}

func TestGatherHelpers(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	if got := Gather(X, []int{2, 0}); got[0][0] != 3 || got[1][0] != 1 {
		t.Error("Gather wrong")
	}
	if got := GatherInts([]int{5, 6, 7}, []int{1}); got[0] != 6 {
		t.Error("GatherInts wrong")
	}
	if got := GatherFloats([]float64{5, 6, 7}, []int{2}); got[0] != 7 {
		t.Error("GatherFloats wrong")
	}
}

func TestGrid(t *testing.T) {
	points := Grid(map[string][]float64{"a": {1, 2}, "b": {10, 20, 30}})
	if len(points) != 6 {
		t.Fatalf("grid size = %d", len(points))
	}
	seen := map[[2]float64]bool{}
	for _, p := range points {
		seen[[2]float64{p["a"], p["b"]}] = true
	}
	if len(seen) != 6 {
		t.Error("grid points not distinct")
	}
	best, score := BestGridPoint(points, func(p GridPoint) float64 { return p["a"] + p["b"] })
	if best["a"] != 2 || best["b"] != 30 || score != 32 {
		t.Errorf("best = %v score = %f", best, score)
	}
}

// Property: every stratified split is a permutation-free partition.
func TestStratifiedSplitPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 5
		y := labelsFixture(n, rng.Intn(4)+2, seed+1)
		train, test := StratifiedSplit(y, 0.3, rng)
		if len(train)+len(test) != n {
			return false
		}
		seen := make([]bool, n)
		for _, i := range append(append([]int{}, train...), test...) {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
