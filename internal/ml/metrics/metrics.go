// Package metrics implements the evaluation metrics of the benchmark:
// multi-class accuracy, confusion matrices, per-class binarized precision /
// recall / F1 / accuracy (Table 1 and Table 8 of the paper), RMSE for the
// regression tasks, and empirical CDF helpers for the Figure-8/9 plots.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy returns the fraction of predictions equal to the truth.
// It returns 0 for empty input.
func Accuracy(truth, pred []int) float64 {
	if len(truth) == 0 || len(truth) != len(pred) {
		return 0
	}
	hits := 0
	for i := range truth {
		if truth[i] == pred[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// ConfusionMatrix computes an k×k confusion matrix; rows are actual classes,
// columns predicted classes. Predictions outside [0,k) (e.g. a tool's
// "no coverage" answer) are counted in the per-row Uncovered tally instead.
type ConfusionMatrix struct {
	K         int
	Counts    [][]int
	Uncovered []int
}

// Confusion builds the confusion matrix for k classes.
func Confusion(truth, pred []int, k int) *ConfusionMatrix {
	cm := &ConfusionMatrix{K: k, Counts: make([][]int, k), Uncovered: make([]int, k)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, k)
	}
	for i := range truth {
		t := truth[i]
		if t < 0 || t >= k {
			continue
		}
		p := pred[i]
		if p < 0 || p >= k {
			cm.Uncovered[t]++
			continue
		}
		cm.Counts[t][p]++
	}
	return cm
}

// Total returns the number of examples tallied (including uncovered).
func (cm *ConfusionMatrix) Total() int {
	n := 0
	for i := range cm.Counts {
		n += cm.Uncovered[i]
		for j := range cm.Counts[i] {
			n += cm.Counts[i][j]
		}
	}
	return n
}

// BinaryScores are the one-vs-rest scores for one class, as reported in the
// paper's Table 1 (precision, recall, binarized 2x2 diagonal accuracy) and
// Table 8 (F1).
type BinaryScores struct {
	Precision float64
	Recall    float64
	F1        float64
	Accuracy  float64
	Support   int // number of true examples of the class
	Predicted int // number of predictions of the class
}

// Binarized computes the one-vs-rest scores for class c. Uncovered
// predictions count as negative predictions (they are never class c), which
// matches how the paper scores tools without full vocabulary coverage.
func (cm *ConfusionMatrix) Binarized(c int) BinaryScores {
	var tp, fp, fn, tn int
	for t := 0; t < cm.K; t++ {
		for p := 0; p < cm.K; p++ {
			n := cm.Counts[t][p]
			switch {
			case t == c && p == c:
				tp += n
			case t == c && p != c:
				fn += n
			case t != c && p == c:
				fp += n
			default:
				tn += n
			}
		}
		if t == c {
			fn += cm.Uncovered[t]
		} else {
			tn += cm.Uncovered[t]
		}
	}
	var s BinaryScores
	s.Support = tp + fn
	s.Predicted = tp + fp
	if tp+fp > 0 {
		s.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		s.Recall = float64(tp) / float64(tp+fn)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	total := tp + fp + fn + tn
	if total > 0 {
		s.Accuracy = float64(tp+tn) / float64(total)
	}
	return s
}

// MultiAccuracy returns the k-class accuracy implied by the matrix, counting
// uncovered predictions as wrong.
func (cm *ConfusionMatrix) MultiAccuracy() float64 {
	total := cm.Total()
	if total == 0 {
		return 0
	}
	diag := 0
	for i := 0; i < cm.K; i++ {
		diag += cm.Counts[i][i]
	}
	return float64(diag) / float64(total)
}

// String renders the matrix with class indices, actual on rows.
func (cm *ConfusionMatrix) String() string {
	s := "actual\\pred"
	for j := 0; j < cm.K; j++ {
		s += fmt.Sprintf("\t%d", j)
	}
	s += "\tn/a\n"
	for i := 0; i < cm.K; i++ {
		s += fmt.Sprintf("%d", i)
		for j := 0; j < cm.K; j++ {
			s += fmt.Sprintf("\t%d", cm.Counts[i][j])
		}
		s += fmt.Sprintf("\t%d\n", cm.Uncovered[i])
	}
	return s
}

// RMSE returns the root mean squared error between truth and predictions.
func RMSE(truth, pred []float64) float64 {
	if len(truth) == 0 || len(truth) != len(pred) {
		return math.NaN()
	}
	var sum float64
	for i := range truth {
		d := truth[i] - pred[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(truth)))
}

// CDF computes the empirical CDF of values at the given probe points:
// result[i] = P(X <= probes[i]).
func CDF(values, probes []float64) []float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]float64, len(probes))
	for i, p := range probes {
		out[i] = float64(sort.SearchFloat64s(sorted, math.Nextafter(p, math.Inf(1)))) / float64(len(sorted))
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of values using
// nearest-rank on a sorted copy. It returns NaN for empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
