package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Accuracy = %f", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if Accuracy([]int{1}, []int{1, 2}) != 0 {
		t.Error("mismatched lengths should be 0")
	}
}

func TestConfusionAndBinarized(t *testing.T) {
	// 2 classes: truth [0,0,1,1,1], pred [0,1,1,1,0]
	cm := Confusion([]int{0, 0, 1, 1, 1}, []int{0, 1, 1, 1, 0}, 2)
	if cm.Total() != 5 {
		t.Fatalf("Total = %d", cm.Total())
	}
	s := cm.Binarized(1)
	// class 1: tp=2, fp=1, fn=1, tn=1
	if math.Abs(s.Precision-2.0/3) > 1e-9 {
		t.Errorf("precision = %f", s.Precision)
	}
	if math.Abs(s.Recall-2.0/3) > 1e-9 {
		t.Errorf("recall = %f", s.Recall)
	}
	if math.Abs(s.Accuracy-3.0/5) > 1e-9 {
		t.Errorf("binarized accuracy = %f", s.Accuracy)
	}
	if math.Abs(s.F1-2.0/3) > 1e-9 {
		t.Errorf("f1 = %f", s.F1)
	}
	if s.Support != 3 || s.Predicted != 3 {
		t.Errorf("support/predicted = %d/%d", s.Support, s.Predicted)
	}
	if math.Abs(cm.MultiAccuracy()-3.0/5) > 1e-9 {
		t.Errorf("MultiAccuracy = %f", cm.MultiAccuracy())
	}
}

func TestConfusionUncovered(t *testing.T) {
	// A tool that answers Unknown (-1) for one class-0 example.
	cm := Confusion([]int{0, 0, 1}, []int{0, -1, 1}, 2)
	if cm.Uncovered[0] != 1 {
		t.Fatalf("Uncovered = %v", cm.Uncovered)
	}
	s := cm.Binarized(0)
	// tp=1, fn=1 (uncovered counts as miss), fp=0, tn=1
	if math.Abs(s.Recall-0.5) > 1e-9 {
		t.Errorf("recall with uncovered = %f", s.Recall)
	}
	if math.Abs(cm.MultiAccuracy()-2.0/3) > 1e-9 {
		t.Errorf("MultiAccuracy with uncovered = %f", cm.MultiAccuracy())
	}
	if cm.String() == "" {
		t.Error("String() should render")
	}
}

// TestBinarizedBounds is a property test: precision, recall, F1 and
// accuracy are always within [0,1] and consistent with each other.
func TestBinarizedBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		k := rng.Intn(5) + 2
		truth := make([]int, n)
		pred := make([]int, n)
		for i := range truth {
			truth[i] = rng.Intn(k)
			pred[i] = rng.Intn(k+1) - 1 // sometimes uncovered
		}
		cm := Confusion(truth, pred, k)
		for c := 0; c < k; c++ {
			s := cm.Binarized(c)
			for _, v := range []float64{s.Precision, s.Recall, s.F1, s.Accuracy} {
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
			}
			if s.F1 > s.Precision+s.Recall {
				return false
			}
		}
		acc := cm.MultiAccuracy()
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRMSE(t *testing.T) {
	got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	want := math.Sqrt(4.0 / 3)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("RMSE = %f, want %f", got, want)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Error("empty RMSE should be NaN")
	}
}

func TestCDF(t *testing.T) {
	vals := []float64{1, 2, 2, 3}
	got := CDF(vals, []float64{0, 1, 2, 3, 4})
	want := []float64{0, 0.25, 0.75, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("CDF[%d] = %f, want %f", i, got[i], want[i])
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := Percentile(vals, 50); got != 50 {
		t.Errorf("p50 = %f", got)
	}
	if got := Percentile(vals, 100); got != 100 {
		t.Errorf("p100 = %f", got)
	}
	if got := Percentile(vals, 0.1); got != 10 {
		t.Errorf("p0.1 = %f", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}
