package gateway

import (
	"time"

	"sortinghat/internal/obs"
)

// metrics holds the gateway's handles into its obs.Registry. The
// registry renders in registration order, so the order below is the
// pinned /metrics layout (TestGatewayMetricsRenderPinned): fleet-wide
// series first, then one block of four series per replica in ring
// order, then the latency summaries.
type metrics struct {
	reg *obs.Registry

	requests         *obs.Counter // completed gateway requests (any outcome)
	requestErrors    *obs.Counter // 4xx responses (malformed batches)
	requestTimeouts  *obs.Counter // 504 responses (deadline exceeded)
	inflight         *obs.Gauge   // requests currently being served
	columns          *obs.Counter // columns across all accepted batches
	shardRequests    *obs.Counter // sub-requests forwarded to replicas
	shardErrors      *obs.Counter // sub-requests that failed
	hedges           *obs.Counter // speculative (hedged) sub-requests
	backoffArmed     *obs.Counter // replica backoffs armed by shedding answers
	rerouted         *obs.Counter // columns answered off their ring owner
	degraded         *obs.Counter // degraded columns in gateway responses
	fallbackColumns  *obs.Counter // columns answered by the local rule fallback
	probeFailures    *obs.Counter // failed health probes
	probeTransitions *obs.Counter // replica health state changes observed

	batchSize     *obs.Summary   // batch sizes (columns per request)
	shardLatency  *obs.Histogram // per-sub-request seconds
	dispatchDur   *obs.Histogram // scatter phase: first dispatch → all groups resolved
	hedgeDur      *obs.Histogram // hedged groups: first hedge fire → resolution
	reassembleDur *obs.Histogram // gather phase: slot-ordered response assembly
	request       *obs.Histogram // end-to-end request seconds
}

// newMetrics builds the gateway's registry. State owned elsewhere
// (gate, breakers, probe results, ring) is exposed through render-time
// funcs; the per-replica blocks are named by ring label (r0, r1, ...) —
// the obs registry is label-free by design, so the label lives in the
// series name and the address in the help string.
func newMetrics(g *Gateway) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}
	m.requests = reg.Counter("sortinghatgw_requests_total", "Completed gateway /v1/infer requests.")
	m.requestErrors = reg.Counter("sortinghatgw_request_errors_total", "Rejected gateway requests (malformed or oversized batches).")
	m.requestTimeouts = reg.Counter("sortinghatgw_request_timeouts_total", "Gateway requests that exceeded their deadline.")
	m.inflight = reg.Gauge("sortinghatgw_inflight_requests", "Requests currently being served.")
	m.columns = reg.Counter("sortinghatgw_columns_total", "Columns received across all accepted batches.")
	m.shardRequests = reg.Counter("sortinghatgw_shard_requests_total", "Sub-requests forwarded to replicas (including hedges and retries).")
	m.shardErrors = reg.Counter("sortinghatgw_shard_errors_total", "Forwarded sub-requests that failed (transport error or non-200).")
	m.hedges = reg.Counter("sortinghatgw_hedged_requests_total", "Speculative sub-requests fired after the hedge delay.")
	reg.CounterFunc("sortinghatgw_retry_budget_denied_total", "Speculative attempts (hedges and failover retries) denied by the retry budget.", g.budget.Denied)
	reg.GaugeFunc("sortinghatgw_retry_budget_tokens", "Tokens currently in the retry-budget bucket.", g.budget.Tokens)
	m.backoffArmed = reg.Counter("sortinghatgw_backoff_armed_total", "Times a replica's backoff was armed by a shedding (429/503) answer.")
	m.rerouted = reg.Counter("sortinghatgw_rerouted_columns_total", "Columns answered by a replica other than their ring owner.")
	m.degraded = reg.Counter("sortinghatgw_degraded_columns_total", "Degraded columns in gateway responses (replica fallback or local rules).")
	m.fallbackColumns = reg.Counter("sortinghatgw_fallback_columns_total", "Columns answered by the gateway's local rule fallback (fleet unreachable).")
	reg.CounterFunc("sortinghatgw_shed_total", "Requests fast-failed by the admission gate (HTTP 429).", g.gate.Shed)
	reg.GaugeFunc("sortinghatgw_queue_depth", "Columns admitted and not yet answered.", func() float64 { return float64(g.gate.Depth()) })
	reg.GaugeFunc("sortinghatgw_queue_high_water", "Admission-gate high-water mark in columns.", func() float64 { return float64(g.gate.Capacity()) })
	reg.GaugeFunc("sortinghatgw_replicas", "Replicas on the ring.", func() float64 { return float64(len(g.replicas)) })
	reg.GaugeFunc("sortinghatgw_replicas_healthy", "Replicas currently routing normally (probe ok, breaker closed).", func() float64 { return float64(g.healthyCount()) })
	m.probeFailures = reg.Counter("sortinghatgw_probe_failures_total", "Health probes that failed (transport error, non-200, or bad body).")
	m.probeTransitions = reg.Counter("sortinghatgw_probe_transitions_total", "Replica health state changes observed by the prober.")
	reg.CounterFunc("sortinghatgw_faults_injected_total", "Faults fired by the injector (-fault-spec; 0 in production).", g.faultsFired)
	reg.GaugeFunc("sortinghatgw_uptime_seconds", "Seconds since the gateway started.", func() float64 { return time.Since(g.start).Seconds() })
	for i, r := range g.replicas {
		i, r := i, r
		reg.GaugeFunc("sortinghatgw_replica_"+r.label+"_health", "Probe state of "+r.addr+" (0 healthy, 1 degraded, 2 down).", func() float64 { return float64(r.health.Load()) })
		reg.GaugeFunc("sortinghatgw_replica_"+r.label+"_breaker_state", "Forwarding breaker state for "+r.addr+" (0 closed, 1 open, 2 half-open).", func() float64 { return float64(r.breaker.State()) })
		reg.CounterFunc("sortinghatgw_replica_"+r.label+"_requests_total", "Sub-requests forwarded to "+r.addr+".", r.requests.Load)
		reg.CounterFunc("sortinghatgw_replica_"+r.label+"_errors_total", "Failed sub-requests to "+r.addr+".", r.errors.Load)
		reg.GaugeFunc("sortinghatgw_replica_"+r.label+"_ownership", "Ring ownership share of "+r.addr+".", func() float64 { return g.owned[i] })
		reg.GaugeFunc("sortinghatgw_replica_"+r.label+"_concurrency_limit", "Adaptive (AIMD) concurrency limit on forwards to "+r.addr+".", func() float64 { return float64(r.limiter.Limit()) })
		reg.GaugeFunc("sortinghatgw_replica_"+r.label+"_inflight", "Sub-requests currently in flight to "+r.addr+".", func() float64 { return float64(r.limiter.Inflight()) })
		reg.GaugeFunc("sortinghatgw_replica_"+r.label+"_in_backoff", "Whether "+r.addr+" is inside its backoff window (1 = yes).", func() float64 {
			if r.backoff.Ready() {
				return 0
			}
			return 1
		})
	}
	m.batchSize = reg.Summary("sortinghatgw_batch_columns", "Columns per gateway request.")
	m.shardLatency = reg.Histogram("sortinghatgw_shard_seconds", "Per-sub-request forwarding latency.")
	m.dispatchDur = reg.Histogram("sortinghatgw_dispatch_seconds", "Scatter-phase latency: dispatch of the first group until every group resolved.")
	m.hedgeDur = reg.Histogram("sortinghatgw_hedge_seconds", "Hedge-phase latency of hedged groups: first speculative fire until resolution.")
	m.reassembleDur = reg.Histogram("sortinghatgw_reassemble_seconds", "Gather-phase latency: slot-ordered reassembly of the batch response.")
	m.request = reg.Histogram("sortinghatgw_request_seconds", "End-to-end gateway request latency.")
	reg.RuntimeMetrics("sortinghatgw")
	return m
}
