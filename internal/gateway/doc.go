// Package gateway is the scale-out tier in front of a fleet of
// sortinghatd replicas: one process (cmd/sortinghatgw) that accepts the
// same /v1/infer and /v1/infer/csv batches as a single daemon, shards
// each batch across the fleet, and reassembles the answers in request
// order.
//
// # Routing
//
// Every column is routed by content, not by connection: the gateway
// computes the same 128-bit FNV-1a content hash the daemon uses for its
// prediction cache key (serve.ColumnHash), takes the first 8 bytes as a
// ring key, and looks the owner up on a consistent-hash ring of replica
// addresses (Ring). Identical columns therefore always land on the same
// replica, so each replica's prediction cache holds a disjoint shard of
// the column space and fleet-wide cache capacity scales with replica
// count instead of duplicating entries everywhere.
//
// # Health and failover
//
// A background prober polls every replica's /healthz. Replicas reporting
// "degraded" (their prediction breaker is open and they answer from the
// rule fallback) are deprioritized; replicas that fail the probe are
// routed around entirely. Each replica also has a local circuit breaker
// fed by forwarding outcomes, so a replica that probes healthy but fails
// requests is tripped out of rotation between probes. Candidate order
// for a column group is: the ring owner first, then the remaining
// replicas in ring order, stably bucketed healthy < degraded < down.
//
// Forwarding a group works through that candidate list with a merged
// hedge/failover loop: the first candidate is fired immediately, a hedge
// fires the next candidate if no answer arrives within the hedge delay,
// and an error fires the next candidate at once. The first success wins
// and cancels the rest. If every candidate is down or fails, the gateway
// answers the group locally from the paper's rule-based baseline
// (resilience/rulefallback), tagged degraded — the fleet's last resort
// mirrors the daemon's.
//
// # Model versions
//
// Replicas may serve different model versions mid-rollout (see the
// daemon's POST /admin/reload). The gateway surfaces this instead of
// hiding it: the batch response counts columns per model version, so a
// canary's share of traffic is visible per response, and /healthz lists
// every replica's health, breaker state, and ring ownership share.
package gateway
