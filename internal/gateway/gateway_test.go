package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sortinghat/internal/core"
	"sortinghat/internal/data"
	"sortinghat/internal/resilience"
	"sortinghat/internal/serve"
	"sortinghat/internal/synth"
)

// testPipeline trains one small Random Forest per test binary; every
// replica in every test shares it read-only.
var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeErr  error
)

func testModel(t testing.TB) *core.Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		cfg := synth.DefaultCorpusConfig()
		cfg.N = 400
		opts := core.DefaultOptions()
		opts.RFTrees, opts.RFDepth = 10, 15
		pipe, pipeErr = core.Train(synth.GenerateCorpus(cfg), opts)
	})
	if pipeErr != nil {
		t.Fatalf("training test model: %v", pipeErr)
	}
	return pipe
}

// fleetReplica is one live sortinghatd replica for a gateway test: the
// serving core plus its HTTP listener.
type fleetReplica struct {
	srv  *serve.Server
	http *httptest.Server
}

// startFleet boots n replicas of the shared test model. middleware, when
// non-nil, wraps each replica's handler (indexed by boot order) — the
// hook tests use to slow down or sabotage one replica.
func startFleet(t testing.TB, n int, middleware func(i int, h http.Handler) http.Handler) ([]*fleetReplica, []string) {
	t.Helper()
	fleet := make([]*fleetReplica, n)
	addrs := make([]string, n)
	for i := range fleet {
		s := serve.New(testModel(t), serve.Config{Workers: 2, CacheSize: 1024, ModelVersion: fmt.Sprintf("m%d", i)})
		h := http.Handler(s.Handler())
		if middleware != nil {
			h = middleware(i, h)
		}
		ts := httptest.NewServer(h)
		fleet[i] = &fleetReplica{srv: s, http: ts}
		addrs[i] = ts.URL
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
	}
	return fleet, addrs
}

// newTestGateway builds a gateway over addrs with test-friendly
// defaults; tweak overrides cfg before construction.
func newTestGateway(t testing.TB, addrs []string, tweak func(*Config)) *Gateway {
	t.Helper()
	cfg := Config{
		Replicas:      addrs,
		ProbeInterval: time.Hour, // one startup sweep, then quiet
		Hedge:         -1,        // hedging off unless a test opts in
	}
	if tweak != nil {
		tweak(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// replicaByAddr maps a fleet back to ring labels: index i of the sorted
// address list is label "ri".
func replicaByAddr(g *Gateway, addr string) int {
	for i, a := range g.ring.Replicas() {
		if a == addr {
			return i
		}
	}
	return -1
}

// testBatch builds an n-column batch of deterministic synthetic columns
// (mirrors the serve package's fixture so predictions are comparable).
func testBatch(n int) serve.InferRequest {
	req := serve.InferRequest{Columns: make([]serve.InferColumn, n)}
	for i := range req.Columns {
		vals := make([]string, 48)
		for j := range vals {
			switch i % 3 {
			case 0:
				vals[j] = fmt.Sprintf("%d.%02d", j*7+i, j%100)
			case 1:
				vals[j] = fmt.Sprintf("cat_%d", j%5)
			default:
				vals[j] = fmt.Sprintf("2021-0%d-1%d", j%9+1, j%9)
			}
		}
		req.Columns[i] = serve.InferColumn{Name: fmt.Sprintf("col_%d", i), Values: vals}
	}
	return req
}

// postBatch drives POST /v1/infer through the gateway handler.
func postBatch(t *testing.T, h http.Handler, req serve.InferRequest) (*httptest.ResponseRecorder, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body)))
	var resp BatchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding response: %v\nbody: %s", err, rec.Body.Bytes())
		}
	}
	return rec, resp
}

// requireOrdered asserts the response's predictions are index-aligned
// with the request regardless of sharding.
func requireOrdered(t *testing.T, req serve.InferRequest, resp BatchResponse) {
	t.Helper()
	if len(resp.Predictions) != len(req.Columns) {
		t.Fatalf("%d predictions for %d columns", len(resp.Predictions), len(req.Columns))
	}
	for i, p := range resp.Predictions {
		if p.Name != req.Columns[i].Name {
			t.Fatalf("prediction %d is %q, want %q — response order must match request order", i, p.Name, req.Columns[i].Name)
		}
		if p.Type == "" {
			t.Fatalf("prediction %d (%s) has no type", i, p.Name)
		}
	}
}

// TestGatewayShardsAndReassembles is the tentpole contract end to end:
// a batch sharded across two replicas comes back complete, in request
// order, with every column's answer identical to what a lone daemon
// over the same model would say, and the per-replica caches hold
// disjoint shards of the batch.
func TestGatewayShardsAndReassembles(t *testing.T) {
	fleet, addrs := startFleet(t, 2, nil)
	g := newTestGateway(t, addrs, nil)
	h := g.Handler()

	req := testBatch(24)
	rec, resp := postBatch(t, h, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	requireOrdered(t, req, resp)
	if resp.Shards != 2 {
		t.Errorf("batch used %d shards, want 2 (both replicas should own columns)", resp.Shards)
	}
	if resp.ReroutedColumns != 0 || resp.DegradedColumns != 0 {
		t.Errorf("healthy fleet rerouted %d / degraded %d columns, want 0/0", resp.ReroutedColumns, resp.DegradedColumns)
	}

	// Same model everywhere: the fleet's answers must match a lone daemon.
	lone := serve.New(testModel(t), serve.Config{Workers: 2, CacheSize: -1})
	defer lone.Close()
	loneRec := httptest.NewRecorder()
	body, _ := json.Marshal(req)
	lone.Handler().ServeHTTP(loneRec, httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body)))
	var loneResp serve.InferResponse
	if err := json.Unmarshal(loneRec.Body.Bytes(), &loneResp); err != nil {
		t.Fatal(err)
	}
	for i := range resp.Predictions {
		if resp.Predictions[i].Type != loneResp.Predictions[i].Type {
			t.Errorf("column %s: gateway says %s, lone daemon says %s", req.Columns[i].Name, resp.Predictions[i].Type, loneResp.Predictions[i].Type)
		}
	}

	// Disjoint caches: every column is cached on exactly one replica.
	entries := 0
	for _, r := range fleet {
		n := cacheEntries(t, r.http.URL)
		if n == 0 {
			t.Errorf("replica %s cached nothing — sharding sent it no columns", r.http.URL)
		}
		entries += n
	}
	if entries != len(req.Columns) {
		t.Errorf("fleet caches hold %d entries for %d distinct columns — shards overlap or columns were dropped", entries, len(req.Columns))
	}

	// A repeat batch is answered entirely from the fleet's caches.
	if _, again := postBatch(t, h, req); again.CacheHits != len(req.Columns) {
		t.Errorf("repeat batch: %d cache hits, want %d", again.CacheHits, len(req.Columns))
	}
}

// cacheEntries reads one replica's cache size off its /healthz.
func cacheEntries(t *testing.T, addr string) int {
	t.Helper()
	resp, err := http.Get(addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.CacheEntries
}

// TestGatewayRoutingMatchesColumnHash pins the routing rule itself:
// every column lands on the replica the ring names for its content
// hash (checked via each replica's request counters: only owners get
// traffic).
func TestGatewayRoutingMatchesColumnHash(t *testing.T) {
	_, addrs := startFleet(t, 3, nil)
	g := newTestGateway(t, addrs, nil)
	h := g.Handler()

	req := testBatch(30)
	if rec, _ := postBatch(t, h, req); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	// Rebuild the expected groups from the exported hash + ring.
	wantGroups := map[int]int{}
	for i := range req.Columns {
		col := toColumn(req.Columns[i])
		wantGroups[g.ring.Owner(ringKey(&col))]++
	}
	for i, r := range g.replicas {
		wantReqs := int64(0)
		if wantGroups[i] > 0 {
			wantReqs = 1
		}
		if got := r.requests.Load(); got != wantReqs {
			t.Errorf("replica %s received %d sub-requests, want %d (owns %d columns)", r.label, got, wantReqs, wantGroups[i])
		}
	}
}

// TestGatewayVersionSkewVisible runs a fleet whose replicas serve
// different model versions (a canary rollout mid-flight) and checks the
// response accounts for every column's answering version.
func TestGatewayVersionSkewVisible(t *testing.T) {
	_, addrs := startFleet(t, 2, nil) // replica i serves version "mi"
	g := newTestGateway(t, addrs, nil)

	req := testBatch(24)
	rec, resp := postBatch(t, g.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	total := 0
	for v, n := range resp.ModelVersions {
		if v != "m0" && v != "m1" {
			t.Errorf("unexpected model version %q in response", v)
		}
		total += n
	}
	if total != len(req.Columns) {
		t.Errorf("model_versions accounts for %d of %d columns", total, len(req.Columns))
	}
	if len(resp.ModelVersions) != 2 {
		t.Errorf("saw versions %v, want both m0 and m1 (both replicas own columns)", resp.ModelVersions)
	}
}

// TestGatewayHedgesSlowShard wraps one replica in a delay longer than
// the hedge deadline and checks the gateway speculatively asks another
// replica instead of waiting: the batch completes fast, a hedge is
// counted, and the slow replica's columns are answered off-owner.
func TestGatewayHedgesSlowShard(t *testing.T) {
	const slowDelay = 2 * time.Second
	var slowAddr string
	fleet, addrs := startFleet(t, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/infer" {
				time.Sleep(slowDelay)
			}
			h.ServeHTTP(w, r)
		})
	})
	slowAddr = fleet[0].http.URL
	g := newTestGateway(t, addrs, func(c *Config) { c.Hedge = 50 * time.Millisecond })

	req := testBatch(24)
	start := time.Now()
	rec, resp := postBatch(t, g.Handler(), req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	requireOrdered(t, req, resp)
	if elapsed >= slowDelay {
		t.Errorf("batch took %v — the hedge should beat the %v slow shard", elapsed, slowDelay)
	}
	if resp.HedgedRequests == 0 {
		t.Error("no hedged requests counted")
	}
	slow := replicaByAddr(g, slowAddr)
	if slow < 0 {
		t.Fatal("slow replica not on ring")
	}
	if resp.ReroutedColumns == 0 {
		t.Error("hedge won but no columns counted as rerouted")
	}
	if resp.DegradedColumns != 0 {
		t.Errorf("%d degraded columns on a healthy (if slow) fleet", resp.DegradedColumns)
	}
}

// TestGatewayFallbackWhenFleetDead kills every replica and checks the
// gateway still answers the full batch from its local rule fallback:
// complete, ordered, every column tagged degraded.
func TestGatewayFallbackWhenFleetDead(t *testing.T) {
	fleet, addrs := startFleet(t, 2, nil)
	g := newTestGateway(t, addrs, func(c *Config) {
		c.Breaker = resilience.BreakerConfig{FailureThreshold: 100} // keep trying, keep failing
	})
	for _, r := range fleet {
		r.http.Close()
	}

	req := testBatch(12)
	rec, resp := postBatch(t, g.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	requireOrdered(t, req, resp)
	if resp.DegradedColumns != len(req.Columns) {
		t.Errorf("%d degraded columns, want all %d", resp.DegradedColumns, len(req.Columns))
	}
	if resp.Model != "rules" {
		t.Errorf("model = %q, want rules (local fallback)", resp.Model)
	}
	if n := resp.ModelVersions["fallback"]; n != len(req.Columns) {
		t.Errorf("fallback version answered %d columns, want %d", n, len(req.Columns))
	}
	if got := g.met.fallbackColumns.Load(); got != int64(len(req.Columns)) {
		t.Errorf("fallback_columns_total = %d, want %d", got, len(req.Columns))
	}
}

// toColumn converts a wire column to the routing form.
func toColumn(c serve.InferColumn) data.Column {
	return data.Column{Name: c.Name, Values: c.Values}
}
