package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sortinghat/internal/data"
	"sortinghat/internal/resilience"
	"sortinghat/internal/resilience/faultinject"
	"sortinghat/internal/serve"
)

// metricValue scrapes a handler's /metrics and returns the named
// series' value.
func metricValue(t *testing.T, h http.Handler, name string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestChaosBrownoutBoundedAmplification is the overload acceptance
// drill: one of three replicas browns out — single worker, a 120ms
// injected featurize latency per column (the latency:<duration> fault
// shorthand), and a 250ms server-side timeout — while the gateway runs
// with a small fixed retry budget and no hedging. Ten batches through
// the brownout must show:
//
//   - every batch answers 200, complete and in request order (failover
//     while the budget lasts, rule fallback after);
//   - retry amplification is bounded: total shard legs never exceed the
//     initial per-group legs plus the budget burst, and the budget
//     visibly denies attempts once spent;
//   - the slow replica drops expired columns at worker pickup without
//     featurizing them: its columns_total is exactly the featurize
//     fault fires plus deadline_expired_in_queue_total.
func TestChaosBrownoutBoundedAmplification(t *testing.T) {
	model := testModel(t)
	slowInj, err := faultinject.Parse("featurize:latency:120ms", 11)
	if err != nil {
		t.Fatal(err)
	}
	var (
		addrs    []string
		slowAddr string
		slowSrv  *serve.Server
	)
	for i := 0; i < 3; i++ {
		cfg := serve.Config{Workers: 2, CacheSize: 1024, ModelVersion: fmt.Sprintf("m%d", i)}
		if i == 0 {
			// The brownout victim: one worker, uncached, every featurize
			// slowed 120ms, and a request deadline short enough that most of
			// a queued shard expires before pickup.
			cfg = serve.Config{
				Workers:      1,
				CacheSize:    -1,
				Timeout:      250 * time.Millisecond,
				ModelVersion: "slow",
				Faults:       slowInj,
			}
		}
		s := serve.New(model, cfg)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
		addrs = append(addrs, ts.URL)
		if i == 0 {
			slowAddr, slowSrv = ts.URL, s
		}
	}

	const burst = 6
	g := newTestGateway(t, addrs, func(c *Config) {
		c.Timeout = 5 * time.Second
		// A fixed-size budget: starts at burst, refills ~never, so the
		// drill's speculative legs are bounded by exactly burst tokens.
		c.RetryBudget = resilience.RetryBudgetConfig{Burst: burst, Ratio: 1e-9, MinPerSec: -1}
		// Keep the slow replica's breaker closed for all ten batches so the
		// budget — not the breaker — is what bounds the retries.
		c.Breaker = resilience.BreakerConfig{FailureThreshold: 100}
	})

	req := testBatch(24)
	cols := make([]data.Column, len(req.Columns))
	for i := range req.Columns {
		cols[i] = toColumn(req.Columns[i])
	}
	slow := replicaByAddr(g, slowAddr)
	slowShard := 0
	for i := range cols {
		if g.ring.Owner(ringKey(&cols[i])) == slow {
			slowShard++
		}
	}
	if slowShard < 5 {
		t.Fatalf("fixture batch gives the slow replica only %d columns; too few to expire any in queue", slowShard)
	}
	ngroups := len(g.shardGroups(cols))

	const batches = 10
	for b := 0; b < batches; b++ {
		rec, resp := postBatch(t, g.Handler(), req)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch %d: status %d: %s", b, rec.Code, rec.Body.Bytes())
		}
		requireOrdered(t, req, resp)
	}

	// Bounded amplification: ten batches fire ngroups initial legs each;
	// every extra leg drew one of the burst tokens.
	maxLegs := int64(batches*ngroups + burst)
	if legs := g.met.shardRequests.Load(); legs > maxLegs {
		t.Errorf("%d shard legs for %d batches of %d groups — retry amplification beyond the budget's bound of %d", legs, batches, ngroups, maxLegs)
	}
	if denied := metricValue(t, g.Handler(), "sortinghatgw_retry_budget_denied_total"); denied == 0 {
		t.Error("the retry budget never denied an attempt — the drill did not exhaust it")
	}

	// Cooperative shedding on the victim: every admitted column was either
	// featurized exactly once (the fault fires per featurize) or dropped at
	// pickup after its deadline expired in queue — never both, never
	// neither. Workers drain the abandoned queue asynchronously, so poll.
	slowH := slowSrv.Handler()
	deadline := time.Now().Add(5 * time.Second)
	for {
		columns := metricValue(t, slowH, "sortinghatd_columns_total")
		faults := metricValue(t, slowH, "sortinghatd_faults_injected_total")
		expired := metricValue(t, slowH, "sortinghatd_deadline_expired_in_queue_total")
		if columns == faults+expired {
			if expired == 0 {
				t.Error("no column expired in queue on the brownout replica")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow replica never drained: columns_total=%v, faults_injected_total=%v, deadline_expired_in_queue_total=%v", columns, faults, expired)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRetryStormBounded is the retry-storm regression: every replica
// answers 500 to every forward, hedging is on, and the retry budget
// holds two tokens. However hard the dispatch loop wants to retry, the
// fleet must see at most initial-legs + burst sub-requests, the budget
// must record denials, and the batch still completes from the rule
// fallback. Every leg that did go out must carry the request's
// remaining budget in X-Deadline-Ms.
func TestRetryStormBounded(t *testing.T) {
	var (
		mu        sync.Mutex
		deadlines []string
	)
	addrs := make([]string, 3)
	for i := range addrs {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/infer" {
				mu.Lock()
				deadlines = append(deadlines, r.Header.Get(serve.DeadlineHeader))
				mu.Unlock()
			}
			http.Error(w, "boom", http.StatusInternalServerError)
		}))
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}

	const burst = 2
	const timeout = time.Second
	g := newTestGateway(t, addrs, func(c *Config) {
		c.Hedge = 5 * time.Millisecond
		c.Timeout = timeout
		c.RetryBudget = resilience.RetryBudgetConfig{Burst: burst, Ratio: -1, MinPerSec: -1}
		c.Breaker = resilience.BreakerConfig{FailureThreshold: 100}
	})

	req := testBatch(12)
	cols := make([]data.Column, len(req.Columns))
	for i := range req.Columns {
		cols[i] = toColumn(req.Columns[i])
	}
	ngroups := len(g.shardGroups(cols))

	rec, resp := postBatch(t, g.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	requireOrdered(t, req, resp)
	if resp.DegradedColumns != len(req.Columns) {
		t.Errorf("%d degraded columns, want all %d — a dead fleet answers from the rule fallback", resp.DegradedColumns, len(req.Columns))
	}

	if legs := g.met.shardRequests.Load(); legs > int64(ngroups+burst) {
		t.Errorf("%d shard legs for %d groups with a budget of %d — the retry storm was not bounded", legs, ngroups, burst)
	}
	if denied := metricValue(t, g.Handler(), "sortinghatgw_retry_budget_denied_total"); denied == 0 {
		t.Error("the retry budget never denied an attempt — the storm did not exhaust it")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(deadlines) == 0 {
		t.Fatal("no forward reached a replica")
	}
	for i, d := range deadlines {
		ms, err := strconv.ParseInt(d, 10, 64)
		if err != nil {
			t.Fatalf("leg %d: X-Deadline-Ms %q is not an integer: %v", i, d, err)
		}
		if ms <= 0 || ms > timeout.Milliseconds() {
			t.Errorf("leg %d: X-Deadline-Ms = %d, want within (0, %d]", i, ms, timeout.Milliseconds())
		}
	}
}

// TestBackoffHonorsRetryAfter drives the cooperative-shedding loop end
// to end on a fake clock: a replica answers one 429 with Retry-After: 2,
// and the gateway must arm that replica's backoff with the hint, route
// around it (rule fallback — there is only one replica) until the fake
// clock passes the window, then resume forwarding.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/infer" {
			http.Error(w, "no probes here", http.StatusNotFound)
			return
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		var req serve.InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := serve.InferResponse{Model: "stub", ModelVersion: "s1"}
		for _, c := range req.Columns {
			resp.Predictions = append(resp.Predictions, serve.InferPrediction{Name: c.Name, Type: "numeric"})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(ts.Close)

	clk := resilience.NewFakeClock(time.Unix(0, 0))
	g := newTestGateway(t, []string{ts.URL}, func(c *Config) {
		c.Backoff = resilience.BackoffConfig{Clock: clk}
		c.Breaker = resilience.BreakerConfig{FailureThreshold: 100}
	})

	req := testBatch(3)

	// Batch 1: the 429 arms the backoff with the replica's own hint and
	// the batch degrades to the local rule fallback.
	rec, resp := postBatch(t, g.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch 1: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if resp.DegradedColumns != len(req.Columns) {
		t.Errorf("batch 1: %d degraded columns, want all %d", resp.DegradedColumns, len(req.Columns))
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("batch 1: replica saw %d forwards, want 1", got)
	}
	if got := metricValue(t, g.Handler(), "sortinghatgw_backoff_armed_total"); got != 1 {
		t.Errorf("backoff_armed_total = %v, want 1", got)
	}
	if got := metricValue(t, g.Handler(), "sortinghatgw_replica_r0_in_backoff"); got != 1 {
		t.Errorf("replica_r0_in_backoff = %v, want 1 while the window is open", got)
	}

	// Batch 2: still inside the 2s window — the gateway must not send the
	// replica anything.
	rec, resp = postBatch(t, g.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch 2: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if resp.DegradedColumns != len(req.Columns) {
		t.Errorf("batch 2: %d degraded columns, want all %d", resp.DegradedColumns, len(req.Columns))
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("batch 2: replica saw %d forwards during its backoff window, want still 1", got)
	}

	// Past the window the replica serves again, undegraded.
	clk.Advance(3 * time.Second)
	if got := metricValue(t, g.Handler(), "sortinghatgw_replica_r0_in_backoff"); got != 0 {
		t.Errorf("replica_r0_in_backoff = %v after the window passed, want 0", got)
	}
	rec, resp = postBatch(t, g.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch 3: status %d: %s", rec.Code, rec.Body.Bytes())
	}
	requireOrdered(t, req, resp)
	if resp.DegradedColumns != 0 {
		t.Errorf("batch 3: %d degraded columns after the backoff expired, want 0", resp.DegradedColumns)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("batch 3: replica saw %d total forwards, want 2", got)
	}
}

// TestFleetSoak is the long-running overload soak behind `make soak`:
// a three-replica fleet with a mild injected featurize latency, several
// concurrent clients, and one replica killed mid-run. Every response
// must be either a complete, ordered 200 or an accounted overload
// answer (429/503/504) — nothing else, for the whole soak window.
func TestFleetSoak(t *testing.T) {
	if os.Getenv("SOAK") == "" {
		t.Skip("soak drill: run via `make soak` (SOAK=1), optionally with SOAK_DURATION")
	}
	dur := 15 * time.Second
	if d, err := time.ParseDuration(os.Getenv("SOAK_DURATION")); err == nil && d > 0 {
		dur = d
	}

	model := testModel(t)
	fleet := make([]*httptest.Server, 3)
	addrs := make([]string, 3)
	for i := range fleet {
		inj, err := faultinject.Parse("featurize:latency:2ms", int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		s := serve.New(model, serve.Config{
			Workers:      2,
			CacheSize:    -1, // every column pays the injected latency
			ModelVersion: fmt.Sprintf("m%d", i),
			Faults:       inj,
		})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
		fleet[i], addrs[i] = ts, ts.URL
	}
	g := newTestGateway(t, addrs, func(c *Config) {
		c.Hedge = 25 * time.Millisecond
		c.Timeout = 2 * time.Second
		c.ProbeInterval = 500 * time.Millisecond
	})
	h := g.Handler()

	var ok, shed, timeouts atomic.Int64
	errs := make(chan string, 16)
	stop := time.Now().Add(dur)
	time.AfterFunc(dur/2, func() {
		// The mid-soak kill: cut the third replica's connections and close
		// it for good. The fleet must keep answering.
		fleet[2].CloseClientConnections()
		fleet[2].Close()
	})

	req := testBatch(16)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/infer", strings.NewReader(string(body))))
				switch rec.Code {
				case http.StatusOK:
					var resp BatchResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						select {
						case errs <- fmt.Sprintf("bad 200 body: %v", err):
						default:
						}
						return
					}
					if len(resp.Predictions) != len(req.Columns) {
						select {
						case errs <- fmt.Sprintf("200 with %d predictions for %d columns", len(resp.Predictions), len(req.Columns)):
						default:
						}
						return
					}
					for i, p := range resp.Predictions {
						if p.Name != req.Columns[i].Name || p.Type == "" {
							select {
							case errs <- fmt.Sprintf("200 out of order at %d: got %q", i, p.Name):
							default:
							}
							return
						}
					}
					ok.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed.Add(1)
				case http.StatusGatewayTimeout:
					timeouts.Add(1)
				default:
					select {
					case errs <- fmt.Sprintf("unaccounted status %d: %s", rec.Code, rec.Body.Bytes()):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if ok.Load() == 0 {
		t.Fatal("soak produced no successful batches")
	}
	t.Logf("soak %v: %d ok, %d shed, %d timeouts; budget denied %v, shard legs %d",
		dur, ok.Load(), shed.Load(), timeouts.Load(),
		metricValue(t, h, "sortinghatgw_retry_budget_denied_total"),
		g.met.shardRequests.Load())
}
