package gateway

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"
)

// churnKeys is the fixed key population the churn and stability tests
// route: a deterministic spread over the 64-bit circle.
func churnKeys(n int) []uint64 {
	keys := make([]uint64, n)
	var x uint64 = 0x9e3779b97f4a7c15
	for i := range keys {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		keys[i] = x
	}
	return keys
}

// TestRingDeterministic pins that ownership is a pure function of the
// replica set: shuffled and duplicated address lists build the same
// ring, and the full ownership assignment of a fixed key population
// hashes to a pinned value — the ring layout is part of the fleet
// contract (changing it reshuffles every deployment's caches on
// upgrade).
func TestRingDeterministic(t *testing.T) {
	base := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	perms := [][]string{
		{"http://a:8080", "http://b:8080", "http://c:8080"},
		{"http://c:8080", "http://a:8080", "http://b:8080"},
		{"http://b:8080", "http://c:8080", "http://a:8080", "http://a:8080", "http://b:8080"},
	}
	keys := churnKeys(4096)

	want, err := NewRing(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%d:%d;", k, want.Owner(k))
	}
	const pinned = "0a4523dbb60202f6"
	if got := fmt.Sprintf("%016x", h.Sum64()); got != pinned {
		t.Errorf("ownership fingerprint = %s, want pinned %s — the ring layout drifted, which reshuffles every fleet's shards on upgrade", got, pinned)
	}

	for _, p := range perms {
		r, err := NewRing(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		if got, wantLen := len(r.Replicas()), len(base); got != wantLen {
			t.Fatalf("permutation %v: %d replicas after dedup, want %d", p, got, wantLen)
		}
		for _, k := range keys {
			if r.Owner(k) != want.Owner(k) {
				t.Fatalf("permutation %v: key %d owned by %d, want %d", p, k, r.Owner(k), want.Owner(k))
			}
		}
	}
}

// TestRingChurnBounded pins consistent hashing's whole point, strictly:
// removing a replica moves exactly the keys it owned (no other key
// changes owner), and adding a replica moves keys only onto the
// newcomer. The moved fraction must also stay near the ideal 1/n share.
func TestRingChurnBounded(t *testing.T) {
	addrs := []string{"http://a:8080", "http://b:8080", "http://c:8080", "http://d:8080"}
	keys := churnKeys(20000)

	three, err := NewRing(addrs[:3], 64)
	if err != nil {
		t.Fatal(err)
	}
	four, err := NewRing(addrs, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Replica indices are positions in the sorted address list, so
	// a/b/c keep indices 0/1/2 in both rings and d is 3.
	moved := 0
	for _, k := range keys {
		before, after := three.Owner(k), four.Owner(k)
		if before != after {
			if after != 3 {
				t.Fatalf("key %d moved from replica %d to %d when only %s was added", k, before, after, addrs[3])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("adding a replica moved no keys")
	}
	frac, ideal := float64(moved)/float64(len(keys)), 1.0/4
	if math.Abs(frac-ideal) > 0.12 {
		t.Errorf("adding a replica moved %.1f%% of keys, want near %.1f%%", frac*100, ideal*100)
	}

	// Removing is the same comparison read backwards: keys owned by d
	// must all move (d is gone), everyone else's keys must not.
	for _, k := range keys {
		if four.Owner(k) != 3 && three.Owner(k) != four.Owner(k) {
			t.Fatalf("key %d changed owner (%d -> %d) when only %s was removed", k, four.Owner(k), three.Owner(k), addrs[3])
		}
	}
}

// TestRingSuccessors checks the failover order: it starts at the owner,
// lists distinct replicas, and clamps to the fleet size.
func TestRingSuccessors(t *testing.T) {
	r, err := NewRing([]string{"http://a:8080", "http://b:8080", "http://c:8080"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range churnKeys(64) {
		succ := r.Successors(k, 5)
		if len(succ) != 3 {
			t.Fatalf("key %d: %d successors, want 3 (clamped)", k, len(succ))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("key %d: first successor %d != owner %d", k, succ[0], r.Owner(k))
		}
		seen := map[int]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %d: duplicate successor %d", k, s)
			}
			seen[s] = true
		}
	}
}

// TestRingOwnership checks the exact arc shares: they sum to ~1 and
// agree with empirically routed traffic.
func TestRingOwnership(t *testing.T) {
	r, err := NewRing([]string{"http://a:8080", "http://b:8080", "http://c:8080"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Ownership()
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ownership shares sum to %g, want 1", sum)
	}
	keys := churnKeys(50000)
	counts := make([]float64, 3)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for i, s := range shares {
		emp := counts[i] / float64(len(keys))
		if math.Abs(emp-s) > 0.02 {
			t.Errorf("replica %d: empirical share %.3f vs arc share %.3f", i, emp, s)
		}
	}
}

// TestNewRingRejects pins the constructor's error surface.
func TestNewRingRejects(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := NewRing([]string{"http://a:8080", ""}, 64); err == nil {
		t.Error("empty replica address accepted")
	}
}
