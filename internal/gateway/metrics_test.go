package gateway

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"
)

// uptimeLine strips the one wall-clock-dependent value from a scrape.
var uptimeLine = regexp.MustCompile(`sortinghatgw_uptime_seconds [0-9.e+-]+`)

// scrapeMetrics fetches /metrics through the handler.
func scrapeMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	return uptimeLine.ReplaceAllString(rec.Body.String(), "sortinghatgw_uptime_seconds X")
}

// TestGatewayMetricsRenderPinned is the gateway's monitoring contract:
// the full /metrics document of a fresh two-replica gateway, byte for
// byte — names, help strings, type headers, registration order, and the
// per-replica blocks in ring order. The fixture uses unreachable
// replicas and stops the prober after its startup sweep, so every value
// is deterministic: both replicas probed Down once each.
func TestGatewayMetricsRenderPinned(t *testing.T) {
	// 127.0.0.1:1 refuses connections immediately; addresses sort so a < b
	// and ring labels are r0, r1.
	addrA, addrB := "http://127.0.0.1:1/a", "http://127.0.0.1:1/b"
	g, err := New(Config{Replicas: []string{addrA, addrB}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	g.Close() // deterministic: exactly the startup probe sweep has run
	h := g.Handler()

	emptySummary := func(name, help string) string {
		return "# HELP " + name + " " + help + "\n" +
			"# TYPE " + name + " summary\n" +
			name + `{quantile="0.5"} 0` + "\n" +
			name + `{quantile="0.9"} 0` + "\n" +
			name + `{quantile="0.99"} 0` + "\n" +
			name + "_sum 0\n" +
			name + "_count 0\n"
	}
	counter := func(name, help string, v int64) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	replicaBlock := func(label, addr string, ownership float64) string {
		return gauge("sortinghatgw_replica_"+label+"_health", "Probe state of "+addr+" (0 healthy, 1 degraded, 2 down).", 2) +
			gauge("sortinghatgw_replica_"+label+"_breaker_state", "Forwarding breaker state for "+addr+" (0 closed, 1 open, 2 half-open).", 0) +
			counter("sortinghatgw_replica_"+label+"_requests_total", "Sub-requests forwarded to "+addr+".", 0) +
			counter("sortinghatgw_replica_"+label+"_errors_total", "Failed sub-requests to "+addr+".", 0) +
			gauge("sortinghatgw_replica_"+label+"_ownership", "Ring ownership share of "+addr+".", ownership)
	}
	want := counter("sortinghatgw_requests_total", "Completed gateway /v1/infer requests.", 0) +
		counter("sortinghatgw_request_errors_total", "Rejected gateway requests (malformed or oversized batches).", 0) +
		counter("sortinghatgw_request_timeouts_total", "Gateway requests that exceeded their deadline.", 0) +
		gauge("sortinghatgw_inflight_requests", "Requests currently being served.", 0) +
		counter("sortinghatgw_columns_total", "Columns received across all accepted batches.", 0) +
		counter("sortinghatgw_shard_requests_total", "Sub-requests forwarded to replicas (including hedges and retries).", 0) +
		counter("sortinghatgw_shard_errors_total", "Forwarded sub-requests that failed (transport error or non-200).", 0) +
		counter("sortinghatgw_hedged_requests_total", "Speculative sub-requests fired after the hedge delay.", 0) +
		counter("sortinghatgw_rerouted_columns_total", "Columns answered by a replica other than their ring owner.", 0) +
		counter("sortinghatgw_degraded_columns_total", "Degraded columns in gateway responses (replica fallback or local rules).", 0) +
		counter("sortinghatgw_fallback_columns_total", "Columns answered by the gateway's local rule fallback (fleet unreachable).", 0) +
		counter("sortinghatgw_shed_total", "Requests fast-failed by the admission gate (HTTP 429).", 0) +
		gauge("sortinghatgw_queue_depth", "Columns admitted and not yet answered.", 0) +
		gauge("sortinghatgw_queue_high_water", "Admission-gate high-water mark in columns.", 2048) +
		gauge("sortinghatgw_replicas", "Replicas on the ring.", 2) +
		gauge("sortinghatgw_replicas_healthy", "Replicas currently routing normally (probe ok, breaker closed).", 0) +
		counter("sortinghatgw_probe_failures_total", "Health probes that failed (transport error, non-200, or bad body).", 2) +
		counter("sortinghatgw_probe_transitions_total", "Replica health state changes observed by the prober.", 2) +
		counter("sortinghatgw_faults_injected_total", "Faults fired by the injector (-fault-spec; 0 in production).", 0) +
		"# HELP sortinghatgw_uptime_seconds Seconds since the gateway started.\n" +
		"# TYPE sortinghatgw_uptime_seconds gauge\n" +
		"sortinghatgw_uptime_seconds X\n" +
		replicaBlock("r0", addrA, g.owned[0]) +
		replicaBlock("r1", addrB, g.owned[1]) +
		emptySummary("sortinghatgw_batch_columns", "Columns per gateway request.") +
		emptySummary("sortinghatgw_shard_seconds", "Per-sub-request forwarding latency.") +
		emptySummary("sortinghatgw_request_seconds", "End-to-end gateway request latency.")

	got := scrapeMetrics(t, h)
	if got != want {
		t.Errorf("gateway /metrics layout drifted from the pinned contract.\ngot:\n%s\nwant:\n%s", got, want)
	}
	if again := scrapeMetrics(t, h); again != got {
		t.Errorf("two scrapes of unchanged state differ:\nfirst:\n%s\nsecond:\n%s", got, again)
	}
}
