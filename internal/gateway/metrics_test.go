package gateway

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"sortinghat/internal/resilience"
)

// liveValueLine strips the wall-clock- and runtime-dependent values
// from a scrape so the rest of the document can be pinned byte for
// byte.
var liveValueLine = regexp.MustCompile(`(?m)^(sortinghatgw_uptime_seconds|sortinghatgw_goroutines|sortinghatgw_heap_bytes|sortinghatgw_gc_cycles_total|sortinghatgw_gc_pause_seconds_total) .*$`)

// scrapeMetrics fetches /metrics through the handler.
func scrapeMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	return liveValueLine.ReplaceAllString(rec.Body.String(), "$1 X")
}

// emptyHistogramText renders the pinned exposition block of a fresh
// obs.Histogram: the fixed 20-bucket log layout plus +Inf, sum and
// count.
func emptyHistogramText(name, help string) string {
	out := "# HELP " + name + " " + help + "\n# TYPE " + name + " histogram\n"
	for i := 0; i < 20; i++ {
		out += fmt.Sprintf("%s_bucket{le=%q} 0\n", name, fmt.Sprintf("%g", 1e-05*float64(uint64(1)<<i)))
	}
	return out + name + `_bucket{le="+Inf"} 0` + "\n" + name + "_sum 0\n" + name + "_count 0\n"
}

// TestGatewayMetricsRenderPinned is the gateway's monitoring contract:
// the full /metrics document of a fresh two-replica gateway, byte for
// byte — names, help strings, type headers, registration order, and the
// per-replica blocks in ring order. The fixture uses unreachable
// replicas and stops the prober after its startup sweep, so every value
// is deterministic: both replicas probed Down once each.
func TestGatewayMetricsRenderPinned(t *testing.T) {
	// 127.0.0.1:1 refuses connections immediately; addresses sort so a < b
	// and ring labels are r0, r1.
	addrA, addrB := "http://127.0.0.1:1/a", "http://127.0.0.1:1/b"
	g, err := New(Config{Replicas: []string{addrA, addrB}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	g.Close() // deterministic: exactly the startup probe sweep has run
	h := g.Handler()

	emptySummary := func(name, help string) string {
		return "# HELP " + name + " " + help + "\n" +
			"# TYPE " + name + " summary\n" +
			name + `{quantile="0.5"} 0` + "\n" +
			name + `{quantile="0.9"} 0` + "\n" +
			name + `{quantile="0.99"} 0` + "\n" +
			name + "_sum 0\n" +
			name + "_count 0\n"
	}
	counter := func(name, help string, v int64) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	replicaBlock := func(label, addr string, ownership float64) string {
		return gauge("sortinghatgw_replica_"+label+"_health", "Probe state of "+addr+" (0 healthy, 1 degraded, 2 down).", 2) +
			gauge("sortinghatgw_replica_"+label+"_breaker_state", "Forwarding breaker state for "+addr+" (0 closed, 1 open, 2 half-open).", 0) +
			counter("sortinghatgw_replica_"+label+"_requests_total", "Sub-requests forwarded to "+addr+".", 0) +
			counter("sortinghatgw_replica_"+label+"_errors_total", "Failed sub-requests to "+addr+".", 0) +
			gauge("sortinghatgw_replica_"+label+"_ownership", "Ring ownership share of "+addr+".", ownership) +
			gauge("sortinghatgw_replica_"+label+"_concurrency_limit", "Adaptive (AIMD) concurrency limit on forwards to "+addr+".", resilience.DefaultAIMDMax) +
			gauge("sortinghatgw_replica_"+label+"_inflight", "Sub-requests currently in flight to "+addr+".", 0) +
			gauge("sortinghatgw_replica_"+label+"_in_backoff", "Whether "+addr+" is inside its backoff window (1 = yes).", 0)
	}
	want := counter("sortinghatgw_requests_total", "Completed gateway /v1/infer requests.", 0) +
		counter("sortinghatgw_request_errors_total", "Rejected gateway requests (malformed or oversized batches).", 0) +
		counter("sortinghatgw_request_timeouts_total", "Gateway requests that exceeded their deadline.", 0) +
		gauge("sortinghatgw_inflight_requests", "Requests currently being served.", 0) +
		counter("sortinghatgw_columns_total", "Columns received across all accepted batches.", 0) +
		counter("sortinghatgw_shard_requests_total", "Sub-requests forwarded to replicas (including hedges and retries).", 0) +
		counter("sortinghatgw_shard_errors_total", "Forwarded sub-requests that failed (transport error or non-200).", 0) +
		counter("sortinghatgw_hedged_requests_total", "Speculative sub-requests fired after the hedge delay.", 0) +
		counter("sortinghatgw_retry_budget_denied_total", "Speculative attempts (hedges and failover retries) denied by the retry budget.", 0) +
		gauge("sortinghatgw_retry_budget_tokens", "Tokens currently in the retry-budget bucket.", resilience.DefaultRetryBurst) +
		counter("sortinghatgw_backoff_armed_total", "Times a replica's backoff was armed by a shedding (429/503) answer.", 0) +
		counter("sortinghatgw_rerouted_columns_total", "Columns answered by a replica other than their ring owner.", 0) +
		counter("sortinghatgw_degraded_columns_total", "Degraded columns in gateway responses (replica fallback or local rules).", 0) +
		counter("sortinghatgw_fallback_columns_total", "Columns answered by the gateway's local rule fallback (fleet unreachable).", 0) +
		counter("sortinghatgw_shed_total", "Requests fast-failed by the admission gate (HTTP 429).", 0) +
		gauge("sortinghatgw_queue_depth", "Columns admitted and not yet answered.", 0) +
		gauge("sortinghatgw_queue_high_water", "Admission-gate high-water mark in columns.", 2048) +
		gauge("sortinghatgw_replicas", "Replicas on the ring.", 2) +
		gauge("sortinghatgw_replicas_healthy", "Replicas currently routing normally (probe ok, breaker closed).", 0) +
		counter("sortinghatgw_probe_failures_total", "Health probes that failed (transport error, non-200, or bad body).", 2) +
		counter("sortinghatgw_probe_transitions_total", "Replica health state changes observed by the prober.", 2) +
		counter("sortinghatgw_faults_injected_total", "Faults fired by the injector (-fault-spec; 0 in production).", 0) +
		"# HELP sortinghatgw_uptime_seconds Seconds since the gateway started.\n" +
		"# TYPE sortinghatgw_uptime_seconds gauge\n" +
		"sortinghatgw_uptime_seconds X\n" +
		replicaBlock("r0", addrA, g.owned[0]) +
		replicaBlock("r1", addrB, g.owned[1]) +
		emptySummary("sortinghatgw_batch_columns", "Columns per gateway request.") +
		emptyHistogramText("sortinghatgw_shard_seconds", "Per-sub-request forwarding latency.") +
		emptyHistogramText("sortinghatgw_dispatch_seconds", "Scatter-phase latency: dispatch of the first group until every group resolved.") +
		emptyHistogramText("sortinghatgw_hedge_seconds", "Hedge-phase latency of hedged groups: first speculative fire until resolution.") +
		emptyHistogramText("sortinghatgw_reassemble_seconds", "Gather-phase latency: slot-ordered reassembly of the batch response.") +
		emptyHistogramText("sortinghatgw_request_seconds", "End-to-end gateway request latency.") +
		"# HELP sortinghatgw_goroutines Current number of live goroutines.\n" +
		"# TYPE sortinghatgw_goroutines gauge\n" +
		"sortinghatgw_goroutines X\n" +
		"# HELP sortinghatgw_heap_bytes Bytes of memory occupied by live heap objects.\n" +
		"# TYPE sortinghatgw_heap_bytes gauge\n" +
		"sortinghatgw_heap_bytes X\n" +
		"# HELP sortinghatgw_gc_cycles_total Completed garbage collection cycles.\n" +
		"# TYPE sortinghatgw_gc_cycles_total counter\n" +
		"sortinghatgw_gc_cycles_total X\n" +
		"# HELP sortinghatgw_gc_pause_seconds_total Approximate total stop-the-world GC pause time, estimated from the runtime pause histogram.\n" +
		"# TYPE sortinghatgw_gc_pause_seconds_total counter\n" +
		"sortinghatgw_gc_pause_seconds_total X\n"

	got := scrapeMetrics(t, h)
	if got != want {
		t.Errorf("gateway /metrics layout drifted from the pinned contract.\ngot:\n%s\nwant:\n%s", got, want)
	}
	if again := scrapeMetrics(t, h); again != got {
		t.Errorf("two scrapes of unchanged state differ:\nfirst:\n%s\nsecond:\n%s", got, again)
	}
}
