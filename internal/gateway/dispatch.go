package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/obs"
	"sortinghat/internal/resilience/rulefallback"
	"sortinghat/internal/serve"
)

// group is the unit of scatter: the columns of one batch owned by one
// ring replica, with their original batch positions for reassembly.
type group struct {
	owner int
	idxs  []int // original positions in the request batch
	cols  []data.Column
}

// groupResult is one dispatched group's outcome, written into a slot of
// a per-batch slice (no map iteration anywhere on the response path, so
// reassembly order is deterministic by construction).
type groupResult struct {
	preds    []serve.InferPrediction // aligned with group.cols
	replica  int                     // who answered; -1 for the local fallback
	model    string
	version  string
	cacheHit int
	hedged   int           // extra speculative requests fired
	attempts int           // shard attempts resolved
	denied   int           // speculative attempts denied by the retry budget
	canceled bool          // the request ended before this group resolved
	hedgeDur time.Duration // first hedge fire → group resolution (0 if never hedged)
}

// shardGroups splits a batch into per-owner groups, in ring (replica
// index) order. Columns keep their batch positions in idxs.
func (g *Gateway) shardGroups(cols []data.Column) []group {
	byOwner := make([][]int, len(g.replicas))
	for i := range cols {
		owner := g.ring.Owner(ringKey(&cols[i]))
		byOwner[owner] = append(byOwner[owner], i)
	}
	groups := make([]group, 0, len(g.replicas))
	for owner, idxs := range byOwner {
		if len(idxs) == 0 {
			continue
		}
		//shvet:ignore alloc-in-loop each group's column slice is the scatter payload itself, one per shard, and outlives this loop
		gr := group{owner: owner, idxs: idxs, cols: make([]data.Column, len(idxs))}
		for j, i := range idxs {
			gr.cols[j] = cols[i]
		}
		groups = append(groups, gr)
	}
	return groups
}

// scatter dispatches every group concurrently and waits for all of
// them. Results are slot-indexed, never channel-ordered, so assembly is
// deterministic.
func (g *Gateway) scatter(ctx context.Context, groups []group) []groupResult {
	results := make([]groupResult, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.dispatchGroup(ctx, &groups[i])
		}(i)
	}
	wg.Wait()
	return results
}

// shardAttempt is one forwarded sub-request's outcome. canceled marks
// attempts that died because the group was canceled (a winner already
// answered, or the client gave up) or the budget was spent before the
// leg fired — those are not evidence against the replica and must not
// feed its breaker. status and retryAfter carry the replica's HTTP
// answer for non-200s (plain ints, not typed errors, so the hot path
// classifies overloads without boxing).
type shardAttempt struct {
	replica    int
	resp       *serve.InferResponse
	err        error
	canceled   bool
	status     int           // HTTP status of a non-200 answer; 0 otherwise
	retryAfter time.Duration // the replica's Retry-After hint, if any
}

// dispatchGroup forwards one group through its candidate list with a
// merged hedge/failover loop: the first candidate fires immediately, the
// hedge timer speculatively fires the next candidate if no answer has
// arrived, and any failure fires the next candidate at once. The first
// success cancels the stragglers and wins. When every candidate is
// exhausted — all breakers open, or every attempt failed — the group is
// answered locally by the rule fallback so the batch still completes.
// Hedged groups additionally record how long resolution took past the
// first hedge fire (the hedge-phase latency).
//
//shvet:hotpath per-shard scatter body; runs once per group of every gateway batch
func (g *Gateway) dispatchGroup(ctx context.Context, gr *group) groupResult {
	ctx, span := obs.StartSpan(ctx, "shard")
	defer span.End()
	span.SetAttr("owner", g.replicas[gr.owner].label)
	span.SetAttr("columns", strconv.Itoa(len(gr.cols)))

	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	order := g.candidates(gr.owner)
	attempts := make(chan shardAttempt, len(order))
	inflight, next := 0, 0
	res := groupResult{replica: -1}
	launch := func(speculative bool) bool {
		// Speculative legs — hedges and failover retries — draw from the
		// fleet-wide retry budget before touching a candidate, so a
		// brownout cannot amplify load past the budget's bound. Denied
		// legs fall through: the in-flight attempt (or the rule fallback)
		// answers instead.
		if speculative && !g.budget.TryWithdraw() {
			res.denied++
			return false
		}
		for next < len(order) {
			r := order[next]
			next++
			rep := g.replicas[r]
			if !rep.breaker.Allow() {
				continue
			}
			if !rep.backoff.Ready() {
				continue
			}
			if !rep.limiter.Acquire() {
				continue
			}
			inflight++
			go g.forward(gctx, r, gr.cols, attempts)
			return true
		}
		return false
	}

	var hedgeFired time.Time
	settleHedge := func() {
		if !hedgeFired.IsZero() {
			res.hedgeDur = time.Since(hedgeFired)
			g.met.hedgeDur.Observe(res.hedgeDur.Seconds())
		}
	}
	if launch(false) {
		hedge := hedgeTimer(g.cfg.Hedge)
		defer hedge.Stop()
		for inflight > 0 {
			select {
			case a := <-attempts:
				inflight--
				res.attempts++
				if a.err == nil {
					rep := g.replicas[a.replica]
					rep.breaker.Success()
					rep.limiter.Success()
					rep.backoff.Reset()
					g.budget.Deposit()
					res.preds = a.resp.Predictions
					res.replica = a.replica
					res.model = a.resp.Model
					res.version = a.resp.ModelVersion
					res.cacheHit = a.resp.CacheHits
					span.SetAttr("replica", rep.label)
					if res.hedged > 0 {
						span.SetAttr("hedged", strconv.Itoa(res.hedged))
					}
					settleHedge()
					return res
				}
				if !a.canceled {
					rep := g.replicas[a.replica]
					rep.breaker.Failure()
					rep.errors.Add(1)
					g.met.shardErrors.Add(1)
					// An overloaded answer adapts the gateway's pressure on
					// that replica: cut its concurrency limit, and on an
					// explicit shed (429/503) also arm its backoff with the
					// Retry-After hint it sent.
					switch a.status {
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
						rep.limiter.Overload()
						rep.backoff.Arm(a.retryAfter)
						g.met.backoffArmed.Add(1)
					case http.StatusGatewayTimeout:
						rep.limiter.Overload()
					}
					//shvet:ignore string-churn failure-path annotation only; steady-state requests never reach this arm
					span.SetAttr("error@"+rep.label, a.err.Error())
				}
				launch(true) // immediate failover; inflight hedges may still win
			case <-hedge.C:
				if launch(true) {
					res.hedged++
					g.met.hedges.Add(1)
					if hedgeFired.IsZero() {
						hedgeFired = time.Now()
					}
				}
			case <-gctx.Done():
				// The client or deadline gave up; stragglers resolve into
				// the buffered channel and are dropped.
				span.SetAttr("canceled", "true")
				res.canceled = true
				settleHedge()
				return res
			}
		}
	}
	settleHedge()

	// Fleet exhausted: answer locally from the paper's rule baseline,
	// exactly like a lone daemon with its breaker open.
	span.SetAttr("fallback", "rules")
	g.met.fallbackColumns.Add(int64(len(gr.cols)))
	res.preds = make([]serve.InferPrediction, len(gr.cols))
	for i := range gr.cols {
		res.preds[i] = localFallback(&gr.cols[i])
	}
	res.model = "rules"
	res.version = "fallback"
	return res
}

// hedgeTimer arms the hedge delay; a non-positive delay disables
// hedging (the timer never fires).
func hedgeTimer(d time.Duration) *time.Timer {
	if d <= 0 {
		t := time.NewTimer(time.Hour)
		t.Stop()
		return t
	}
	return time.NewTimer(d)
}

// localFallback answers one column from the rule-based baseline, tagged
// degraded — the gateway's last resort when no replica is reachable.
func localFallback(col *data.Column) serve.InferPrediction {
	base := featurize.ExtractFirstN(col, DefaultFallbackSample)
	typ, probs := rulefallback.Classify(&base)
	probsByClass := make(map[string]float64, len(probs))
	for i, p := range probs {
		probsByClass[ftype.FeatureType(i).String()] = p
	}
	confidence := 0.0
	if i := typ.Index(); i >= 0 && i < len(probs) {
		confidence = probs[i]
	}
	return serve.InferPrediction{
		Name:       col.Name,
		Type:       typ.String(),
		Confidence: confidence,
		Probs:      probsByClass,
		Degraded:   true,
		Error:      "no replica reachable; answered by gateway rule fallback",
	}
}

// forward sends one group to one replica as a POST /v1/infer sub-request
// and reports the outcome. Panics (possible via injected faults) are
// converted to errors so one bad attempt can't take the gateway down.
// The caller acquired a slot on the replica's concurrency limiter;
// forward owns releasing it.
func (g *Gateway) forward(ctx context.Context, ri int, cols []data.Column, out chan<- shardAttempt) {
	r := g.replicas[ri]
	defer r.limiter.Release()
	r.requests.Add(1)
	g.met.shardRequests.Add(1)
	fctx, fSpan := obs.StartSpan(ctx, "forward")
	fSpan.SetAttr("replica", r.label)
	start := time.Now()
	var meta shardMeta
	resp, err := func() (resp *serve.InferResponse, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("forward to %s panicked: %v", r.label, p)
			}
		}()
		if err := g.inject("forward@" + r.label); err != nil {
			return nil, err
		}
		resp, meta, err = g.postInfer(fctx, r.addr, cols)
		return resp, err
	}()
	if err != nil {
		fSpan.SetAttr("error", err.Error())
	}
	fSpan.End()
	g.met.shardLatency.ObserveSince(start)
	out <- shardAttempt{
		replica:    ri,
		resp:       resp,
		err:        err,
		canceled:   err != nil && (ctx.Err() != nil || err == errBudgetSpent),
		status:     meta.status,
		retryAfter: meta.retryAfter,
	}
}

// decodeJSONBody decodes a bounded JSON response body.
func decodeJSONBody(resp *http.Response, v any) error {
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(v)
}

// shardMeta carries the HTTP-level facts of a failed sub-request the
// dispatch loop classifies on: the status code and the replica's
// Retry-After hint. Plain value fields, not a typed error, so the
// hot-path classification never boxes.
type shardMeta struct {
	status     int
	retryAfter time.Duration
}

// errBudgetSpent marks a leg that was never sent because the request's
// remaining time budget (minus net slack) was already gone. Not
// evidence against the replica.
var errBudgetSpent = fmt.Errorf("gateway: request budget spent before forwarding")

// postInfer performs the sub-request: the group's columns as a standard
// /v1/infer batch against one replica, with the remaining request
// budget propagated via X-Deadline-Ms so the replica never works on an
// answer the gateway has stopped waiting for.
func (g *Gateway) postInfer(ctx context.Context, addr string, cols []data.Column) (*serve.InferResponse, shardMeta, error) {
	req := serve.InferRequest{Columns: make([]serve.InferColumn, len(cols))}
	for i, c := range cols {
		req.Columns[i] = serve.InferColumn{Name: c.Name, Values: c.Values}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, shardMeta{}, fmt.Errorf("encoding shard request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		return nil, shardMeta{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	// Propagate the remaining time budget, minus a network-slack
	// allowance, so the replica clamps its own deadline to the time the
	// gateway will actually wait.
	if g.cfg.NetSlack >= 0 {
		if d, ok := ctx.Deadline(); ok {
			remain := time.Until(d) - g.cfg.NetSlack
			if remain < time.Millisecond {
				return nil, shardMeta{}, errBudgetSpent
			}
			httpReq.Header.Set(serve.DeadlineHeader, strconv.FormatInt(remain.Milliseconds(), 10))
		}
	}
	// Propagate trace identity so the replica's root span joins this
	// trace instead of minting its own, and forward the request id so
	// fleet-wide log lines join on one key.
	if sc := obs.SpanFromContext(ctx).Context(); !sc.IsZero() {
		httpReq.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	}
	if rid := obs.RequestIDFrom(ctx); rid != "" {
		httpReq.Header.Set("X-Request-Id", rid)
	}
	httpResp, err := g.cfg.Client.Do(httpReq)
	if err != nil {
		return nil, shardMeta{}, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		meta := shardMeta{status: httpResp.StatusCode}
		if s, err := strconv.ParseInt(httpResp.Header.Get("Retry-After"), 10, 64); err == nil && s > 0 {
			meta.retryAfter = time.Duration(s) * time.Second
		}
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return nil, meta, fmt.Errorf("replica answered %d: %s", httpResp.StatusCode, bytes.TrimSpace(msg))
	}
	var resp serve.InferResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, shardMeta{}, fmt.Errorf("decoding shard response: %w", err)
	}
	if len(resp.Predictions) != len(cols) {
		return nil, shardMeta{}, fmt.Errorf("replica answered %d predictions for %d columns", len(resp.Predictions), len(cols))
	}
	return &resp, shardMeta{}, nil
}
