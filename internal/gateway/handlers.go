package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"sortinghat/internal/data"
	"sortinghat/internal/obs"
	"sortinghat/internal/resilience"
	"sortinghat/internal/serve"
)

// maxRequestBody bounds request bodies, matching the daemon's limit.
const maxRequestBody = 64 << 20

// BatchResponse is the JSON body answering the gateway's POST /v1/infer
// and /v1/infer/csv. Predictions are index-aligned with the request's
// columns regardless of how the batch was sharded. ModelVersions counts
// columns per answering model version — during a canary rollout this is
// where the canary's traffic share shows up; the "rules/fallback" pair
// appears when the gateway answered columns locally.
type BatchResponse struct {
	Gateway         string                  `json:"gateway"`
	Model           string                  `json:"model"`
	ModelVersions   map[string]int          `json:"model_versions"`
	Predictions     []serve.InferPrediction `json:"predictions"`
	CacheHits       int                     `json:"cache_hits"`
	DegradedColumns int                     `json:"degraded_columns"`
	ReroutedColumns int                     `json:"rerouted_columns"`
	HedgedRequests  int                     `json:"hedged_requests"`
	Shards          int                     `json:"shards"`
	ElapsedMS       float64                 `json:"elapsed_ms"`
}

// FleetHealth is the JSON body answering the gateway's GET /healthz.
// Status is "ok" while at least one replica routes normally, "degraded"
// otherwise (the gateway still answers, worst case from its local rule
// fallback).
type FleetHealth struct {
	Status        string          `json:"status"`
	Replicas      []ReplicaStatus `json:"replicas"`
	UptimeSeconds float64         `json:"uptime_seconds"`
}

// ReplicaStatus is one replica's row in FleetHealth: identity, probe
// and breaker state, ring ownership share, and lifetime shard traffic.
type ReplicaStatus struct {
	Replica   string  `json:"replica"`
	Addr      string  `json:"addr"`
	Health    string  `json:"health"`
	Breaker   string  `json:"breaker"`
	Ownership float64 `json:"ownership"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the gateway's HTTP API — the daemon's inference
// surface, fleet-wide: POST /v1/infer, POST /v1/infer/csv, GET /healthz
// (fleet view), GET /metrics, GET /debug/traces, GET /debug/flight
// (slowest and errored recent requests), and (with Config.EnablePprof)
// /debug/pprof/. Requests get an X-Request-Id and one access-log
// record, like the daemon.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", g.handleInfer)
	mux.HandleFunc("/v1/infer/csv", g.handleInferCSV)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/debug/traces", g.handleTraces)
	mux.HandleFunc("/debug/flight", g.handleFlight)
	if g.cfg.EnablePprof {
		obs.MountPprof(mux)
	}
	return g.observe(mux)
}

// observe assigns the request ID (reusing a forwarded X-Request-Id so
// an upstream proxy's id survives into fleet logs), echoes it to the
// client, continues an incoming W3C traceparent, and emits the
// access-log record.
func (g *Gateway) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = "gw-" + strconv.FormatInt(g.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", id)
		ctx := obs.WithRequestID(r.Context(), id)
		if sc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			ctx = obs.ContextWithRemoteParent(ctx, sc)
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		if g.logger != nil {
			g.logger.Info("request",
				"request_id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration_ms", float64(time.Since(start).Microseconds())/1000)
		}
	})
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// writeJSON marshals v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError answers with a JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// handleInfer decodes a JSON batch and shards it across the fleet.
func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	start := time.Now()
	g.met.inflight.Add(1)
	defer g.met.inflight.Add(-1)
	defer g.met.requests.Add(1)

	ctx, span := g.tracer.Start(r.Context(), "gateway")
	span.SetAttr("request_id", obs.RequestIDFrom(ctx))
	defer span.End()

	var req serve.InferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		g.met.requestErrors.Add(1)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds "+strconv.FormatInt(tooLarge.Limit, 10)+" bytes")
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	cols := make([]data.Column, len(req.Columns))
	for i, c := range req.Columns {
		cols[i] = data.Column{Name: c.Name, Values: c.Values}
	}
	g.serveBatch(w, ctx, span, start, r.URL.Path, r.Header.Get(serve.DeadlineHeader), cols)
}

// handleInferCSV ingests a whole table as CSV and shards its columns,
// applying the same adversarial-input limits as the daemon.
func (g *Gateway) handleInferCSV(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	start := time.Now()
	g.met.inflight.Add(1)
	defer g.met.inflight.Add(-1)
	defer g.met.requests.Add(1)

	ctx, span := g.tracer.Start(r.Context(), "gateway")
	span.SetAttr("request_id", obs.RequestIDFrom(ctx))
	span.SetAttr("format", "csv")
	defer span.End()

	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	ds, err := data.ReadCSVLimited("request", body, data.Limits{
		MaxColumns:   g.cfg.MaxBatch,
		MaxCellBytes: g.cfg.MaxCellBytes,
	})
	if err != nil {
		g.met.requestErrors.Add(1)
		var tooLarge *http.MaxBytesError
		switch {
		case errors.Is(err, data.ErrTooManyColumns), errors.Is(err, data.ErrCellTooLarge):
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		case errors.As(err, &tooLarge):
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds "+strconv.FormatInt(tooLarge.Limit, 10)+" bytes")
		default:
			writeError(w, http.StatusBadRequest, "parsing csv: "+err.Error())
		}
		return
	}
	g.serveBatch(w, ctx, span, start, r.URL.Path, r.Header.Get(serve.DeadlineHeader), ds.Columns)
}

// serveBatch is the shared tail of the infer handlers: validate, admit
// through the gate, scatter by ring ownership, gather, and reassemble
// in request order. Once the response is decided the request is offered
// to the flight recorder with its trace identity, per-phase durations
// (dispatch, hedge, reassemble) and the routing decisions that shaped
// the answer.
//
//shvet:hotpath request tail of every gateway infer endpoint; all per-request instrumentation lands here
func (g *Gateway) serveBatch(w http.ResponseWriter, ctx context.Context, span *obs.Span, start time.Time, path, deadlineMS string, cols []data.Column) {
	status, errMsg := http.StatusOK, ""
	var dispatchDur, hedgeDur, reassembleDur time.Duration
	var notes []string
	defer func() {
		g.flight.Record(obs.FlightRecord{
			TraceID:    span.Context().TraceID.String(),
			RequestID:  obs.RequestIDFrom(ctx),
			Path:       path,
			Status:     status,
			DurationNS: time.Since(start).Nanoseconds(),
			Columns:    len(cols),
			Phases: []obs.Phase{
				{Name: "dispatch", DurationNS: dispatchDur.Nanoseconds()},
				{Name: "hedge", DurationNS: hedgeDur.Nanoseconds()},
				{Name: "reassemble", DurationNS: reassembleDur.Nanoseconds()},
			},
			Notes: notes,
			Err:   errMsg,
		})
	}()
	fail := func(st int, msg string) {
		status, errMsg = st, msg
		writeError(w, st, msg)
	}
	if len(cols) == 0 {
		g.met.requestErrors.Add(1)
		fail(http.StatusBadRequest, "empty batch: provide at least one column")
		return
	}
	if len(cols) > g.cfg.MaxBatch {
		g.met.requestErrors.Add(1)
		fail(http.StatusBadRequest, "batch too large: max "+strconv.Itoa(g.cfg.MaxBatch)+" columns")
		return
	}
	// Honor a propagated deadline before admitting work: a client (or an
	// upstream gateway tier) that sends X-Deadline-Ms bounds how long
	// this request may hold queue and replica capacity.
	if deadlineMS != "" {
		ms, err := strconv.ParseInt(deadlineMS, 10, 64)
		if err != nil {
			g.met.requestErrors.Add(1)
			fail(http.StatusBadRequest, "malformed "+serve.DeadlineHeader+" header: "+deadlineMS)
			return
		}
		if ms <= 0 {
			g.met.requestTimeouts.Add(1)
			notes = append(notes, "rejected by control: deadline (budget spent before admission)")
			span.SetAttr("deadline", "spent")
			w.Header().Set("Retry-After", g.retryAfter())
			fail(http.StatusGatewayTimeout, "request budget spent before admission")
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	if err := g.gate.TryReserve(len(cols)); err != nil {
		span.SetAttr("shed", "true")
		notes = append(notes, "rejected by control: gate (queue at high water)")
		w.Header().Set("Retry-After", g.retryAfter())
		fail(http.StatusTooManyRequests, "overloaded: queue past high water; retry later")
		return
	}
	defer g.gate.Release(len(cols))
	g.met.columns.Add(int64(len(cols)))
	g.met.batchSize.Observe(float64(len(cols)))
	span.SetAttr("columns", strconv.Itoa(len(cols)))

	if g.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.Timeout)
		defer cancel()
	}

	groups := g.shardGroups(cols)
	dStart := time.Now()
	results := g.scatter(ctx, groups)
	dispatchDur = time.Since(dStart)
	g.met.dispatchDur.Observe(dispatchDur.Seconds())
	for i := range results {
		hedgeDur += results[i].hedgeDur
	}

	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			g.met.requestTimeouts.Add(1)
			notes = append(notes, "rejected by control: deadline (request budget exhausted)")
			w.Header().Set("Retry-After", g.retryAfter())
			fail(http.StatusGatewayTimeout, "deadline exceeded before the batch completed")
			return
		}
		// The client went away; the status code is never seen.
		fail(http.StatusServiceUnavailable, "request canceled")
		return
	}

	rStart := time.Now()
	notes = make([]string, 0, len(groups))
	resp := BatchResponse{
		Gateway:       "sortinghatgw",
		ModelVersions: make(map[string]int, 2),
		Predictions:   make([]serve.InferPrediction, len(cols)),
		Shards:        len(groups),
	}
	for gi, res := range results {
		gr := &groups[gi]
		//shvet:ignore alloc-in-loop notes is re-made with cap len(groups) just above; it must be declared earlier so the deferred flight record can capture it
		notes = append(notes, routeNote(g, gr, &results[gi]))
		if res.replica >= 0 && res.replica != gr.owner {
			resp.ReroutedColumns += len(gr.idxs)
			g.met.rerouted.Add(int64(len(gr.idxs)))
		}
		resp.HedgedRequests += res.hedged
		resp.CacheHits += res.cacheHit
		if resp.Model == "" && res.replica >= 0 {
			resp.Model = res.model
		}
		resp.ModelVersions[res.version] += len(gr.idxs)
		for j, i := range gr.idxs {
			resp.Predictions[i] = res.preds[j]
			if res.preds[j].Degraded {
				resp.DegradedColumns++
			}
		}
	}
	if resp.Model == "" {
		resp.Model = "rules" // every group fell back locally
	}
	g.met.degraded.Add(int64(resp.DegradedColumns))
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	reassembleDur = time.Since(rStart)
	g.met.reassembleDur.Observe(reassembleDur.Seconds())
	g.met.request.ObserveSince(start)
	writeJSON(w, http.StatusOK, resp)
}

// routeNote renders one group's routing decision for the flight
// recorder: owner, column count, who actually answered, and whether
// hedging or the local fallback was involved.
func routeNote(g *Gateway, gr *group, res *groupResult) string {
	note := "shard " + g.replicas[gr.owner].label + ": " + strconv.Itoa(len(gr.cols)) + " cols -> "
	switch {
	case res.replica >= 0:
		note += g.replicas[res.replica].label
	default:
		note += "rulefallback"
	}
	if res.hedged > 0 {
		note += " (hedged x" + strconv.Itoa(res.hedged) + ")"
	}
	if res.attempts > 1 {
		note += " (attempts " + strconv.Itoa(res.attempts) + ")"
	}
	if res.denied > 0 {
		note += " (budget-denied x" + strconv.Itoa(res.denied) + ")"
	}
	return note
}

// retryAfter derives the Retry-After hint for shed and budget-spent
// responses from live queue fullness.
func (g *Gateway) retryAfter() string {
	return strconv.FormatInt(resilience.RetryAfterSeconds(
		g.gate.Depth(), g.gate.Capacity(), int64(g.cfg.RetryAfterMax)), 10)
}

// handleHealthz answers with the fleet view: per-replica probe state,
// breaker state, and ring ownership.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	status := "degraded"
	if g.healthyCount() > 0 {
		status = "ok"
	}
	writeJSON(w, http.StatusOK, FleetHealth{
		Status:        status,
		Replicas:      g.replicaStatuses(),
		UptimeSeconds: time.Since(g.start).Seconds(),
	})
}

// handleMetrics answers Prometheus scrapes in text exposition format.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.met.reg.WritePrometheus(w)
}

// handleTraces serves the ring of recent request traces as JSON span
// trees.
func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	traces := g.tracer.Recent()
	writeJSON(w, http.StatusOK, serve.TracesResponse{Count: len(traces), Traces: traces})
}

// handleFlight serves the flight recorder: the slowest and most
// recently errored gateway requests with trace ids, per-phase
// durations, and per-shard routing notes.
func (g *Gateway) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, g.flight.Snapshot())
}
