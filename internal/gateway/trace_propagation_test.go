package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sortinghat/internal/obs"
	"sortinghat/internal/serve"
)

// syncBuffer is a bytes.Buffer safe to write from server goroutines and
// read from the test goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// jsonlTraces decodes every non-empty line of a JSONL trace sink,
// retrying briefly because a replica's root span is sunk after its HTTP
// response is flushed.
func jsonlTraces(t *testing.T, buf *syncBuffer, want int) []obs.SpanJSON {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		var out []obs.SpanJSON
		ok := true
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if line == "" {
				continue
			}
			var s obs.SpanJSON
			if err := json.Unmarshal([]byte(line), &s); err != nil {
				ok = false // torn write still in flight
				break
			}
			out = append(out, s)
		}
		if ok && len(out) >= want {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace sink has %d complete lines, want %d:\n%s", len(out), want, buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// spansNamed walks a span tree collecting every span with the given
// name.
func spansNamed(s obs.SpanJSON, name string) []obs.SpanJSON {
	var out []obs.SpanJSON
	if s.Name == name {
		out = append(out, s)
	}
	for _, c := range s.Children {
		out = append(out, spansNamed(c, name)...)
	}
	return out
}

// TestFleetTraceStitching is the acceptance test of distributed
// tracing: one batch through a gateway and two live replicas produces
// one trace id everywhere — the gateway's sink holds the root with its
// shard/forward children, and every replica sink line adopts that trace
// id and parents itself to one of the gateway's forward spans. The
// forwarded X-Request-Id joins the fleet's access logs on one key.
func TestFleetTraceStitching(t *testing.T) {
	replicaSinks := make([]*syncBuffer, 2)
	replicaLogs := make([]*syncBuffer, 2)
	fleet := make([]*httptest.Server, 2)
	addrs := make([]string, 2)
	for i := range fleet {
		replicaSinks[i] = &syncBuffer{}
		replicaLogs[i] = &syncBuffer{}
		s := serve.New(testModel(t), serve.Config{
			Workers:      2,
			ModelVersion: fmt.Sprintf("m%d", i),
			TraceSink:    replicaSinks[i],
			Logger:       obs.NewLogger(replicaLogs[i], 0),
		})
		ts := httptest.NewServer(s.Handler())
		fleet[i] = ts
		addrs[i] = ts.URL
		t.Cleanup(ts.Close)
		t.Cleanup(s.Close)
	}
	var gwSink syncBuffer
	g := newTestGateway(t, addrs, func(cfg *Config) { cfg.TraceSink = &gwSink })
	h := g.Handler()

	body, err := json.Marshal(testBatch(24))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "cli-7")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Shards != 2 {
		t.Fatalf("batch sharded into %d groups, want both replicas involved", resp.Shards)
	}
	if resp.DegradedColumns != 0 {
		t.Fatalf("%d degraded columns; the fleet should be healthy", resp.DegradedColumns)
	}

	// The gateway's sink holds the root of the distributed trace.
	gwTraces := jsonlTraces(t, &gwSink, 1)
	root := gwTraces[len(gwTraces)-1]
	if root.Name != "gateway" || root.TraceID == "" {
		t.Fatalf("gateway sink root = %q trace %q, want a gateway root with a trace id", root.Name, root.TraceID)
	}
	forwards := spansNamed(root, "forward")
	if len(forwards) < 2 {
		t.Fatalf("gateway trace has %d forward spans, want one per shard attempt (>=2):\n%s", len(forwards), gwSink.String())
	}
	forwardIDs := make(map[string]bool, len(forwards))
	for _, f := range forwards {
		if f.SpanID == "" {
			t.Fatalf("forward span missing its span id: %+v", f)
		}
		forwardIDs[f.SpanID] = true
	}

	// Every replica's root span joined the gateway's trace, parented to
	// the exact forward span that carried its sub-request.
	stitched := 0
	for i, sink := range replicaSinks {
		for _, line := range jsonlTraces(t, sink, 1) {
			stitched++
			if line.TraceID != root.TraceID {
				t.Errorf("replica %d trace_id = %q, want the gateway's %q", i, line.TraceID, root.TraceID)
			}
			if !forwardIDs[line.ParentID] {
				t.Errorf("replica %d parent_span_id = %q, not one of the gateway's forward spans", i, line.ParentID)
			}
		}
	}
	if stitched < 2 {
		t.Errorf("only %d replica trace lines; both replicas should have served a shard", stitched)
	}

	// The client's X-Request-Id survived the whole path: echoed by the
	// gateway, forwarded on sub-requests, in every replica access log.
	if got := rec.Header().Get("X-Request-Id"); got != "cli-7" {
		t.Errorf("gateway echoed X-Request-Id %q, want the forwarded cli-7", got)
	}
	for i, lg := range replicaLogs {
		if !strings.Contains(lg.String(), `"request_id":"cli-7"`) {
			t.Errorf("replica %d access log missing the fleet request id:\n%s", i, lg.String())
		}
	}
}

// TestGatewayDebugFlight checks the gateway's flight recorder: a served
// batch lands in the slowest ring with its trace id, the gateway's
// phase split (dispatch/hedge/reassemble), and per-shard routing notes;
// a timed-out batch lands in the errored ring.
func TestGatewayDebugFlight(t *testing.T) {
	_, addrs := startFleet(t, 2, nil)
	g := newTestGateway(t, addrs, func(cfg *Config) { cfg.FlightRing = 8 })
	h := g.Handler()

	rec, _ := postBatch(t, h, testBatch(6))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
	}

	frec := httptest.NewRecorder()
	h.ServeHTTP(frec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if frec.Code != http.StatusOK {
		t.Fatalf("/debug/flight status = %d", frec.Code)
	}
	var snap obs.FlightSnapshot
	if err := json.Unmarshal(frec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding flight snapshot: %v\n%s", err, frec.Body.Bytes())
	}
	if len(snap.Slowest) != 1 || len(snap.Errored) != 0 {
		t.Fatalf("flight = %d slowest / %d errored, want 1/0", len(snap.Slowest), len(snap.Errored))
	}
	top := snap.Slowest[0]
	if len(top.TraceID) != 32 || top.Path != "/v1/infer" || top.Columns != 6 || top.Status != http.StatusOK {
		t.Errorf("flight record identity incomplete: %+v", top)
	}
	names := make([]string, len(top.Phases))
	for i, p := range top.Phases {
		names[i] = p.Name
	}
	if strings.Join(names, ",") != "dispatch,hedge,reassemble" {
		t.Errorf("phase order = %v, want [dispatch hedge reassemble]", names)
	}
	if len(top.Notes) == 0 || !strings.HasPrefix(top.Notes[0], "shard r") {
		t.Errorf("flight notes = %v, want per-shard routing notes", top.Notes)
	}

	// A batch that cannot meet its deadline enters the errored ring.
	gSlow := newTestGateway(t, addrs, func(cfg *Config) {
		cfg.FlightRing = 8
		cfg.Timeout = time.Nanosecond
	})
	rec, _ = postBatch(t, gSlow.Handler(), testBatch(2))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status with 1ns deadline = %d, want 504", rec.Code)
	}
	frec = httptest.NewRecorder()
	gSlow.Handler().ServeHTTP(frec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if err := json.Unmarshal(frec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Errored) != 1 || snap.Errored[0].Status != http.StatusGatewayTimeout {
		t.Fatalf("errored ring = %+v, want the 504", snap.Errored)
	}
}
