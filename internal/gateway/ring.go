package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the default number of virtual nodes per replica.
// 64 vnodes keeps ownership within a few percent of even for small
// fleets while the ring stays tiny (a 3-replica ring is 192 points).
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a replica.
type ringPoint struct {
	hash    uint64
	replica int // index into Ring.replicas
}

// Ring is a consistent-hash ring over a fixed set of replica addresses.
// Construction sorts and dedupes the addresses, so two rings built from
// the same replica set — in any order, with duplicates — are identical,
// and ownership is a pure function of (replica set, vnodes, key). The
// ring is immutable after NewRing; topology changes mean building a new
// ring, which moves only the keys owned by the replicas that changed
// (see TestRingChurnBounded).
type Ring struct {
	replicas []string
	points   []ringPoint
}

// NewRing builds a ring over the given replica addresses with vnodes
// virtual nodes per replica (0 means DefaultVNodes). Addresses are
// sorted and deduped; at least one is required.
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), replicas...)
	sort.Strings(sorted)
	deduped := sorted[:0]
	for i, a := range sorted {
		if a == "" {
			return nil, fmt.Errorf("gateway: empty replica address")
		}
		if i > 0 && a == sorted[i-1] {
			continue
		}
		deduped = append(deduped, a)
	}
	if len(deduped) == 0 {
		return nil, fmt.Errorf("gateway: ring needs at least one replica")
	}
	r := &Ring{replicas: deduped, points: make([]ringPoint, 0, len(deduped)*vnodes)}
	for i, addr := range deduped {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(addr, v), replica: i})
		}
	}
	// Sort by position; break hash collisions by replica index so the
	// ring layout never depends on insertion order.
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return pa.replica < pb.replica
	})
	return r, nil
}

// vnodeHash positions one virtual node on the circle: FNV-64a over
// "addr#v". The textual vnode index (not a fixed-width encoding) is part
// of the pinned ring layout — changing it would reshuffle every fleet's
// ownership on upgrade.
func vnodeHash(addr string, v int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", addr, v)
	return h.Sum64()
}

// Replicas returns the ring's replica addresses, sorted and deduped.
// The index of an address in this slice is its replica index in Owner
// and Successors results. Callers must not mutate the returned slice.
func (r *Ring) Replicas() []string { return r.replicas }

// Owner returns the replica index owning key: the replica of the first
// ring point at or clockwise of key, wrapping at the top of the circle.
func (r *Ring) Owner(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].replica
}

// Successors returns up to n distinct replica indices in ring order
// starting at key's owner — the natural failover order when the owner
// is unreachable. n is clamped to the replica count.
func (r *Ring) Successors(key uint64, n int) []int {
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	out := make([]int, 0, n)
	seen := make([]bool, len(r.replicas))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for off := 0; off < len(r.points) && len(out) < n; off++ {
		p := r.points[(start+off)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// Ownership returns each replica's share of the key space, indexed like
// Replicas, summing to ~1 (floating-point arc fractions of the 2^64
// circle, not a sample).
func (r *Ring) Ownership() []float64 {
	out := make([]float64, len(r.replicas))
	const circle = float64(1<<63) * 2
	for i, p := range r.points {
		// The arc (previous point, p] is owned by p's replica; the first
		// point also owns the wrap-around arc from the last point.
		var prev uint64
		if i == 0 {
			prev = r.points[len(r.points)-1].hash
		} else {
			prev = r.points[i-1].hash
		}
		out[p.replica] += float64(p.hash-prev) / circle // uint64 wrap-around is the arc length
	}
	return out
}
