package gateway

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"sortinghat/internal/resilience/faultinject"
)

// TestChaosReplicaErrorsRerouted arms a deterministic fault that fails
// every forward to one of three replicas and checks the gateway routes
// its columns to the survivors: the batch comes back complete and
// ordered, the rerouted count equals the dead replica's shard, and no
// column degrades to the rule fallback.
func TestChaosReplicaErrorsRerouted(t *testing.T) {
	_, addrs := startFleet(t, 3, nil)
	inj, err := faultinject.Parse("forward@r1:error:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGateway(t, addrs, func(c *Config) { c.Faults = inj })

	req := testBatch(30)
	ownerCols := make([]int, 3)
	for i := range req.Columns {
		col := toColumn(req.Columns[i])
		ownerCols[g.ring.Owner(ringKey(&col))]++
	}
	if ownerCols[1] == 0 {
		t.Fatal("fixture batch gives r1 no columns; the fault would be untested")
	}

	rec, resp := postBatch(t, g.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	requireOrdered(t, req, resp)
	if resp.ReroutedColumns != ownerCols[1] {
		t.Errorf("rerouted %d columns, want r1's full shard of %d", resp.ReroutedColumns, ownerCols[1])
	}
	if resp.DegradedColumns != 0 {
		t.Errorf("%d degraded columns — two healthy replicas should absorb r1's shard", resp.DegradedColumns)
	}
	if got := g.met.rerouted.Load(); got != int64(ownerCols[1]) {
		t.Errorf("rerouted_columns_total = %d, want %d", got, ownerCols[1])
	}
	if g.met.shardErrors.Load() == 0 {
		t.Error("no shard errors counted for the injected failures")
	}
	if inj.Fired() == 0 {
		t.Error("fault injector never fired")
	}
}

// TestChaosReplicaKilledMidBatch is the acceptance drill with a real
// network failure instead of an injected error: one of three replicas
// has its connections cut while its shard request is in flight. The
// gateway must fail over and still return a complete, correctly ordered
// response, with the kill visible in the rerouted counts.
func TestChaosReplicaKilledMidBatch(t *testing.T) {
	var (
		victimHit  = make(chan struct{})
		hitOnce    sync.Once
		victimAddr string
	)
	fleet, addrs := startFleet(t, 3, func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/infer" {
				hitOnce.Do(func() { close(victimHit) })
				time.Sleep(300 * time.Millisecond) // hold the request so the kill lands mid-flight
			}
			h.ServeHTTP(w, r)
		})
	})
	victimAddr = fleet[1].http.URL
	g := newTestGateway(t, addrs, nil)

	req := testBatch(30)
	victim := replicaByAddr(g, victimAddr)
	victimShard := 0
	for i := range req.Columns {
		col := toColumn(req.Columns[i])
		if g.ring.Owner(ringKey(&col)) == victim {
			victimShard++
		}
	}
	if victimShard == 0 {
		t.Fatal("fixture batch gives the victim no columns; the kill would be untested")
	}

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		<-victimHit
		fleet[1].http.CloseClientConnections() // the mid-batch kill
	}()
	rec, resp := postBatch(t, g.Handler(), req)
	<-killed

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	requireOrdered(t, req, resp)
	if resp.ReroutedColumns != victimShard {
		t.Errorf("rerouted %d columns, want the victim's full shard of %d", resp.ReroutedColumns, victimShard)
	}
	if resp.DegradedColumns != 0 {
		t.Errorf("%d degraded columns — the survivors should absorb the victim's shard", resp.DegradedColumns)
	}
	if g.met.shardErrors.Load() == 0 {
		t.Error("the cut connection never surfaced as a shard error")
	}
}
