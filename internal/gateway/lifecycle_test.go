package gateway

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file pins the gateway's resource-lifecycle invariants — the ones
// the shvet body-close and timer-stop analyzers guard statically — with
// runtime regression tests: every response body the forwarding client
// ever receives is closed (hedge losers included, whose attempts are
// dropped from a buffered channel after the winner answers), and the
// health prober's ticker goroutine is fully torn down by Close.

// bodyTracker counts response bodies handed out by a transport and
// bodies closed by the client code that received them.
type bodyTracker struct {
	mu     sync.Mutex
	opened int
	closed int
}

func (b *bodyTracker) counts() (opened, closed int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opened, b.closed
}

// trackedBody counts its first Close; double closes are harmless and
// counted once, but a never-closed body leaves opened > closed.
type trackedBody struct {
	io.ReadCloser
	tr   *bodyTracker
	once sync.Once
}

func (b *trackedBody) Close() error {
	b.once.Do(func() {
		b.tr.mu.Lock()
		b.tr.closed++
		b.tr.mu.Unlock()
	})
	return b.ReadCloser.Close()
}

// trackingTransport wraps every delivered response body in a
// trackedBody. Requests canceled before a response is delivered never
// open a body, so opened counts exactly the bodies the gateway owes a
// Close for.
type trackingTransport struct {
	tr   *bodyTracker
	next http.RoundTripper
}

func (t *trackingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.next.RoundTrip(req)
	if resp != nil && resp.Body != nil {
		t.tr.mu.Lock()
		t.tr.opened++
		t.tr.mu.Unlock()
		resp.Body = &trackedBody{ReadCloser: resp.Body, tr: t.tr}
	}
	return resp, err
}

// TestGatewayHedgeLoserBodiesClosed forces hedging on every group (a
// near-zero hedge delay against uniformly slow replicas) and asserts at
// the transport layer that every response body the forwarding client
// received was closed — including hedge losers, whose shardAttempt is
// dropped unread from the buffered attempts channel after the winner
// settles the group.
func TestGatewayHedgeLoserBodiesClosed(t *testing.T) {
	const delay = 100 * time.Millisecond
	_, addrs := startFleet(t, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/infer" {
				time.Sleep(delay)
			}
			h.ServeHTTP(w, r)
		})
	})
	tr := &bodyTracker{}
	g := newTestGateway(t, addrs, func(c *Config) {
		c.Hedge = time.Millisecond
		c.Client = &http.Client{Transport: &trackingTransport{tr: tr, next: http.DefaultTransport}}
	})

	req := testBatch(24)
	rec, resp := postBatch(t, g.Handler(), req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	requireOrdered(t, req, resp)
	if resp.HedgedRequests == 0 {
		t.Fatal("no hedges fired; the test did not exercise the loser path")
	}

	// Straggler attempts resolve into the buffered channel shortly after
	// the winner cancels them; poll until the books balance.
	deadline := time.Now().Add(5 * time.Second)
	for {
		opened, closed := tr.counts()
		if opened > 0 && opened == closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("response bodies leaked: %d opened, %d closed", opened, closed)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayProberStopsOnClose pins the prober's ticker lifecycle:
// Close must tear the probe goroutine (and its ticker) down, after
// which no further /healthz probes may land.
func TestGatewayProberStopsOnClose(t *testing.T) {
	var probes atomic.Int64
	_, addrs := startFleet(t, 1, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				probes.Add(1)
			}
			h.ServeHTTP(w, r)
		})
	})
	const interval = 20 * time.Millisecond
	g, err := New(Config{Replicas: addrs, ProbeInterval: interval, Hedge: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Let the startup sweep plus at least one ticker-driven sweep land.
	deadline := time.Now().Add(5 * time.Second)
	for probes.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d probes before deadline; prober not running", probes.Load())
		}
		time.Sleep(interval / 2)
	}

	// Close blocks until the probe goroutine has exited, so any probe
	// after this point means the ticker outlived the gateway.
	g.Close()
	after := probes.Load()
	time.Sleep(5 * interval)
	if got := probes.Load(); got != after {
		t.Errorf("%d probes landed after Close (count %d -> %d); prober ticker not stopped", got-after, after, got)
	}
}
