package gateway

import (
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"sortinghat/internal/data"
	"sortinghat/internal/obs"
	"sortinghat/internal/resilience"
	"sortinghat/internal/serve"
)

// Gateway defaults. Batch and cell limits default to the daemon's
// (serve.DefaultMaxBatch, serve.DefaultMaxCellBytes) so a batch the
// gateway accepts is one every replica accepts.
const (
	DefaultHedge         = 150 * time.Millisecond
	DefaultProbeInterval = 2 * time.Second
	DefaultTimeout       = serve.DefaultTimeout
	// DefaultFallbackSample is how many distinct values the local rule
	// fallback inspects per column when the whole fleet is unreachable —
	// the daemon's featurization sample size.
	DefaultFallbackSample = 1000
	// DefaultNetSlack is subtracted from the remaining request budget
	// before it is propagated to a replica via X-Deadline-Ms, reserving
	// time for the network hop and response handling.
	DefaultNetSlack = 10 * time.Millisecond
)

// Injector is the fault-injection hook the gateway calls at its named
// sites ("forward@r0", "probe@r1", ...). Production configs leave
// Config.Faults nil; tests pass a *faultinject.Injector.
type Injector interface {
	Inject(site string) error
}

// Config tunes a Gateway. Replicas is required; every other field has a
// working default.
type Config struct {
	// Replicas are the sortinghatd base URLs to shard across, e.g.
	// "http://10.0.0.1:8080". Order and duplicates don't matter: the ring
	// sorts and dedupes, and replica labels r0, r1, ... follow the sorted
	// order.
	Replicas []string
	// VNodes is the virtual nodes per replica on the ring (0 =
	// DefaultVNodes).
	VNodes int
	// Hedge is how long a shard request may go unanswered before the next
	// candidate replica is speculatively fired (0 = DefaultHedge,
	// negative disables hedging).
	Hedge time.Duration
	// Timeout bounds each client request end to end (0 = DefaultTimeout,
	// negative disables).
	Timeout time.Duration
	// ProbeInterval is the /healthz polling period (0 =
	// DefaultProbeInterval).
	ProbeInterval time.Duration
	// MaxBatch caps columns per request (0 = serve.DefaultMaxBatch).
	MaxBatch int
	// MaxCellBytes caps CSV cell size (0 = serve.DefaultMaxCellBytes).
	MaxCellBytes int
	// QueueDepth is the admission gate high-water mark in columns (0 =
	// 2*MaxBatch).
	QueueDepth int
	// Breaker tunes the per-replica forwarding breakers.
	Breaker resilience.BreakerConfig
	// NetSlack is the network allowance subtracted from the remaining
	// request budget before propagating it to replicas (0 =
	// DefaultNetSlack, negative disables deadline propagation).
	NetSlack time.Duration
	// RetryBudget bounds speculative work — hedges and failover retries —
	// fleet-wide. The zero value takes the resilience package defaults
	// (~10% of successful traffic plus a small floor).
	RetryBudget resilience.RetryBudgetConfig
	// ReplicaLimit tunes the adaptive (AIMD) per-replica concurrency
	// limiters. The zero value takes the resilience package defaults.
	ReplicaLimit resilience.AIMDConfig
	// Backoff tunes the per-replica retry backoff armed by shedding
	// (429/503) answers. The zero value takes the resilience package
	// defaults; replica i's jitter RNG is seeded Backoff.Seed + i.
	Backoff resilience.BackoffConfig
	// RetryAfterMax caps the Retry-After hint (seconds) on shed and
	// budget-spent responses (0 = serve.DefaultRetryAfterMax).
	RetryAfterMax int
	// TraceRing is the recent-traces ring capacity (0 =
	// obs.DefaultTraceRing).
	TraceRing int
	// TraceSink, when non-nil, receives every finished gateway trace as
	// one JSON line (JSONL) carrying the full trace/span identity — the
	// stream cmd/tracecat joins with the replicas' sinks. See the
	// -trace-out flag of cmd/sortinghatgw.
	TraceSink io.Writer
	// FlightRing caps each ring of the flight recorder behind
	// GET /debug/flight (0 = obs.DefaultFlightRing).
	FlightRing int
	// Logger, when set, receives structured access and fleet-event logs.
	Logger *slog.Logger
	// Faults, when set, injects faults at the gateway's sites. Testing
	// only.
	Faults Injector
	// Client overrides the forwarding HTTP client (nil = a fresh client;
	// request deadlines come from Timeout via context either way).
	Client *http.Client
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// normalized fills in the documented defaults.
func (c Config) normalized() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Hedge == 0 {
		c.Hedge = DefaultHedge
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = serve.DefaultMaxBatch
	}
	if c.MaxCellBytes <= 0 {
		c.MaxCellBytes = serve.DefaultMaxCellBytes
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxBatch
	}
	if c.NetSlack == 0 {
		c.NetSlack = DefaultNetSlack
	}
	if c.RetryAfterMax <= 0 {
		c.RetryAfterMax = serve.DefaultRetryAfterMax
	}
	if c.TraceRing <= 0 {
		c.TraceRing = obs.DefaultTraceRing
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// replica is the gateway's per-replica state: address, stable label,
// probe-observed health, and the local forwarding breaker.
type replica struct {
	addr    string
	label   string // "r0", "r1", ... in ring (sorted-address) order
	breaker *resilience.Breaker
	limiter *resilience.AIMDLimiter // adaptive concurrency cap on forwards
	backoff *resilience.Backoff     // armed by shedding (429/503) answers
	health  atomic.Int32            // Health, written by the prober

	requests atomic.Int64 // shard requests sent to this replica
	errors   atomic.Int64 // shard requests that failed
}

// Health is a replica's probe-observed state.
type Health int32

// The three probe states, ordered by routing preference.
const (
	// Healthy replicas answered their last probe with status "ok".
	Healthy Health = iota
	// Degraded replicas answered with status "degraded": alive, but
	// serving from their rule fallback. Deprioritized, not avoided.
	Degraded
	// Down replicas failed their last probe and are routed around.
	Down
)

// String names the state for /healthz payloads and logs.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	default:
		return "down"
	}
}

// Gateway shards inference batches across a fleet of sortinghatd
// replicas. Construct with New, expose Handler over HTTP, and Close to
// stop the prober.
type Gateway struct {
	cfg      Config
	ring     *Ring
	replicas []*replica
	owned    []float64 // ring ownership share, indexed like replicas
	gate     *resilience.Gate
	budget   *resilience.RetryBudget // fleet-wide bound on speculative work
	tracer   *obs.Tracer
	flight   *obs.FlightRecorder
	logger   *slog.Logger
	faults   Injector
	met      *metrics
	start    time.Time
	reqSeq   atomic.Int64

	probeStop chan struct{}
	probeDone chan struct{}
}

// New builds a Gateway over cfg.Replicas and starts its health prober.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.normalized()
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:       cfg,
		ring:      ring,
		owned:     ring.Ownership(),
		gate:      resilience.NewGate(cfg.QueueDepth),
		budget:    resilience.NewRetryBudget(cfg.RetryBudget),
		tracer:    obs.NewTracer(cfg.TraceRing),
		flight:    obs.NewFlightRecorder(cfg.FlightRing),
		logger:    cfg.Logger,
		faults:    cfg.Faults,
		start:     time.Now(),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	if cfg.TraceSink != nil {
		g.tracer.SetSink(cfg.TraceSink)
	}
	for i, addr := range ring.Replicas() {
		bcfg := cfg.Backoff
		// Offset the seed per replica so peers' jitter decorrelates while
		// the whole fleet's schedule stays reproducible from one seed.
		bcfg.Seed += int64(i)
		r := &replica{
			addr:    addr,
			label:   "r" + strconv.Itoa(i),
			breaker: resilience.NewBreaker(cfg.Breaker),
			limiter: resilience.NewAIMDLimiter(cfg.ReplicaLimit),
			backoff: resilience.NewBackoff(bcfg),
		}
		// Until the first probe lands, optimism: route normally rather
		// than stalling a fresh gateway behind one probe interval.
		r.health.Store(int32(Healthy))
		g.replicas = append(g.replicas, r)
	}
	g.met = newMetrics(g)
	go g.probeLoop()
	return g, nil
}

// Close stops the health prober. In-flight requests are the HTTP
// server's to drain; the gateway holds no other background state.
func (g *Gateway) Close() {
	close(g.probeStop)
	<-g.probeDone
}

// ringKey is the routing key for a column: the first 8 bytes of the
// daemon's 128-bit content hash. Using the cache-key hash means the
// gateway's shard map and each replica's cache identity agree by
// construction — a column always revisits the replica that cached it.
func ringKey(col *data.Column) uint64 {
	sum := serve.ColumnHash(col)
	return binary.BigEndian.Uint64(sum[:8])
}

// healthClass buckets a replica for candidate ordering: 0 route
// normally, 1 deprioritize, 2 route around. The probe result, the
// local forwarding breaker, the backoff window, and the adaptive
// concurrency limiter all contribute — a replica that probes healthy
// but is shedding, backing off, or at its concurrency limit is
// deprioritized so failovers prefer replicas with headroom.
func (g *Gateway) healthClass(i int) int {
	r := g.replicas[i]
	switch {
	case Health(r.health.Load()) == Down, r.breaker.State() == resilience.Open:
		return 2
	case Health(r.health.Load()) == Degraded, r.breaker.State() == resilience.HalfOpen,
		!r.backoff.Ready(), r.limiter.Saturated():
		return 1
	default:
		return 0
	}
}

// candidates returns the failover order for a group owned by owner:
// replicas in ring order starting at the owner, stably bucketed healthy
// < degraded < down. A healthy owner is always first; a dead owner's
// groups go to the next healthy replica clockwise, and down replicas
// remain last-resort candidates (their breaker half-open probe decides
// whether they are actually tried).
func (g *Gateway) candidates(owner int) []int {
	n := len(g.replicas)
	order := make([]int, 0, n)
	for class := 0; class <= 2; class++ {
		for d := 0; d < n; d++ {
			i := (owner + d) % n
			if g.healthClass(i) == class {
				order = append(order, i)
			}
		}
	}
	return order
}

// inject visits a fault site when an injector is configured.
func (g *Gateway) inject(site string) error {
	if g.faults == nil {
		return nil
	}
	return g.faults.Inject(site)
}

// faultsFired samples the injector's lifetime fire count for /metrics.
func (g *Gateway) faultsFired() int64 {
	f, ok := g.faults.(interface{ Fired() int64 })
	if !ok {
		return 0
	}
	return f.Fired()
}

// healthyCount is the /metrics view of fleet health: replicas currently
// in routing class 0.
func (g *Gateway) healthyCount() int64 {
	var n int64
	for i := range g.replicas {
		if g.healthClass(i) == 0 {
			n++
		}
	}
	return n
}

// probeLoop polls every replica's /healthz each ProbeInterval until
// Close. The first sweep runs immediately so a fresh gateway converges
// on real fleet state within one probe round-trip, not one interval.
func (g *Gateway) probeLoop() {
	defer close(g.probeDone)
	client := &http.Client{Timeout: g.cfg.ProbeInterval}
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		g.probeAll(client)
		select {
		case <-g.probeStop:
			return
		case <-ticker.C:
		}
	}
}

// probeAll sweeps the fleet once, serially: probe timeouts are bounded
// by the client timeout, and fleets are small (a handful of replicas),
// so a sweep always fits one interval.
func (g *Gateway) probeAll(client *http.Client) {
	for _, r := range g.replicas {
		next := g.probeOne(client, r)
		prev := Health(r.health.Swap(int32(next)))
		if next != prev {
			g.met.probeTransitions.Add(1)
			if g.logger != nil {
				g.logger.Info("replica health changed",
					"replica", r.label, "addr", r.addr,
					"from", prev.String(), "to", next.String())
			}
		}
	}
}

// probeOne classifies one replica from its /healthz answer: "ok" is
// Healthy, "degraded" is Degraded, anything else — transport error,
// non-200, unparseable body — is Down.
func (g *Gateway) probeOne(client *http.Client, r *replica) Health {
	if err := g.inject("probe@" + r.label); err != nil {
		g.met.probeFailures.Add(1)
		return Down
	}
	resp, err := client.Get(r.addr + "/healthz")
	if err != nil {
		g.met.probeFailures.Add(1)
		return Down
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		g.met.probeFailures.Add(1)
		return Down
	}
	var h serve.HealthResponse
	if err := decodeJSONBody(resp, &h); err != nil {
		g.met.probeFailures.Add(1)
		return Down
	}
	switch h.Status {
	case "ok":
		return Healthy
	case "degraded":
		return Degraded
	default:
		g.met.probeFailures.Add(1)
		return Down
	}
}

// Replicas describes the fleet for /healthz: one entry per replica in
// ring order.
func (g *Gateway) replicaStatuses() []ReplicaStatus {
	out := make([]ReplicaStatus, len(g.replicas))
	for i, r := range g.replicas {
		out[i] = ReplicaStatus{
			Replica:   r.label,
			Addr:      r.addr,
			Health:    Health(r.health.Load()).String(),
			Breaker:   r.breaker.State().String(),
			Ownership: g.owned[i],
			Requests:  r.requests.Load(),
			Errors:    r.errors.Load(),
		}
	}
	return out
}

// String summarises the topology for startup logs.
func (g *Gateway) String() string {
	return fmt.Sprintf("gateway over %d replicas, %d vnodes each", len(g.replicas), g.cfg.VNodes)
}
