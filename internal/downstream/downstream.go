// Package downstream implements the downstream benchmark suite machinery
// (Section 5 of the paper): routing each column to a featurization
// according to its (inferred or true) feature type, training downstream
// models at both ends of the bias-variance spectrum (L2 logistic/linear
// regression and Random Forest), and scoring them against the performance
// obtained with perfect type inference.
//
// The Section 5.3 routing: Numeric columns are used as-is, Categorical
// columns are one-hot encoded, Sentence columns go through TF-IDF, URLs
// through word-level bigrams, Not-Generalizable columns are dropped, and
// every other type is featurized with character bigrams.
package downstream

import (
	"fmt"
	"math"
	"math/rand"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/linear"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/ml/modelsel"
	"sortinghat/internal/ml/tree"
	"sortinghat/internal/stats"
	"sortinghat/internal/synth"
)

// Featurization caps; modest sizes keep 60 downstream models tractable on
// one core without changing who wins.
const (
	oneHotCap   = 40
	tfidfVocab  = 150
	charHashDim = 48
	urlHashDim  = 48
)

// columnEncoder turns one raw column into a block of feature values, fitted
// on training rows only.
type columnEncoder interface {
	dim() int
	encode(v string) []float64
}

type numericEncoder struct{ mean, std float64 }

func fitNumeric(vals []string, trainRows []int) *numericEncoder {
	var sum, sumsq, n float64
	for _, r := range trainRows {
		if f, ok := stats.ParseFloat(vals[r]); ok {
			sum += f
			sumsq += f * f
			n++
		}
	}
	e := &numericEncoder{}
	if n > 0 {
		e.mean = sum / n
		if variance := sumsq/n - e.mean*e.mean; variance > 0 {
			e.std = math.Sqrt(variance)
		}
	}
	if e.std <= 0 {
		e.std = 1
	}
	return e
}

func (e *numericEncoder) dim() int { return 1 }
func (e *numericEncoder) encode(v string) []float64 {
	f, ok := stats.ParseFloat(v)
	if !ok {
		return []float64{0} // non-castable cells impute to the (scaled) mean
	}
	return []float64{(f - e.mean) / e.std}
}

type oneHotColEncoder struct{ enc *featurize.OneHotEncoder }

func (e *oneHotColEncoder) dim() int                  { return e.enc.Dim }
func (e *oneHotColEncoder) encode(v string) []float64 { return e.enc.Transform(v) }

type tfidfColEncoder struct{ enc *featurize.TFIDF }

func (e *tfidfColEncoder) dim() int                  { return e.enc.Dim() }
func (e *tfidfColEncoder) encode(v string) []float64 { return e.enc.Transform(v) }

type charBigramEncoder struct{ d int }

func (e *charBigramEncoder) dim() int                  { return e.d }
func (e *charBigramEncoder) encode(v string) []float64 { return featurize.HashNgrams(v, 2, e.d) }

type wordBigramEncoder struct{ d int }

func (e *wordBigramEncoder) dim() int                  { return e.d }
func (e *wordBigramEncoder) encode(v string) []float64 { return featurize.HashWordBigrams(v, e.d) }

// buildEncoder fits the Section 5.3 routing for one column under the given
// inferred type. It returns nil for dropped (Not-Generalizable) columns.
func buildEncoder(col *data.Column, t ftype.FeatureType, trainRows []int) columnEncoder {
	switch t {
	case ftype.Numeric:
		return fitNumeric(col.Values, trainRows)
	case ftype.Categorical, ftype.Country, ftype.State:
		vals := make([]string, len(trainRows))
		for i, r := range trainRows {
			vals[i] = col.Values[r]
		}
		return &oneHotColEncoder{featurize.FitOneHot(vals, oneHotCap)}
	case ftype.Sentence:
		docs := make([]string, len(trainRows))
		for i, r := range trainRows {
			docs[i] = col.Values[r]
		}
		return &tfidfColEncoder{featurize.FitTFIDF(docs, tfidfVocab)}
	case ftype.URL:
		return &wordBigramEncoder{urlHashDim}
	case ftype.NotGeneralizable:
		return nil
	default:
		// Datetime, Embedded Number, List, Context-Specific, Unknown:
		// char-bigram featurization.
		return &charBigramEncoder{charHashDim}
	}
}

// Design builds the downstream design matrix for the feature columns of ds
// (all but the final target column), routed by types, with encoders fitted
// on trainRows only.
func Design(ds *data.Dataset, types []ftype.FeatureType, trainRows []int) [][]float64 {
	nCols := ds.NumCols() - 1
	encoders := make([]columnEncoder, nCols)
	total := 0
	for c := 0; c < nCols; c++ {
		encoders[c] = buildEncoder(&ds.Columns[c], types[c], trainRows)
		if encoders[c] != nil {
			total += encoders[c].dim()
		}
	}
	X := make([][]float64, ds.NumRows())
	for r := range X {
		row := make([]float64, 0, total)
		for c := 0; c < nCols; c++ {
			if encoders[c] == nil {
				continue
			}
			row = append(row, encoders[c].encode(ds.Columns[c].Values[r])...)
		}
		X[r] = row
	}
	return X
}

// Model selects the downstream model family.
type Model string

// Downstream model families (both ends of the bias-variance tradeoff).
const (
	LinearModel Model = "linear" // logistic regression / ridge regression
	ForestModel Model = "forest" // random forest
)

// Eval holds one downstream evaluation result.
type Eval struct {
	Dataset string
	Model   Model
	Acc     float64 // classification accuracy ×100 (classification tasks)
	RMSE    float64 // regression error (regression tasks)
}

// downstream random-forest sizing (kept modest for single-core runs).
const (
	rfTrees = 30
	rfDepth = 20
)

// Evaluate trains and scores one downstream model on ds with the given
// per-column feature types. The split is a deterministic 70:30 train/test
// partition (stratified for classification).
func Evaluate(d *synth.Downstream, types []ftype.FeatureType, model Model, seed int64) (Eval, error) {
	ev := Eval{Dataset: d.Spec.Name, Model: model}
	rng := rand.New(rand.NewSource(seed))
	if !d.IsRegression() {
		train, test := modelsel.StratifiedSplit(d.TargetCls, 0.3, rng)
		X := Design(d.Data, types, train)
		Xtr, ytr := modelsel.Gather(X, train), modelsel.GatherInts(d.TargetCls, train)
		Xte, yte := modelsel.Gather(X, test), modelsel.GatherInts(d.TargetCls, test)
		pred, err := fitPredictClassifier(model, Xtr, ytr, Xte, d.Spec.Classes, seed)
		if err != nil {
			return ev, fmt.Errorf("downstream: %s: %w", d.Spec.Name, err)
		}
		ev.Acc = 100 * metrics.Accuracy(yte, pred)
		return ev, nil
	}

	// Regression.
	n := d.Data.NumRows()
	perm := rng.Perm(n)
	cut := n * 7 / 10
	train, test := perm[:cut], perm[cut:]
	X := Design(d.Data, types, train)
	Xtr, ytr := modelsel.Gather(X, train), modelsel.GatherFloats(d.TargetReg, train)
	Xte, yte := modelsel.Gather(X, test), modelsel.GatherFloats(d.TargetReg, test)
	var pred []float64
	switch model {
	case LinearModel:
		m := linear.NewRidge(1.0)
		if err := m.Fit(Xtr, ytr); err != nil {
			return ev, fmt.Errorf("downstream: %s: %w", d.Spec.Name, err)
		}
		pred = m.Predict(Xte)
	case ForestModel:
		m := tree.NewRegressor(rfTrees, rfDepth)
		m.Seed = seed
		if err := m.FitRegression(Xtr, ytr); err != nil {
			return ev, fmt.Errorf("downstream: %s: %w", d.Spec.Name, err)
		}
		pred = m.PredictValues(Xte)
	default:
		return ev, fmt.Errorf("downstream: unknown model %q", model)
	}
	ev.RMSE = metrics.RMSE(yte, pred)
	return ev, nil
}

// fitPredictClassifier trains the selected downstream classifier and
// predicts the test rows.
func fitPredictClassifier(model Model, Xtr [][]float64, ytr []int, Xte [][]float64, classes int, seed int64) ([]int, error) {
	switch model {
	case LinearModel:
		m := linear.NewLogisticRegression()
		m.Seed = seed
		if err := m.Fit(Xtr, ytr, classes); err != nil {
			return nil, err
		}
		return m.Predict(Xte), nil
	case ForestModel:
		m := tree.NewClassifier(rfTrees, rfDepth)
		m.Seed = seed
		if err := m.Fit(Xtr, ytr, classes); err != nil {
			return nil, err
		}
		return m.Predict(Xte), nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

// InferTypes applies a type-inference approach to every feature column.
type TypeInferrer interface {
	Name() string
	Infer(col *data.Column) ftype.FeatureType
}

// InferTypes runs the inferrer over the feature columns of d.
func InferTypes(d *synth.Downstream, inf TypeInferrer) []ftype.FeatureType {
	n := d.Data.NumCols() - 1
	out := make([]ftype.FeatureType, n)
	for c := 0; c < n; c++ {
		out[c] = inf.Infer(&d.Data.Columns[c])
	}
	return out
}
