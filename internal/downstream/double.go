package downstream

import (
	"fmt"
	"math/rand"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/ml/modelsel"
	"sortinghat/internal/stats"
	"sortinghat/internal/synth"
)

// IsIntegerColumn reports whether every non-missing cell of the column is a
// plain integer — the population the paper's double-representation study
// (Appendix I.5.2) applies to.
func IsIntegerColumn(col *data.Column) bool {
	any := false
	for _, v := range col.Values {
		if data.IsMissing(v) {
			continue
		}
		if !stats.IsInt(v) {
			return false
		}
		any = true
	}
	return any
}

// DesignDouble builds the design matrix like Design, but columns flagged in
// double receive both the numeric and the one-hot representation at once,
// regardless of their inferred type.
func DesignDouble(ds *data.Dataset, types []ftype.FeatureType, double []bool, trainRows []int) [][]float64 {
	nCols := ds.NumCols() - 1
	var encoders [][]columnEncoder
	for c := 0; c < nCols; c++ {
		var encs []columnEncoder
		if double != nil && double[c] {
			vals := make([]string, len(trainRows))
			for i, r := range trainRows {
				vals[i] = ds.Columns[c].Values[r]
			}
			encs = append(encs,
				fitNumeric(ds.Columns[c].Values, trainRows),
				&oneHotColEncoder{featurize.FitOneHot(vals, oneHotCap)})
		} else if e := buildEncoder(&ds.Columns[c], types[c], trainRows); e != nil {
			encs = append(encs, e)
		}
		encoders = append(encoders, encs)
	}
	X := make([][]float64, ds.NumRows())
	for r := range X {
		var row []float64
		for c := 0; c < nCols; c++ {
			for _, e := range encoders[c] {
				row = append(row, e.encode(ds.Columns[c].Values[r])...)
			}
		}
		X[r] = row
	}
	return X
}

// EvaluateDouble scores one downstream model with the double-representation
// design matrix (classification tasks only, as in the paper's study).
func EvaluateDouble(d *synth.Downstream, types []ftype.FeatureType, double []bool, model Model, seed int64) (Eval, error) {
	ev := Eval{Dataset: d.Spec.Name, Model: model}
	if d.IsRegression() {
		return ev, fmt.Errorf("downstream: double representation study covers classification only")
	}
	rng := rand.New(rand.NewSource(seed))
	train, test := modelsel.StratifiedSplit(d.TargetCls, 0.3, rng)
	X := DesignDouble(d.Data, types, double, train)
	Xtr, ytr := modelsel.Gather(X, train), modelsel.GatherInts(d.TargetCls, train)
	Xte, yte := modelsel.Gather(X, test), modelsel.GatherInts(d.TargetCls, test)
	pred, err := fitPredictClassifier(model, Xtr, ytr, Xte, d.Spec.Classes, seed)
	if err != nil {
		return ev, fmt.Errorf("downstream: %s: %w", d.Spec.Name, err)
	}
	ev.Acc = 100 * metrics.Accuracy(yte, pred)
	return ev, nil
}
