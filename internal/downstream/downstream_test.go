package downstream

import (
	"testing"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/synth"
)

func demoDataset() *synth.Downstream {
	return synth.Generate(synth.DatasetSpec{
		Name: "demo", Rows: 300, Classes: 2, Noise: 0.3, Seed: 5,
		Cols: []synth.ColSpec{
			{Name: "x", Kind: synth.KindNumFloat, Weight: 1},
			{Name: "code", Kind: synth.KindCatInt, Weight: 1, Card: 4},
			{Name: "notes", Kind: synth.KindSentence, Weight: 0.8, Card: 3},
			{Name: "id", Kind: synth.KindPK},
		},
	})
}

func TestDesignRouting(t *testing.T) {
	d := demoDataset()
	train := seqRows(0, 200)
	X := Design(d.Data, d.TrueTypes, train)
	if len(X) != 300 {
		t.Fatalf("rows = %d", len(X))
	}
	// Numeric(1) + one-hot(<=card*7 sparse codes + other) + tfidf + PK dropped.
	width := len(X[0])
	if width < 1+2+1 {
		t.Fatalf("design width = %d, implausibly small", width)
	}
	// Dropping NG must shrink the design vs treating it as Categorical.
	asCat := append([]ftype.FeatureType(nil), d.TrueTypes...)
	asCat[3] = ftype.Categorical
	X2 := Design(d.Data, asCat, train)
	if len(X2[0]) <= width {
		t.Errorf("one-hot of the PK should widen the design: %d vs %d", len(X2[0]), width)
	}
}

func seqRows(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestEvaluateClassification(t *testing.T) {
	d := demoDataset()
	truth, err := Evaluate(d, d.TrueTypes, LinearModel, 1)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if truth.Acc < 55 {
		t.Errorf("truth accuracy = %.1f, should comfortably beat chance", truth.Acc)
	}
	// Mis-typing the informative int-coded categorical as Numeric must hurt
	// the linear model (the Table 5 mechanism).
	wrong := append([]ftype.FeatureType(nil), d.TrueTypes...)
	wrong[1] = ftype.Numeric
	broken, err := Evaluate(d, wrong, LinearModel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if broken.Acc >= truth.Acc {
		t.Errorf("numeric-coded categorical should hurt the linear model: %.1f vs %.1f", broken.Acc, truth.Acc)
	}
	// ...but the random forest must be largely robust to it.
	truthRF, err := Evaluate(d, d.TrueTypes, ForestModel, 1)
	if err != nil {
		t.Fatal(err)
	}
	brokenRF, err := Evaluate(d, wrong, ForestModel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if truthRF.Acc-brokenRF.Acc > 15 {
		t.Errorf("forest should tolerate int-coded categories: %.1f vs %.1f", brokenRF.Acc, truthRF.Acc)
	}
}

func TestEvaluateRegression(t *testing.T) {
	d := synth.Generate(synth.DatasetSpec{
		Name: "reg", Rows: 300, Classes: 0, Noise: 0.2, Seed: 6,
		Cols: []synth.ColSpec{
			{Name: "a", Kind: synth.KindNumFloat, Weight: 1},
			{Name: "b", Kind: synth.KindCatInt, Weight: 1, Card: 4},
		},
	})
	truth, err := Evaluate(d, d.TrueTypes, LinearModel, 2)
	if err != nil {
		t.Fatal(err)
	}
	if truth.RMSE <= 0 {
		t.Fatalf("RMSE = %f", truth.RMSE)
	}
	wrong := []ftype.FeatureType{ftype.Numeric, ftype.Numeric}
	broken, err := Evaluate(d, wrong, LinearModel, 2)
	if err != nil {
		t.Fatal(err)
	}
	if broken.RMSE <= truth.RMSE {
		t.Errorf("wrong typing should raise RMSE: %.3f vs %.3f", broken.RMSE, truth.RMSE)
	}
}

func TestEvaluateErrors(t *testing.T) {
	d := demoDataset()
	if _, err := Evaluate(d, d.TrueTypes, Model("bogus"), 1); err == nil {
		t.Error("unknown model must error")
	}
	if _, err := EvaluateDouble(d, d.TrueTypes, nil, Model("bogus"), 1); err == nil {
		t.Error("unknown model must error in double variant")
	}
	reg := synth.Generate(synth.DatasetSpec{Name: "r", Rows: 50, Classes: 0, Seed: 1,
		Cols: []synth.ColSpec{{Name: "a", Kind: synth.KindNumFloat, Weight: 1}}})
	if _, err := EvaluateDouble(reg, reg.TrueTypes, nil, ForestModel, 1); err == nil {
		t.Error("double representation on regression must error")
	}
}

func TestIsIntegerColumn(t *testing.T) {
	yes := &data.Column{Name: "a", Values: []string{"1", "05", "-3", "", "NA"}}
	if !IsIntegerColumn(yes) {
		t.Error("integer column not recognised")
	}
	no := &data.Column{Name: "b", Values: []string{"1", "2.5"}}
	if IsIntegerColumn(no) {
		t.Error("float column recognised as integer")
	}
	empty := &data.Column{Name: "c", Values: []string{"", "NA"}}
	if IsIntegerColumn(empty) {
		t.Error("all-missing column is not an integer column")
	}
}

func TestEvaluateDoubleRecoversWrongTyping(t *testing.T) {
	// Double representation of integer columns restores the one-hot signal
	// even when the column was wrongly typed Numeric.
	d := demoDataset()
	wrong := append([]ftype.FeatureType(nil), d.TrueTypes...)
	wrong[1] = ftype.Numeric
	single, err := Evaluate(d, wrong, LinearModel, 3)
	if err != nil {
		t.Fatal(err)
	}
	double := make([]bool, len(wrong))
	double[1] = true
	dbl, err := EvaluateDouble(d, wrong, double, LinearModel, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dbl.Acc < single.Acc-1 {
		t.Errorf("double representation should not hurt: %.1f vs %.1f", dbl.Acc, single.Acc)
	}
}

func TestInferTypesUsesAllFeatureColumns(t *testing.T) {
	d := demoDataset()
	fixed := fixedInferrer{t: ftype.Categorical}
	types := InferTypes(d, fixed)
	if len(types) != d.Data.NumCols()-1 {
		t.Fatalf("types = %d", len(types))
	}
	for _, ty := range types {
		if ty != ftype.Categorical {
			t.Fatal("inferrer not applied")
		}
	}
}

type fixedInferrer struct{ t ftype.FeatureType }

func (f fixedInferrer) Name() string                         { return "fixed" }
func (f fixedInferrer) Infer(*data.Column) ftype.FeatureType { return f.t }

func TestEncoderRoutingPerType(t *testing.T) {
	// A minimal dataset exercising every Section-5.3 route.
	mk := func(vals []string) data.Column { return data.Column{Name: "c", Values: vals} }
	repeat := func(pattern []string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = pattern[i%len(pattern)]
		}
		return out
	}
	n := 40
	ds := &data.Dataset{Name: "routes", Columns: []data.Column{
		mk(repeat([]string{"1.5", "2.5", "3.5"}, n)),                        // Numeric
		mk(repeat([]string{"red", "blue", "green"}, n)),                     // Categorical
		mk(repeat([]string{"great product works", "poor quality item"}, n)), // Sentence
		mk(repeat([]string{"https://a.com/x", "https://b.org/y"}, n)),       // URL
		mk(repeat([]string{"id1", "id2"}, n)),                               // NG -> dropped
		mk(repeat([]string{"2020-01-02", "2021-03-04"}, n)),                 // Datetime -> char bigrams
		mk(repeat([]string{"t"}, n)),                                        // target placeholder
	}}
	types := []ftype.FeatureType{
		ftype.Numeric, ftype.Categorical, ftype.Sentence,
		ftype.URL, ftype.NotGeneralizable, ftype.Datetime,
	}
	train := seqRows(0, 30)
	X := Design(ds, types, train)
	width := len(X[0])
	// Expected widths: numeric 1, one-hot 3+1, tfidf <= vocab, url hash, bigram hash.
	min := 1 + 4 + 1 + urlHashDim + charHashDim
	if width < min {
		t.Errorf("design width = %d, want >= %d", width, min)
	}
	// Dropping the NG column: re-typing it Numeric adds exactly 1 dim
	// (non-castable -> constant zero but still a slot).
	types[4] = ftype.Numeric
	X2 := Design(ds, types, train)
	if len(X2[0]) != width+1 {
		t.Errorf("NG->Numeric should add one dimension: %d vs %d", len(X2[0]), width)
	}
	// Numeric standardization: training mean ~0.
	var mean float64
	for _, r := range train {
		mean += X[r][0]
	}
	mean /= float64(len(train))
	if mean > 0.2 || mean < -0.2 {
		t.Errorf("numeric route not standardized: train mean %f", mean)
	}
}

func TestNumericEncoderImputesNonCastable(t *testing.T) {
	e := fitNumeric([]string{"1", "2", "3"}, []int{0, 1, 2})
	if got := e.encode("garbage"); got[0] != 0 {
		t.Errorf("non-castable cell should impute to scaled mean (0), got %f", got[0])
	}
	if got := e.encode("2"); got[0] > 0.1 || got[0] < -0.1 {
		t.Errorf("mean value should encode near 0, got %f", got[0])
	}
}
