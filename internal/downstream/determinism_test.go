package downstream

import "testing"

// The downstream benchmark is only meaningful if a fixed seed pins its
// numbers: Section 5's lift tables compare accuracies whose differences
// are fractions of a point, so run-to-run jitter would drown the signal.
// Both model families must be bit-reproducible — the forest in particular,
// because its trees are trained by a goroutine pool and any dependence on
// scheduling order would show up here as a flaky diff.

func TestEvaluateDeterministicLinear(t *testing.T) {
	d := demoDataset()
	a, err := Evaluate(d, d.TrueTypes, LinearModel, 7)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	b, err := Evaluate(d, d.TrueTypes, LinearModel, 7)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if a != b {
		t.Errorf("same seed, different linear evals: %+v vs %+v", a, b)
	}
}

func TestEvaluateDeterministicForest(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	d := demoDataset()
	a, err := Evaluate(d, d.TrueTypes, ForestModel, 7)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	b, err := Evaluate(d, d.TrueTypes, ForestModel, 7)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if a != b {
		t.Errorf("same seed, different forest evals: %+v vs %+v", a, b)
	}
	// A different seed must actually change the stream (the generator is
	// injected, not global): identical results would mean the seed is dead.
	c, err := Evaluate(d, d.TrueTypes, ForestModel, 8)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if a == c {
		t.Logf("note: seeds 7 and 8 produced identical evals %+v; suspicious but not impossible", a)
	}
}
