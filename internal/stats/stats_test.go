package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sortinghat/internal/data"
)

func TestComputeBasics(t *testing.T) {
	col := &data.Column{Name: "x", Values: []string{"1", "2", "2", "", "NA", "3"}}
	s := Compute(col, []string{"1", "2", "3"})
	if s.TotalVals != 6 {
		t.Errorf("TotalVals = %d", s.TotalVals)
	}
	if s.NumNaNs != 2 {
		t.Errorf("NumNaNs = %d", s.NumNaNs)
	}
	if s.NumUnique != 3 {
		t.Errorf("NumUnique = %d", s.NumUnique)
	}
	if math.Abs(s.PctNaNs-100.0*2/6) > 1e-9 {
		t.Errorf("PctNaNs = %f", s.PctNaNs)
	}
	if s.CastableFloatPct != 1 || s.CastableIntPct != 1 {
		t.Errorf("castable fractions = %f/%f", s.CastableFloatPct, s.CastableIntPct)
	}
	if math.Abs(s.MeanVal-2) > 1e-9 {
		t.Errorf("MeanVal = %f", s.MeanVal)
	}
	if s.MinVal != 1 || s.MaxVal != 3 {
		t.Errorf("min/max = %f/%f", s.MinVal, s.MaxVal)
	}
}

func TestComputeSampleChecks(t *testing.T) {
	col := &data.Column{Name: "u", Values: []string{"https://a.com", "https://b.org"}}
	s := Compute(col, []string{"https://a.com", "https://b.org"})
	if !s.SampleHasURL {
		t.Error("SampleHasURL = false for URL samples")
	}
	if s.SampleHasDate || s.SampleHasList {
		t.Error("unexpected date/list flags")
	}

	dateCol := &data.Column{Name: "d", Values: []string{"2020-01-01", "2020-02-02"}}
	ds := Compute(dateCol, []string{"2020-01-01", "2020-02-02"})
	if !ds.SampleHasDate {
		t.Error("SampleHasDate = false for ISO dates")
	}
}

func TestComputeMajorityRule(t *testing.T) {
	// 1 of 3 samples is a URL: majority fails.
	col := &data.Column{Name: "m", Values: []string{"x"}}
	s := Compute(col, []string{"https://a.com", "plain", "other"})
	if s.SampleHasURL {
		t.Error("minority match should not set the flag")
	}
	s = Compute(col, []string{"https://a.com", "https://b.com", "other"})
	if !s.SampleHasURL {
		t.Error("majority match should set the flag")
	}
	// All-missing samples never match.
	s = Compute(col, []string{"", "NA"})
	if s.SampleHasURL || s.SampleHasDate {
		t.Error("missing samples must not match")
	}
}

func TestComputeEmptyColumn(t *testing.T) {
	col := &data.Column{Name: "e", Values: nil}
	s := Compute(col, nil)
	if s.TotalVals != 0 || s.PctNaNs != 0 || s.NumUnique != 0 {
		t.Errorf("empty column stats: %+v", s)
	}
	v := s.Vector()
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("vector[%d] not finite: %v", i, x)
		}
	}
}

func TestVectorShape(t *testing.T) {
	var s Stats
	if len(s.Vector()) != VectorDim {
		t.Fatalf("Vector len = %d, want %d", len(s.Vector()), VectorDim)
	}
	if len(VectorNames()) != VectorDim {
		t.Fatalf("VectorNames len = %d, want %d", len(VectorNames()), VectorDim)
	}
}

// TestVectorAlwaysFinite is a property test: no column contents may produce
// NaN or infinite features.
func TestVectorAlwaysFinite(t *testing.T) {
	f := func(vals []string) bool {
		col := &data.Column{Name: "p", Values: vals}
		samples := vals
		if len(samples) > 5 {
			samples = samples[:5]
		}
		s := Compute(col, samples)
		for _, x := range s.Vector() {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		return s.PctNaNs >= 0 && s.PctNaNs <= 100 && s.PctUnique >= 0 && s.PctUnique <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMeanStdAgainstNaive checks the streaming moments against a naive
// implementation on random numeric columns.
func TestMeanStdAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(50) + 2
		vals := make([]string, n)
		fs := make([]float64, n)
		for i := range vals {
			fs[i] = rng.NormFloat64() * 10
			vals[i] = fmt.Sprintf("%.6f", fs[i])
			fs[i], _ = ParseFloat(vals[i])
		}
		col := &data.Column{Name: "n", Values: vals}
		s := Compute(col, vals[:1])
		var mean float64
		for _, v := range fs {
			mean += v
		}
		mean /= float64(n)
		var ss float64
		for _, v := range fs {
			ss += (v - mean) * (v - mean)
		}
		std := math.Sqrt(ss / float64(n))
		if math.Abs(s.MeanVal-mean) > 1e-9 || math.Abs(s.StdVal-std) > 1e-9 {
			t.Fatalf("trial %d: mean/std = %f/%f, want %f/%f", trial, s.MeanVal, s.StdVal, mean, std)
		}
	}
}

func TestLogCompress(t *testing.T) {
	if logCompress(0) != 0 {
		t.Error("logCompress(0) != 0")
	}
	if logCompress(-10) >= 0 {
		t.Error("sign not preserved")
	}
	if logCompress(math.NaN()) != 0 || logCompress(math.Inf(1)) != 0 {
		t.Error("non-finite input must map to 0")
	}
	if logCompress(1e18) > 50 {
		t.Error("compression too weak")
	}
}
