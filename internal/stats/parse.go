// Package stats computes the per-column descriptive statistics used by the
// benchmark's base featurization (Appendix E of the paper) and provides the
// low-level value classifiers (numeric, integer, date, URL, email, list)
// shared by the rule-based tools and the ML featurization.
package stats

import (
	"regexp"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"
)

// ParseFloat attempts to interpret a raw cell as a plain number. It accepts
// optional surrounding whitespace and a leading sign but, unlike the
// embedded-number extractors, rejects units, separators and any other
// decoration: "45" and "-3.2e4" parse, "USD 45" and "1,234" do not.
func ParseFloat(v string) (float64, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	// Cheap alphabet screen: every string strconv can accept — decimal,
	// hex float, inf/infinity, nan, underscored digits — draws only from
	// floatAlphabet. Rejecting anything else here skips the *NumError
	// allocation strconv would make for each of the (very common)
	// non-numeric cells on the featurize hot path.
	for i := 0; i < len(v); i++ {
		if !floatAlphabet[v[i]] {
			return 0, false
		}
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// floatAlphabet marks every byte that can occur in a string
// strconv.ParseFloat accepts: digits, sign, dot, underscore digit
// separators, the e/E and hex x/X/p/P exponent markers, hex digits a-f,
// and the letters of "inf"/"infinity"/"nan" — all in both cases.
var floatAlphabet = func() (t [256]bool) {
	for _, c := range []byte("0123456789+-._eExXpPaAbBcCdDfFiInNtTyY") {
		t[c] = true
	}
	return
}()

// IsInt reports whether the raw cell is a plain (possibly signed) integer,
// including zero-padded forms such as "005".
func IsInt(v string) bool {
	v = strings.TrimSpace(v)
	if v == "" {
		return false
	}
	if v[0] == '+' || v[0] == '-' {
		v = v[1:]
	}
	if v == "" {
		return false
	}
	for i := 0; i < len(v); i++ {
		if v[i] < '0' || v[i] > '9' {
			return false
		}
	}
	return true
}

// IsFloatNotInt reports whether the cell parses as a number but is not a
// plain integer (i.e. has a decimal point or exponent).
func IsFloatNotInt(v string) bool {
	_, ok := ParseFloat(v)
	return ok && !IsInt(v)
}

var (
	urlRe   = regexp.MustCompile(`^(?i)(https?|ftp)://[a-z0-9][a-z0-9.\-]*\.[a-z]{2,}(/[^\s]*)?$`)
	emailRe = regexp.MustCompile(`^[a-zA-Z0-9._%+\-]+@[a-zA-Z0-9.\-]+\.[a-zA-Z]{2,}$`)
	// listRe matches a series of items separated by ; or | delimiters
	// (the comma is excluded here because it is ubiquitous inside sentences
	// and embedded numbers; comma lists are caught by listCommaRe below).
	listRe = regexp.MustCompile(`^\s*[^;|]+\s*([;|]\s*[^;|]+\s*){1,}$`)
	// listCommaRe matches comma-separated short tokens (no sentence-like
	// long words sequences): "a, b, c" style.
	listCommaRe = regexp.MustCompile(`^\s*[\w.\-]{1,24}(\s*,\s*[\w.\-]{1,24}){2,}\s*$`)
	// delimSeqRe checks for a sequence of non-alphanumeric delimiters.
	delimSeqRe = regexp.MustCompile(`[;|,]{2,}|[;|]`)
	// embeddedNumRe matches a digit adjacent to non-numeric decoration:
	// units, currency, % signs, or thousands separators.
	embeddedNumRe = regexp.MustCompile(`(?i)^[^\d]{0,8}\d[\d,.'  ]*\s*(%|[a-z$€£¥]{1,12}\.?)?$|^[a-z$€£¥]{1,8}\s*\d[\d,.]*$`)
)

// IsURL reports whether the cell follows the URL standard: a protocol
// followed by a domain, with an optional path.
func IsURL(v string) bool { return urlRe.MatchString(strings.TrimSpace(v)) }

// IsEmail reports whether the cell looks like an email address.
func IsEmail(v string) bool { return emailRe.MatchString(strings.TrimSpace(v)) }

// IsList reports whether the cell is a delimiter-separated series of items,
// e.g. "ru; uk; mx" or "rock|pop|jazz".
func IsList(v string) bool {
	v = strings.TrimSpace(v)
	if v == "" {
		return false
	}
	if listRe.MatchString(v) {
		return true
	}
	return listCommaRe.MatchString(v)
}

// HasDelimiterSequence reports whether the cell contains list-style
// delimiter characters at all; a weaker signal than IsList.
func HasDelimiterSequence(v string) bool { return delimSeqRe.MatchString(v) }

// LooksEmbeddedNumber reports whether the cell contains a number embedded in
// messy syntax: units ("30 Mhz"), currencies ("USD 45"), percents
// ("18.90%"), or grouped digits ("5,00,000"). Plain numbers return false.
func LooksEmbeddedNumber(v string) bool {
	v = strings.TrimSpace(v)
	if v == "" || len(v) > 40 {
		return false
	}
	if _, ok := ParseFloat(v); ok {
		return false
	}
	if !strings.ContainsAny(v, "0123456789") {
		return false
	}
	return embeddedNumRe.MatchString(v)
}

// dateLayouts is the set of textual layouts the timestamp check recognises.
// It intentionally mirrors what a pandas-style parser accepts out of the box
// and omits bare digit runs like "19980112": the paper observes that
// syntax-driven tools miss those, while ML models recover them from the
// attribute name.
var dateLayouts = []string{
	"2006-01-02",
	"2006/01/02",
	"01/02/2006",
	"1/2/2006",
	"01-02-2006",
	"02.01.2006",
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05",
	"2006-01-02T15:04:05Z07:00",
	"01/02/2006 15:04",
	"Jan 2, 2006",
	"January 2, 2006",
	"2 Jan 2006",
	"2 January 2006",
	"Jan-06",
	"Jan 2006",
	"2006-01",
	"15:04:05",
	"15:04",
	"3:04 PM",
	"Mon, 02 Jan 2006",
	"Monday, January 2, 2006",
	"02-Jan-2006",
	"2-Jan-06",
}

var hmsRe = regexp.MustCompile(`^\d{1,2}hrs:\d{1,2}min:\d{1,2}sec$`)

// IsDate reports whether the cell parses as a date or timestamp under any of
// the recognised layouts (plus the "21hrs:15min:3sec" duration-style form
// used in the paper's examples).
func IsDate(v string) bool {
	v = strings.TrimSpace(v)
	if v == "" || len(v) > 40 {
		return false
	}
	if hmsRe.MatchString(v) {
		return true
	}
	// Quick reject: dates need a digit.
	if !strings.ContainsAny(v, "0123456789") {
		return false
	}
	for _, layout := range dateLayouts {
		if _, err := time.Parse(layout, v); err == nil {
			return true
		}
	}
	return false
}

// stopwords is a compact English stopword list used for the
// stopword-count descriptive statistics.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "but": true,
	"of": true, "in": true, "on": true, "to": true, "is": true, "are": true,
	"was": true, "were": true, "it": true, "its": true, "this": true,
	"that": true, "with": true, "for": true, "as": true, "at": true,
	"by": true, "be": true, "from": true, "has": true, "have": true,
	"had": true, "not": true, "he": true, "she": true, "they": true,
	"we": true, "you": true, "i": true, "his": true, "her": true,
	"their": true, "our": true, "will": true, "would": true, "can": true,
	"all": true, "there": true, "which": true, "when": true, "who": true,
	"what": true, "so": true, "if": true, "about": true, "into": true,
}

// CountWords returns the number of whitespace-separated tokens in v.
func CountWords(v string) int {
	n := 0
	eachField(v, func(string) { n++ })
	return n
}

// CountStopwords returns the number of tokens in v that are common English
// stopwords (case-insensitive, trailing punctuation stripped).
func CountStopwords(v string) int {
	n := 0
	var buf [64]byte
	eachField(v, func(w string) {
		if isStopword(strings.Trim(w, ".,;:!?\"'()"), buf[:]) {
			n++
		}
	})
	return n
}

// eachField calls fn for every whitespace-separated token of v, splitting
// exactly as strings.Fields does (runs of unicode.IsSpace) without building
// the token slice. Compute calls the Count* helpers once per cell, so the
// per-value slice was the dominant allocation of base featurization.
func eachField(v string, fn func(string)) {
	start := -1
	for i, r := range v {
		if unicode.IsSpace(r) {
			if start >= 0 {
				fn(v[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		fn(v[start:])
	}
}

// isStopword reports whether w lowercases to a stopword. ASCII tokens that
// fit in buf are lowered there (the map lookup on a converted byte slice
// does not allocate); anything else falls back to strings.ToLower, keeping
// the exotic-case behaviour (e.g. the Kelvin sign lowering to 'k')
// identical to the original formulation.
func isStopword(w string, buf []byte) bool {
	if len(w) <= len(buf) {
		ascii := true
		for i := 0; i < len(w); i++ {
			c := w[i]
			if c >= utf8.RuneSelf {
				ascii = false
				break
			}
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[i] = c
		}
		if ascii {
			return stopwords[string(buf[:len(w)])]
		}
	}
	return stopwords[strings.ToLower(w)]
}

// CountWhitespace returns the number of whitespace characters in v.
func CountWhitespace(v string) int {
	n := 0
	for _, r := range v {
		if r == ' ' || r == '\t' {
			n++
		}
	}
	return n
}

// CountDelimiters returns the number of list-style delimiter characters
// (comma, semicolon, pipe) in v.
func CountDelimiters(v string) int {
	n := 0
	for _, r := range v {
		if r == ',' || r == ';' || r == '|' {
			n++
		}
	}
	return n
}
