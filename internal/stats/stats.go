package stats

import (
	"math"

	"sortinghat/internal/data"
)

// Stats holds the descriptive statistics extracted from one raw column
// during base featurization. The field set follows Appendix E of the paper:
// counts of values/NaNs/distincts, moments of the numeric casts, moments of
// per-value character/word/stopword/whitespace/delimiter counts, min/max,
// and sample-based boolean checks for URL, email, delimiter sequences,
// lists, and timestamps.
type Stats struct {
	TotalVals int // total number of cells

	NumNaNs int     // absolute number of missing cells
	PctNaNs float64 // percentage of missing cells (0..100)

	NumUnique int     // distinct non-missing values
	PctUnique float64 // distinct as a percentage of total cells (0..100)

	// Moments and range of the values castable to a plain number.
	MeanVal, StdVal float64
	MinVal, MaxVal  float64

	// Fraction (0..1) of non-missing values castable to float / plain int.
	CastableFloatPct float64
	CastableIntPct   float64

	// Moments of per-value character counts.
	MeanCharCount, StdCharCount float64
	// Moments of per-value whitespace-separated word counts.
	MeanWordCount, StdWordCount float64
	// Moments of per-value stopword counts.
	MeanStopwordCount, StdStopwordCount float64
	// Moments of per-value whitespace-character counts.
	MeanWhitespaceCount, StdWhitespaceCount float64
	// Moments of per-value delimiter-character counts.
	MeanDelimCount, StdDelimCount float64

	// Regular-expression and parser checks on the sampled values
	// (true when the majority of the non-missing samples match).
	SampleHasURL      bool
	SampleHasEmail    bool
	SampleHasDelimSeq bool
	SampleHasList     bool
	SampleHasDate     bool
}

// VectorDim is the dimensionality of the numeric encoding of Stats.
const VectorDim = 27

// Vector encodes the stats as a fixed-length float vector for ML models.
// Large magnitudes (means over raw values) are log-compressed to keep
// scale-sensitive models stable; booleans map to {0,1}.
func (s *Stats) Vector() []float64 {
	return s.AppendVector(make([]float64, 0, VectorDim))
}

// AppendVector appends the VectorDim-dimension encoding of s to dst and
// returns the extended slice. It is the allocation-free form of Vector for
// callers assembling a larger feature vector in one buffer.
func (s *Stats) AppendVector(dst []float64) []float64 {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	return append(dst,
		logCompress(float64(s.TotalVals)),
		logCompress(float64(s.NumNaNs)),
		s.PctNaNs,
		logCompress(float64(s.NumUnique)),
		s.PctUnique,
		logCompress(s.MeanVal),
		logCompress(s.StdVal),
		logCompress(s.MinVal),
		logCompress(s.MaxVal),
		s.CastableFloatPct,
		s.CastableIntPct,
		s.MeanCharCount,
		s.StdCharCount,
		s.MeanWordCount,
		s.StdWordCount,
		s.MeanStopwordCount,
		s.StdStopwordCount,
		s.MeanWhitespaceCount,
		s.StdWhitespaceCount,
		s.MeanDelimCount,
		s.StdDelimCount,
		b(s.SampleHasURL),
		b(s.SampleHasEmail),
		b(s.SampleHasDelimSeq),
		b(s.SampleHasList),
		b(s.SampleHasDate),
		b(s.NumUnique == 1), // single-valued column indicator
	)
}

// VectorNames returns the human-readable names of the Vector dimensions, in
// order. Useful for feature-importance reporting and ablations.
func VectorNames() []string {
	return []string{
		"log_total_vals", "log_num_nans", "pct_nans", "log_num_unique",
		"pct_unique", "log_mean_val", "log_std_val", "log_min_val",
		"log_max_val", "castable_float_pct", "castable_int_pct",
		"mean_char_count", "std_char_count", "mean_word_count",
		"std_word_count", "mean_stopword_count", "std_stopword_count",
		"mean_whitespace_count", "std_whitespace_count", "mean_delim_count",
		"std_delim_count", "sample_has_url", "sample_has_email",
		"sample_has_delim_seq", "sample_has_list", "sample_has_date",
		"is_constant",
	}
}

// logCompress maps a possibly huge magnitude to a compact signed log scale.
func logCompress(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Copysign(math.Log1p(math.Abs(v)), v)
}

// Compute extracts the full descriptive statistics for a column, using the
// provided sample values (typically the 5 randomly sampled distinct values
// from base featurization) for the regex/timestamp checks.
func Compute(col *data.Column, samples []string) Stats {
	var s Stats
	s.TotalVals = len(col.Values)

	// One backing allocation feeds all six per-value series. Each series
	// gets a full-capacity slot (three-index slice), so the appends below
	// stay in place and can never grow into a neighbour's slot.
	n := len(col.Values)
	backing := make([]float64, 6*n)
	var (
		numVals = backing[0*n : 0*n : 1*n]
		charC   = backing[1*n : 1*n : 2*n]
		wordC   = backing[2*n : 2*n : 3*n]
		stopC   = backing[3*n : 3*n : 4*n]
		wsC     = backing[4*n : 4*n : 5*n]
		delimC  = backing[5*n : 5*n : 6*n]

		nInt, nFloat, nonMissing int
	)
	seen := make(map[string]struct{}, len(col.Values))
	for _, v := range col.Values {
		if data.IsMissing(v) {
			s.NumNaNs++
			continue
		}
		nonMissing++
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
		}
		if f, ok := ParseFloat(v); ok {
			numVals = append(numVals, f)
			nFloat++
			if IsInt(v) {
				nInt++
			}
		}
		charC = append(charC, float64(len(v)))
		wordC = append(wordC, float64(CountWords(v)))
		stopC = append(stopC, float64(CountStopwords(v)))
		wsC = append(wsC, float64(CountWhitespace(v)))
		delimC = append(delimC, float64(CountDelimiters(v)))
	}
	s.NumUnique = len(seen)
	if s.TotalVals > 0 {
		s.PctNaNs = 100 * float64(s.NumNaNs) / float64(s.TotalVals)
		s.PctUnique = 100 * float64(s.NumUnique) / float64(s.TotalVals)
	}
	if nonMissing > 0 {
		s.CastableFloatPct = float64(nFloat) / float64(nonMissing)
		s.CastableIntPct = float64(nInt) / float64(nonMissing)
	}
	s.MeanVal, s.StdVal = meanStd(numVals)
	s.MinVal, s.MaxVal = minMax(numVals)
	s.MeanCharCount, s.StdCharCount = meanStd(charC)
	s.MeanWordCount, s.StdWordCount = meanStd(wordC)
	s.MeanStopwordCount, s.StdStopwordCount = meanStd(stopC)
	s.MeanWhitespaceCount, s.StdWhitespaceCount = meanStd(wsC)
	s.MeanDelimCount, s.StdDelimCount = meanStd(delimC)

	s.SampleHasURL = majority(samples, IsURL)
	s.SampleHasEmail = majority(samples, IsEmail)
	s.SampleHasDelimSeq = majority(samples, HasDelimiterSequence)
	s.SampleHasList = majority(samples, IsList)
	s.SampleHasDate = majority(samples, IsDate)
	return s
}

// majority reports whether pred holds for more than half of the non-missing
// sample values (and for at least one).
func majority(samples []string, pred func(string) bool) bool {
	n, hits := 0, 0
	for _, v := range samples {
		if data.IsMissing(v) {
			continue
		}
		n++
		if pred(v) {
			hits++
		}
	}
	return n > 0 && hits*2 > n
}

func meanStd(vals []float64) (mean, std float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if len(vals) == 1 {
		return mean, 0
	}
	for _, v := range vals {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(vals)))
	return mean, std
}

func minMax(vals []float64) (lo, hi float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
