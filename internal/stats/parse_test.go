package stats

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFloat(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"45", 45, true},
		{" -3.25 ", -3.25, true},
		{"1e3", 1000, true},
		{"005", 5, true},
		{"", 0, false},
		{"USD 45", 0, false},
		{"1,234", 0, false},
		{"abc", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseFloat(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseFloat(%q) = %v,%v; want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestIsInt(t *testing.T) {
	yes := []string{"0", "005", "-12", "+7", " 42 "}
	for _, v := range yes {
		if !IsInt(v) {
			t.Errorf("IsInt(%q) = false", v)
		}
	}
	no := []string{"", "1.5", "1e3", "abc", "-", "+", "1 2"}
	for _, v := range no {
		if IsInt(v) {
			t.Errorf("IsInt(%q) = true", v)
		}
	}
	if !IsFloatNotInt("3.14") || IsFloatNotInt("3") || IsFloatNotInt("x") {
		t.Error("IsFloatNotInt wrong")
	}
}

func TestIsURL(t *testing.T) {
	yes := []string{
		"https://www.example.com",
		"http://example.org/path/to/file",
		"ftp://files.example.net/a.zip",
		"https://cdn.acme.io/img/1.png",
	}
	for _, v := range yes {
		if !IsURL(v) {
			t.Errorf("IsURL(%q) = false", v)
		}
	}
	no := []string{"www.example.com", "example", "http://", "just text", "http//x.com"}
	for _, v := range no {
		if IsURL(v) {
			t.Errorf("IsURL(%q) = true", v)
		}
	}
}

func TestIsEmail(t *testing.T) {
	if !IsEmail("a.b+c@example.co.uk") {
		t.Error("valid email rejected")
	}
	for _, v := range []string{"a@b", "plain", "@x.com", "a b@c.com"} {
		if IsEmail(v) {
			t.Errorf("IsEmail(%q) = true", v)
		}
	}
}

func TestIsList(t *testing.T) {
	yes := []string{"ru; uk; mx", "rock|pop|jazz", "a, b, c", "one;two"}
	for _, v := range yes {
		if !IsList(v) {
			t.Errorf("IsList(%q) = false", v)
		}
	}
	no := []string{"", "plain value", "a sentence, with a comma inside it somewhere long"}
	for _, v := range no {
		if IsList(v) {
			t.Errorf("IsList(%q) = true", v)
		}
	}
}

func TestLooksEmbeddedNumber(t *testing.T) {
	yes := []string{"USD 45", "30 Mhz", "18.90%", "5,00,000", "1,846", "$1234", "95 lbs."}
	for _, v := range yes {
		if !LooksEmbeddedNumber(v) {
			t.Errorf("LooksEmbeddedNumber(%q) = false", v)
		}
	}
	no := []string{"45", "-3.2", "plain text", "", "a very long string with numbers 123 inside but way too much prose around them"}
	for _, v := range no {
		if LooksEmbeddedNumber(v) {
			t.Errorf("LooksEmbeddedNumber(%q) = true", v)
		}
	}
}

func TestIsDate(t *testing.T) {
	yes := []string{
		"2018-07-11", "7/11/2018", "Jan 2, 2006", "2006-01-02 15:04:05",
		"15:04:05", "21hrs:15min:3sec", "March 4, 1797", "2-Jan-06",
	}
	for _, v := range yes {
		if !IsDate(v) {
			t.Errorf("IsDate(%q) = false", v)
		}
	}
	// Bare digit runs deliberately do not parse (pandas-style behaviour the
	// paper leans on for the BirthDate example).
	no := []string{"19980112", "12345", "hello", "", "99.5"}
	for _, v := range no {
		if IsDate(v) {
			t.Errorf("IsDate(%q) = true", v)
		}
	}
}

func TestCounts(t *testing.T) {
	if CountWords("a b  c") != 3 || CountWords("") != 0 {
		t.Error("CountWords wrong")
	}
	if CountStopwords("The cat and the hat") != 3 {
		t.Errorf("CountStopwords = %d", CountStopwords("The cat and the hat"))
	}
	if CountWhitespace("a b\tc") != 2 {
		t.Error("CountWhitespace wrong")
	}
	if CountDelimiters("a,b;c|d") != 3 {
		t.Error("CountDelimiters wrong")
	}
}

func TestIsDateRejectsImpossibleDates(t *testing.T) {
	bad := []string{"2020-13-40", "32/13/2020", "99:99:99", "Jan 45, 2006"}
	for _, v := range bad {
		if IsDate(v) {
			t.Errorf("IsDate(%q) = true", v)
		}
	}
}

func TestIsDateLongStringsRejectedFast(t *testing.T) {
	long := "2020-01-02 " + string(make([]byte, 60))
	if IsDate(long) {
		t.Error("overlong strings must be rejected")
	}
}

func TestGroupedNumberNotPlainFloat(t *testing.T) {
	// Regression guard: grouped digits must never parse as plain numbers,
	// or the Embedded Number class would collapse into Numeric.
	for _, v := range []string{"1,846", "5,00,000", "76,125"} {
		if _, ok := ParseFloat(v); ok {
			t.Errorf("ParseFloat(%q) accepted a grouped number", v)
		}
		if !LooksEmbeddedNumber(v) {
			t.Errorf("LooksEmbeddedNumber(%q) = false", v)
		}
	}
}

// TestCountersMatchStringsFields pins the alloc-free field walking in
// CountWords/CountStopwords to the strings.Fields formulation it replaced,
// and the screened ParseFloat to plain strconv. Property-based: any drift
// in splitting, stopword casing, or float acceptance fails here.
func TestCountersMatchStringsFields(t *testing.T) {
	refWords := func(v string) int { return len(strings.Fields(v)) }
	refStops := func(v string) int {
		n := 0
		for _, w := range strings.Fields(v) {
			if stopwords[strings.ToLower(strings.Trim(w, ".,;:!?\"'()"))] {
				n++
			}
		}
		return n
	}
	refFloat := func(v string) (float64, bool) {
		v = strings.TrimSpace(v)
		if v == "" {
			return 0, false
		}
		f, err := strconv.ParseFloat(v, 64)
		return f, err == nil
	}
	cases := []string{
		"", " ", "a", "The quick brown fox", "  and\tthe\n", "of.", "'A'",
		"x y", "KELVIN and", "1,234", "-3.2e4", "nan", "+Inf",
		".5 .", "USD 45", "0x1p-2", "héllo the wörld", "infinity",
	}
	check := func(v string) bool {
		if CountWords(v) != refWords(v) {
			t.Errorf("CountWords(%q) = %d, want %d", v, CountWords(v), refWords(v))
			return false
		}
		if CountStopwords(v) != refStops(v) {
			t.Errorf("CountStopwords(%q) = %d, want %d", v, CountStopwords(v), refStops(v))
			return false
		}
		gf, gok := ParseFloat(v)
		wf, wok := refFloat(v)
		if gok != wok || (gok && gf != wf && !(gf != gf && wf != wf)) {
			t.Errorf("ParseFloat(%q) = (%v, %v), want (%v, %v)", v, gf, gok, wf, wok)
			return false
		}
		return true
	}
	for _, v := range cases {
		check(v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
