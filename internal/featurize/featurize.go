// Package featurize implements the benchmark's Base Featurization
// (Section 2.3 of the paper) and the model-specific feature extraction on
// top of it: character n-gram hashing of attribute names and sample values,
// standardization of descriptive statistics, and the downstream vectorizers
// (one-hot, TF-IDF, word bigrams) used by the downstream benchmark suite.
package featurize

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"sortinghat/internal/data"
	"sortinghat/internal/stats"
)

// SampleCount is the number of randomly sampled distinct values extracted
// per column, mirroring the paper's choice of 5.
const SampleCount = 5

// Base is the concise representation of one raw column that emulates what a
// data scientist inspects to judge a feature type: the attribute name, up to
// five randomly sampled distinct non-missing values, and descriptive stats.
type Base struct {
	Name    string
	Samples []string // up to SampleCount distinct non-missing values
	Stats   stats.Stats
}

// Extract performs base featurization on a raw column. The sample values are
// drawn uniformly without replacement from the distinct non-missing values
// using rng; pass a seeded source for determinism.
func Extract(col *data.Column, rng *rand.Rand) Base {
	distinct := col.DistinctNonMissing()
	samples := sampleDistinct(distinct, SampleCount, rng)
	return Base{
		Name:    col.Name,
		Samples: samples,
		Stats:   stats.Compute(col, samples),
	}
}

// ExtractFirstN is a deterministic variant of Extract used by the
// perturbation-robustness study: it takes the first n distinct non-missing
// values in column order instead of sampling randomly.
func ExtractFirstN(col *data.Column, n int) Base {
	samples := col.FirstNDistinct(n)
	return Base{Name: col.Name, Samples: samples, Stats: stats.Compute(col, samples)}
}

func sampleDistinct(distinct []string, n int, rng *rand.Rand) []string {
	if len(distinct) <= n {
		out := make([]string, len(distinct))
		copy(out, distinct)
		return out
	}
	idx := rng.Perm(len(distinct))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = distinct[j]
	}
	return out
}

// Sample returns the i-th sampled value or "" when fewer samples exist.
func (b *Base) Sample(i int) string {
	if i < len(b.Samples) {
		return b.Samples[i]
	}
	return ""
}

// HashNgrams accumulates hashed character n-gram counts of s into a vector
// of the given dimensionality. The string is lowercased and padded with
// boundary markers so leading/trailing characters carry signal. Counts are
// square-root damped, which keeps long strings from dominating.
func HashNgrams(s string, n, dim int) []float64 {
	return appendHashNgrams(make([]float64, 0, dim), s, n, dim)
}

// appendHashNgrams appends the dim-length square-root-damped n-gram
// encoding of s to dst and returns the extended slice; HashNgrams and
// FeatureSet.AppendVector both build on it.
func appendHashNgrams(dst []float64, s string, n, dim int) []float64 {
	start := len(dst)
	for i := 0; i < dim; i++ {
		dst = append(dst, 0)
	}
	seg := dst[start : start+dim]
	AddHashNgrams(seg, s, n, 1)
	for i, v := range seg {
		seg[i] = math.Sqrt(v)
	}
	return dst
}

// FNV-1a 32-bit parameters from hash/fnv, for the inline n-gram hashing
// below.
const (
	fnv32Offset = 2166136261
	fnv32Prime  = 16777619
)

// AddHashNgrams adds weighted hashed n-gram counts of s into vec (whose
// length defines the hash dimensionality). The n-gram stream is FNV-1a over
// the lowercased string framed by '^' and '$' boundary markers; the frame
// bytes are virtual — read positionally rather than by building the padded
// string — and the hash is unrolled by hand, so the per-call string concat,
// []byte copy, and hasher that used to dominate the featurize profile are
// gone. TestHashNgramsMatchesStdlibFNV pins the output to the original
// stdlib-hasher formulation.
func AddHashNgrams(vec []float64, s string, n int, weight float64) {
	if len(vec) == 0 {
		return
	}
	s = strings.ToLower(s) // no-op (and no copy) when already lowercase
	padLen := len(s) + 2   // virtual '^' prefix and '$' suffix
	if padLen < n {
		return
	}
	dim := uint32(len(vec))
	for i := 0; i+n <= padLen; i++ {
		h := uint32(fnv32Offset)
		for j := i; j < i+n; j++ {
			var c byte
			switch {
			case j == 0:
				c = '^'
			case j == padLen-1:
				c = '$'
			default:
				c = s[j-1]
			}
			h = (h ^ uint32(c)) * fnv32Prime
		}
		vec[h%dim] += weight
	}
}

// HashWordBigrams hashes word-level bigrams (and unigrams) of s into a
// vector of the given dimensionality; used for the URL routing in the
// downstream benchmark.
func HashWordBigrams(s string, dim int) []float64 {
	vec := make([]float64, dim)
	words := tokenize(s)
	h := fnv.New32a()
	add := func(tok string) {
		h.Reset()
		h.Write([]byte(tok)) //shvet:ignore unchecked-err hash.Hash Write never returns an error
		vec[h.Sum32()%uint32(dim)]++
	}
	for i, w := range words {
		add(w)
		if i+1 < len(words) {
			add(w + " " + words[i+1])
		}
	}
	for i, v := range vec {
		vec[i] = math.Sqrt(v)
	}
	return vec
}

// tokenize lowercases and splits on non-alphanumeric boundaries.
func tokenize(s string) []string {
	s = strings.ToLower(s)
	return strings.FieldsFunc(s, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
}

// Scaler standardizes feature vectors to zero mean and unit variance, as
// the paper does for scale-sensitive models (logistic regression, RBF-SVM).
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns per-dimension mean and standard deviation from X.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	d := len(X[0])
	sc := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			sc.Mean[j] += v
		}
	}
	for j := range sc.Mean {
		sc.Mean[j] /= float64(len(X))
	}
	for _, row := range X {
		for j, v := range row {
			d := v - sc.Mean[j]
			sc.Std[j] += d * d
		}
	}
	for j := range sc.Std {
		sc.Std[j] = math.Sqrt(sc.Std[j] / float64(len(X)))
		if sc.Std[j] < 1e-12 {
			sc.Std[j] = 1
		}
	}
	return sc
}

// Transform standardizes X in place and returns it.
func (sc *Scaler) Transform(X [][]float64) [][]float64 {
	if len(sc.Mean) == 0 {
		return X
	}
	for _, row := range X {
		for j := range row {
			row[j] = (row[j] - sc.Mean[j]) / sc.Std[j]
		}
	}
	return X
}

// TransformRow standardizes a single row in place and returns it.
func (sc *Scaler) TransformRow(row []float64) []float64 {
	if len(sc.Mean) == 0 {
		return row
	}
	for j := range row {
		row[j] = (row[j] - sc.Mean[j]) / sc.Std[j]
	}
	return row
}
