package featurize

import "sortinghat/internal/stats"

// FeatureSet selects which base-featurization signals feed a classical ML
// model and how they are vectorized. It reproduces the feature-set ablation
// axis of Table 2 in the paper: descriptive stats (X_stats), attribute-name
// bigrams (X2_name), and bigrams of the first/second sampled value
// (X2_sample1, X2_sample2).
type FeatureSet struct {
	UseStats    bool
	UseName     bool
	SampleCount int // number of sampled values to bigram-hash (0, 1 or 2)

	NameDim   int // hash dimensionality for name bigrams
	SampleDim int // hash dimensionality per sampled value
}

// DefaultFeatureSet is the paper's best-performing configuration for the
// Random Forest: descriptive stats plus attribute-name bigrams.
func DefaultFeatureSet() FeatureSet {
	return FeatureSet{UseStats: true, UseName: true, SampleCount: 0,
		NameDim: 256, SampleDim: 128}
}

// FullFeatureSet enables stats, name bigrams and two sample-value bigrams.
func FullFeatureSet() FeatureSet {
	return FeatureSet{UseStats: true, UseName: true, SampleCount: 2,
		NameDim: 256, SampleDim: 128}
}

// normalized fills in default hash dimensions.
func (fs FeatureSet) normalized() FeatureSet {
	if fs.NameDim == 0 {
		fs.NameDim = 256
	}
	if fs.SampleDim == 0 {
		fs.SampleDim = 128
	}
	return fs
}

// Dim returns the dimensionality of vectors produced by Vector.
func (fs FeatureSet) Dim() int {
	fs = fs.normalized()
	d := 0
	if fs.UseStats {
		d += stats.VectorDim
	}
	if fs.UseName {
		d += fs.NameDim
	}
	d += fs.SampleCount * fs.SampleDim
	return d
}

// Vector encodes a base-featurized column under this feature set. Name and
// sample values are encoded as hashed character bigrams; stats use the
// canonical Stats vector.
func (fs FeatureSet) Vector(b *Base) []float64 {
	return fs.AppendVector(make([]float64, 0, fs.normalized().Dim()), b)
}

// AppendVector appends the encoding of b to dst and returns the extended
// slice. It is the allocation-free form of Vector: the serve hot path calls
// it with a pooled scratch buffer so steady-state prediction vectorizes
// without growing the heap.
func (fs FeatureSet) AppendVector(dst []float64, b *Base) []float64 {
	fs = fs.normalized()
	if fs.UseStats {
		dst = b.Stats.AppendVector(dst)
	}
	if fs.UseName {
		dst = appendHashNgrams(dst, b.Name, 2, fs.NameDim)
	}
	for i := 0; i < fs.SampleCount; i++ {
		dst = appendHashNgrams(dst, b.Sample(i), 2, fs.SampleDim)
	}
	return dst
}

// Matrix vectorizes a slice of base features under this feature set.
func (fs FeatureSet) Matrix(bases []Base) [][]float64 {
	X := make([][]float64, len(bases))
	for i := range bases {
		X[i] = fs.Vector(&bases[i])
	}
	return X
}

// Label describes the feature set using the paper's notation, e.g.
// "X_stats, X2_name, X2_sample1".
func (fs FeatureSet) Label() string {
	parts := []string{}
	if fs.UseStats {
		parts = append(parts, "X_stats")
	}
	if fs.UseName {
		parts = append(parts, "X2_name")
	}
	if fs.SampleCount >= 1 {
		parts = append(parts, "X2_sample1")
	}
	if fs.SampleCount >= 2 {
		parts = append(parts, "X2_sample2")
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	s := parts[0]
	for _, p := range parts[1:] {
		s += ", " + p
	}
	return s
}
