package featurize

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sortinghat/internal/data"
)

func TestExtractSamplesDistinctNonMissing(t *testing.T) {
	col := &data.Column{Name: "c", Values: []string{"a", "a", "", "b", "NA", "c", "d", "e", "f", "g"}}
	rng := rand.New(rand.NewSource(1))
	b := Extract(col, rng)
	if b.Name != "c" {
		t.Errorf("Name = %q", b.Name)
	}
	if len(b.Samples) != SampleCount {
		t.Fatalf("samples = %d, want %d", len(b.Samples), SampleCount)
	}
	seen := map[string]bool{}
	for _, s := range b.Samples {
		if data.IsMissing(s) {
			t.Errorf("missing value sampled: %q", s)
		}
		if seen[s] {
			t.Errorf("duplicate sample %q", s)
		}
		seen[s] = true
	}
}

func TestExtractFewDistinct(t *testing.T) {
	col := &data.Column{Name: "c", Values: []string{"x", "x", "y"}}
	b := Extract(col, rand.New(rand.NewSource(1)))
	if len(b.Samples) != 2 {
		t.Fatalf("samples = %v", b.Samples)
	}
}

func TestExtractFirstNDeterministic(t *testing.T) {
	col := &data.Column{Name: "c", Values: []string{"v3", "v1", "v3", "v2", "v4"}}
	b := ExtractFirstN(col, 3)
	want := []string{"v3", "v1", "v2"}
	for i, w := range want {
		if b.Samples[i] != w {
			t.Errorf("sample[%d] = %q, want %q", i, b.Samples[i], w)
		}
	}
	if b.Sample(99) != "" {
		t.Error("out-of-range Sample must return empty string")
	}
}

func TestHashNgramsProperties(t *testing.T) {
	v1 := HashNgrams("zipcode", 2, 64)
	v2 := HashNgrams("zipcode", 2, 64)
	if len(v1) != 64 {
		t.Fatalf("dim = %d", len(v1))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("hashing must be deterministic")
		}
	}
	// Same string in different case hashes identically (lowercased).
	v3 := HashNgrams("ZipCode", 2, 64)
	for i := range v1 {
		if v1[i] != v3[i] {
			t.Fatal("hashing must be case-insensitive")
		}
	}
	// Empty string still gets boundary bigram mass.
	if sum(HashNgrams("", 2, 16)) == 0 {
		t.Error("empty string should hash its boundary markers")
	}
}

func TestHashNgramsNonNegativeAndFinite(t *testing.T) {
	f := func(s string) bool {
		for _, v := range HashNgrams(s, 2, 32) {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHashWordBigrams(t *testing.T) {
	a := HashWordBigrams("red green blue", 32)
	b := HashWordBigrams("red green blue", 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("word bigrams must be deterministic")
		}
	}
	if sum(HashWordBigrams("", 32)) != 0 {
		t.Error("empty doc should produce a zero vector")
	}
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	sc := FitScaler(X)
	Xc := make([][]float64, len(X))
	for i := range X {
		Xc[i] = append([]float64(nil), X[i]...)
	}
	sc.Transform(Xc)
	for j := 0; j < 2; j++ {
		var mean, ss float64
		for i := range Xc {
			mean += Xc[i][j]
		}
		mean /= float64(len(Xc))
		for i := range Xc {
			ss += (Xc[i][j] - mean) * (Xc[i][j] - mean)
		}
		std := math.Sqrt(ss / float64(len(Xc)))
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
			t.Errorf("dim %d: mean=%f std=%f after scaling", j, mean, std)
		}
	}
}

func TestScalerConstantDim(t *testing.T) {
	X := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	sc := FitScaler(X)
	row := sc.TransformRow([]float64{5, 2})
	if math.IsNaN(row[0]) || math.IsInf(row[0], 0) {
		t.Error("constant dimension must not divide by zero")
	}
	empty := FitScaler(nil)
	if out := empty.TransformRow([]float64{1}); out[0] != 1 {
		t.Error("unfitted scaler must be identity")
	}
}

func TestOneHotEncoder(t *testing.T) {
	enc := FitOneHot([]string{"a", "b", "a", "c", "a", "b"}, 2)
	if enc.Dim != 3 { // top-2 categories + other
		t.Fatalf("Dim = %d", enc.Dim)
	}
	va := enc.Transform("a")
	if sum(va) != 1 || va[0] != 1 {
		t.Errorf("Transform(a) = %v (a is most frequent)", va)
	}
	vz := enc.Transform("zzz")
	if vz[enc.Dim-1] != 1 {
		t.Errorf("unseen category must hit the other slot: %v", vz)
	}
	// "c" was truncated by the cap: also other.
	vc := enc.Transform("c")
	if vc[enc.Dim-1] != 1 {
		t.Errorf("capped category must hit the other slot: %v", vc)
	}
}

func TestTFIDF(t *testing.T) {
	docs := []string{
		"great product great value",
		"terrible product broke",
		"average product okay",
	}
	tf := FitTFIDF(docs, 10)
	if tf.Dim() == 0 || tf.Dim() > 10 {
		t.Fatalf("Dim = %d", tf.Dim())
	}
	v := tf.Transform("great great product")
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("vector not L2-normalised: %f", norm)
	}
	if sum(tf.Transform("unseen words only zq")) != 0 {
		t.Error("OOV doc should be a zero vector")
	}
}

func TestFeatureSetDimMatchesVector(t *testing.T) {
	col := &data.Column{Name: "salary", Values: []string{"1", "2", "3", "4", "5", "6"}}
	b := ExtractFirstN(col, SampleCount)
	sets := []FeatureSet{
		{UseStats: true},
		{UseName: true},
		{SampleCount: 1},
		{UseStats: true, UseName: true, SampleCount: 2},
		DefaultFeatureSet(),
		FullFeatureSet(),
	}
	for _, fs := range sets {
		v := fs.Vector(&b)
		if len(v) != fs.Dim() {
			t.Errorf("%s: len(Vector)=%d, Dim()=%d", fs.Label(), len(v), fs.Dim())
		}
	}
}

func TestFeatureSetLabels(t *testing.T) {
	if got := (FeatureSet{UseStats: true, UseName: true}).Label(); got != "X_stats, X2_name" {
		t.Errorf("Label = %q", got)
	}
	if got := (FeatureSet{}).Label(); got != "(empty)" {
		t.Errorf("empty Label = %q", got)
	}
	if got := (FeatureSet{SampleCount: 2}).Label(); got != "X2_sample1, X2_sample2" {
		t.Errorf("samples Label = %q", got)
	}
}

func TestFeatureSetMatrix(t *testing.T) {
	cols := []data.Column{
		{Name: "a", Values: []string{"1", "2"}},
		{Name: "b", Values: []string{"x", "y"}},
	}
	bases := make([]Base, len(cols))
	for i := range cols {
		bases[i] = ExtractFirstN(&cols[i], SampleCount)
	}
	fs := DefaultFeatureSet()
	X := fs.Matrix(bases)
	if len(X) != 2 || len(X[0]) != fs.Dim() {
		t.Fatalf("matrix shape %dx%d", len(X), len(X[0]))
	}
}

func TestAddHashNgramsWeight(t *testing.T) {
	a := make([]float64, 32)
	AddHashNgrams(a, "abc", 2, 1)
	b := make([]float64, 32)
	AddHashNgrams(b, "abc", 2, 2.5)
	for i := range a {
		if math.Abs(b[i]-2.5*a[i]) > 1e-12 {
			t.Fatalf("weight scaling broken at %d: %f vs %f", i, b[i], a[i])
		}
	}
	// n longer than the padded string contributes nothing.
	c := make([]float64, 8)
	AddHashNgrams(c, "", 10, 1)
	if sum(c) != 0 {
		t.Error("oversized n should add nothing")
	}
}

func TestHashNgramsDimensionIsolation(t *testing.T) {
	// Different dims produce different layouts but same total mass
	// (sqrt-damped counts aside, mass is preserved per n-gram).
	small := HashNgrams("abcdef", 2, 4)
	large := HashNgrams("abcdef", 2, 4096)
	var sm, lg float64
	for _, v := range small {
		sm += v * v
	}
	for _, v := range large {
		lg += v * v
	}
	if sm == 0 || lg == 0 {
		t.Fatal("empty hash vectors")
	}
	// With 4096 buckets, collisions are rare: squared mass equals the
	// number of distinct bigrams (each count 1 -> sqrt(1)^2).
	if lg < 6.5 || lg > 7.5 { // "^abcdef$" has 7 bigrams, all distinct
		t.Errorf("large-dim mass = %f, want 7", lg)
	}
}

// TestHashNgramsMatchesStdlibFNV pins the inline virtual-boundary hashing
// in AddHashNgrams to the original formulation it replaced: fnv.New32a over
// each n-byte window of "^" + strings.ToLower(s) + "$". Any drift would
// silently re-bucket every name/sample feature and invalidate trained
// models.
func TestHashNgramsMatchesStdlibFNV(t *testing.T) {
	reference := func(s string, n, dim int) []float64 {
		vec := make([]float64, dim)
		padded := []byte("^" + strings.ToLower(s) + "$")
		if len(padded) < n {
			return vec
		}
		h := fnv.New32a()
		for i := 0; i+n <= len(padded); i++ {
			h.Reset()
			h.Write(padded[i : i+n]) //shvet:ignore unchecked-err hash.Hash Write never returns an error
			vec[h.Sum32()%uint32(dim)]++
		}
		for i, v := range vec {
			vec[i] = math.Sqrt(v)
		}
		return vec
	}
	cases := []string{"", "a", "zipcode", "Flight Number", "Ärzte-Zahl", "日付", "x@y.z, 12%"}
	for _, s := range cases {
		for _, n := range []int{2, 3} {
			got := HashNgrams(s, n, 64)
			want := reference(s, n, 64)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("HashNgrams(%q, n=%d)[%d] = %v, want stdlib %v", s, n, i, got[i], want[i])
				}
			}
		}
	}
	if err := quick.Check(func(s string, seed uint8) bool {
		n := 2 + int(seed)%3
		got := HashNgrams(s, n, 32)
		want := reference(s, n, 32)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestAppendVectorMatchesVector pins the pooled-buffer encoding path to the
// allocating one, prefix reuse included.
func TestAppendVectorMatchesVector(t *testing.T) {
	col := &data.Column{Name: "Departure Time", Values: []string{"08:15", "09:30", "08:15", "", "23:59"}}
	b := ExtractFirstN(col, SampleCount)
	for _, fs := range []FeatureSet{DefaultFeatureSet(), FullFeatureSet(), {UseName: true, NameDim: 32}} {
		want := fs.Vector(&b)
		if len(want) != fs.Dim() {
			t.Fatalf("Vector len %d != Dim %d", len(want), fs.Dim())
		}
		scratch := make([]float64, 0, 4)
		for round := 0; round < 2; round++ { // second round reuses the grown buffer
			got := fs.AppendVector(scratch[:0], &b)
			if len(got) != len(want) {
				t.Fatalf("AppendVector len %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("AppendVector[%d] = %v, want %v", i, got[i], want[i])
				}
			}
			scratch = got
		}
	}
}
