package featurize

import (
	"math"
	"sort"
)

// OneHotEncoder maps categorical string values to one-hot vectors over the
// most frequent categories seen at fit time, with a shared "other" slot for
// everything else. The domain cap keeps pathological high-cardinality
// columns (e.g. primary keys wrongly inferred as Categorical) from exploding
// the downstream design matrix, mirroring practical AutoML featurizers.
type OneHotEncoder struct {
	Index map[string]int // category -> slot
	Dim   int            // total output width (len(Index)+1 for "other")
}

// FitOneHot learns the encoding from values, keeping at most maxDomain
// categories (most frequent first, ties broken lexicographically).
func FitOneHot(values []string, maxDomain int) *OneHotEncoder {
	counts := map[string]int{}
	for _, v := range values {
		counts[v]++
	}
	cats := make([]string, 0, len(counts))
	for c := range counts {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if counts[cats[i]] != counts[cats[j]] {
			return counts[cats[i]] > counts[cats[j]]
		}
		return cats[i] < cats[j]
	})
	if maxDomain > 0 && len(cats) > maxDomain {
		cats = cats[:maxDomain]
	}
	enc := &OneHotEncoder{Index: make(map[string]int, len(cats))}
	for i, c := range cats {
		enc.Index[c] = i
	}
	enc.Dim = len(cats) + 1
	return enc
}

// Transform encodes one value as a one-hot vector.
func (e *OneHotEncoder) Transform(v string) []float64 {
	out := make([]float64, e.Dim)
	if i, ok := e.Index[v]; ok {
		out[i] = 1
	} else {
		out[e.Dim-1] = 1
	}
	return out
}

// TFIDF is a word-level TF-IDF vectorizer over a capped vocabulary, used to
// route Sentence columns in the downstream benchmark (Section 5.3).
type TFIDF struct {
	Vocab map[string]int
	IDF   []float64
}

// FitTFIDF builds the vocabulary (top maxVocab terms by document frequency)
// and inverse document frequencies from the given documents.
func FitTFIDF(docs []string, maxVocab int) *TFIDF {
	df := map[string]int{}
	for _, d := range docs {
		seen := map[string]bool{}
		for _, w := range tokenize(d) {
			if !seen[w] {
				seen[w] = true
				df[w]++
			}
		}
	}
	terms := make([]string, 0, len(df))
	for t := range df {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if df[terms[i]] != df[terms[j]] {
			return df[terms[i]] > df[terms[j]]
		}
		return terms[i] < terms[j]
	})
	if maxVocab > 0 && len(terms) > maxVocab {
		terms = terms[:maxVocab]
	}
	tf := &TFIDF{Vocab: make(map[string]int, len(terms)), IDF: make([]float64, len(terms))}
	n := float64(len(docs))
	for i, t := range terms {
		tf.Vocab[t] = i
		tf.IDF[i] = math.Log((1+n)/(1+float64(df[t]))) + 1
	}
	return tf
}

// Dim returns the width of transformed vectors.
func (t *TFIDF) Dim() int { return len(t.IDF) }

// Transform encodes one document as an L2-normalised TF-IDF vector.
func (t *TFIDF) Transform(doc string) []float64 {
	out := make([]float64, len(t.IDF))
	for _, w := range tokenize(doc) {
		if i, ok := t.Vocab[w]; ok {
			out[i]++
		}
	}
	var norm float64
	for i := range out {
		out[i] *= t.IDF[i]
		norm += out[i] * out[i]
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range out {
			out[i] /= norm
		}
	}
	return out
}
