package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV parses a CSV stream with a header row into a Dataset. Rows with a
// different field count from the header are rejected, matching the strict
// rectangular-table assumption of the benchmark.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0 // enforce rectangular input
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("data: csv %q: empty input", name)
	}
	if err != nil {
		return nil, fmt.Errorf("data: csv %q: reading header: %w", name, err)
	}
	ds := &Dataset{Name: name, Columns: make([]Column, len(header))}
	for i, h := range header {
		ds.Columns[i].Name = h
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: csv %q: reading row: %w", name, err)
		}
		for i, cell := range rec {
			ds.Columns[i].Values = append(ds.Columns[i].Values, cell)
		}
	}
	return ds, nil
}

// ReadCSVFile reads a CSV file from disk into a Dataset named after the path.
func ReadCSVFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(path, f)
}

// WriteCSV serialises the dataset as CSV with a header row.
func WriteCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(ds.Columns))
	for i := range ds.Columns {
		header[i] = ds.Columns[i].Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: writing csv header: %w", err)
	}
	for r := 0; r < ds.NumRows(); r++ {
		if err := cw.Write(ds.Row(r)); err != nil {
			return fmt.Errorf("data: writing csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("data: flushing csv: %w", err)
	}
	return nil
}

// WriteCSVFile writes the dataset to a CSV file at path.
func WriteCSVFile(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: creating %s: %w", path, err)
	}
	if err := WriteCSV(f, ds); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}
