package data

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// Typed limit violations returned (wrapped) by ReadCSVLimited, so servers
// can map adversarial uploads onto a 413 instead of a generic parse error.
var (
	// ErrTooManyColumns marks input whose header exceeds Limits.MaxColumns.
	ErrTooManyColumns = errors.New("data: too many columns")
	// ErrCellTooLarge marks input with a cell over Limits.MaxCellBytes.
	ErrCellTooLarge = errors.New("data: cell too large")
)

// Limits bounds untrusted CSV input. Zero fields are unlimited.
type Limits struct {
	// MaxColumns caps the header width (and with it every row's width,
	// since input must be rectangular).
	MaxColumns int
	// MaxCellBytes caps the byte length of any single cell, header
	// included.
	MaxCellBytes int
}

// ReadCSV parses a CSV stream with a header row into a Dataset, with no
// input limits. Rows with a different field count from the header are
// rejected, matching the strict rectangular-table assumption of the
// benchmark.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	return ReadCSVLimited(name, r, Limits{})
}

// ReadCSVLimited is ReadCSV for untrusted input: a UTF-8 byte-order mark
// on the first header cell is stripped (spreadsheet exports routinely
// carry one, and a BOM-prefixed attribute name would silently skew the
// name-bigram features), and inputs exceeding the limits are rejected
// with errors wrapping ErrTooManyColumns or ErrCellTooLarge.
func ReadCSVLimited(name string, r io.Reader, lim Limits) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0 // enforce rectangular input
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("data: csv %q: empty input", name)
	}
	if err != nil {
		return nil, fmt.Errorf("data: csv %q: reading header: %w", name, err)
	}
	header[0] = strings.TrimPrefix(header[0], "\uFEFF")
	if lim.MaxColumns > 0 && len(header) > lim.MaxColumns {
		return nil, fmt.Errorf("data: csv %q: %d columns exceeds limit %d: %w",
			name, len(header), lim.MaxColumns, ErrTooManyColumns)
	}
	if err := checkCells(name, header, 0, lim); err != nil {
		return nil, err
	}
	ds := &Dataset{Name: name, Columns: make([]Column, len(header))}
	for i, h := range header {
		ds.Columns[i].Name = h
	}
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: csv %q: reading row: %w", name, err) //shvet:ignore string-churn error path: built once, then the read loop exits
		}
		if err := checkCells(name, rec, row, lim); err != nil {
			return nil, err
		}
		for i, cell := range rec {
			ds.Columns[i].Values = append(ds.Columns[i].Values, cell)
		}
	}
	return ds, nil
}

// checkCells enforces the per-cell size limit on one record (row 0 is the
// header).
func checkCells(name string, rec []string, row int, lim Limits) error {
	if lim.MaxCellBytes <= 0 {
		return nil
	}
	for i, cell := range rec {
		if len(cell) > lim.MaxCellBytes {
			return fmt.Errorf("data: csv %q: row %d column %d: %d-byte cell exceeds limit %d: %w", //shvet:ignore string-churn error path: one oversize cell aborts the whole scan
				name, row, i, len(cell), lim.MaxCellBytes, ErrCellTooLarge) //shvet:ignore boxing error path: one oversize cell aborts the whole scan
		}
	}
	return nil
}

// ReadCSVFile reads a CSV file from disk into a Dataset named after the path.
func ReadCSVFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(path, f)
}

// WriteCSV serialises the dataset as CSV with a header row.
func WriteCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(ds.Columns))
	for i := range ds.Columns {
		header[i] = ds.Columns[i].Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: writing csv header: %w", err)
	}
	for r := 0; r < ds.NumRows(); r++ {
		if err := cw.Write(ds.Row(r)); err != nil {
			return fmt.Errorf("data: writing csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("data: flushing csv: %w", err)
	}
	return nil
}

// WriteCSVFile writes the dataset to a CSV file at path.
func WriteCSVFile(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: creating %s: %w", path, err)
	}
	if err := WriteCSV(f, ds); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}
