package data

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestIsMissing(t *testing.T) {
	missing := []string{"", "NA", "na", " n/a ", "NaN", "NULL", "None", "-", "?", "#NULL", "missing", "MISSING"}
	for _, v := range missing {
		if !IsMissing(v) {
			t.Errorf("IsMissing(%q) = false, want true", v)
		}
	}
	present := []string{"0", "x", "nil?", "none at all", "na na", "--"}
	for _, v := range present {
		if IsMissing(v) {
			t.Errorf("IsMissing(%q) = true, want false", v)
		}
	}
}

func TestColumnHelpers(t *testing.T) {
	col := Column{Name: "c", Values: []string{"a", "", "b", "a", "NA", "c", "b"}}
	if col.NumValues() != 7 {
		t.Fatalf("NumValues = %d", col.NumValues())
	}
	nm := col.NonMissing()
	if len(nm) != 5 {
		t.Fatalf("NonMissing = %v", nm)
	}
	distinct := col.DistinctNonMissing()
	want := []string{"a", "b", "c"}
	if len(distinct) != len(want) {
		t.Fatalf("DistinctNonMissing = %v, want %v", distinct, want)
	}
	for i := range want {
		if distinct[i] != want[i] {
			t.Errorf("distinct[%d] = %q, want %q (first-occurrence order)", i, distinct[i], want[i])
		}
	}
}

func newTestDataset() *Dataset {
	return &Dataset{
		Name: "t",
		Columns: []Column{
			{Name: "a", Values: []string{"1", "2", "3"}},
			{Name: "b", Values: []string{"x", "y", "z"}},
			{Name: "c", Values: []string{"p", "q", "r"}},
		},
	}
}

func TestDatasetAccessors(t *testing.T) {
	ds := newTestDataset()
	if ds.NumRows() != 3 || ds.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", ds.NumRows(), ds.NumCols())
	}
	if ds.ColumnIndex("b") != 1 || ds.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if ds.Column("c") == nil || ds.Column("c").Values[0] != "p" {
		t.Error("Column lookup wrong")
	}
	if ds.Column("nope") != nil {
		t.Error("missing column should be nil")
	}
	row := ds.Row(1)
	if strings.Join(row, ",") != "2,y,q" {
		t.Errorf("Row(1) = %v", row)
	}
	empty := &Dataset{}
	if empty.NumRows() != 0 {
		t.Error("empty dataset should have 0 rows")
	}
}

func TestDropColumn(t *testing.T) {
	ds := newTestDataset()
	out := ds.DropColumn(1)
	if out.NumCols() != 2 || out.Columns[1].Name != "c" {
		t.Fatalf("DropColumn result wrong: %+v", out.Columns)
	}
	if ds.NumCols() != 3 {
		t.Error("DropColumn must not mutate the receiver")
	}
}

func TestSubset(t *testing.T) {
	ds := newTestDataset()
	sub := ds.Subset([]int{2, 0})
	if sub.NumRows() != 2 {
		t.Fatalf("Subset rows = %d", sub.NumRows())
	}
	if sub.Columns[0].Values[0] != "3" || sub.Columns[0].Values[1] != "1" {
		t.Errorf("Subset order wrong: %v", sub.Columns[0].Values)
	}
	// Mutating the subset must not touch the original.
	sub.Columns[0].Values[0] = "mut"
	if ds.Columns[0].Values[2] == "mut" {
		t.Error("Subset must copy values")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := newTestDataset()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.NumRows() != ds.NumRows() || back.NumCols() != ds.NumCols() {
		t.Fatalf("round-trip shape mismatch")
	}
	for c := range ds.Columns {
		if back.Columns[c].Name != ds.Columns[c].Name {
			t.Errorf("column %d name %q != %q", c, back.Columns[c].Name, ds.Columns[c].Name)
		}
		for r := range ds.Columns[c].Values {
			if back.Columns[c].Values[r] != ds.Columns[c].Values[r] {
				t.Errorf("cell (%d,%d) mismatch", r, c)
			}
		}
	}
}

func TestCSVQuotedCells(t *testing.T) {
	in := "name,desc\n1,\"a, quoted, value\"\n2,plain\n"
	ds, err := ReadCSV("q", strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got := ds.Columns[1].Values[0]; got != "a, quoted, value" {
		t.Errorf("quoted cell = %q", got)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("empty", strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV("ragged", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestCSVFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv")
	ds := newTestDataset()
	if err := WriteCSVFile(path, ds); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if back.NumRows() != 3 {
		t.Errorf("rows = %d", back.NumRows())
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}
