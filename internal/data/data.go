// Package data provides the raw tabular data model for the benchmark:
// columns of string cells, labeled columns, datasets, and CSV input/output.
// It is the input layer of the paper's task setup (Section 2.1): a raw
// column is an attribute name plus uninterpreted cell values, and a
// labeled column adds the ground-truth feature type and source-file
// identity used by the leave-datafile-out protocol of Table 7.
//
// Everything upstream of feature type inference is stringly typed on
// purpose: the benchmark's entire premise is that files arrive as flat CSVs
// whose cells are uninterpreted text, and the semantic gap between syntactic
// attribute types and ML feature types must be bridged by inference.
package data

import (
	"strings"

	"sortinghat/ftype"
)

// MissingTokens are cell values treated as missing (NaN) throughout the
// benchmark, mirroring the common NA markers recognised by data prep tools.
var MissingTokens = map[string]bool{
	"":        true,
	"na":      true,
	"n/a":     true,
	"nan":     true,
	"null":    true,
	"none":    true,
	"-":       true,
	"?":       true,
	"#null":   true,
	"#n/a":    true,
	"missing": true,
}

// IsMissing reports whether a raw cell value counts as missing.
func IsMissing(v string) bool {
	return MissingTokens[strings.ToLower(strings.TrimSpace(v))]
}

// Column is one attribute of a raw data file: a name and its cell values in
// file order. Values are raw strings; missing cells are detected lazily via
// IsMissing rather than normalised away, because several inference
// approaches key on the literal missing token (e.g. "#NULL!").
type Column struct {
	Name   string
	Values []string
}

// NumValues returns the number of cells in the column.
func (c *Column) NumValues() int { return len(c.Values) }

// NonMissing returns the column's non-missing values, preserving order.
func (c *Column) NonMissing() []string {
	out := make([]string, 0, len(c.Values))
	for _, v := range c.Values {
		if !IsMissing(v) {
			out = append(out, v)
		}
	}
	return out
}

// DistinctNonMissing returns the column's distinct non-missing values in
// first-occurrence order.
func (c *Column) DistinctNonMissing() []string {
	seen := make(map[string]bool, len(c.Values))
	out := make([]string, 0, len(c.Values))
	for _, v := range c.Values {
		if IsMissing(v) || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// FirstNDistinct returns the first n distinct non-missing values in
// first-occurrence order — the prefix DistinctNonMissing would produce,
// without scanning past the n-th find or retaining the full distinct set.
// The serve hot path uses it for deterministic sampling: on low-cardinality
// columns (the common case) it stops after a handful of cells.
func (c *Column) FirstNDistinct(n int) []string {
	if n <= 0 {
		return nil
	}
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for _, v := range c.Values {
		if IsMissing(v) || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
		if len(out) == n {
			break
		}
	}
	return out
}

// LabeledColumn is a benchmark example: a raw column together with its
// hand-assigned (here: generator-assigned) ground-truth feature type and the
// identifier of the source file it came from. FileID supports the paper's
// leave-datafile-out cross-validation, which groups columns by source file.
type LabeledColumn struct {
	Column
	Label  ftype.FeatureType
	FileID int
}

// Dataset is a rectangular table: named columns of equal length. It models
// one raw CSV file in the downstream benchmark suite.
type Dataset struct {
	Name    string
	Columns []Column
}

// NumRows returns the number of rows (0 for an empty dataset).
func (d *Dataset) NumRows() int {
	if len(d.Columns) == 0 {
		return 0
	}
	return len(d.Columns[0].Values)
}

// NumCols returns the number of columns.
func (d *Dataset) NumCols() int { return len(d.Columns) }

// ColumnIndex returns the index of the named column, or -1 if absent.
func (d *Dataset) ColumnIndex(name string) int {
	for i := range d.Columns {
		if d.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// Column returns a pointer to the named column, or nil if absent.
func (d *Dataset) Column(name string) *Column {
	if i := d.ColumnIndex(name); i >= 0 {
		return &d.Columns[i]
	}
	return nil
}

// DropColumn returns a copy of the dataset without column index i.
// It panics if i is out of range.
func (d *Dataset) DropColumn(i int) *Dataset {
	out := &Dataset{Name: d.Name, Columns: make([]Column, 0, len(d.Columns)-1)}
	for j := range d.Columns {
		if j != i {
			out.Columns = append(out.Columns, d.Columns[j])
		}
	}
	return out
}

// Row assembles row r as a slice of cells in column order.
func (d *Dataset) Row(r int) []string {
	row := make([]string, len(d.Columns))
	for c := range d.Columns {
		row[c] = d.Columns[c].Values[r]
	}
	return row
}

// Subset returns a new dataset containing only the given row indices, in the
// given order. Column names are shared; value slices are copied.
func (d *Dataset) Subset(rows []int) *Dataset {
	out := &Dataset{Name: d.Name, Columns: make([]Column, len(d.Columns))}
	for c := range d.Columns {
		vals := make([]string, len(rows))
		for i, r := range rows {
			vals[i] = d.Columns[c].Values[r]
		}
		out.Columns[c] = Column{Name: d.Columns[c].Name, Values: vals}
	}
	return out
}
