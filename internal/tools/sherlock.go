package tools

import (
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// Sherlock emulates the paper's "Sherlock + Rules" approach: a
// 78-semantic-type detector (Hulsebos et al., KDD'19) whose predictions are
// mapped onto the 9-class ML feature type vocabulary with the rule-based
// mapping of Appendix H / Table 19.
//
// The real Sherlock is a distantly supervised deep model over column
// values. Reproducing its exact weights offline is impossible, so this
// emulation reproduces its *behaviour as measured by the paper*: the
// detector inspects the value shape of the column (integers, floats, dates,
// short strings, long text, decorated numbers) and picks a plausible
// semantic type, with a deterministic hash-based noise model calibrated to
// the confusion structure the paper reports (Table 17C) — most notably the
// systematic confusion of integer Numeric columns with discrete-set
// semantic types such as Credit and Class, which is what makes the mapped
// accuracy low (~42%) despite reasonable semantic predictions.
type Sherlock struct{}

// Name implements Inferrer.
func (Sherlock) Name() string { return "Sherlock" }

// SemanticTypes is Sherlock's 78-type vocabulary.
var SemanticTypes = []string{
	"address", "affiliate", "affiliation", "age", "album", "area", "artist",
	"birth Date", "birth Place", "brand", "capacity", "category", "city",
	"class", "classification", "club", "code", "collection", "command",
	"company", "component", "continent", "country", "county", "creator",
	"credit", "currency", "day", "depth", "description", "director",
	"duration", "education", "elevation", "family", "file Size", "format",
	"gender", "genre", "grades", "industry", "isbn", "jockey", "language",
	"location", "manufacturer", "name", "nationality", "notes", "operator",
	"order", "organisation", "origin", "owner", "person", "plays",
	"position", "product", "publisher", "range", "rank", "ranking",
	"region", "religion", "requirement", "result", "sales", "service",
	"sex", "species", "state", "status", "symbol", "team", "team Name",
	"type", "weight", "year",
}

// semanticMap maps each semantic type to the ML feature types it can take
// per Table 19. Single-element entries are unambiguous; multi-element
// entries are disambiguated by the rule chain in mapSemantic, in the order
// the paper describes (unique-count, castability, timestamp, word-count,
// embedded-number, fallback Categorical).
var semanticMap = map[string][]ftype.FeatureType{
	"address":        {ftype.ContextSpecific},
	"affiliate":      {ftype.Categorical},
	"affiliation":    {ftype.Categorical},
	"age":            {ftype.Numeric, ftype.EmbeddedNumber, ftype.Categorical},
	"album":          {ftype.ContextSpecific},
	"area":           {ftype.Numeric, ftype.Categorical},
	"artist":         {ftype.ContextSpecific},
	"birth Date":     {ftype.Datetime},
	"birth Place":    {ftype.ContextSpecific},
	"brand":          {ftype.Categorical},
	"capacity":       {ftype.Categorical, ftype.Numeric, ftype.Sentence, ftype.EmbeddedNumber},
	"category":       {ftype.Categorical},
	"city":           {ftype.ContextSpecific},
	"class":          {ftype.Categorical},
	"classification": {ftype.Categorical},
	"club":           {ftype.Categorical},
	"code":           {ftype.Categorical, ftype.NotGeneralizable},
	"collection":     {ftype.Categorical, ftype.List},
	"command":        {ftype.Categorical, ftype.Sentence},
	"company":        {ftype.ContextSpecific},
	"component":      {ftype.Categorical},
	"continent":      {ftype.Categorical},
	"country":        {ftype.Categorical},
	"county":         {ftype.Categorical},
	"creator":        {ftype.ContextSpecific},
	"credit":         {ftype.Categorical},
	"currency":       {ftype.Categorical},
	"day":            {ftype.Categorical, ftype.Datetime},
	"depth":          {ftype.Numeric, ftype.EmbeddedNumber},
	"description":    {ftype.Sentence},
	"director":       {ftype.ContextSpecific},
	"duration":       {ftype.Numeric, ftype.Categorical, ftype.Datetime, ftype.Sentence},
	"education":      {ftype.Categorical},
	"elevation":      {ftype.Numeric},
	"family":         {ftype.Categorical},
	"file Size":      {ftype.Numeric, ftype.EmbeddedNumber},
	"format":         {ftype.Categorical},
	"gender":         {ftype.Categorical},
	"genre":          {ftype.Categorical, ftype.List},
	"grades":         {ftype.Categorical},
	"industry":       {ftype.Categorical},
	"isbn":           {ftype.Categorical, ftype.NotGeneralizable},
	"jockey":         {ftype.ContextSpecific},
	"language":       {ftype.Categorical},
	"location":       {ftype.ContextSpecific},
	"manufacturer":   {ftype.Categorical},
	"name":           {ftype.ContextSpecific},
	"nationality":    {ftype.Categorical},
	"notes":          {ftype.Sentence},
	"operator":       {ftype.Categorical},
	"order":          {ftype.Categorical, ftype.ContextSpecific},
	"organisation":   {ftype.ContextSpecific},
	"origin":         {ftype.Categorical},
	"owner":          {ftype.ContextSpecific},
	"person":         {ftype.ContextSpecific},
	"plays":          {ftype.Numeric, ftype.EmbeddedNumber},
	"position":       {ftype.Numeric, ftype.Categorical},
	"product":        {ftype.ContextSpecific},
	"publisher":      {ftype.ContextSpecific},
	"range":          {ftype.Categorical, ftype.EmbeddedNumber},
	"rank":           {ftype.Categorical, ftype.EmbeddedNumber},
	"ranking":        {ftype.Numeric, ftype.Categorical, ftype.EmbeddedNumber},
	"region":         {ftype.Categorical},
	"religion":       {ftype.Categorical},
	"requirement":    {ftype.Sentence},
	"result":         {ftype.Numeric, ftype.Categorical, ftype.Sentence},
	"sales":          {ftype.Numeric, ftype.EmbeddedNumber},
	"service":        {ftype.Categorical},
	"sex":            {ftype.Categorical},
	"species":        {ftype.Categorical},
	"state":          {ftype.Categorical},
	"status":         {ftype.Categorical},
	"symbol":         {ftype.Categorical},
	"team":           {ftype.Categorical},
	"team Name":      {ftype.ContextSpecific},
	"type":           {ftype.Categorical},
	"weight":         {ftype.Numeric, ftype.EmbeddedNumber},
	"year":           {ftype.Categorical, ftype.Datetime},
}

// candidate pools by value shape, with weights reproducing the noise
// structure in the paper's Table 17C confusion matrix.
type weighted struct {
	types  []string
	weight int
}

var (
	numericPools = []weighted{
		{[]string{"age", "sales", "plays", "position", "depth", "elevation", "file Size", "weight"}, 38},
		{[]string{"credit", "class", "code", "rank", "grades", "classification", "type"}, 45},
		{[]string{"order", "name", "address"}, 12},
		{[]string{"year", "isbn"}, 5},
	}
	datePools = []weighted{
		{[]string{"birth Date", "day"}, 82},
		{[]string{"year", "category", "code"}, 18},
	}
	textPools = []weighted{
		{[]string{"description", "notes", "requirement", "command"}, 55},
		{[]string{"category", "collection", "capacity"}, 33},
		{[]string{"name", "address"}, 12},
	}
	enPools = []weighted{
		{[]string{"capacity", "file Size", "weight", "plays", "sales", "range", "rank"}, 36},
		{[]string{"category", "brand", "type", "code", "currency"}, 58},
		{[]string{"order", "name"}, 6},
	}
	lowStringPools = []weighted{
		{[]string{"gender", "category", "type", "status", "genre", "state", "country", "family", "language", "region", "club", "brand"}, 74},
		{[]string{"description", "command"}, 14},
		{[]string{"name", "person", "city"}, 12},
	}
	highStringPools = []weighted{
		{[]string{"name", "person", "company", "location", "creator", "artist", "address"}, 42},
		{[]string{"category", "type", "collection", "isbn", "code"}, 46},
		{[]string{"notes", "description"}, 12},
	}
)

// knownCountries / knownStates / genderTokens back Sherlock's detection of
// the distinctive semantic types the paper probes in its Table 14 study.
// The real model learned these from its training corpus; here small lookup
// sets stand in. Detection is deliberately imperfect (hash-gated) to match
// the recalls the paper reports (~50-85%), with abbreviations the weak spot.
var knownCountries = map[string]bool{}
var knownStates = map[string]bool{}

func init() {
	for _, c := range []string{
		"united states", "canada", "mexico", "brazil", "argentina", "chile",
		"united kingdom", "france", "germany", "spain", "italy", "portugal",
		"netherlands", "belgium", "sweden", "norway", "denmark", "finland",
		"poland", "austria", "switzerland", "greece", "turkey", "russia",
		"china", "japan", "south korea", "india", "indonesia", "thailand",
		"vietnam", "philippines", "australia", "new zealand", "south africa",
		"egypt", "nigeria", "kenya", "morocco", "israel", "saudi arabia",
	} {
		knownCountries[c] = true
	}
	for _, st := range []string{
		"california", "texas", "florida", "new york", "pennsylvania",
		"illinois", "ohio", "georgia", "north carolina", "michigan",
		"new jersey", "virginia", "washington", "arizona", "massachusetts",
		"tennessee", "indiana", "missouri", "maryland", "wisconsin",
		"ontario", "quebec", "british columbia", "bavaria", "catalonia",
		"queensland", "victoria", "maharashtra", "punjab", "hokkaido",
	} {
		knownStates[st] = true
	}
}

var genderTokens = map[string]bool{
	"m": true, "f": true, "male": true, "female": true,
	"man": true, "woman": true, "other": true,
}

// matchFrac returns the fraction of samples whose lowercase form is in set.
func matchFrac(samples []string, set map[string]bool) float64 {
	if len(samples) == 0 {
		return 0
	}
	hits := 0
	for _, v := range samples {
		if set[strings.ToLower(strings.TrimSpace(v))] {
			hits++
		}
	}
	return float64(hits) / float64(len(samples))
}

// hash64 yields a stable pseudo-random stream per column. It is FNV-1a
// unrolled by hand — bit-identical to fnv.New64a fed each part followed
// by a zero separator byte — so the loop hashes strings in place instead
// of copying each one into a fresh []byte.
func hash64(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint64(p[i])) * prime64
		}
		h *= prime64 // the zero separator: XOR with 0 is a no-op
	}
	return h
}

func pickWeighted(pools []weighted, h uint64) string {
	total := 0
	for _, p := range pools {
		total += p.weight
	}
	r := int(h % uint64(total))
	for _, p := range pools {
		if r < p.weight {
			return p.types[int(h>>16)%len(p.types)]
		}
		r -= p.weight
	}
	return pools[0].types[0]
}

// PredictSemantic returns the emulated Sherlock semantic type for a column.
// Like the real model it conditions only on column values, never the name.
func (Sherlock) PredictSemantic(col *data.Column) string {
	p := buildProfile(col)
	if p.nonMissing == 0 {
		return "code"
	}
	first := ""
	if len(p.samples) > 0 {
		first = p.samples[0]
	}
	h := hash64("sherlock", first, strings.Join(p.samples[:minInt(3, len(p.samples))], "\x1f"))
	// Distinctive value domains the real model detects reliably from
	// content alone. Full names detect well; short abbreviations are
	// missed more often (the paper's Table 11/14 observation).
	if !p.castFloatAll {
		if matchFrac(p.samples, genderTokens) >= 0.8 && p.st.NumUnique <= 4 && h%10 < 8 {
			return "gender"
		}
		if matchFrac(p.samples, knownCountries) >= 0.6 && h%10 < 6 {
			return "country"
		}
		if matchFrac(p.samples, knownStates) >= 0.6 && h%10 < 7 {
			return "state"
		}
	}
	switch {
	case p.datePandasFrac >= 0.8:
		return pickWeighted(datePools, h)
	case p.castFloatAll:
		return pickWeighted(numericPools, h)
	case p.meanWords >= 4:
		return pickWeighted(textPools, h)
	case p.enFrac >= 0.5:
		return pickWeighted(enPools, h)
	case p.st.PctUnique > 60:
		return pickWeighted(highStringPools, h)
	default:
		return pickWeighted(lowStringPools, h)
	}
}

// Infer implements Inferrer: PredictSemantic followed by the Appendix-H
// rule mapping into the 9-class vocabulary.
func (s Sherlock) Infer(col *data.Column) ftype.FeatureType {
	sem := s.PredictSemantic(col)
	return MapSemantic(sem, col)
}

// MapSemantic resolves a Sherlock semantic type to one ML feature type for
// the given column, using the paper's rule chain for ambiguous types:
// small unique count → Categorical, castable → Numeric, timestamp →
// Datetime, wordy → Sentence, embedded-number syntax → Embedded Number,
// otherwise Categorical (or the type's sole non-Categorical mapping).
func MapSemantic(sem string, col *data.Column) ftype.FeatureType {
	cands, ok := semanticMap[sem]
	if !ok {
		return ftype.Unknown
	}
	if len(cands) == 1 {
		return cands[0]
	}
	has := func(t ftype.FeatureType) bool {
		for _, c := range cands {
			if c == t {
				return true
			}
		}
		return false
	}
	p := buildProfile(col)
	if has(ftype.Categorical) && p.st.NumUnique < 20 {
		return ftype.Categorical
	}
	if has(ftype.Numeric) && p.castFloatAll {
		return ftype.Numeric
	}
	if has(ftype.Datetime) && p.datePandasFrac >= 0.8 {
		return ftype.Datetime
	}
	if has(ftype.Sentence) && p.meanWords > 3 {
		return ftype.Sentence
	}
	if has(ftype.EmbeddedNumber) && p.enFrac >= 0.5 {
		return ftype.EmbeddedNumber
	}
	if has(ftype.List) && p.listFrac >= 0.5 {
		return ftype.List
	}
	if has(ftype.Categorical) {
		return ftype.Categorical
	}
	return cands[0]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
