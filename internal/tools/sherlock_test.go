package tools

import (
	"fmt"
	"hash/fnv"
	"testing"

	"sortinghat/ftype"
	"sortinghat/internal/data"
)

func TestSemanticMapCoversAllTypes(t *testing.T) {
	if len(SemanticTypes) != 78 {
		t.Fatalf("Sherlock vocabulary has %d types, want 78", len(SemanticTypes))
	}
	for _, st := range SemanticTypes {
		cands, ok := semanticMap[st]
		if !ok {
			t.Errorf("semantic type %q has no mapping", st)
			continue
		}
		if len(cands) == 0 {
			t.Errorf("semantic type %q maps to nothing", st)
		}
		for _, c := range cands {
			if !c.Valid() {
				t.Errorf("semantic type %q maps to invalid %v", st, c)
			}
		}
	}
	for st := range semanticMap {
		found := false
		for _, name := range SemanticTypes {
			if name == st {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("mapping contains unknown semantic type %q", st)
		}
	}
}

func TestSemanticMapMultiplicityDistribution(t *testing.T) {
	// The paper: 55 single-mapped, 18 double, 3 triple, 2 quadruple.
	counts := map[int]int{}
	for _, cands := range semanticMap {
		counts[len(cands)]++
	}
	if counts[1] < 50 {
		t.Errorf("single-mapped types = %d, want ≈55", counts[1])
	}
	if counts[4] == 0 {
		t.Error("the vocabulary should contain 4-way ambiguous types (capacity, duration)")
	}
}

func TestMapSemanticRules(t *testing.T) {
	small := &data.Column{Name: "x", Values: []string{"1", "2", "3", "1", "2"}}
	if got := MapSemantic("age", small); got != ftype.Categorical {
		t.Errorf("age with <20 unique -> %v, want Categorical (rule 1)", got)
	}
	wide := &data.Column{Name: "x", Values: make([]string, 100)}
	for i := range wide.Values {
		wide.Values[i] = fmt.Sprintf("%d", i*13)
	}
	if got := MapSemantic("age", wide); got != ftype.Numeric {
		t.Errorf("castable wide age -> %v, want Numeric (rule 2)", got)
	}
	en := &data.Column{Name: "x", Values: make([]string, 60)}
	for i := range en.Values {
		en.Values[i] = fmt.Sprintf("%d,%03d kb", i+1, i*7%1000)
	}
	if got := MapSemantic("capacity", en); got != ftype.EmbeddedNumber {
		t.Errorf("capacity with decorated numbers -> %v, want Embedded-Number", got)
	}
	if got := MapSemantic("name", small); got != ftype.ContextSpecific {
		t.Errorf("single-mapped 'name' -> %v", got)
	}
	if got := MapSemantic("not-a-type", small); got != ftype.Unknown {
		t.Errorf("unknown semantic type -> %v, want Unknown", got)
	}
}

func TestSherlockDeterministic(t *testing.T) {
	s := Sherlock{}
	col := intCol("v", 0, 50000, 150, 21)
	first := s.PredictSemantic(col)
	for i := 0; i < 5; i++ {
		if got := s.PredictSemantic(col); got != first {
			t.Fatal("Sherlock emulation must be deterministic per column")
		}
	}
	if _, ok := semanticMap[first]; !ok {
		t.Fatalf("predicted semantic type %q not in vocabulary", first)
	}
}

func TestSherlockDateDetection(t *testing.T) {
	s := Sherlock{}
	// The paper notes Sherlock's high precision on Datetime.
	hits := 0
	for i := 0; i < 10; i++ {
		col := isoDates(60 + i)
		col.Name = fmt.Sprintf("d%d", i)
		if s.Infer(col) == ftype.Datetime {
			hits++
		}
	}
	if hits < 6 {
		t.Errorf("Sherlock mapped only %d/10 date columns to Datetime", hits)
	}
}

func TestSherlockConfusesIntegersWithCategorical(t *testing.T) {
	// The paper's key finding: integer Numeric columns are frequently
	// mapped to discrete-set semantic types (Credit, Class) and hence
	// Categorical. Over many columns, a large minority must be confused.
	s := Sherlock{}
	cat := 0
	total := 60
	for i := 0; i < total; i++ {
		col := intCol("m", 0, 90000, 200, int64(100+i))
		col.Name = fmt.Sprintf("m%d", i)
		if s.Infer(col) == ftype.Categorical {
			cat++
		}
	}
	frac := float64(cat) / float64(total)
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("integer->Categorical confusion rate = %.2f, want the paper's ~0.45 band", frac)
	}
}

func TestSherlockRecognisesDistinctiveDomains(t *testing.T) {
	s := Sherlock{}
	hits := func(domain []string, accepted map[string]bool, name string) int {
		n := 0
		for i := 0; i < 20; i++ {
			vals := make([]string, 60)
			for j := range vals {
				vals[j] = domain[(i+j)%len(domain)]
			}
			col := &data.Column{Name: fmt.Sprintf("%s%d", name, i), Values: vals}
			if accepted[s.PredictSemantic(col)] {
				n++
			}
		}
		return n
	}
	countries := []string{"France", "Japan", "Brazil", "Kenya", "Canada", "Spain"}
	if n := hits(countries, map[string]bool{"country": true}, "c"); n < 8 {
		t.Errorf("country detection %d/20, want most", n)
	}
	states := []string{"California", "Texas", "Ohio", "Georgia", "Virginia"}
	if n := hits(states, map[string]bool{"state": true}, "s"); n < 8 {
		t.Errorf("state detection %d/20", n)
	}
	genders := []string{"M", "F"}
	if n := hits(genders, map[string]bool{"gender": true, "sex": true}, "g"); n < 10 {
		t.Errorf("gender detection %d/20", n)
	}
	// Abbreviations are the documented weak spot: lower, not zero-or-all.
	codes := []string{"USA", "CAN", "MEX", "BRA", "FRA", "DEU"}
	if n := hits(codes, map[string]bool{"country": true}, "cc"); n > 15 {
		t.Errorf("abbreviation detection %d/20, should be weaker than full names", n)
	}
}

// TestHash64MatchesStdlibFNV pins the hand-unrolled hash64 to the stdlib
// stream it replaced: fnv.New64a fed each part followed by a zero byte.
// Any drift here would silently reshuffle every simulated prediction.
func TestHash64MatchesStdlibFNV(t *testing.T) {
	cases := [][]string{
		{},
		{""},
		{"zipcode"},
		{"name", "city", "country"},
		{"Ärzte", "日付", "a\x00b"},
	}
	for _, parts := range cases {
		h := fnv.New64a()
		for _, p := range parts {
			h.Write([]byte(p)) //shvet:ignore unchecked-err hash.Hash Write never returns an error
			h.Write([]byte{0}) //shvet:ignore unchecked-err hash.Hash Write never returns an error
		}
		if got, want := hash64(parts...), h.Sum64(); got != want {
			t.Errorf("hash64(%q) = %#x, want stdlib FNV-1a %#x", parts, got, want)
		}
	}
}
