package tools

import (
	"fmt"
	"math/rand"
	"testing"

	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// column builders for crafted cases.
func intCol(name string, lo, span, n int, seed int64) *data.Column {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("%d", lo+rng.Intn(span))
	}
	return &data.Column{Name: name, Values: vals}
}

func strCol(name string, domain []string, n int, seed int64) *data.Column {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]string, n)
	for i := range vals {
		vals[i] = domain[rng.Intn(len(domain))]
	}
	return &data.Column{Name: name, Values: vals}
}

func isoDates(n int) *data.Column {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("20%02d-%02d-%02d", i%20, i%12+1, i%28+1)
	}
	return &data.Column{Name: "date", Values: vals}
}

func verboseDates(n int) *data.Column {
	months := []string{"January", "February", "March", "April"}
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("%s %d, %d", months[i%4], i%28+1, 1990+i%30)
	}
	return &data.Column{Name: "start", Values: vals}
}

func sentences(n, words int) *data.Column {
	vals := make([]string, n)
	for i := range vals {
		s := ""
		for w := 0; w < words; w++ {
			s += fmt.Sprintf("word%d ", (i+w)%50)
		}
		vals[i] = s
	}
	return &data.Column{Name: "review", Values: vals}
}

// TestIntCodedCategoricalTrap: every syntax-based tool must call an
// integer-coded categorical column Numeric — the paper's central failure
// mode (ZipCode in Figure 2).
func TestIntCodedCategoricalTrap(t *testing.T) {
	zip := intCol("zipcode", 10000, 15, 300, 1)
	for _, tool := range []Inferrer{Pandas{}, TFDV{}, TransmogrifAI{}, AutoGluon{}} {
		if got := tool.Infer(zip); got != ftype.Numeric {
			t.Errorf("%s(zipcode ints) = %v, want Numeric (the documented trap)", tool.Name(), got)
		}
	}
}

func TestPandas(t *testing.T) {
	p := Pandas{}
	if got := p.Infer(intCol("x", 0, 10000, 200, 2)); got != ftype.Numeric {
		t.Errorf("ints -> %v", got)
	}
	if got := p.Infer(isoDates(100)); got != ftype.Datetime {
		t.Errorf("iso dates -> %v", got)
	}
	if got := p.Infer(verboseDates(100)); got != ftype.Datetime {
		t.Errorf("verbose dates -> %v (pandas parses these)", got)
	}
	if got := p.Infer(strCol("s", []string{"a", "b"}, 100, 3)); got != ftype.ContextSpecific {
		t.Errorf("object -> %v, want Context-Specific per Figure 3", got)
	}
	empty := &data.Column{Name: "e", Values: []string{"", "NA"}}
	if got := p.Infer(empty); got != ftype.Unknown {
		t.Errorf("all-missing -> %v, want Unknown", got)
	}
	// Bare digit dates are swallowed as integers (the BirthDate example).
	digits := &data.Column{Name: "birthdate", Values: []string{"19980112", "20011231", "19870605"}}
	if got := p.Infer(digits); got != ftype.Numeric {
		t.Errorf("digit dates -> %v, want Numeric (pandas casts them)", got)
	}
}

func TestTFDV(t *testing.T) {
	tool := TFDV{}
	if got := tool.Infer(isoDates(100)); got != ftype.Datetime {
		t.Errorf("iso dates -> %v", got)
	}
	if got := tool.Infer(verboseDates(100)); got == ftype.Datetime {
		t.Error("TFDV's weak parser should miss verbose dates")
	}
	if got := tool.Infer(sentences(50, 14)); got != ftype.Sentence {
		t.Errorf("long text -> %v", got)
	}
	if got := tool.Infer(sentences(50, 4)); got != ftype.Categorical {
		t.Errorf("short phrases -> %v, want Categorical (below word threshold)", got)
	}
	if got := tool.Infer(strCol("c", []string{"red", "blue"}, 100, 5)); got != ftype.Categorical {
		t.Errorf("string cats -> %v", got)
	}
}

func TestTransmogrifAI(t *testing.T) {
	tool := TransmogrifAI{}
	if got := tool.Infer(intCol("x", 0, 100, 50, 7)); got != ftype.Numeric {
		t.Errorf("ints -> %v", got)
	}
	if got := tool.Infer(verboseDates(60)); got != ftype.ContextSpecific {
		t.Errorf("verbose dates -> %v, want Text/CS (weakest date parser)", got)
	}
	if got := tool.Infer(strCol("s", []string{"x", "y"}, 60, 8)); got != ftype.ContextSpecific {
		t.Errorf("strings -> %v", got)
	}
}

func TestAutoGluon(t *testing.T) {
	tool := AutoGluon{}
	if got := tool.Infer(sentences(60, 4)); got != ftype.Sentence {
		t.Errorf("AutoGluon is text-aggressive; 4-word strings -> %v", got)
	}
	constant := strCol("k", []string{"same"}, 80, 9)
	if got := tool.Infer(constant); got != ftype.NotGeneralizable {
		t.Errorf("constant column -> %v, want discarded/NG", got)
	}
	unique := &data.Column{Name: "u", Values: make([]string, 100)}
	for i := range unique.Values {
		unique.Values[i] = fmt.Sprintf("id-%06d", i)
	}
	if got := tool.Infer(unique); got != ftype.NotGeneralizable {
		t.Errorf("near-unique strings -> %v, want NG", got)
	}
	if got := tool.Infer(strCol("c", []string{"a", "b", "c"}, 100, 10)); got != ftype.Categorical {
		t.Errorf("string cats -> %v", got)
	}
}

func TestRuleBaseline(t *testing.T) {
	tool := RuleBaseline{}
	urls := &data.Column{Name: "u", Values: []string{
		"https://a.com/x", "https://b.org", "https://c.net/y", "https://a.com/x",
	}}
	if got := tool.Infer(urls); got != ftype.URL {
		t.Errorf("urls -> %v", got)
	}
	lists := strCol("l", []string{"a; b; c", "x; y", "p; q; r"}, 60, 11)
	if got := tool.Infer(lists); got != ftype.List {
		t.Errorf("lists -> %v", got)
	}
	en := strCol("p", []string{"USD 45", "USD 99", "USD 12"}, 60, 12)
	if got := tool.Infer(en); got != ftype.EmbeddedNumber {
		t.Errorf("embedded -> %v", got)
	}
	// All-distinct values fall into NG before anything else (rule 2), the
	// baseline's documented weakness on Datetime/Sentence.
	uniqueDates := isoDates(80) // 80 distinct dates
	if got := tool.Infer(uniqueDates); got != ftype.NotGeneralizable {
		t.Errorf("all-distinct dates -> %v, want NG (rule order)", got)
	}
	smallCat := &data.Column{Name: "g", Values: []string{"1", "2", "1", "2", "3", "1"}}
	if got := tool.Infer(smallCat); got != ftype.Categorical {
		t.Errorf("tiny int domain -> %v", got)
	}
	wideInts := intCol("x", 0, 150, 400, 13) // wide-ish domain with repeats
	if got := tool.Infer(wideInts); got != ftype.Numeric {
		t.Errorf("wide ints -> %v", got)
	}
	// Fully distinct integers (a primary key) hit the all-distinct rule.
	pk := &data.Column{Name: "id", Values: make([]string, 100)}
	for i := range pk.Values {
		pk.Values[i] = fmt.Sprintf("%d", i)
	}
	if got := tool.Infer(pk); got != ftype.NotGeneralizable {
		t.Errorf("sequential ids -> %v, want NG", got)
	}
	empty := &data.Column{Name: "e", Values: []string{"", ""}}
	if got := tool.Infer(empty); got != ftype.NotGeneralizable {
		t.Errorf("empty -> %v", got)
	}
}

func TestCoverageSets(t *testing.T) {
	if CoverageSet("Pandas")[ftype.Categorical] {
		t.Error("Pandas does not cover Categorical")
	}
	if !CoverageSet("TFDV")[ftype.Sentence] {
		t.Error("TFDV covers Sentence")
	}
	if !CoverageSet("AutoGluon")[ftype.NotGeneralizable] {
		t.Error("AutoGluon covers NG (discard)")
	}
	if !CoverageSet("OurRF")[ftype.ContextSpecific] {
		t.Error("ML models cover the full vocabulary")
	}
}

func TestBuildProfile(t *testing.T) {
	col := &data.Column{Name: "m", Values: []string{"1", "2", "", "x"}}
	p := buildProfile(col)
	if p.nonMissing != 3 {
		t.Errorf("nonMissing = %d", p.nonMissing)
	}
	if p.castFloatAll {
		t.Error("castFloatAll should be false with 'x' present")
	}
	p2 := buildProfile(intCol("i", 0, 5, 50, 14))
	if !p2.castFloatAll || !p2.castIntAll {
		t.Error("all-int column flags wrong")
	}
}
