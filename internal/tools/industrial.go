package tools

import (
	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// Pandas emulates pandas' dtype sniffing (read_csv inference plus the
// to_datetime utility check the paper applies): columns fully castable to
// int64/float64 become Numeric, columns that parse under pandas' flexible
// datetime parser become Datetime, and everything else is dtype object,
// which Figure 3 maps to Context-Specific.
type Pandas struct{}

// Name implements Inferrer.
func (Pandas) Name() string { return "Pandas" }

// Infer implements Inferrer.
func (Pandas) Infer(col *data.Column) ftype.FeatureType {
	p := buildProfile(col)
	if p.nonMissing == 0 {
		return ftype.Unknown
	}
	if p.castFloatAll {
		return ftype.Numeric
	}
	if p.datePandasFrac >= 0.9 {
		return ftype.Datetime
	}
	return ftype.ContextSpecific
}

// TransmogrifAI emulates Salesforce TransmogrifAI's primitive type
// inference: Integer/Long/Double map to Numeric, Timestamp (strict
// ISO-style parsing only) to Datetime, and String to Text, which Figure 3
// maps to Context-Specific. Its richer vocabulary (email, phone, zip) is
// user-declared, not inferred, so it never fires here — exactly the
// limitation the paper calls out.
type TransmogrifAI struct{}

// Name implements Inferrer.
func (TransmogrifAI) Name() string { return "TransmogrifAI" }

// Infer implements Inferrer.
func (TransmogrifAI) Infer(col *data.Column) ftype.FeatureType {
	p := buildProfile(col)
	if p.nonMissing == 0 {
		return ftype.Unknown
	}
	if p.castFloatAll {
		return ftype.Numeric
	}
	if p.dateEasyFrac >= 0.9 {
		return ftype.Datetime
	}
	return ftype.ContextSpecific
}

// TFDV emulates TensorFlow Data Validation's schema inference heuristics
// over column statistics: numeric dtypes become INT/FLOAT (Numeric),
// string columns become a time/date domain when they parse under TFDV's
// (ISO-leaning) formats, NATURAL_LANGUAGE when values are long multi-word
// strings, and BYTES/Categorical otherwise.
type TFDV struct{}

// Name implements Inferrer.
func (TFDV) Name() string { return "TFDV" }

// Infer implements Inferrer.
func (TFDV) Infer(col *data.Column) ftype.FeatureType {
	p := buildProfile(col)
	if p.nonMissing == 0 {
		return ftype.Unknown
	}
	if p.castFloatAll {
		return ftype.Numeric
	}
	if p.dateEasyFrac >= 0.9 {
		return ftype.Datetime
	}
	// TFDV's natural-language heuristic keys on long, wordy values.
	if p.meanWords >= 10 {
		return ftype.Sentence
	}
	return ftype.Categorical
}

// AutoGluon emulates AutoGluon-Tabular's column type classification:
// unusable columns are discarded (Not-Generalizable), numeric dtypes stay
// numeric, dates are detected fairly broadly, short-word-count text columns
// become text aggressively (the paper notes its low Sentence precision),
// remaining low-cardinality strings become categorical, and high-
// cardinality strings are dropped as unusable.
type AutoGluon struct{}

// Name implements Inferrer.
func (AutoGluon) Name() string { return "AutoGluon" }

// Infer implements Inferrer.
func (AutoGluon) Infer(col *data.Column) ftype.FeatureType {
	p := buildProfile(col)
	if p.nonMissing == 0 || p.st.NumUnique <= 1 {
		return ftype.NotGeneralizable // discarded
	}
	if p.castFloatAll {
		return ftype.Numeric
	}
	if p.dateMidFrac >= 0.9 {
		return ftype.Datetime
	}
	if p.meanWords >= 3 {
		return ftype.Sentence
	}
	// Near-unique string columns carry no repeated categories; AutoGluon
	// drops them as unusable identifiers.
	if p.st.PctUnique > 95 {
		return ftype.NotGeneralizable
	}
	return ftype.Categorical
}
