package tools

import (
	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// RuleBaseline is the paper's hand-written 11-rule flowchart baseline
// (Section 3.2 and Appendix G). The rules fire in a fixed order; each is a
// check on the column profile, ending in one of the nine classes. Its known
// weaknesses are intentional and reproduce the paper's findings: categories
// encoded as numbers fall through to Numeric, and the aggressive
// uniqueness/NaN rule swallows fully distinct Datetime, Sentence and URL
// columns into Not-Generalizable.
type RuleBaseline struct{}

// Name implements Inferrer.
func (RuleBaseline) Name() string { return "Rule-based" }

// Infer implements Inferrer.
func (RuleBaseline) Infer(col *data.Column) ftype.FeatureType {
	p := buildProfile(col)

	// Rule 1: no informative values at all.
	if p.nonMissing == 0 || p.st.NumUnique <= 1 {
		return ftype.NotGeneralizable
	}
	// Rule 2: columns that are (almost) entirely NaN or whose non-missing
	// values are all distinct offer nothing generalizable. This fires
	// before the syntactic checks, which is what makes the baseline misfile
	// distinct-valued Datetime, Sentence and URL columns, as the paper's
	// confusion matrix (Table 17A) shows.
	if p.st.PctNaNs > 99.99 || p.st.NumUnique >= p.nonMissing {
		return ftype.NotGeneralizable
	}
	// Rule 3: URL syntax on the sampled values.
	if p.urlFrac > 0.5 {
		return ftype.URL
	}
	// Rule 4: delimiter-separated series of items.
	if p.listFrac > 0.5 {
		return ftype.List
	}
	// Rule 5: parseable dates or timestamps.
	if p.datePandasFrac > 0.5 {
		return ftype.Datetime
	}
	// Rule 6: castable numbers with a tiny domain read as categories...
	if p.castFloatAll && p.st.NumUnique <= 5 {
		return ftype.Categorical
	}
	// Rule 7: ...all other castable numbers read as Numeric (this is where
	// zip codes and integer-coded categories go wrong).
	if p.castFloatAll {
		return ftype.Numeric
	}
	// Rule 8: numbers embedded in messy syntax.
	if p.enFrac > 0.5 {
		return ftype.EmbeddedNumber
	}
	// Rule 9: long, wordy values read as natural language.
	if p.meanWords > 3 {
		return ftype.Sentence
	}
	// Rule 10: low-cardinality strings read as categories.
	if p.st.PctUnique < 10 {
		return ftype.Categorical
	}
	// Rule 11: everything else needs a human.
	return ftype.ContextSpecific
}
