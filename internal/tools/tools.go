// Package tools re-implements the feature type inference logic of the
// open-source industrial tools the paper benchmarks — TFDV, Pandas,
// TransmogrifAI and AutoGluon — plus the paper's own rule-based baseline
// (Appendix G) and a Sherlock-style semantic type detector with the
// Appendix-H mapping onto the 9-class vocabulary.
//
// Each tool is an Inferrer whose output is already mapped through the
// paper's Figure-3 vocabulary mapping, so predictions land directly in the
// ftype label space (or ftype.Unknown when the tool has no answer at all).
package tools

import (
	"strings"
	"time"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/stats"
)

// Inferrer is a feature type inference approach under benchmark.
type Inferrer interface {
	// Name returns the display name used in result tables.
	Name() string
	// Infer predicts the ML feature type of a raw column, or ftype.Unknown
	// when the approach cannot produce a prediction for it.
	Infer(col *data.Column) ftype.FeatureType
}

// CoverageSet returns the classes a tool's own vocabulary genuinely covers
// (Figure 3 of the paper), used by the downstream suite's coverage
// accounting (Table 4A). Catch-all mappings (e.g. Pandas object →
// Context-Specific) do not count as coverage.
func CoverageSet(toolName string) map[ftype.FeatureType]bool {
	set := func(ts ...ftype.FeatureType) map[ftype.FeatureType]bool {
		m := map[ftype.FeatureType]bool{}
		for _, t := range ts {
			m[t] = true
		}
		return m
	}
	switch toolName {
	case "Pandas":
		return set(ftype.Numeric, ftype.Datetime)
	case "TransmogrifAI":
		return set(ftype.Numeric, ftype.Datetime)
	case "TFDV":
		return set(ftype.Numeric, ftype.Categorical, ftype.Datetime, ftype.Sentence)
	case "AutoGluon":
		return set(ftype.Numeric, ftype.Categorical, ftype.Datetime, ftype.Sentence, ftype.NotGeneralizable)
	default:
		return set(ftype.BaseClasses()...)
	}
}

// profile is the per-column evidence every rule-based tool inspects. It is
// computed once from the whole column (tools scan full columns, unlike the
// sample-bounded ML featurization).
type profile struct {
	st         stats.Stats
	samples    []string // up to maxProbe non-missing values in column order
	nonMissing int

	castFloatAll bool // every non-missing value parses as a number
	castIntAll   bool // every non-missing value parses as a plain integer

	dateEasyFrac   float64 // ISO-style layouts only (weak parsers)
	dateMidFrac    float64 // ISO + common slash/dash/abbreviated layouts
	datePandasFrac float64 // everything a pandas-style parser accepts

	meanWords float64
	urlFrac   float64
	listFrac  float64
	enFrac    float64 // embedded-number looking values
}

const maxProbe = 60

var easyLayouts = []string{
	"2006-01-02", "2006/01/02", "2006-01-02 15:04:05", "2006-01-02T15:04:05",
	"2006-01-02T15:04:05Z07:00",
}

var midLayouts = []string{
	"01/02/2006", "1/2/2006", "01-02-2006", "Jan 2, 2006", "02-Jan-2006",
	"15:04:05", "01/02/2006 15:04", "15:04",
}

var verboseLayouts = []string{
	"January 2, 2006", "2-Jan-06", "2 January 2006", "Jan 2006", "Jan-06",
}

func parsesAny(v string, layouts []string) bool {
	v = strings.TrimSpace(v)
	if v == "" || len(v) > 40 || !strings.ContainsAny(v, "0123456789") {
		return false
	}
	for _, l := range layouts {
		if _, err := time.Parse(l, v); err == nil {
			return true
		}
	}
	return false
}

// buildProfile computes the shared evidence for one column.
func buildProfile(col *data.Column) profile {
	var p profile
	probe := make([]string, 0, maxProbe)
	nFloat, nInt := 0, 0
	var words float64
	var easy, mid, pandas, urls, lists, ens int
	for _, v := range col.Values {
		if data.IsMissing(v) {
			continue
		}
		p.nonMissing++
		if _, ok := stats.ParseFloat(v); ok {
			nFloat++
			if stats.IsInt(v) {
				nInt++
			}
		}
		if len(probe) < maxProbe {
			probe = append(probe, v)
			words += float64(stats.CountWords(v))
			isEasy := parsesAny(v, easyLayouts)
			isMid := isEasy || parsesAny(v, midLayouts)
			isPandas := isMid || parsesAny(v, verboseLayouts)
			if isEasy {
				easy++
			}
			if isMid {
				mid++
			}
			if isPandas {
				pandas++
			}
			if stats.IsURL(v) {
				urls++
			}
			if stats.IsList(v) {
				lists++
			}
			if stats.LooksEmbeddedNumber(v) {
				ens++
			}
		}
	}
	p.samples = probe
	p.castFloatAll = p.nonMissing > 0 && nFloat == p.nonMissing
	p.castIntAll = p.nonMissing > 0 && nInt == p.nonMissing
	if n := float64(len(probe)); n > 0 {
		p.dateEasyFrac = float64(easy) / n
		p.dateMidFrac = float64(mid) / n
		p.datePandasFrac = float64(pandas) / n
		p.meanWords = words / n
		p.urlFrac = float64(urls) / n
		p.listFrac = float64(lists) / n
		p.enFrac = float64(ens) / n
	}
	// Unique and NaN percentages come from the full-column stats; the
	// regex checks there are irrelevant here (tools use the probe counts).
	p.st = stats.Compute(col, nil)
	return p
}
