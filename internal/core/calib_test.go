package core

import (
	"math/rand"
	"testing"

	"sortinghat/ftype"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/ml/modelsel"
	"sortinghat/internal/synth"
	"sortinghat/internal/tools"
)

// gatherBases selects slice rows by index.
func gatherBases[T any](b []T, idx []int) []T {
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = b[j]
	}
	return out
}

// TestCalibration is a smoke check that the synthetic corpus separates the
// approaches the way the paper reports: ML models well above the rule
// baseline and Sherlock, Random Forest the best.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration smoke is slow")
	}
	cfg := synth.DefaultCorpusConfig()
	cfg.N = 3000
	corpus := synth.GenerateCorpus(cfg)
	bases, labels := ExtractBases(corpus, 42)
	rng := rand.New(rand.NewSource(9))
	trainIdx, testIdx := modelsel.StratifiedSplit(labels, 0.2, rng)
	yTest := modelsel.GatherInts(labels, testIdx)

	opts := DefaultOptions()
	opts.RFTrees = 40
	pipe, err := TrainOnBases(gatherBases(bases, trainIdx), modelsel.GatherInts(labels, trainIdx), opts)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	pred := make([]int, len(testIdx))
	for i, j := range testIdx {
		ft, _ := pipe.PredictBase(&bases[j])
		pred[i] = ft.Index()
	}
	acc := metrics.Accuracy(yTest, pred)
	t.Logf("RandomForest 9-class accuracy: %.3f", acc)
	if acc < 0.80 {
		t.Errorf("RF accuracy too low: %.3f", acc)
	}

	for _, tool := range []tools.Inferrer{tools.TFDV{}, tools.Pandas{}, tools.TransmogrifAI{}, tools.AutoGluon{}, tools.RuleBaseline{}, tools.Sherlock{}} {
		tp := make([]int, len(testIdx))
		for i, j := range testIdx {
			tp[i] = tool.Infer(&corpus[j].Column).Index()
		}
		cm := metrics.Confusion(yTest, tp, ftype.NumBaseClasses)
		t.Logf("%-14s 9-class=%.3f  NU(P=%.2f R=%.2f) CA(P=%.2f R=%.2f) DT(P=%.2f R=%.2f) ST(P=%.2f R=%.2f)",
			tool.Name(), cm.MultiAccuracy(),
			cm.Binarized(0).Precision, cm.Binarized(0).Recall,
			cm.Binarized(1).Precision, cm.Binarized(1).Recall,
			cm.Binarized(2).Precision, cm.Binarized(2).Recall,
			cm.Binarized(3).Precision, cm.Binarized(3).Recall)
	}
}
