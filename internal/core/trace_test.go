package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sortinghat/internal/data"
	"sortinghat/internal/obs"
	"sortinghat/internal/synth"
)

// tracedModel trains one small deterministic Random Forest for the trace
// tests (seeded corpus, seeded training — same trace every run).
func tracedModel(t *testing.T) *Pipeline {
	t.Helper()
	cfg := synth.DefaultCorpusConfig()
	cfg.N = 300
	opts := DefaultOptions()
	opts.RFTrees, opts.RFDepth = 5, 8
	p, err := Train(synth.GenerateCorpus(cfg), opts)
	if err != nil {
		t.Fatalf("training traced model: %v", err)
	}
	return p
}

// normalizeSpan zeroes the non-deterministic span fields (monotonic
// offsets, durations, and the per-process random trace/span ids) so
// trace structure can be compared to a golden.
func normalizeSpan(s *obs.SpanJSON) {
	s.StartNS = 0
	s.DurationNS = 0
	s.TraceID = ""
	s.SpanID = ""
	s.ParentID = ""
	for i := range s.Children {
		normalizeSpan(&s.Children[i])
	}
}

// TestPredictCtxTraceGoldenJSONL runs a fixed 3-column batch through the
// traced prediction path with a JSONL sink and compares the emitted
// trace — names, attributes, tree shape, one line per column — against
// testdata/trace_golden.jsonl with timings normalized. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/core -run TraceGolden.
func TestPredictCtxTraceGoldenJSONL(t *testing.T) {
	p := tracedModel(t)

	var buf bytes.Buffer
	tr := obs.NewTracer(8)
	tr.SetSink(&buf)

	cols := []data.Column{
		{Name: "price", Values: []string{"3.99", "10.00", "7.25", "0.99", "12.50"}},
		{Name: "country", Values: []string{"US", "DE", "US", "FR", "DE"}},
		{Name: "created_at", Values: []string{"2021-01-05", "2021-02-11", "2021-03-17", "2021-04-23", "2021-05-29"}},
	}
	for i := range cols {
		ctx, span := tr.Start(context.Background(), "column")
		span.SetAttr("column", cols[i].Name)
		typ, _ := p.PredictCtx(ctx, &cols[i])
		span.SetAttr("type", typ.String())
		span.End()
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("trace sink error: %v", err)
	}

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != len(cols) {
		t.Fatalf("sink holds %d JSONL lines, want %d (one per column)", len(lines), len(cols))
	}
	got := make([]string, len(lines))
	for i, line := range lines {
		var s obs.SpanJSON
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\nline: %s", i, err, line)
		}
		if s.DurationNS <= 0 {
			t.Errorf("line %d: root span has no duration", i)
		}
		normalizeSpan(&s)
		norm, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = string(norm)
	}

	goldenPath := filepath.Join("testdata", "trace_golden.jsonl")
	joined := []byte(join(got))
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, joined, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(joined, want) {
		t.Errorf("normalized trace drifted from golden.\ngot:\n%s\nwant:\n%s", joined, want)
	}
}

// join concatenates JSONL lines with trailing newline.
func join(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestTrainCtxSpans checks the traced training path: a root train span
// grows exactly the two stage children, in order, each with a duration
// and the documented attributes.
func TestTrainCtxSpans(t *testing.T) {
	cfg := synth.DefaultCorpusConfig()
	cfg.N = 150
	opts := DefaultOptions()
	opts.RFTrees, opts.RFDepth = 3, 6

	tr := obs.NewTracer(2)
	ctx, root := tr.Start(context.Background(), "train")
	if _, err := TrainCtx(ctx, synth.GenerateCorpus(cfg), opts); err != nil {
		t.Fatal(err)
	}
	root.End()

	traces := tr.Recent()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	spans := traces[0].Children
	if len(spans) != 2 || spans[0].Name != "featurize" || spans[1].Name != "fit" {
		t.Fatalf("train children = %v, want [featurize fit]", spanNames(spans))
	}
	if got := attrOf(spans[0].Attrs, "columns"); got != fmt.Sprintf("%d", cfg.N) {
		t.Errorf("featurize columns attr = %q, want %d", got, cfg.N)
	}
	if got := attrOf(spans[1].Attrs, "model"); got != string(RandomForest) {
		t.Errorf("fit model attr = %q, want %q", got, RandomForest)
	}
	for _, s := range spans {
		if s.DurationNS <= 0 {
			t.Errorf("%s span has no duration", s.Name)
		}
	}
	if spans[0].DurationNS+spans[1].DurationNS > traces[0].DurationNS {
		t.Errorf("stage spans exceed the train span: %d+%d > %d",
			spans[0].DurationNS, spans[1].DurationNS, traces[0].DurationNS)
	}
}

// spanNames lists child span names for failure messages.
func spanNames(spans []obs.SpanJSON) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// attrOf finds the first attribute named key.
func attrOf(attrs []obs.Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestPredictCtxMatchesPredict pins the traced path to the plain path:
// tracing must never change predictions.
func TestPredictCtxMatchesPredict(t *testing.T) {
	p := tracedModel(t)
	col := data.Column{Name: "zip", Values: []string{"94016", "10001", "60601", "94016", "73301"}}

	wantType, wantProbs := p.Predict(&col)
	tr := obs.NewTracer(2)
	ctx, span := tr.Start(context.Background(), "check")
	gotType, gotProbs := p.PredictCtx(ctx, &col)
	span.End()

	if gotType != wantType {
		t.Errorf("PredictCtx type %v, Predict type %v", gotType, wantType)
	}
	if len(gotProbs) != len(wantProbs) {
		t.Fatalf("prob lengths differ: %d vs %d", len(gotProbs), len(wantProbs))
	}
	for i := range gotProbs {
		if gotProbs[i] != wantProbs[i] {
			t.Errorf("prob %d: %g vs %g", i, gotProbs[i], wantProbs[i])
		}
	}
}
