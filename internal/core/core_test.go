package core

import (
	"bytes"
	"math/rand"
	"testing"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/ml/modelsel"
	"sortinghat/internal/synth"
)

// tinyCorpus builds a small labeled corpus for fast model tests.
func tinyCorpus(t *testing.T, n int) ([]data.LabeledColumn, []featurize.Base, []int) {
	t.Helper()
	cfg := synth.DefaultCorpusConfig()
	cfg.N = n
	corpus := synth.GenerateCorpus(cfg)
	bases, labels := ExtractBases(corpus, 3)
	return corpus, bases, labels
}

func TestExtractBasesAlignment(t *testing.T) {
	corpus, bases, labels := tinyCorpus(t, 120)
	if len(bases) != len(corpus) || len(labels) != len(corpus) {
		t.Fatalf("sizes %d/%d/%d", len(bases), len(labels), len(corpus))
	}
	for i := range corpus {
		if bases[i].Name != corpus[i].Name {
			t.Fatalf("base %d name mismatch", i)
		}
		if labels[i] != corpus[i].Label.Index() {
			t.Fatalf("label %d mismatch", i)
		}
	}
}

// TestAllModelKindsTrainAndPredict exercises the full pipeline for all five
// model families on a small corpus: train, predict, sane accuracy.
func TestAllModelKindsTrainAndPredict(t *testing.T) {
	_, bases, labels := tinyCorpus(t, 900)
	rngSplit := modelsel.KFold(labels, 5, rand.New(rand.NewSource(1)))
	train, val := rngSplit[0].Train, rngSplit[0].Val

	kinds := []struct {
		kind   ModelKind
		minAcc float64
		fs     featurize.FeatureSet
	}{
		{RandomForest, 0.80, featurize.DefaultFeatureSet()},
		{LogReg, 0.65, featurize.FullFeatureSet()},
		{RBFSVM, 0.55, featurize.DefaultFeatureSet()},
		{KNN, 0.55, featurize.DefaultFeatureSet()},
		{CNN, 0.50, featurize.FeatureSet{UseStats: true, UseName: true}},
	}
	for _, k := range kinds {
		opts := Options{Model: k.kind, FeatureSet: k.fs, Seed: 1,
			RFTrees: 20, RFDepth: 20, CNNEpochs: 3}
		pipe, err := TrainOnBases(gatherBases(bases, train), modelsel.GatherInts(labels, train), opts)
		if err != nil {
			t.Fatalf("%s: %v", k.kind, err)
		}
		pred := make([]int, len(val))
		for i, j := range val {
			ft, probs := pipe.PredictBase(&bases[j])
			pred[i] = ft.Index()
			var sum float64
			for _, p := range probs {
				sum += p
			}
			if sum < 0.99 || sum > 1.01 {
				t.Fatalf("%s: probabilities sum to %f", k.kind, sum)
			}
		}
		acc := metrics.Accuracy(modelsel.GatherInts(labels, val), pred)
		t.Logf("%-14s val accuracy %.3f", k.kind, acc)
		if acc < k.minAcc {
			t.Errorf("%s accuracy %.3f below floor %.3f", k.kind, acc, k.minAcc)
		}
	}
}

func TestPipelineInferrerInterface(t *testing.T) {
	_, bases, labels := tinyCorpus(t, 300)
	pipe, err := TrainOnBases(bases, labels, Options{Model: RandomForest,
		FeatureSet: featurize.DefaultFeatureSet(), Seed: 1, RFTrees: 10, RFDepth: 15})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Name() != "OurRF" {
		t.Errorf("Name() = %q", pipe.Name())
	}
	col := &data.Column{Name: "salary", Values: []string{"100.5", "220.1", "330.7", "98.2", "151.9"}}
	if got := pipe.Infer(col); got != ftype.Numeric {
		t.Errorf("Infer(salary floats) = %v", got)
	}
}

func TestPersistenceRoundTripAllKinds(t *testing.T) {
	_, bases, labels := tinyCorpus(t, 250)
	kinds := []ModelKind{RandomForest, LogReg, RBFSVM, KNN, CNN}
	probe := &data.Column{Name: "zipcode", Values: []string{"92092", "78712", "92092", "10001", "78712", "60614"}}
	for _, kind := range kinds {
		opts := Options{Model: kind, FeatureSet: featurize.DefaultFeatureSet(),
			Seed: 1, RFTrees: 8, RFDepth: 10, CNNEpochs: 1}
		if kind == CNN {
			opts.FeatureSet = featurize.FeatureSet{UseStats: true, UseName: true}
		}
		pipe, err := TrainOnBases(bases, labels, opts)
		if err != nil {
			t.Fatalf("%s: train: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := pipe.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", kind, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", kind, err)
		}
		wantT, wantP := pipe.Predict(probe)
		gotT, gotP := back.Predict(probe)
		if wantT != gotT {
			t.Errorf("%s: round-trip changed prediction %v -> %v", kind, wantT, gotT)
		}
		for i := range wantP {
			if diff := wantP[i] - gotP[i]; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%s: round-trip changed probabilities", kind)
				break
			}
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainOnBases(nil, nil, Options{}); err == nil {
		t.Error("empty training must error")
	}
	if _, err := TrainOnBases(make([]featurize.Base, 2), []int{0}, Options{}); err == nil {
		t.Error("mismatch must error")
	}
	if _, err := TrainOnBases(make([]featurize.Base, 1), []int{0}, Options{Model: "bogus"}); err == nil {
		t.Error("unknown model must error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	_, bases, labels := tinyCorpus(t, 200)
	pipe, err := TrainOnBases(bases, labels, Options{Model: RandomForest,
		FeatureSet: featurize.DefaultFeatureSet(), Seed: 1, RFTrees: 5, RFDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.gob"
	if err := pipe.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.Opts.Model != RandomForest {
		t.Error("options lost in round trip")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file must error")
	}
}
