package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save serialises a trained pipeline with encoding/gob.
func (p *Pipeline) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("core: encoding pipeline: %w", err)
	}
	return nil
}

// SaveFile writes the pipeline to a file at path.
func (p *Pipeline) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: creating %s: %w", path, err)
	}
	if err := p.Save(f); err != nil {
		_ = f.Close() // the encode error takes precedence
		return err
	}
	return f.Close()
}

// Load deserialises a pipeline written by Save.
func Load(r io.Reader) (*Pipeline, error) {
	var p Pipeline
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decoding pipeline: %w", err)
	}
	return &p, nil
}

// LoadFile reads a pipeline from a file at path.
func LoadFile(path string) (*Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
