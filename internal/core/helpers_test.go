package core

import (
	"testing"

	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/cnn"
)

func TestCNNTextInputs(t *testing.T) {
	cases := []struct {
		fs   featurize.FeatureSet
		want int
	}{
		{featurize.FeatureSet{UseName: true}, 1},
		{featurize.FeatureSet{UseName: true, SampleCount: 2}, 3},
		{featurize.FeatureSet{SampleCount: 1}, 1},
		{featurize.FeatureSet{UseStats: true}, 0},
	}
	for _, c := range cases {
		if got := cnnTextInputs(c.fs); got != c.want {
			t.Errorf("cnnTextInputs(%s) = %d, want %d", c.fs.Label(), got, c.want)
		}
	}
}

func TestCNNExampleAssembly(t *testing.T) {
	b := featurize.Base{Name: "salary", Samples: []string{"10", "20"}}
	fs := featurize.FeatureSet{UseStats: true, UseName: true, SampleCount: 2}
	cfg := cnn.DefaultConfig()
	cfg.StatsDim = 27
	ex := cnnExample(&b, fs, cfg)
	if len(ex.Texts) != 3 || ex.Texts[0] != "salary" || ex.Texts[1] != "10" || ex.Texts[2] != "20" {
		t.Errorf("texts = %v", ex.Texts)
	}
	if len(ex.Stats) != 27 {
		t.Errorf("stats len = %d", len(ex.Stats))
	}
	// Stats disabled.
	cfg.StatsDim = 0
	ex2 := cnnExample(&b, featurize.FeatureSet{UseName: true}, cfg)
	if len(ex2.Texts) != 1 || ex2.Stats != nil {
		t.Errorf("ex2 = %+v", ex2)
	}
}

func TestKNNInputs(t *testing.T) {
	bases := []featurize.Base{
		{Name: "a"}, {Name: "b"},
	}
	names, stats := knnInputs(bases, featurize.FeatureSet{UseName: true, UseStats: true})
	if names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if len(stats) != 2 || len(stats[0]) == 0 {
		t.Error("stats not extracted")
	}
	names2, stats2 := knnInputs(bases, featurize.FeatureSet{UseStats: true})
	if names2[0] != "" {
		t.Error("names should be blank when disabled")
	}
	if stats2 == nil {
		t.Error("stats missing")
	}
	_, stats3 := knnInputs(bases, featurize.FeatureSet{UseName: true})
	if stats3 != nil {
		t.Error("stats should be nil when disabled")
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := DefaultOptions()
	if opts.Model != RandomForest || opts.RFTrees != 100 || opts.RFDepth != 25 {
		t.Errorf("defaults = %+v", opts)
	}
	if !opts.FeatureSet.UseStats || !opts.FeatureSet.UseName {
		t.Error("default feature set should be stats + name")
	}
	if opts.Classes != 9 {
		t.Errorf("classes = %d", opts.Classes)
	}
}
