// Package core implements the paper's primary contribution: ML-based
// feature type inference. A Pipeline bundles base featurization, a
// model-specific feature extraction, and one of the five model families the
// paper trains on its labeled data (logistic regression, RBF-SVM, Random
// Forest, k-NN with the task-adapted distance, and a character-level CNN).
// A trained Pipeline predicts one of the nine feature types for a raw
// column, with per-class confidence scores.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/cnn"
	"sortinghat/internal/ml/knn"
	"sortinghat/internal/ml/linear"
	"sortinghat/internal/ml/svm"
	"sortinghat/internal/ml/tree"
	"sortinghat/internal/obs"
)

// ModelKind selects the model family of a Pipeline.
type ModelKind string

// The five model families benchmarked in the paper.
const (
	LogReg       ModelKind = "logreg"
	RBFSVM       ModelKind = "rbf-svm"
	RandomForest ModelKind = "random-forest"
	KNN          ModelKind = "knn"
	CNN          ModelKind = "cnn"
)

// Options configure training.
type Options struct {
	Model      ModelKind
	FeatureSet featurize.FeatureSet
	Classes    int // label vocabulary size (default 9)
	Seed       int64

	// Model hyper-parameters (paper grids, Appendix B). Zero values take
	// the benchmark defaults.
	LogRegC     float64
	SVMC        float64
	SVMGamma    float64
	SVMFeatures int // random Fourier feature count
	RFTrees     int
	RFDepth     int
	KNNK        int
	KNNGamma    float64
	CNNEpochs   int
	CNNFilters  int
	CNNEmbed    int
	CNNNeurons  int
}

// DefaultOptions is the paper's best configuration: a Random Forest over
// descriptive stats plus attribute-name bigrams.
func DefaultOptions() Options {
	return Options{
		Model:      RandomForest,
		FeatureSet: featurize.DefaultFeatureSet(),
		Classes:    ftype.NumBaseClasses,
		Seed:       1,
		RFTrees:    100,
		RFDepth:    25,
	}
}

// Pipeline is a trained feature type inference model.
type Pipeline struct {
	Opts   Options
	Scaler *featurize.Scaler // standardization for scale-sensitive models

	Forest *tree.Forest
	Linear *linear.LogisticRegression
	SVM    *svm.RBFSVM
	Near   *knn.KNN
	Net    *cnn.Model

	// vecPool recycles feature-vector scratch buffers across predictions:
	// steady-state serving vectorizes without growing the heap. Unexported,
	// so gob persistence never sees it and a decoded Pipeline starts with
	// an empty pool.
	vecPool sync.Pool
}

// vec returns a pooled feature-vector buffer (length 0, capacity at least
// one Dim); the caller hands it back with vecPool.Put when the prediction
// no longer reads it.
func (p *Pipeline) vec() *[]float64 {
	if v := p.vecPool.Get(); v != nil {
		return v.(*[]float64)
	}
	buf := make([]float64, 0, p.Opts.FeatureSet.Dim())
	return &buf
}

// ExtractBases runs base featurization over labeled columns with a seeded
// sampler, returning aligned bases and class indices. Experiments share
// this step across all models.
func ExtractBases(cols []data.LabeledColumn, seed int64) ([]featurize.Base, []int) {
	rng := rand.New(rand.NewSource(seed))
	bases := make([]featurize.Base, len(cols))
	labels := make([]int, len(cols))
	for i := range cols {
		bases[i] = featurize.Extract(&cols[i].Column, rng)
		labels[i] = cols[i].Label.Index()
	}
	return bases, labels
}

// Train runs base featurization and fits a pipeline on labeled columns.
func Train(cols []data.LabeledColumn, opts Options) (*Pipeline, error) {
	return TrainCtx(context.Background(), cols, opts)
}

// TrainCtx is Train with tracing: when ctx carries an obs span, the two
// training stages are timed as child spans "featurize" (base
// featurization of the corpus) and "fit" (model fitting). With no span
// in ctx it behaves exactly like Train.
func TrainCtx(ctx context.Context, cols []data.LabeledColumn, opts Options) (*Pipeline, error) {
	_, fsp := obs.StartSpan(ctx, "featurize")
	fsp.SetAttr("columns", fmt.Sprintf("%d", len(cols)))
	bases, labels := ExtractBases(cols, opts.Seed)
	fsp.End()

	_, tsp := obs.StartSpan(ctx, "fit")
	tsp.SetAttr("model", string(opts.Model))
	p, err := TrainOnBases(bases, labels, opts)
	tsp.End()
	return p, err
}

// TrainOnBases fits a pipeline on pre-extracted base features. Labels are
// class indices in [0, opts.Classes).
func TrainOnBases(bases []featurize.Base, labels []int, opts Options) (*Pipeline, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if len(bases) != len(labels) {
		return nil, fmt.Errorf("core: bases and labels size mismatch: %d vs %d", len(bases), len(labels))
	}
	if opts.Classes <= 0 {
		opts.Classes = ftype.NumBaseClasses
	}
	if opts.Model == "" {
		opts.Model = RandomForest
	}
	p := &Pipeline{Opts: opts}
	switch opts.Model {
	case LogReg, RBFSVM, RandomForest:
		X := opts.FeatureSet.Matrix(bases)
		if opts.Model != RandomForest {
			// Standardize for the scale-sensitive models, as the paper does.
			p.Scaler = featurize.FitScaler(X)
			X = p.Scaler.Transform(X)
		}
		switch opts.Model {
		case LogReg:
			m := linear.NewLogisticRegression()
			m.Seed = opts.Seed
			if opts.LogRegC > 0 {
				m.C = opts.LogRegC
			}
			if err := m.Fit(X, labels, opts.Classes); err != nil {
				return nil, fmt.Errorf("core: training logreg: %w", err)
			}
			p.Linear = m
		case RBFSVM:
			m := svm.NewRBFSVM()
			m.Seed = opts.Seed
			if opts.SVMC > 0 {
				m.C = opts.SVMC
			}
			if opts.SVMGamma > 0 {
				m.Gamma = opts.SVMGamma
			}
			if opts.SVMFeatures > 0 {
				m.D = opts.SVMFeatures
			}
			if err := m.Fit(X, labels, opts.Classes); err != nil {
				return nil, fmt.Errorf("core: training svm: %w", err)
			}
			p.SVM = m
		default:
			trees, depth := opts.RFTrees, opts.RFDepth
			if trees <= 0 {
				trees = 100
			}
			if depth <= 0 {
				depth = 25
			}
			m := tree.NewClassifier(trees, depth)
			m.Seed = opts.Seed
			if err := m.Fit(X, labels, opts.Classes); err != nil {
				return nil, fmt.Errorf("core: training random forest: %w", err)
			}
			p.Forest = m
		}
	case KNN:
		m := knn.New()
		m.UseName = opts.FeatureSet.UseName
		m.UseStats = opts.FeatureSet.UseStats
		if opts.KNNK > 0 {
			m.K = opts.KNNK
		}
		if opts.KNNGamma > 0 {
			m.Gamma = opts.KNNGamma
		}
		names, stats := knnInputs(bases, opts.FeatureSet)
		if err := m.Fit(names, stats, labels, opts.Classes); err != nil {
			return nil, fmt.Errorf("core: training knn: %w", err)
		}
		p.Near = m
	case CNN:
		cfg := cnn.DefaultConfig()
		cfg.Classes = opts.Classes
		cfg.Seed = opts.Seed
		cfg.TextInputs = cnnTextInputs(opts.FeatureSet)
		if opts.FeatureSet.UseStats {
			cfg.StatsDim = len((&featurize.Base{}).Stats.Vector())
		}
		if opts.CNNEpochs > 0 {
			cfg.Epochs = opts.CNNEpochs
		}
		if opts.CNNFilters > 0 {
			cfg.NumFilters = opts.CNNFilters
		}
		if opts.CNNEmbed > 0 {
			cfg.EmbedDim = opts.CNNEmbed
		}
		if opts.CNNNeurons > 0 {
			cfg.Neurons = opts.CNNNeurons
		}
		if cfg.TextInputs == 0 {
			// Stats-only CNN degenerates to an MLP over stats with a
			// constant text head; feed the name head anyway but empty.
			cfg.TextInputs = 1
		}
		m := cnn.New(cfg)
		examples := make([]cnn.Example, len(bases))
		for i := range bases {
			examples[i] = cnnExample(&bases[i], opts.FeatureSet, cfg)
		}
		if err := m.Fit(examples, labels); err != nil {
			return nil, fmt.Errorf("core: training cnn: %w", err)
		}
		p.Net = m
	default:
		return nil, fmt.Errorf("core: unknown model kind %q", opts.Model)
	}
	return p, nil
}

// knnInputs assembles the k-NN inputs per the feature set: attribute names
// for the edit-distance component and the stats vector for the Euclidean
// component.
func knnInputs(bases []featurize.Base, fs featurize.FeatureSet) ([]string, [][]float64) {
	names := make([]string, len(bases))
	var stats [][]float64
	if fs.UseStats {
		stats = make([][]float64, len(bases))
	}
	for i := range bases {
		if fs.UseName {
			names[i] = bases[i].Name
		}
		if fs.UseStats {
			stats[i] = bases[i].Stats.Vector()
		}
	}
	return names, stats
}

// cnnTextInputs counts the raw-character heads implied by a feature set.
func cnnTextInputs(fs featurize.FeatureSet) int {
	n := 0
	if fs.UseName {
		n++
	}
	n += fs.SampleCount
	return n
}

// cnnExample builds the CNN input for one base-featurized column.
func cnnExample(b *featurize.Base, fs featurize.FeatureSet, cfg cnn.Config) cnn.Example {
	texts := make([]string, 0, cnnTextInputs(fs))
	if fs.UseName {
		texts = append(texts, b.Name)
	}
	for i := 0; i < fs.SampleCount; i++ {
		texts = append(texts, b.Sample(i))
	}
	var ex cnn.Example
	ex.Texts = texts
	if cfg.StatsDim > 0 {
		ex.Stats = b.Stats.Vector()
	}
	return ex
}

// PredictBase classifies a base-featurized column, returning the feature
// type and the per-class confidence scores (index order = class index).
func (p *Pipeline) PredictBase(b *featurize.Base) (ftype.FeatureType, []float64) {
	var probs []float64
	switch {
	case p.Forest != nil:
		// The feature vector is scratch (the forest only reads it), so it
		// comes from the pool; probs escapes to the caller — and into the
		// serve cache — so it stays freshly allocated.
		x := p.vec()
		*x = p.Opts.FeatureSet.AppendVector((*x)[:0], b)
		probs = p.Forest.PredictProba(*x)
		p.vecPool.Put(x)
	case p.Linear != nil:
		x := p.Opts.FeatureSet.Vector(b)
		if p.Scaler != nil {
			x = p.Scaler.TransformRow(x)
		}
		probs = p.Linear.PredictProba(x)
	case p.SVM != nil:
		x := p.Opts.FeatureSet.Vector(b)
		if p.Scaler != nil {
			x = p.Scaler.TransformRow(x)
		}
		probs = p.SVM.PredictProba(x)
	case p.Near != nil:
		name := ""
		if p.Opts.FeatureSet.UseName {
			name = b.Name
		}
		var st []float64
		if p.Opts.FeatureSet.UseStats {
			st = b.Stats.Vector()
		}
		probs = p.Near.PredictProba(name, st)
	case p.Net != nil:
		ex := cnnExample(b, p.Opts.FeatureSet, p.Net.Cfg)
		probs = p.Net.PredictProba(&ex)
	default:
		return ftype.Unknown, nil
	}
	best := 0
	for c := 1; c < len(probs); c++ {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return ftype.FeatureType(best), probs
}

// Predict classifies a raw column using deterministic base featurization
// (the first five distinct non-missing values as samples).
func (p *Pipeline) Predict(col *data.Column) (ftype.FeatureType, []float64) {
	b := featurize.ExtractFirstN(col, featurize.SampleCount)
	return p.PredictBase(&b)
}

// PredictCtx is Predict with per-stage tracing: when ctx carries an obs
// span, the two prediction stages are timed as child spans "featurize"
// and "predict" — the same per-column cost split the paper's Figure 7
// reports offline, made observable per request. With no span in ctx it
// behaves exactly like Predict.
func (p *Pipeline) PredictCtx(ctx context.Context, col *data.Column) (ftype.FeatureType, []float64) {
	_, fsp := obs.StartSpan(ctx, "featurize")
	b := featurize.ExtractFirstN(col, featurize.SampleCount)
	fsp.End()
	_, psp := obs.StartSpan(ctx, "predict")
	t, probs := p.PredictBase(&b)
	psp.End()
	return t, probs
}

// Name implements the tools.Inferrer naming convention so a Pipeline can be
// benchmarked alongside the industrial tools (the paper's "OurRF").
func (p *Pipeline) Name() string {
	switch p.Opts.Model {
	case RandomForest:
		return "OurRF"
	case LogReg:
		return "OurLogReg"
	case RBFSVM:
		return "OurSVM"
	case KNN:
		return "OurKNN"
	case CNN:
		return "OurCNN"
	default:
		return "OurModel"
	}
}

// Infer implements the tools.Inferrer prediction contract.
func (p *Pipeline) Infer(col *data.Column) ftype.FeatureType {
	t, _ := p.Predict(col)
	return t
}
