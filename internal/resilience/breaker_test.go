package resilience

import (
	"sync"
	"testing"
	"time"
)

// newTestBreaker builds a breaker on a fake clock: threshold 3, probe
// after 10s, one probe success to close.
func newTestBreaker(clk *FakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		ProbeInterval:    10 * time.Second,
		Clock:            clk,
	})
}

// TestBreakerTripsOnConsecutiveFailures walks the full lifecycle on a
// fake clock: closed through threshold-1 failures, open on the
// threshold'th, rejecting until the probe interval elapses, a single
// half-open probe, and closed again on probe success.
func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := newTestBreaker(clk)

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("failure %d: breaker rejected while closed", i)
		}
		b.Failure()
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2/3 failures = %v, want closed", got)
	}
	b.Allow()
	b.Failure() // third consecutive failure trips it
	if got := b.State(); got != Open {
		t.Fatalf("state after 3/3 failures = %v, want open", got)
	}
	if got := b.Opened(); got != 1 {
		t.Fatalf("opened = %d, want 1", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before the probe interval")
	}

	clk.Advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker allowed a call 1s early")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the probe after the interval")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second call while the probe is in flight")
	}

	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call after recovery")
	}
}

// TestBreakerHalfOpenFailureReopens requires a failed probe to re-arm the
// full probe interval.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if got := b.Opened(); got != 2 {
		t.Fatalf("opened = %d, want 2 (initial trip + failed probe)", got)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a call without waiting out the interval again")
	}
	clk.Advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe not admitted after the re-armed interval")
	}
}

// TestBreakerSuccessResetsFailureStreak checks only *consecutive*
// failures trip the breaker.
func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newTestBreaker(NewFakeClock(time.Unix(0, 0)))
	for round := 0; round < 4; round++ {
		b.Failure()
		b.Failure()
		b.Success() // breaks the streak at 2/3
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed: interleaved successes must reset the streak", got)
	}
}

// TestBreakerSuccessThreshold requires SuccessThreshold probe successes
// before closing.
func TestBreakerSuccessThreshold(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		ProbeInterval:    time.Second,
		SuccessThreshold: 2,
		Clock:            clk,
	})
	b.Failure()
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("first probe not admitted")
	}
	b.Success()
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("second probe not admitted after the first succeeded")
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", got)
	}
}

// TestBreakerStateHasNoSideEffects pins that State observes without
// transitioning: an open breaker whose probe is due stays open until the
// next Allow.
func TestBreakerStateHasNoSideEffects(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(time.Minute)
	for i := 0; i < 3; i++ {
		if got := b.State(); got != Open {
			t.Fatalf("State() #%d = %v, want open (no side effects)", i, got)
		}
	}
	if !b.Allow() {
		t.Fatal("Allow must admit the overdue probe")
	}
}

// TestBreakerOnTransition records the transition sequence across a full
// trip/recover cycle.
func TestBreakerOnTransition(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	var got []string
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		ProbeInterval:    time.Second,
		Clock:            clk,
		OnTransition: func(from, to State) {
			got = append(got, from.String()+">"+to.String())
		},
	})
	b.Failure()
	clk.Advance(time.Second)
	b.Allow()
	b.Success()
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestBreakerConcurrentProbeGating hammers an open-with-due-probe breaker
// from many goroutines: exactly one may win the probe slot.
func TestBreakerConcurrentProbeGating(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clk.Advance(10 * time.Second)

	var wg sync.WaitGroup
	admitted := make(chan struct{}, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				admitted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for range admitted {
		n++
	}
	if n != 1 {
		t.Fatalf("%d goroutines admitted for one probe slot, want exactly 1", n)
	}
}

// TestStateString covers the log/health names.
func TestStateString(t *testing.T) {
	for want, s := range map[string]State{
		"closed": Closed, "open": Open, "half-open": HalfOpen, "unknown": State(99),
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
