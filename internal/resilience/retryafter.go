package resilience

// RetryAfterSeconds derives a Retry-After hint from live queue
// fullness: the fuller the queue, the longer the caller should wait,
// scaled linearly from 1 second (nearly empty) to max seconds (at or
// past the high-water mark), rounded up. It replaces hardcoded
// Retry-After values on 429/504 responses so cooperative clients space
// their retries proportionally to actual load.
func RetryAfterSeconds(depth, capacity, max int64) int64 {
	if max < 1 {
		max = 1
	}
	if capacity <= 0 {
		return 1
	}
	if depth < 0 {
		depth = 0
	}
	if depth > capacity {
		depth = capacity
	}
	s := (depth*max + capacity - 1) / capacity
	if s < 1 {
		s = 1
	}
	return s
}
