package resilience

import (
	"errors"
	"sync"
	"testing"
)

// TestGateReserveRelease covers the basic accounting.
func TestGateReserveRelease(t *testing.T) {
	g := NewGate(10)
	if g.Capacity() != 10 {
		t.Fatalf("capacity = %d, want 10", g.Capacity())
	}
	if err := g.TryReserve(7); err != nil {
		t.Fatalf("reserve 7/10: %v", err)
	}
	if err := g.TryReserve(3); err != nil {
		t.Fatalf("reserve 10/10: %v", err)
	}
	if g.Depth() != 10 {
		t.Fatalf("depth = %d, want 10", g.Depth())
	}
	g.Release(4)
	if g.Depth() != 6 {
		t.Fatalf("depth after release = %d, want 6", g.Depth())
	}
}

// TestGateShedsPastHighWater requires fast failure, not blocking, past
// the mark — and an accurate shed count.
func TestGateShedsPastHighWater(t *testing.T) {
	g := NewGate(4)
	if err := g.TryReserve(4); err != nil {
		t.Fatalf("reserve at capacity: %v", err)
	}
	if err := g.TryReserve(1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("reserve past capacity = %v, want ErrOverloaded", err)
	}
	if g.Depth() != 4 {
		t.Fatalf("rejected reservation leaked into depth: %d", g.Depth())
	}
	if g.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", g.Shed())
	}
	g.Release(4)
	if err := g.TryReserve(4); err != nil {
		t.Fatalf("reserve after full release: %v", err)
	}
}

// TestGateOversizeRequest checks a single reservation larger than the
// whole gate is shed, not admitted.
func TestGateOversizeRequest(t *testing.T) {
	g := NewGate(8)
	if err := g.TryReserve(9); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversize reserve = %v, want ErrOverloaded", err)
	}
	if g.Depth() != 0 {
		t.Fatalf("depth = %d after rejected oversize reserve, want 0", g.Depth())
	}
}

// TestGateMinimumCapacity pins the <1 clamp.
func TestGateMinimumCapacity(t *testing.T) {
	if got := NewGate(0).Capacity(); got != 1 {
		t.Errorf("NewGate(0).Capacity() = %d, want 1", got)
	}
	if got := NewGate(-5).Capacity(); got != 1 {
		t.Errorf("NewGate(-5).Capacity() = %d, want 1", got)
	}
}

// TestGateConcurrent races reservations against the cap: successful
// reservations never exceed capacity and the books balance afterwards.
func TestGateConcurrent(t *testing.T) {
	g := NewGate(32)
	var wg sync.WaitGroup
	var admitted sync.Map
	for i := 0; i < 128; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if g.TryReserve(1) == nil {
				if g.Depth() > g.Capacity() {
					t.Errorf("depth %d exceeded capacity %d", g.Depth(), g.Capacity())
				}
				admitted.Store(i, true)
				g.Release(1)
			}
		}(i)
	}
	wg.Wait()
	if g.Depth() != 0 {
		t.Fatalf("depth = %d after all releases, want 0", g.Depth())
	}
}
