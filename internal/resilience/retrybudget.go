package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// Retry-budget defaults. A bucket that starts full at DefaultRetryBurst
// lets a fresh gateway hedge immediately; DefaultRetryRatio bounds
// steady-state speculative traffic at ~10% of successful traffic; the
// DefaultRetryMinPerSec floor keeps a trickle of probing retries alive
// during a total brownout so recovery is discovered without operator
// action.
const (
	DefaultRetryRatio     = 0.1
	DefaultRetryMinPerSec = 1.0
	DefaultRetryBurst     = 10.0
)

// RetryBudgetConfig tunes a RetryBudget. The zero value takes the
// documented defaults; negative values disable the corresponding term.
type RetryBudgetConfig struct {
	// Ratio is the fraction of a token deposited per observed success, so
	// sustained speculative traffic is bounded at Ratio of the success
	// rate. 0 means DefaultRetryRatio; negative disables deposits (the
	// bucket only ever refills via MinPerSec).
	Ratio float64
	// MinPerSec is the floor refill rate in tokens per second, granted
	// even with zero successes, so a browned-out fleet is still probed.
	// 0 means DefaultRetryMinPerSec; negative disables the floor.
	MinPerSec float64
	// Burst caps the bucket (and is its starting level). 0 means
	// DefaultRetryBurst.
	Burst float64
	// Clock injects the time source for the MinPerSec accrual; nil means
	// SystemClock. Tests pass a FakeClock for deterministic refill.
	Clock Clock
}

// RetryBudget is a token-bucket bound on speculative work (hedges and
// failover retries): every success deposits Ratio of a token, every
// speculative attempt withdraws a whole one, and a small floor rate
// keeps probing possible during brownouts. The bucket starts full so
// cold starts are not penalized. All methods are safe for concurrent
// use.
type RetryBudget struct {
	ratio     float64
	minPerSec float64
	burst     float64
	clock     Clock

	mu     sync.Mutex
	tokens float64
	last   time.Time

	denied atomic.Int64
}

// tokenEpsilon absorbs float accumulation error so N deposits of 1/N
// of a token buy exactly one withdrawal.
const tokenEpsilon = 1e-9

// NewRetryBudget builds a budget from cfg, starting with a full bucket.
func NewRetryBudget(cfg RetryBudgetConfig) *RetryBudget {
	if cfg.Ratio == 0 {
		cfg.Ratio = DefaultRetryRatio
	}
	if cfg.MinPerSec == 0 {
		cfg.MinPerSec = DefaultRetryMinPerSec
	}
	if cfg.Burst <= 0 {
		cfg.Burst = DefaultRetryBurst
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock()
	}
	b := &RetryBudget{
		ratio:     cfg.Ratio,
		minPerSec: cfg.MinPerSec,
		burst:     cfg.Burst,
		clock:     cfg.Clock,
		tokens:    cfg.Burst,
	}
	b.last = b.clock.Now()
	return b
}

// accrue applies the floor refill since the last observation. Callers
// hold b.mu.
func (b *RetryBudget) accrue(now time.Time) {
	if b.minPerSec > 0 {
		if d := now.Sub(b.last); d > 0 {
			b.tokens += d.Seconds() * b.minPerSec
		}
	}
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Deposit credits one observed success: Ratio of a token, capped at
// Burst. A no-op when deposits are disabled (Ratio < 0).
func (b *RetryBudget) Deposit() {
	if b.ratio < 0 {
		return
	}
	b.mu.Lock()
	b.accrue(b.clock.Now())
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// TryWithdraw spends one token for a speculative attempt, or reports
// false (and counts the denial) when less than a whole token is
// available. Denied attempts must fall through to non-speculative
// handling (wait for the in-flight attempt, or the rule fallback).
func (b *RetryBudget) TryWithdraw() bool {
	b.mu.Lock()
	b.accrue(b.clock.Now())
	if b.tokens >= 1-tokenEpsilon {
		b.tokens--
		b.mu.Unlock()
		return true
	}
	b.mu.Unlock()
	b.denied.Add(1)
	return false
}

// Tokens samples the current bucket level for /metrics.
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	b.accrue(b.clock.Now())
	t := b.tokens
	b.mu.Unlock()
	return t
}

// Denied reports the lifetime count of withdrawals refused.
func (b *RetryBudget) Denied() int64 { return b.denied.Load() }
