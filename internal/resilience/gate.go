package resilience

import (
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned by Gate.TryReserve when admitting the request
// would push the queue past its high-water mark. Servers map it to
// HTTP 429 with a Retry-After header.
var ErrOverloaded = errors.New("resilience: overloaded")

// Gate is the admission controller in front of a bounded work queue: it
// reserves capacity for whole requests up front and fast-fails with
// ErrOverloaded once the high-water mark is reached, so callers shed load
// instead of blocking — even callers with no deadline at all. All methods
// are safe for concurrent use.
type Gate struct {
	max   int64
	depth atomic.Int64 // reserved units not yet released
	shed  atomic.Int64 // lifetime rejected reservations
}

// NewGate returns a gate admitting up to max units (at least 1).
func NewGate(max int) *Gate {
	if max < 1 {
		max = 1
	}
	return &Gate{max: int64(max)}
}

// TryReserve admits n units of work, or returns ErrOverloaded without
// blocking when the reservation would exceed the high-water mark.
func (g *Gate) TryReserve(n int) error {
	if g.depth.Add(int64(n)) > g.max {
		g.depth.Add(-int64(n))
		g.shed.Add(1)
		return ErrOverloaded
	}
	return nil
}

// Release returns n previously reserved units.
func (g *Gate) Release(n int) { g.depth.Add(-int64(n)) }

// Depth reports the currently reserved units.
func (g *Gate) Depth() int64 { return g.depth.Load() }

// Shed reports the lifetime count of rejected reservations.
func (g *Gate) Shed() int64 { return g.shed.Load() }

// Capacity reports the high-water mark.
func (g *Gate) Capacity() int64 { return g.max }
