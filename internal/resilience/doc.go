// Package resilience implements the failure-handling primitives of the
// serving path: a three-state circuit breaker around model prediction, a
// bounded admission gate for load shedding, and the clock interface that
// keeps both deterministic under test. The graceful-degradation
// classifier lives in the rulefallback subpackage and the deterministic
// fault injector in faultinject; internal/serve wires all of them
// together (see ARCHITECTURE.md "Resilience").
//
// Everything here is standard library only, like the rest of the tree,
// and every decision that depends on time goes through the Clock
// interface so tests (and shvet's nondet-flow analyzer) never meet a bare
// time.Now in control flow.
package resilience
