package resilience

import (
	"testing"
	"time"
)

// TestBackoffExponentialJittered checks the schedule: each strike's
// pre-jitter delay doubles from Base, the jittered delay lands in
// [d/2, d], and Ready flips only once the clock passes the not-before
// time.
func TestBackoffExponentialJittered(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewBackoff(BackoffConfig{Base: 100 * time.Millisecond, Max: time.Second, Seed: 42, Clock: clk})
	if !b.Ready() {
		t.Fatal("fresh backoff must be Ready")
	}
	want := 100 * time.Millisecond
	for strike := 0; strike < 3; strike++ {
		d := b.Arm(0)
		if d < want/2 || d > want {
			t.Fatalf("strike %d delay = %v, want within [%v, %v]", strike, d, want/2, want)
		}
		if b.Ready() {
			t.Fatalf("strike %d: Ready immediately after Arm", strike)
		}
		clk.Advance(d - time.Millisecond)
		if b.Ready() {
			t.Fatalf("strike %d: Ready 1ms before the not-before time", strike)
		}
		clk.Advance(time.Millisecond)
		if !b.Ready() {
			t.Fatalf("strike %d: not Ready once the delay elapsed", strike)
		}
		want *= 2
	}
	if got := b.Armed(); got != 3 {
		t.Errorf("Armed() = %d, want 3", got)
	}
}

// TestBackoffHonorsRetryAfter checks a replica's Retry-After hint
// overrides a shorter exponential delay: the gateway must not re-offer
// load before the time the backend itself asked for.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewBackoff(BackoffConfig{Base: 10 * time.Millisecond, Seed: 1, Clock: clk})
	if d := b.Arm(2 * time.Second); d != 2*time.Second {
		t.Fatalf("Arm with a 2s Retry-After applied %v, want the hint verbatim", d)
	}
	clk.Advance(1900 * time.Millisecond)
	if b.Ready() {
		t.Fatal("Ready before the backend's Retry-After elapsed")
	}
	clk.Advance(101 * time.Millisecond)
	if !b.Ready() {
		t.Fatal("not Ready after the Retry-After elapsed")
	}
	// A hint smaller than the exponential schedule does not shrink it.
	b2 := NewBackoff(BackoffConfig{Base: time.Second, Seed: 1, Clock: clk})
	if d := b2.Arm(time.Millisecond); d < 500*time.Millisecond {
		t.Errorf("tiny hint shrank the exponential delay to %v", d)
	}
}

// TestBackoffResetAndCap checks Reset restarts the schedule and the Max
// cap bounds the pre-jitter delay.
func TestBackoffResetAndCap(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewBackoff(BackoffConfig{Base: 100 * time.Millisecond, Max: 300 * time.Millisecond, Seed: 7, Clock: clk})
	for i := 0; i < 10; i++ {
		if d := b.Arm(0); d > 300*time.Millisecond {
			t.Fatalf("strike %d delay = %v, past the 300ms cap", i, d)
		}
		clk.Advance(time.Second)
	}
	b.Reset()
	if d := b.Arm(0); d > 100*time.Millisecond {
		t.Errorf("post-Reset delay = %v, want back on the first-strike schedule (<= 100ms)", d)
	}
	if !func() bool { b.Reset(); return b.Ready() }() {
		t.Error("Reset must clear the not-before time")
	}
}

// TestBackoffSeededDeterminism checks two backoffs with the same seed
// produce the same delay sequence — the property chaos drills rely on.
func TestBackoffSeededDeterminism(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	a := NewBackoff(BackoffConfig{Seed: 99, Clock: clk})
	b := NewBackoff(BackoffConfig{Seed: 99, Clock: clk})
	for i := 0; i < 5; i++ {
		if da, db := a.Arm(0), b.Arm(0); da != db {
			t.Fatalf("strike %d: same seed, different delays (%v vs %v)", i, da, db)
		}
	}
}

// TestBackoffDisabled checks Base < 0 turns the whole mechanism off.
func TestBackoffDisabled(t *testing.T) {
	b := NewBackoff(BackoffConfig{Base: -1, Clock: NewFakeClock(time.Unix(0, 0))})
	if d := b.Arm(time.Hour); d != 0 {
		t.Errorf("disabled Arm applied %v, want 0", d)
	}
	if !b.Ready() {
		t.Error("disabled backoff must always be Ready")
	}
}

// TestRetryAfterSeconds table-drives the queue-fullness scaling.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		depth, capacity, max, want int64
	}{
		{0, 100, 8, 1},    // empty queue: minimal hint
		{50, 100, 8, 4},   // half full: mid scale
		{100, 100, 8, 8},  // at high water: the max
		{200, 100, 8, 8},  // past high water: clamped
		{1, 100, 8, 1},    // ceil keeps the floor at 1
		{-5, 100, 8, 1},   // garbage depth: floor
		{10, 0, 8, 1},     // no capacity known: floor
		{100, 100, 0, 1},  // max floored at 1
		{99, 100, 60, 60}, // ceil rounds up to the cap
	}
	for _, tc := range cases {
		if got := RetryAfterSeconds(tc.depth, tc.capacity, tc.max); got != tc.want {
			t.Errorf("RetryAfterSeconds(%d, %d, %d) = %d, want %d", tc.depth, tc.capacity, tc.max, got, tc.want)
		}
	}
}
