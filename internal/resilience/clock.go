package resilience

import (
	"sync"
	"time"
)

// Clock abstracts the time source of every resilience decision. Injecting
// it keeps breaker probe schedules deterministic in tests and confines
// wall-clock reads to one suppressible site.
type Clock interface {
	// Now returns the current time. Only differences between successive
	// readings are ever used, so a monotonic fake is a valid Clock.
	Now() time.Time
}

// systemClock is the production Clock.
type systemClock struct{}

// Now reads the system clock.
func (systemClock) Now() time.Time {
	//shvet:ignore nondet-flow breaker probe scheduling is the one intentional wall-clock read; decisions use elapsed time only and tests inject FakeClock
	return time.Now()
}

// SystemClock returns the real-time Clock used outside tests.
func SystemClock() Clock { return systemClock{} }

// FakeClock is a manually advanced Clock for deterministic tests.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a FakeClock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
