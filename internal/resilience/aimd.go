package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// AIMD limiter defaults. The limit starts at AIMDMax (the same optimism
// as routing a freshly booted fleet normally) and only tightens on
// observed overload; DefaultAIMDCutCooldown spaces multiplicative cuts
// so one burst of overload answers from a single slow batch collapses
// the limit once, not once per answer.
const (
	DefaultAIMDMax         = 32
	DefaultAIMDBackoff     = 0.5
	DefaultAIMDCutCooldown = time.Second
)

// AIMDConfig tunes an AIMDLimiter. The zero value takes the documented
// defaults.
type AIMDConfig struct {
	// Min is the limit floor; the limiter never cuts below it, so a
	// struggling replica keeps receiving probe traffic. 0 means 1.
	Min int
	// Max is the limit ceiling and the starting limit. 0 means
	// DefaultAIMDMax.
	Max int
	// Backoff is the multiplicative factor applied to the limit on
	// overload, in (0, 1). 0 means DefaultAIMDBackoff.
	Backoff float64
	// CutCooldown is the minimum spacing between multiplicative cuts;
	// overload signals inside the window are absorbed by the cut that
	// opened it. 0 means DefaultAIMDCutCooldown; negative disables the
	// cooldown (every overload cuts).
	CutCooldown time.Duration
	// Clock injects the time source for the cut cooldown; nil means
	// SystemClock. Tests pass a FakeClock.
	Clock Clock
}

// AIMDLimiter adaptively caps in-flight work toward one backend with
// additive-increase/multiplicative-decrease: every success raises the
// limit by 1/limit (one whole step per full window of successes), every
// overload signal halves it — at most once per cooldown window. It
// replaces "healthy means unlimited" in the gateway's per-replica
// routing. All methods are safe for concurrent use.
type AIMDLimiter struct {
	min, max float64
	backoff  float64
	cooldown time.Duration
	clock    Clock

	mu       sync.Mutex
	limit    float64
	inflight int
	lastCut  time.Time

	cuts atomic.Int64
}

// NewAIMDLimiter builds a limiter from cfg, starting wide open at Max.
func NewAIMDLimiter(cfg AIMDConfig) *AIMDLimiter {
	if cfg.Min <= 0 {
		cfg.Min = 1
	}
	if cfg.Max <= 0 {
		cfg.Max = DefaultAIMDMax
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Backoff <= 0 || cfg.Backoff >= 1 {
		cfg.Backoff = DefaultAIMDBackoff
	}
	if cfg.CutCooldown == 0 {
		cfg.CutCooldown = DefaultAIMDCutCooldown
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock()
	}
	return &AIMDLimiter{
		min:      float64(cfg.Min),
		max:      float64(cfg.Max),
		backoff:  cfg.Backoff,
		cooldown: cfg.CutCooldown,
		clock:    cfg.Clock,
		limit:    float64(cfg.Max),
	}
}

// Acquire reserves one in-flight slot, or reports false when the
// backend is at its current limit. Every true Acquire must be paired
// with a Release once the attempt resolves.
func (l *AIMDLimiter) Acquire() bool {
	l.mu.Lock()
	if l.inflight >= int(l.limit) {
		l.mu.Unlock()
		return false
	}
	l.inflight++
	l.mu.Unlock()
	return true
}

// Release returns a slot reserved by Acquire.
func (l *AIMDLimiter) Release() {
	l.mu.Lock()
	if l.inflight > 0 {
		l.inflight--
	}
	l.mu.Unlock()
}

// Success additively raises the limit by 1/limit (capped at Max): one
// whole step of headroom per full window of successes.
func (l *AIMDLimiter) Success() {
	l.mu.Lock()
	l.limit += 1 / l.limit
	if l.limit > l.max {
		l.limit = l.max
	}
	l.mu.Unlock()
}

// Overload multiplicatively cuts the limit (floored at Min) in response
// to an overload signal — a 429, 503, 504 or timeout from the backend.
// Cuts are spaced by the cooldown window: signals landing inside the
// window are attributed to the already-taken cut.
func (l *AIMDLimiter) Overload() {
	now := l.clock.Now()
	l.mu.Lock()
	if l.cooldown > 0 && !l.lastCut.IsZero() && now.Sub(l.lastCut) < l.cooldown {
		l.mu.Unlock()
		return
	}
	l.lastCut = now
	l.limit *= l.backoff
	if l.limit < l.min {
		l.limit = l.min
	}
	l.mu.Unlock()
	l.cuts.Add(1)
}

// Limit samples the current integer limit for /metrics and routing.
func (l *AIMDLimiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}

// Inflight samples the currently reserved slots.
func (l *AIMDLimiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Saturated reports whether the backend is at (or past) its current
// limit — the routing signal that deprioritizes it in failover order.
func (l *AIMDLimiter) Saturated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight >= int(l.limit)
}

// Cuts reports the lifetime number of multiplicative cuts taken.
func (l *AIMDLimiter) Cuts() int64 { return l.cuts.Load() }
