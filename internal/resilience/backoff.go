package resilience

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Backoff defaults: first retry after ~DefaultBackoffBase (jittered),
// doubling per consecutive strike up to DefaultBackoffMax.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
)

// BackoffConfig tunes a Backoff. The zero value takes the documented
// defaults.
type BackoffConfig struct {
	// Base is the pre-jitter delay of the first strike; consecutive
	// strikes double it. 0 means DefaultBackoffBase; negative disables
	// backoff entirely (Ready is always true).
	Base time.Duration
	// Max caps the pre-jitter exponential delay. 0 means
	// DefaultBackoffMax.
	Max time.Duration
	// Seed seeds the jitter RNG, making the delay sequence reproducible
	// in tests and drills. 0 means 1.
	Seed int64
	// Clock injects the time source; nil means SystemClock.
	Clock Clock
}

// Backoff is a jittered, seedable exponential backoff with Retry-After
// override: each Arm pushes the not-before time out by
// max(hint, jitter(base·2^strikes)) and Reset clears it on success.
// The gateway keeps one per replica so a shedding replica is not
// re-offered load until its own hint (or the exponential schedule) says
// so. All methods are safe for concurrent use.
type Backoff struct {
	base  time.Duration
	max   time.Duration
	clock Clock

	mu      sync.Mutex
	rng     *rand.Rand
	until   time.Time
	strikes int

	armed atomic.Int64
}

// NewBackoff builds a backoff from cfg.
func NewBackoff(cfg BackoffConfig) *Backoff {
	if cfg.Base == 0 {
		cfg.Base = DefaultBackoffBase
	}
	if cfg.Max <= 0 {
		cfg.Max = DefaultBackoffMax
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock()
	}
	return &Backoff{
		base:  cfg.Base,
		max:   cfg.Max,
		clock: cfg.Clock,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Arm records one strike and extends the not-before time. The delay is
// the jittered exponential — uniformly drawn from [d/2, d] where d is
// base·2^strikes capped at Max, so synchronized failures don't retry in
// lockstep — overridden upward by hint when the backend sent a larger
// Retry-After. It returns the delay applied (0 when backoff is
// disabled).
func (b *Backoff) Arm(hint time.Duration) time.Duration {
	if b.base < 0 {
		return 0
	}
	b.mu.Lock()
	d := b.base << uint(min(b.strikes, 30))
	if d > b.max || d <= 0 {
		d = b.max
	}
	b.strikes++
	// Half-jitter: keep at least half the exponential delay so the
	// schedule still backs off, spread the rest to decorrelate peers.
	delay := d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
	if hint > delay {
		delay = hint
	}
	notBefore := b.clock.Now().Add(delay)
	if notBefore.After(b.until) {
		b.until = notBefore
	}
	b.mu.Unlock()
	b.armed.Add(1)
	return delay
}

// Ready reports whether load may be offered again: true once the
// not-before time has passed (and always true when disabled).
func (b *Backoff) Ready() bool {
	if b.base < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.clock.Now().Before(b.until)
}

// Reset clears the strike count and not-before time after a success.
func (b *Backoff) Reset() {
	if b.base < 0 {
		return
	}
	b.mu.Lock()
	b.strikes = 0
	b.until = time.Time{}
	b.mu.Unlock()
}

// Armed reports the lifetime number of Arm calls, for /metrics.
func (b *Backoff) Armed() int64 { return b.armed.Load() }
