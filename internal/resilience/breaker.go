package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker state. The numeric values are part of the
// monitoring contract: sortinghatd_breaker_state exposes them directly.
type State int

// The three breaker states.
const (
	// Closed is the healthy state: every call is allowed and consecutive
	// failures are counted toward the trip threshold.
	Closed State = iota
	// Open is the tripped state: every call is rejected until the probe
	// interval elapses.
	Open
	// HalfOpen is the probing state: a single call is allowed through; its
	// outcome decides between Closed and Open.
	HalfOpen
)

// String names the state for logs and health payloads.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker defaults.
const (
	DefaultFailureThreshold = 5
	DefaultProbeInterval    = 5 * time.Second
	DefaultSuccessThreshold = 1
)

// BreakerConfig tunes a Breaker. The zero value takes the documented
// defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// from Closed to Open. 0 means DefaultFailureThreshold.
	FailureThreshold int
	// ProbeInterval is how long the breaker stays Open before allowing a
	// half-open probe. 0 means DefaultProbeInterval.
	ProbeInterval time.Duration
	// SuccessThreshold is how many consecutive half-open probe successes
	// close the breaker. 0 means DefaultSuccessThreshold.
	SuccessThreshold int
	// Clock supplies the probe schedule's time source. nil means
	// SystemClock.
	Clock Clock
	// OnTransition, when non-nil, is called on every state change. It runs
	// with the breaker's lock held, so it must not call back into the
	// breaker.
	OnTransition func(from, to State)
}

// normalized fills in the documented defaults.
func (c BreakerConfig) normalized() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = DefaultFailureThreshold
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = DefaultSuccessThreshold
	}
	if c.Clock == nil {
		c.Clock = SystemClock()
	}
	return c
}

// Breaker is a three-state circuit breaker. Callers ask Allow before the
// guarded operation and report the outcome with Success or Failure; the
// breaker trips Open after FailureThreshold consecutive failures, rejects
// calls for ProbeInterval, then lets a single probe through (HalfOpen)
// whose outcome either closes or re-opens it. All methods are safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int       // consecutive failures while Closed
	successes int       // consecutive probe successes while HalfOpen
	probing   bool      // a half-open probe is in flight
	probeAt   time.Time // when Open may transition to HalfOpen
	opened    int64     // lifetime Closed/HalfOpen -> Open transitions
}

// NewBreaker returns a Closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.normalized()}
}

// Allow reports whether the guarded operation may run now. While Open it
// returns false until the probe interval has elapsed, at which point the
// breaker moves to HalfOpen and admits exactly one probe; concurrent
// callers keep getting false until that probe's outcome is reported.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Clock.Now().Before(b.probeAt) {
			return false
		}
		b.transition(HalfOpen)
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a successful guarded operation.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.transition(Closed)
		}
	case Open:
		// A straggler from before the trip finished late; ignore it.
	}
}

// Failure reports a failed guarded operation (error or recovered panic).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		b.trip()
	case Open:
		// Stragglers while Open don't re-arm the probe timer.
	}
}

// trip opens the breaker and schedules the next probe. Callers hold b.mu.
func (b *Breaker) trip() {
	b.transition(Open)
	b.probeAt = b.cfg.Clock.Now().Add(b.cfg.ProbeInterval)
	b.opened++
}

// transition moves to state to, resetting the counters the new state
// relies on. Callers hold b.mu.
func (b *Breaker) transition(to State) {
	from := b.state
	b.state = to
	b.failures = 0
	b.successes = 0
	b.probing = false
	if b.cfg.OnTransition != nil && from != to {
		b.cfg.OnTransition(from, to)
	}
}

// State returns the current state without side effects: an Open breaker
// whose probe is due stays Open until the next Allow.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opened returns the lifetime number of trips to Open.
func (b *Breaker) Opened() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opened
}
