package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestParseErrors table-drives the spec grammar's rejections.
func TestParseErrors(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"empty", ""},
		{"only separators", " ; ; "},
		{"too few fields", "predict:panic"},
		{"unknown kind", "predict:explode:0.5"},
		{"bad rate", "predict:panic:lots"},
		{"rate above one", "predict:panic:1.5"},
		{"negative rate", "predict:panic:-0.1"},
		{"bad duration", "featurize:latency:1:fast"},
		{"bad cap", "predict:error:1:xfour"},
		{"zero cap", "predict:error:1:x0"},
		{"duration on error fault", "predict:error:1:20ms"},
		{"latency without duration", "featurize:latency:1"},
		{"empty site", ":panic:0.5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.spec, 1); err == nil {
				t.Errorf("Parse(%q) accepted a malformed spec", tc.spec)
			}
		})
	}
}

// TestParseRoundTrip checks a multi-clause spec arms what it says, via
// the startup-log String form.
func TestParseRoundTrip(t *testing.T) {
	in, err := Parse("predict:panic:0.1; featurize:latency:1:20ms; predict:error:0.5:x6", 1)
	if err != nil {
		t.Fatal(err)
	}
	got := in.String()
	for _, want := range []string{"predict:panic:0.1", "featurize:latency:1:20ms", "predict:error:0.5:x6"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	// Sites render sorted regardless of spec order.
	if f, p := strings.Index(got, "featurize"), strings.Index(got, "predict"); f > p {
		t.Errorf("String() = %q: sites not in sorted order", got)
	}
}

// TestLatencyShorthand checks the duration-as-rate shorthand: a
// latency clause may put a duration in the rate slot, meaning rate 1,
// and its canonical String form re-parses to the same fault.
func TestLatencyShorthand(t *testing.T) {
	in, err := Parse("featurize:latency:120ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	canonical := in.String()
	if canonical != "featurize:latency:1:120ms" {
		t.Fatalf("String() = %q, want the canonical long form", canonical)
	}
	again, err := Parse(canonical, 1)
	if err != nil {
		t.Fatalf("canonical form %q failed to re-parse: %v", canonical, err)
	}
	if again.String() != canonical {
		t.Errorf("round trip changed the spec: %q -> %q", canonical, again.String())
	}
	// The shorthand is latency-only: a duration can't stand in for the
	// rate of an error or panic fault.
	if _, err := Parse("predict:error:120ms", 1); err == nil {
		t.Error("duration-as-rate accepted on an error fault")
	}
	// A shorthand clause with a fire cap still parses.
	in2, err := Parse("forward@r1:latency:20ms:x4", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.String(); got != "forward@r1:latency:1:20ms:x4" {
		t.Errorf("String() = %q, want forward@r1:latency:1:20ms:x4", got)
	}
}

// TestDeterministicSequence requires the same spec + seed to fire on the
// same visits, and a different seed to (overwhelmingly likely) differ.
func TestDeterministicSequence(t *testing.T) {
	sequence := func(seed int64) []bool {
		in, err := Parse("predict:error:0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		fires := make([]bool, 200)
		for i := range fires {
			fires[i] = in.Inject("predict") != nil
		}
		return fires
	}
	a, b := sequence(7), sequence(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit %d: same seed fired differently", i)
		}
	}
	c := sequence(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("200 draws identical across different seeds")
	}
}

// TestFireCap checks xCOUNT stops the fault after exactly COUNT fires.
func TestFireCap(t *testing.T) {
	in, err := Parse("predict:error:1:x3", 1)
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for i := 0; i < 10; i++ {
		if err := in.Inject("predict"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("visit %d: error %v does not wrap ErrInjected", i, err)
			}
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("rate-1 x3 fault fired %d times over 10 visits, want 3", fails)
	}
	if in.Fired() != 3 {
		t.Fatalf("Fired() = %d, want 3", in.Fired())
	}
}

// TestPanicFault checks injected panics carry the typed site marker.
func TestPanicFault(t *testing.T) {
	in, err := Parse("predict:panic:1:x1", 1)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			p, ok := r.(InjectedPanic)
			if !ok {
				t.Fatalf("recovered %v (%T), want InjectedPanic", r, r)
			}
			if p.Site != "predict" {
				t.Errorf("panic site = %q, want predict", p.Site)
			}
		}()
		_ = in.Inject("predict")
		t.Fatal("rate-1 panic fault did not fire")
	}()
	if err := in.Inject("predict"); err != nil {
		t.Fatalf("x1 panic fault fired twice: %v", err)
	}
}

// TestLatencyFault checks latency faults sleep and return nil.
func TestLatencyFault(t *testing.T) {
	in, err := Parse("featurize:latency:1:30ms:x1", 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := in.Inject("featurize"); err != nil {
		t.Fatalf("latency fault returned error %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("latency fault slept %v, want >= 30ms", elapsed)
	}
}

// TestUnknownSiteAndNilInjector checks no-op paths stay no-ops.
func TestUnknownSiteAndNilInjector(t *testing.T) {
	in, err := Parse("predict:error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Inject("featurize"); err != nil {
		t.Errorf("unarmed site fired: %v", err)
	}
	var none *Injector
	if err := none.Inject("predict"); err != nil {
		t.Errorf("nil injector fired: %v", err)
	}
	if none.Fired() != 0 {
		t.Errorf("nil injector Fired() = %d", none.Fired())
	}
	if got := none.String(); got != "(none)" {
		t.Errorf("nil injector String() = %q, want (none)", got)
	}
}
