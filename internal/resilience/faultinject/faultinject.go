// Package faultinject is a seeded, rate-controlled fault injector for
// chaos-style testing of the serving path. Faults are keyed by site name
// — the serving hot path exposes the sites "featurize" and "predict" —
// and come in three kinds: added latency, a returned error, and a panic.
// Every random decision draws from a per-fault RNG seeded from the
// injector seed and the site name, so a given spec + seed produces the
// same fault sequence on every run (per site; across concurrent workers
// the interleaving of visits is the scheduler's).
//
// The injector is wired into sortinghatd only behind the -fault-spec
// flag; production configurations never construct one.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind is a fault kind.
type Kind int

// The three fault kinds.
const (
	// Latency sleeps for the fault's Latency duration at the site.
	Latency Kind = iota
	// Error makes Inject return an error wrapping ErrInjected.
	Error
	// Panic panics with an InjectedPanic value at the site.
	Panic
)

// String names the kind using the spec grammar's keywords.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Error:
		return "error"
	case Panic:
		return "panic"
	default:
		return "unknown"
	}
}

// parseKind maps a spec keyword to its Kind.
func parseKind(s string) (Kind, error) {
	switch s {
	case "latency":
		return Latency, nil
	case "error":
		return Error, nil
	case "panic":
		return Panic, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown fault kind %q (want latency, error or panic)", s)
	}
}

// ErrInjected is the sentinel wrapped by every injected error fault.
var ErrInjected = errors.New("faultinject: injected failure")

// InjectedPanic is the value injected panics carry, so chaos tests can
// tell an injected panic from a genuine one.
type InjectedPanic struct{ Site string }

// String describes the panic value in recover logs.
func (p InjectedPanic) String() string {
	return "faultinject: injected panic at " + p.Site
}

// Fault describes one fault to arm.
type Fault struct {
	Site    string        // fault site name, e.g. "predict"
	Kind    Kind          // what happens when the fault fires
	Rate    float64       // firing probability per visit, in [0, 1]
	Latency time.Duration // sleep duration (Latency kind only)
	Max     int64         // cap on fires; 0 means unlimited
}

// validate rejects malformed faults at construction time.
func (f Fault) validate() error {
	if f.Site == "" {
		return fmt.Errorf("faultinject: fault with empty site")
	}
	if f.Rate < 0 || f.Rate > 1 {
		return fmt.Errorf("faultinject: %s: rate %g outside [0, 1]", f.Site, f.Rate)
	}
	if f.Kind == Latency && f.Latency <= 0 {
		return fmt.Errorf("faultinject: %s: latency fault needs a positive duration", f.Site)
	}
	if f.Kind != Latency && f.Latency != 0 {
		return fmt.Errorf("faultinject: %s: duration is only valid on latency faults", f.Site)
	}
	if f.Max < 0 {
		return fmt.Errorf("faultinject: %s: negative fire cap", f.Site)
	}
	return nil
}

// armed is one fault plus its firing state.
type armed struct {
	fault Fault
	mu    sync.Mutex
	rng   *rand.Rand
	fired int64
}

// Injector holds armed faults keyed by site. A nil *Injector is a valid
// no-op injector.
type Injector struct {
	sites map[string][]*armed
	total int64 // lifetime fires, guarded by mu
	mu    sync.Mutex
}

// New arms the given faults. Each fault gets its own RNG seeded from seed
// and its site + kind, so fault sequences are independent per site and
// reproducible across runs.
func New(faults []Fault, seed int64) (*Injector, error) {
	in := &Injector{sites: make(map[string][]*armed)}
	for _, f := range faults {
		if err := f.validate(); err != nil {
			return nil, err
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "%s:%s", f.Site, f.Kind)
		in.sites[f.Site] = append(in.sites[f.Site], &armed{
			fault: f,
			rng:   rand.New(rand.NewSource(seed ^ int64(h.Sum64()))),
		})
	}
	return in, nil
}

// Parse builds an Injector from a spec string. The grammar, one clause
// per fault, clauses separated by ';':
//
//	site:kind:rate[:duration][:xCOUNT]
//
// kind is latency, error or panic; rate is the per-visit firing
// probability in [0, 1]; duration (latency faults only) is a Go duration
// like 20ms; xCOUNT caps the total fires, e.g. x4. Examples:
//
//	predict:panic:0.1            panic on 10% of predictions
//	featurize:latency:1:20ms     add 20ms to every featurization
//	predict:error:1:x6           fail the first 6 predictions
//
// Latency clauses accept a shorthand where a duration stands in for the
// rate, meaning "always fire": featurize:latency:120ms is equivalent to
// featurize:latency:1:120ms.
func Parse(spec string, seed int64) (*Injector, error) {
	var faults []Fault
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("faultinject: clause %q: want site:kind:rate[:duration][:xCOUNT]", clause)
		}
		var f Fault
		f.Site = parts[0]
		kind, err := parseKind(parts[1])
		if err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: %w", clause, err)
		}
		f.Kind = kind
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			// Latency shorthand: a duration in the rate slot means rate 1,
			// e.g. featurize:latency:120ms.
			if d, derr := time.ParseDuration(parts[2]); derr == nil && kind == Latency {
				f.Rate = 1
				f.Latency = d
			} else {
				return nil, fmt.Errorf("faultinject: clause %q: bad rate %q", clause, parts[2])
			}
		} else {
			f.Rate = rate
		}
		for _, extra := range parts[3:] {
			switch {
			case strings.HasPrefix(extra, "x"):
				n, err := strconv.ParseInt(extra[1:], 10, 64)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("faultinject: clause %q: bad fire cap %q", clause, extra)
				}
				f.Max = n
			default:
				d, err := time.ParseDuration(extra)
				if err != nil {
					return nil, fmt.Errorf("faultinject: clause %q: bad field %q (want a duration or xCOUNT)", clause, extra)
				}
				f.Latency = d
			}
		}
		if err := f.validate(); err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: %w", clause, err)
		}
		faults = append(faults, f)
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return New(faults, seed)
}

// Inject visits the named site: every armed fault there draws once and,
// if it fires, sleeps (Latency), returns an error (Error) or panics
// (Panic). It returns nil when no fault fires, and is safe to call from
// concurrent workers.
func (in *Injector) Inject(site string) error {
	if in == nil {
		return nil
	}
	for _, a := range in.sites[site] {
		a.mu.Lock()
		if a.fault.Max > 0 && a.fired >= a.fault.Max {
			a.mu.Unlock()
			continue
		}
		fire := a.rng.Float64() < a.fault.Rate
		if fire {
			a.fired++
		}
		kind, latency := a.fault.Kind, a.fault.Latency
		a.mu.Unlock()
		if !fire {
			continue
		}
		in.mu.Lock()
		in.total++
		in.mu.Unlock()
		switch kind {
		case Latency:
			time.Sleep(latency)
		case Error:
			return fmt.Errorf("%w at %s", ErrInjected, site)
		case Panic:
			panic(InjectedPanic{Site: site})
		}
	}
	return nil
}

// Fired reports the lifetime number of fault fires across all sites.
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// String summarises the armed faults for startup logs, sites in
// deterministic (insertion-independent, sorted) order.
func (in *Injector) String() string {
	if in == nil {
		return "(none)"
	}
	names := make([]string, 0, len(in.sites))
	for s := range in.sites {
		names = append(names, s) //shvet:ignore map-order keys are sorted immediately below before any output depends on their order
	}
	// Small n; insertion sort keeps this dependency-free.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	var b strings.Builder
	for _, s := range names {
		for _, a := range in.sites[s] {
			if b.Len() > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s:%s:%g", s, a.fault.Kind, a.fault.Rate)
			if a.fault.Latency > 0 {
				fmt.Fprintf(&b, ":%s", a.fault.Latency)
			}
			if a.fault.Max > 0 {
				fmt.Fprintf(&b, ":x%d", a.fault.Max)
			}
		}
	}
	return b.String()
}
