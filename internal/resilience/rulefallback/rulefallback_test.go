package rulefallback

import (
	"fmt"
	"testing"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/stats"
)

// TestClassifyRules table-drives one case per rule with hand-built
// Stats, pinning the flowchart's order and thresholds.
func TestClassifyRules(t *testing.T) {
	cases := []struct {
		name string
		base featurize.Base
		want ftype.FeatureType
	}{
		{"rule1 empty base", featurize.Base{}, ftype.NotGeneralizable},
		{"rule1 constant column", featurize.Base{
			Stats: stats.Stats{TotalVals: 10, NumUnique: 1},
		}, ftype.NotGeneralizable},
		{"rule2 all distinct", featurize.Base{
			Stats: stats.Stats{TotalVals: 10, NumUnique: 10, PctUnique: 100},
		}, ftype.NotGeneralizable},
		{"rule2 almost all missing", featurize.Base{
			Stats: stats.Stats{TotalVals: 1000, NumNaNs: 998, PctNaNs: 99.995, NumUnique: 2},
		}, ftype.NotGeneralizable},
		{"rule3 url", featurize.Base{
			Stats: stats.Stats{TotalVals: 10, NumUnique: 5, SampleHasURL: true},
		}, ftype.URL},
		{"rule4 list", featurize.Base{
			Stats: stats.Stats{TotalVals: 10, NumUnique: 5, SampleHasList: true},
		}, ftype.List},
		{"rule5 datetime", featurize.Base{
			Stats: stats.Stats{TotalVals: 10, NumUnique: 5, SampleHasDate: true},
		}, ftype.Datetime},
		{"rule6 integer-coded category", featurize.Base{
			Stats: stats.Stats{TotalVals: 20, NumUnique: 3, CastableFloatPct: 1},
		}, ftype.Categorical},
		{"rule7 numeric", featurize.Base{
			Stats: stats.Stats{TotalVals: 20, NumUnique: 8, CastableFloatPct: 1},
		}, ftype.Numeric},
		{"rule8 embedded number", featurize.Base{
			Samples: []string{"$7", "$8", "$9"},
			Stats:   stats.Stats{TotalVals: 20, NumUnique: 10, PctUnique: 50},
		}, ftype.EmbeddedNumber},
		{"rule9 sentence", featurize.Base{
			Samples: []string{"the cat sat on the mat"},
			Stats:   stats.Stats{TotalVals: 20, NumUnique: 10, PctUnique: 50, MeanWordCount: 6},
		}, ftype.Sentence},
		{"rule10 low-cardinality strings", featurize.Base{
			Samples: []string{"red", "green", "blue"},
			Stats:   stats.Stats{TotalVals: 60, NumUnique: 3, PctUnique: 5, MeanWordCount: 1},
		}, ftype.Categorical},
		{"rule11 context specific", featurize.Base{
			Samples: []string{"alpha", "beta", "gamma"},
			Stats:   stats.Stats{TotalVals: 20, NumUnique: 10, PctUnique: 50, MeanWordCount: 1},
		}, ftype.ContextSpecific},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, probs := Classify(&tc.base)
			if got != tc.want {
				t.Fatalf("Classify = %v, want %v", got, tc.want)
			}
			if len(probs) != ftype.NumBaseClasses {
				t.Fatalf("probs dim = %d, want %d", len(probs), ftype.NumBaseClasses)
			}
			sum := 0.0
			for i, p := range probs {
				sum += p
				if i == got.Index() {
					if p < 0.999 {
						t.Errorf("probs[%d] = %g, want 1 at the predicted class", i, p)
					}
				} else if p > 0.001 {
					t.Errorf("probs[%d] = %g, want 0 off the predicted class", i, p)
				}
			}
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("probs sum to %g, want 1", sum)
			}
		})
	}
}

// TestClassifyOnExtractedFeatures runs the fallback end to end on real
// columns through base featurization, the exact path the degraded
// serving mode takes.
func TestClassifyOnExtractedFeatures(t *testing.T) {
	repeat := func(vals []string, times int) []string {
		out := make([]string, 0, len(vals)*times)
		for i := 0; i < times; i++ {
			out = append(out, vals...)
		}
		return out
	}
	numeric := make([]string, 0, 16)
	for i := 0; i < 8; i++ {
		numeric = append(numeric, fmt.Sprintf("%d.25", i), fmt.Sprintf("%d.25", i))
	}
	cases := []struct {
		name string
		col  data.Column
		want ftype.FeatureType
	}{
		{"numeric", data.Column{Name: "price", Values: numeric}, ftype.Numeric},
		{"categorical", data.Column{
			Name:   "color",
			Values: repeat([]string{"red", "green", "blue"}, 20),
		}, ftype.Categorical},
		{"empty", data.Column{Name: "blank", Values: []string{"", "", ""}}, ftype.NotGeneralizable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := featurize.ExtractFirstN(&tc.col, featurize.SampleCount)
			if got, _ := Classify(&base); got != tc.want {
				t.Errorf("Classify(%s) = %v, want %v", tc.col.Name, got, tc.want)
			}
		})
	}
}
