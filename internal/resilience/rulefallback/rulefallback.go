// Package rulefallback is the serving path's graceful-degradation
// classifier: the paper's rule-based baseline (Section 3.2, Appendix G —
// the Pandas/TFDV-style heuristic flowchart internal/tools benchmarks)
// re-expressed over the already-extracted base features, so a column
// whose ML prediction is faulted, tripped or shed still gets an answer
// from the nine-class vocabulary. The paper quantifies exactly this
// trade: rule-based inference is markedly less accurate than the Random
// Forest but never unavailable, which is what a degraded serving mode
// needs. Results produced here are tagged Degraded by the server so
// callers can tell baseline answers from model answers.
package rulefallback

import (
	"sortinghat/ftype"
	"sortinghat/internal/featurize"
	"sortinghat/internal/stats"
)

// Classify maps base features to one of the nine classes with the
// rule-based flowchart, returning the class and a one-hot probability
// vector (rules are deterministic; there is no calibrated confidence to
// report). It never fails: an empty or partial Base falls through the
// no-signal rule to Not-Generalizable.
func Classify(b *featurize.Base) (ftype.FeatureType, []float64) {
	t := classify(b)
	probs := make([]float64, ftype.NumBaseClasses)
	probs[t.Index()] = 1
	return t, probs
}

// classify runs the 11-rule flowchart. The rule order and thresholds
// mirror internal/tools.RuleBaseline, adapted from whole-column profiles
// to the sample-bounded Stats of base featurization; its known weaknesses
// (integer-coded categories read as Numeric, fully distinct columns
// swallowed into Not-Generalizable) are the paper's, by design.
func classify(b *featurize.Base) ftype.FeatureType {
	st := &b.Stats
	nonMissing := st.TotalVals - st.NumNaNs
	castFloatAll := st.CastableFloatPct >= 0.999

	// Rule 1: no informative values at all.
	if nonMissing <= 0 || st.NumUnique <= 1 {
		return ftype.NotGeneralizable
	}
	// Rule 2: (almost) all NaN, or every value distinct — nothing
	// generalizable, fired before the syntactic checks as in the paper.
	if st.PctNaNs > 99.99 || st.NumUnique >= nonMissing {
		return ftype.NotGeneralizable
	}
	// Rule 3: URL syntax on the sampled values.
	if st.SampleHasURL {
		return ftype.URL
	}
	// Rule 4: delimiter-separated series of items.
	if st.SampleHasList {
		return ftype.List
	}
	// Rule 5: parseable dates or timestamps.
	if st.SampleHasDate {
		return ftype.Datetime
	}
	// Rule 6: castable numbers with a tiny domain read as categories...
	if castFloatAll && st.NumUnique <= 5 {
		return ftype.Categorical
	}
	// Rule 7: ...all other castable numbers read as Numeric.
	if castFloatAll {
		return ftype.Numeric
	}
	// Rule 8: numbers embedded in messy syntax, checked on the samples.
	if majority(b.Samples, stats.LooksEmbeddedNumber) {
		return ftype.EmbeddedNumber
	}
	// Rule 9: long, wordy values read as natural language.
	if st.MeanWordCount > 3 {
		return ftype.Sentence
	}
	// Rule 10: low-cardinality strings read as categories.
	if st.PctUnique < 10 {
		return ftype.Categorical
	}
	// Rule 11: everything else needs a human.
	return ftype.ContextSpecific
}

// majority reports whether pred holds for more than half of the samples
// (and for at least one). Samples are distinct non-missing values by
// construction of base featurization.
func majority(samples []string, pred func(string) bool) bool {
	hits := 0
	for _, v := range samples {
		if pred(v) {
			hits++
		}
	}
	return len(samples) > 0 && hits*2 > len(samples)
}
