package resilience

import (
	"testing"
	"time"
)

// TestAIMDStartsWideOpen pins the optimistic start: the limit begins at
// Max and Acquire admits up to it.
func TestAIMDStartsWideOpen(t *testing.T) {
	l := NewAIMDLimiter(AIMDConfig{Max: 4, Clock: NewFakeClock(time.Unix(0, 0))})
	if got := l.Limit(); got != 4 {
		t.Fatalf("fresh limit = %d, want Max 4", got)
	}
	for i := 0; i < 4; i++ {
		if !l.Acquire() {
			t.Fatalf("acquire %d refused under limit 4", i)
		}
	}
	if l.Acquire() {
		t.Fatal("5th acquire granted at limit 4")
	}
	if !l.Saturated() {
		t.Error("Saturated() = false with inflight == limit")
	}
	l.Release()
	if !l.Acquire() {
		t.Fatal("acquire refused after a release")
	}
}

// TestAIMDMultiplicativeCut checks one overload halves the limit and
// the cut cooldown absorbs the rest of the burst: ten overload signals
// inside one window take exactly one cut.
func TestAIMDMultiplicativeCut(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	l := NewAIMDLimiter(AIMDConfig{Max: 16, CutCooldown: time.Second, Clock: clk})
	for i := 0; i < 10; i++ {
		l.Overload()
	}
	if got := l.Limit(); got != 8 {
		t.Errorf("limit after an overload burst = %d, want one cut to 8", got)
	}
	if got := l.Cuts(); got != 1 {
		t.Errorf("Cuts() = %d, want 1 (cooldown absorbs the burst)", got)
	}
	clk.Advance(time.Second)
	l.Overload()
	if got := l.Limit(); got != 4 {
		t.Errorf("limit after the cooldown elapsed = %d, want 4", got)
	}
	if got := l.Cuts(); got != 2 {
		t.Errorf("Cuts() = %d, want 2", got)
	}
}

// TestAIMDFloor checks repeated cuts never push the limit below Min, so
// a struggling replica keeps receiving probe traffic.
func TestAIMDFloor(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	l := NewAIMDLimiter(AIMDConfig{Min: 2, Max: 8, Clock: clk})
	for i := 0; i < 10; i++ {
		l.Overload()
		clk.Advance(time.Second)
	}
	if got := l.Limit(); got != 2 {
		t.Errorf("limit after sustained overload = %d, want floor 2", got)
	}
	if !l.Acquire() {
		t.Error("floor limit must still admit work")
	}
}

// TestAIMDAdditiveRecovery checks the additive raise: from a cut limit
// of 2, one full window of successes (2 at 1/limit each... growing)
// climbs back toward Max one step per window, and caps there.
func TestAIMDAdditiveRecovery(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	l := NewAIMDLimiter(AIMDConfig{Max: 4, Clock: clk})
	l.Overload() // 4 -> 2
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit after cut = %d, want 2", got)
	}
	l.Success()
	l.Success() // 2 + 1/2 + 1/2.5 = 2.9 — still reads 2
	if got := l.Limit(); got != 2 {
		t.Errorf("limit mid-window = %d, want still 2", got)
	}
	l.Success() // 2.9 + 1/2.9 = 3.24...
	if got := l.Limit(); got != 3 {
		t.Errorf("limit after a full window of successes = %d, want 3", got)
	}
	for i := 0; i < 100; i++ {
		l.Success()
	}
	if got := l.Limit(); got != 4 {
		t.Errorf("limit after sustained success = %d, want Max cap 4", got)
	}
}
