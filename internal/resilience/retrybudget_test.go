package resilience

import (
	"testing"
	"time"
)

// TestRetryBudgetStartsFull pins the cold-start contract: a fresh
// budget allows exactly Burst speculative attempts before denying, so a
// freshly booted gateway can hedge immediately but a brownout cannot
// amplify past the burst.
func TestRetryBudgetStartsFull(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewRetryBudget(RetryBudgetConfig{Ratio: -1, MinPerSec: -1, Burst: 3, Clock: clk})
	for i := 0; i < 3; i++ {
		if !b.TryWithdraw() {
			t.Fatalf("withdrawal %d denied with a full bucket of 3", i)
		}
	}
	if b.TryWithdraw() {
		t.Fatal("4th withdrawal granted from a burst-3 bucket with deposits and floor disabled")
	}
	if got := b.Denied(); got != 1 {
		t.Errorf("Denied() = %d, want 1", got)
	}
	if got := b.Tokens(); got != 0 {
		t.Errorf("Tokens() = %g, want 0", got)
	}
}

// TestRetryBudgetRatioDeposits checks speculative traffic is bounded at
// the ratio of successes: with Ratio 0.1, ten deposits buy exactly one
// withdrawal.
func TestRetryBudgetRatioDeposits(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewRetryBudget(RetryBudgetConfig{Ratio: 0.1, MinPerSec: -1, Burst: 5, Clock: clk})
	for b.TryWithdraw() {
	}
	if b.TryWithdraw() {
		t.Fatal("bucket should be empty")
	}
	for i := 0; i < 9; i++ {
		b.Deposit()
	}
	if b.TryWithdraw() {
		t.Fatal("9 deposits at ratio 0.1 must not buy a whole token")
	}
	b.Deposit()
	if !b.TryWithdraw() {
		t.Fatal("10 deposits at ratio 0.1 must buy exactly one token")
	}
	if b.TryWithdraw() {
		t.Fatal("token already spent")
	}
}

// TestRetryBudgetMinRateFloor checks the floor refill: with deposits
// disabled, tokens accrue at MinPerSec on the injected clock, capped at
// Burst.
func TestRetryBudgetMinRateFloor(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	b := NewRetryBudget(RetryBudgetConfig{Ratio: -1, MinPerSec: 2, Burst: 4, Clock: clk})
	for b.TryWithdraw() {
	}
	if b.TryWithdraw() {
		t.Fatal("bucket should be empty")
	}
	clk.Advance(500 * time.Millisecond) // 2/sec × 0.5s = 1 token
	if !b.TryWithdraw() {
		t.Fatal("floor rate should have refilled one token after 500ms")
	}
	if b.TryWithdraw() {
		t.Fatal("only one token should have accrued")
	}
	clk.Advance(time.Hour)
	if got := b.Tokens(); got != 4 {
		t.Errorf("after an hour idle Tokens() = %g, want Burst cap 4", got)
	}
}

// TestRetryBudgetDefaults checks the zero config takes the documented
// defaults: bucket starts at DefaultRetryBurst.
func TestRetryBudgetDefaults(t *testing.T) {
	b := NewRetryBudget(RetryBudgetConfig{Clock: NewFakeClock(time.Unix(0, 0))})
	if got := b.Tokens(); got != DefaultRetryBurst {
		t.Errorf("fresh default bucket holds %g tokens, want %g", got, DefaultRetryBurst)
	}
}
