package serve

import (
	"context"
	"sync/atomic"
	"time"

	"sortinghat/internal/obs"
)

// phaseAcc accumulates per-phase nanoseconds across all worker-pool
// columns of one request, so the flight recorder can say where a slow
// request's time went. The HTTP handlers attach one to the request
// context; workers add into it with plain atomics. Direct InferBatch
// callers (benchmarks, tests) carry no accumulator and every method is
// nil-safe, which keeps the library hot path free of per-request
// bookkeeping allocations.
type phaseAcc struct {
	queue     atomic.Int64 // admission → worker pickup
	cache     atomic.Int64 // prediction cache lookups
	featurize atomic.Int64 // base featurization (successful columns)
	predict   atomic.Int64 // model prediction (successful columns)
	expired   atomic.Int64 // columns dropped at pickup: deadline spent in queue
}

// phaseKey is the context key carrying the request's accumulator.
type phaseKey struct{}

// withPhases attaches a fresh accumulator to ctx.
func withPhases(ctx context.Context) (context.Context, *phaseAcc) {
	acc := &phaseAcc{}
	return context.WithValue(ctx, phaseKey{}, acc), acc
}

// phasesFrom returns the accumulator carried by ctx, or nil.
func phasesFrom(ctx context.Context) *phaseAcc {
	acc, _ := ctx.Value(phaseKey{}).(*phaseAcc)
	return acc
}

func (a *phaseAcc) addQueue(d time.Duration) {
	if a != nil {
		a.queue.Add(int64(d))
	}
}

func (a *phaseAcc) addCache(d time.Duration) {
	if a != nil {
		a.cache.Add(int64(d))
	}
}

func (a *phaseAcc) addFeaturize(d time.Duration) {
	if a != nil {
		a.featurize.Add(int64(d))
	}
}

func (a *phaseAcc) addPredict(d time.Duration) {
	if a != nil {
		a.predict.Add(int64(d))
	}
}

// addExpired counts one column whose deadline ran out while it waited in
// the queue (a count, not a duration — it never enters phases()).
func (a *phaseAcc) addExpired() {
	if a != nil {
		a.expired.Add(1)
	}
}

// expiredCount reports how many of the request's columns expired in
// queue, for the flight-record routing note.
func (a *phaseAcc) expiredCount() int64 {
	if a == nil {
		return 0
	}
	return a.expired.Load()
}

// phases renders the accumulated totals in fixed order for a flight
// record. Nil (no accumulator attached) renders as nil.
func (a *phaseAcc) phases() []obs.Phase {
	if a == nil {
		return nil
	}
	return []obs.Phase{
		{Name: "queue", DurationNS: a.queue.Load()},
		{Name: "cache", DurationNS: a.cache.Load()},
		{Name: "featurize", DurationNS: a.featurize.Load()},
		{Name: "predict", DurationNS: a.predict.Load()},
	}
}
