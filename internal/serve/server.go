package serve

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sortinghat/ftype"
	"sortinghat/internal/core"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/obs"
)

// Config tunes a Server. The zero value picks sensible defaults; negative
// values disable the corresponding feature where documented.
type Config struct {
	// Workers is the size of the column worker pool shared by all
	// requests. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize is the LRU capacity in columns. 0 means DefaultCacheSize;
	// negative disables caching entirely.
	CacheSize int
	// Timeout is the per-request deadline applied on top of whatever
	// deadline the caller's context already carries. 0 means
	// DefaultTimeout; negative disables the server-side deadline.
	Timeout time.Duration
	// MaxBatch caps the number of columns per request. 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// TraceRing caps how many recent finished request traces are kept in
	// memory for GET /debug/traces. 0 means obs.DefaultTraceRing.
	TraceRing int
	// Logger, when non-nil, receives one structured access-log record
	// per HTTP request, carrying the request ID that also appears on the
	// request's trace span and X-Request-Id response header.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's Handler. Off by default; see the -pprof flag of
	// cmd/sortinghatd.
	EnablePprof bool
}

// Defaults for the zero Config.
const (
	DefaultCacheSize = 4096
	DefaultTimeout   = 10 * time.Second
	DefaultMaxBatch  = 1024
)

// normalized fills in the documented defaults.
func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	return c
}

// Server serves batched feature type inference over a trained pipeline.
// Create one with New and release its worker pool with Close. All methods
// are safe for concurrent use.
type Server struct {
	pipe   *core.Pipeline
	cfg    Config
	cache  *predCache
	met    *metrics
	tracer *obs.Tracer
	logger *slog.Logger
	reqSeq atomic.Int64 // request-ID sequence (req-1, req-2, ...)
	start  time.Time

	tasks    chan task
	workerWG sync.WaitGroup

	// closeMu guards closed: enqueue holds it shared so Close cannot
	// close(tasks) between the closed check and the channel send.
	closeMu sync.RWMutex
	closed  bool

	// featurizeHook, when non-nil, runs before each column's
	// featurization. Tests use it to make the hot path observably slow.
	featurizeHook func()
}

// task is one column of one request, processed by the worker pool.
type task struct {
	ctx  context.Context
	col  *data.Column
	out  *Result
	done *sync.WaitGroup
}

// Result is the prediction for one column of a batch.
type Result struct {
	Name       string
	Type       ftype.FeatureType
	Confidence float64
	Probs      []float64 // per-class probabilities, indexed by class index; read-only
	CacheHit   bool
}

// New starts a Server over a trained pipeline. The worker pool spins up
// immediately; call Close when done.
func New(pipe *core.Pipeline, cfg Config) *Server {
	cfg = cfg.normalized()
	s := &Server{
		pipe:   pipe,
		cfg:    cfg,
		cache:  newPredCache(cfg.CacheSize),
		tracer: obs.NewTracer(cfg.TraceRing),
		logger: cfg.Logger,
		start:  time.Now(),
		tasks:  make(chan task, 2*cfg.Workers),
	}
	s.met = newMetrics(s)
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the worker pool and waits for in-flight column tasks to
// finish. Shut the HTTP server down first (http.Server.Shutdown) so no
// request is still enqueuing; InferBatch returns ErrServerClosed for
// batches that arrive later.
func (s *Server) Close() {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if already {
		return
	}
	close(s.tasks)
	s.workerWG.Wait()
}

// ErrServerClosed is returned by InferBatch after Close.
var ErrServerClosed = fmt.Errorf("serve: server closed")

// worker processes column tasks until the task channel is closed.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		s.process(t)
	}
}

// process runs the per-column hot path: cache lookup, base featurization,
// model prediction, cache fill. It writes only *t.out (ownership by
// index; see the package comment) and always releases t.done. When the
// request carries a trace span, the column and its featurize/predict
// stages become child spans (obs.StartSpan is a no-op otherwise).
func (s *Server) process(t task) {
	defer t.done.Done()
	if t.ctx.Err() != nil {
		return // request already abandoned; don't burn the pool on it
	}
	t.out.Name = t.col.Name

	ctx, colSpan := obs.StartSpan(t.ctx, "column")
	colSpan.SetAttr("column", t.col.Name)
	defer colSpan.End()

	key := columnKey(t.col)
	if hit, ok := s.cache.get(key); ok {
		s.met.cacheHits.Add(1)
		colSpan.SetAttr("cache", "hit")
		t.out.Type = hit.Type
		t.out.Probs = hit.Probs
		t.out.Confidence = confidenceOf(hit.Type, hit.Probs)
		t.out.CacheHit = true
		return
	}
	s.met.cacheMisses.Add(1)
	colSpan.SetAttr("cache", "miss")

	if s.featurizeHook != nil {
		s.featurizeHook()
	}
	fStart := time.Now()
	_, fSpan := obs.StartSpan(ctx, "featurize")
	base := featurize.ExtractFirstN(t.col, featurize.SampleCount)
	fSpan.End()
	s.met.featurize.ObserveSince(fStart)

	pStart := time.Now()
	_, pSpan := obs.StartSpan(ctx, "predict")
	typ, probs := s.pipe.PredictBase(&base)
	pSpan.End()
	s.met.predict.ObserveSince(pStart)

	s.cache.put(key, cachedPrediction{Type: typ, Probs: probs})
	t.out.Type = typ
	t.out.Probs = probs
	t.out.Confidence = confidenceOf(typ, probs)
}

// confidenceOf picks the predicted class's probability out of probs.
func confidenceOf(t ftype.FeatureType, probs []float64) float64 {
	if i := t.Index(); i >= 0 && i < len(probs) {
		return probs[i]
	}
	return 0
}

// InferBatch classifies a batch of raw columns, fanning featurization and
// prediction out across the worker pool. Results are index-aligned with
// cols. It returns ctx.Err() (or context.DeadlineExceeded from the
// server-side timeout) when the deadline expires before the batch
// completes, and ErrServerClosed after Close.
func (s *Server) InferBatch(ctx context.Context, cols []data.Column) ([]Result, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("serve: empty batch")
	}
	if len(cols) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d columns exceeds limit %d", len(cols), s.cfg.MaxBatch)
	}
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	results := make([]Result, len(cols))
	var pending sync.WaitGroup
	for i := range cols {
		pending.Add(1)
		if err := s.enqueue(task{ctx: ctx, col: &cols[i], out: &results[i], done: &pending}); err != nil {
			pending.Done()
			// Tasks already queued keep their slots in results; nobody
			// reads the slice after an error return, so abandoning it is
			// safe (workers hold the only remaining references).
			return nil, err
		}
	}

	done := make(chan struct{})
	go func() { pending.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		// The batch finished but the deadline passed meanwhile; report
		// the timeout rather than hand back results the caller will
		// treat as on-time.
		return nil, err
	}
	return results, nil
}

// enqueue submits one task, failing fast when the server is closed or the
// request deadline expires while the queue is full.
func (s *Server) enqueue(t task) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrServerClosed
	}
	// Holding the read lock across the send is the point: Close takes the
	// write lock before closing s.tasks, so a send can never race the
	// close, and ctx.Done bounds how long the lock is held.
	//shvet:ignore lock-balance read lock intentionally held across the send to fence against Close closing s.tasks mid-send
	select {
	case s.tasks <- t:
		return nil
	case <-t.ctx.Done():
		return t.ctx.Err()
	}
}
