package serve

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sortinghat/ftype"
	"sortinghat/internal/core"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/obs"
	"sortinghat/internal/resilience"
	"sortinghat/internal/resilience/rulefallback"
)

// Injector is the fault-site hook threaded through the serving hot path.
// The server visits the sites "featurize" and "predict" once per uncached
// column; an injector may sleep (latency fault), return an error (the
// column degrades to the rule fallback) or panic (recovered by the
// worker's panic isolation). Production configurations leave it nil;
// faultinject.Injector implements it behind sortinghatd's -fault-spec.
type Injector interface {
	Inject(site string) error
}

// Config tunes a Server. The zero value picks sensible defaults; negative
// values disable the corresponding feature where documented.
type Config struct {
	// Workers is the size of the column worker pool shared by all
	// requests. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize is the LRU capacity in columns. 0 means DefaultCacheSize;
	// negative disables caching entirely.
	CacheSize int
	// Timeout is the per-request deadline applied on top of whatever
	// deadline the caller's context already carries. 0 means
	// DefaultTimeout; negative disables the server-side deadline (the
	// admission gate still bounds enqueueing, so a deadline-less caller
	// can shed but never block forever on a full queue).
	Timeout time.Duration
	// MaxBatch caps the number of columns per request. 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// QueueDepth is the admission-gate high-water mark: the number of
	// columns that may be admitted and not yet picked up by a worker
	// before further requests are shed with resilience.ErrOverloaded
	// (HTTP 429). 0 means 2*MaxBatch. It is also the task channel's
	// capacity, so an admitted batch never blocks on enqueue.
	QueueDepth int
	// MaxCellBytes caps individual cell sizes on the CSV ingestion
	// endpoint (HTTP 413 beyond it). 0 means DefaultMaxCellBytes.
	MaxCellBytes int
	// RetryAfterMax caps the Retry-After hint (in seconds) sent with shed
	// responses; the hint scales linearly with live queue fullness from 1
	// up to this cap. 0 means DefaultRetryAfterMax.
	RetryAfterMax int
	// Breaker tunes the circuit breaker guarding model prediction; the
	// zero value takes the resilience package defaults.
	Breaker resilience.BreakerConfig
	// Faults, when non-nil, is consulted at every fault site on the hot
	// path. Only chaos tests and -fault-spec set it.
	Faults Injector
	// ModelVersion is the operator-visible label of the startup model
	// (the -model-version flag of cmd/sortinghatd). Empty means "v1".
	// Subsequent versions arrive via Reload / POST /admin/reload.
	ModelVersion string
	// TraceRing caps how many recent finished request traces are kept in
	// memory for GET /debug/traces. 0 means obs.DefaultTraceRing.
	TraceRing int
	// TraceSink, when non-nil, receives every finished request trace as
	// one JSON line (JSONL) carrying the full trace/span identity — the
	// stream cmd/tracecat stitches across the fleet. See the -trace-out
	// flag of cmd/sortinghatd.
	TraceSink io.Writer
	// FlightRing caps each ring of the flight recorder behind
	// GET /debug/flight (slowest and errored requests are separate rings
	// of this size). 0 means obs.DefaultFlightRing.
	FlightRing int
	// Logger, when non-nil, receives one structured access-log record
	// per HTTP request, carrying the request ID that also appears on the
	// request's trace span and X-Request-Id response header.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's Handler. Off by default; see the -pprof flag of
	// cmd/sortinghatd.
	EnablePprof bool
}

// Defaults for the zero Config.
const (
	DefaultCacheSize     = 4096
	DefaultTimeout       = 10 * time.Second
	DefaultMaxBatch      = 1024
	DefaultMaxCellBytes  = 1 << 20
	DefaultRetryAfterMax = 8
)

// normalized fills in the documented defaults.
func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxBatch
	}
	if c.MaxCellBytes <= 0 {
		c.MaxCellBytes = DefaultMaxCellBytes
	}
	if c.RetryAfterMax <= 0 {
		c.RetryAfterMax = DefaultRetryAfterMax
	}
	return c
}

// modelState is one immutable (pipeline, version) pair. The server holds
// the current one behind an atomic pointer so a hot reload swaps the
// whole pair in a single store: a worker that loads the pointer once per
// column can never observe a torn model — it predicts with exactly the
// pipeline whose sequence number it keys the cache under.
type modelState struct {
	pipe    *core.Pipeline
	version string // operator-visible label, e.g. "v1" or "canary-42"
	seq     uint64 // monotonic swap counter, mixed into every cache key
}

// Server serves batched feature type inference over a trained pipeline.
// Create one with New and release its worker pool with Close. All methods
// are safe for concurrent use.
type Server struct {
	model    atomic.Pointer[modelState]
	modelSeq atomic.Uint64

	cfg     Config
	cache   *predCache
	met     *metrics
	tracer  *obs.Tracer
	flight  *obs.FlightRecorder
	logger  *slog.Logger
	gate    *resilience.Gate
	breaker *resilience.Breaker
	faults  Injector
	reqSeq  atomic.Int64 // request-ID sequence (req-1, req-2, ...)
	start   time.Time

	tasks    chan task
	workerWG sync.WaitGroup

	// closeMu guards closed: enqueue holds it shared so Close cannot
	// close(tasks) between the closed check and the channel send.
	closeMu sync.RWMutex
	closed  bool
}

// task is one column of one request, processed by the worker pool.
type task struct {
	ctx  context.Context
	col  *data.Column
	out  *Result
	done *sync.WaitGroup
	enq  time.Time // when the column was admitted (queue-phase start)
}

// Result is the prediction for one column of a batch.
type Result struct {
	Name       string
	Type       ftype.FeatureType
	Confidence float64
	Probs      []float64 // per-class probabilities, indexed by class index; read-only
	CacheHit   bool
	// Degraded marks answers from the rule-based fallback (ML path
	// faulted, panicked, or breaker open) instead of the model.
	Degraded bool
	// Err carries the per-column failure that forced degradation, if any
	// (a breaker-open rejection degrades with an empty Err).
	Err string
}

// New starts a Server over a trained pipeline. The worker pool spins up
// immediately; call Close when done.
func New(pipe *core.Pipeline, cfg Config) *Server {
	cfg = cfg.normalized()
	s := &Server{
		cfg:    cfg,
		cache:  newPredCache(cfg.CacheSize),
		tracer: obs.NewTracer(cfg.TraceRing),
		flight: obs.NewFlightRecorder(cfg.FlightRing),
		logger: cfg.Logger,
		gate:   resilience.NewGate(cfg.QueueDepth),
		faults: cfg.Faults,
		start:  time.Now(),
		tasks:  make(chan task, cfg.QueueDepth),
	}
	if cfg.TraceSink != nil {
		s.tracer.SetSink(cfg.TraceSink)
	}
	version := cfg.ModelVersion
	if version == "" {
		version = "v1"
	}
	s.model.Store(&modelState{pipe: pipe, version: version, seq: s.modelSeq.Add(1)})
	bcfg := cfg.Breaker
	userTransition := bcfg.OnTransition
	bcfg.OnTransition = func(from, to resilience.State) {
		if s.logger != nil {
			s.logger.Warn("breaker transition", "from", from.String(), "to", to.String())
		}
		if userTransition != nil {
			userTransition(from, to)
		}
	}
	s.breaker = resilience.NewBreaker(bcfg)
	s.met = newMetrics(s)
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// current returns the model state serving right now. Callers that need a
// consistent (pipeline, version) pair must call it once and keep the
// returned pointer, never call it twice mid-operation.
func (s *Server) current() *modelState {
	return s.model.Load()
}

// Reload hot-swaps the serving model with zero downtime: requests in
// flight finish on whichever model they loaded, new columns predict with
// pipe, and the prediction cache is version-keyed so no entry computed by
// the old model is ever served again (the swapped-out entries are also
// purged to reclaim memory early). version is the operator-visible label
// for the new model; empty derives "v<seq>" from the swap sequence
// number. It returns the previous and installed version labels, the
// installed swap sequence number, and the number of purged cache
// entries. Safe to call concurrently with inference; concurrent Reload
// calls serialize only on the atomic swap (last store wins).
func (s *Server) Reload(pipe *core.Pipeline, version string) (prevVersion, newVersion string, seq uint64, purged int) {
	seq = s.modelSeq.Add(1)
	if version == "" {
		version = "v" + strconv.FormatUint(seq, 10)
	}
	prev := s.current()
	s.met.attachForest(pipe)
	s.model.Store(&modelState{pipe: pipe, version: version, seq: seq})
	purged = s.cache.purge()
	s.met.reloads.Add(1)
	if s.logger != nil {
		s.logger.Info("model reloaded",
			"model", pipe.Name(),
			"version", version,
			"previous_version", prev.version,
			"seq", seq,
			"cache_purged", purged)
	}
	return prev.version, version, seq, purged
}

// Close stops the worker pool and waits for in-flight column tasks to
// finish. Shut the HTTP server down first (http.Server.Shutdown) so no
// request is still enqueuing; InferBatch returns ErrServerClosed for
// batches that arrive later.
func (s *Server) Close() {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if already {
		return
	}
	close(s.tasks)
	s.workerWG.Wait()
}

// ErrServerClosed is returned by InferBatch after Close.
var ErrServerClosed = fmt.Errorf("serve: server closed")

// worker processes column tasks until the task channel is closed. Each
// received task immediately releases its admission-gate reservation: the
// gate bounds queued (not in-flight) columns.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		s.gate.Release(1)
		s.process(t)
	}
}

// process runs the per-column hot path: cache lookup, base featurization,
// model prediction, cache fill. Featurize and predict run panic-isolated
// (guard), so one poisoned column degrades to the rule fallback instead
// of killing the process, and prediction sits behind the circuit breaker.
// It writes only *t.out (ownership by index; see the package comment) and
// always releases t.done. When the request carries a trace span, the
// column and its featurize/predict stages become child spans
// (obs.StartSpan is a no-op otherwise).
//
//shvet:hotpath worker-pool body; every inferred column passes through here via the task channel
func (s *Server) process(t task) {
	defer t.done.Done()
	if err := t.ctx.Err(); err != nil {
		// Request already abandoned; don't burn the pool on it. Sentinel
		// compare (not errors.Is): context returns exactly this value, and
		// the check must stay allocation-free on the hot path.
		if err == context.DeadlineExceeded {
			s.met.deadlineExpired.Add(1)
			phasesFrom(t.ctx).addExpired()
		}
		return
	}
	t.out.Name = t.col.Name

	acc := phasesFrom(t.ctx)
	qd := time.Since(t.enq)
	s.met.queueDur.Observe(qd.Seconds())
	acc.addQueue(qd)

	ctx, colSpan := obs.StartSpan(t.ctx, "column")
	colSpan.SetAttr("column", t.col.Name)
	defer colSpan.End()

	// One atomic load pins this column to a single (pipeline, seq) pair:
	// the prediction below and the cache key agree on the model version
	// even when Reload swaps the pointer mid-column.
	m := s.current()
	cStart := time.Now()
	key := versionedKey{seq: m.seq, key: columnKey(t.col)}
	hit, ok := s.cache.get(key)
	cd := time.Since(cStart)
	s.met.cacheDur.Observe(cd.Seconds())
	acc.addCache(cd)
	if ok {
		s.met.cacheHits.Add(1)
		colSpan.SetAttr("cache", "hit")
		t.out.Type = hit.Type
		t.out.Probs = hit.Probs
		t.out.Confidence = confidenceOf(hit.Type, hit.Probs)
		t.out.CacheHit = true
		return
	}
	s.met.cacheMisses.Add(1)
	colSpan.SetAttr("cache", "miss")

	var base featurize.Base
	fStart := time.Now()
	_, fSpan := obs.StartSpan(ctx, "featurize")
	fErr := s.guard("featurize", func() error {
		if err := s.inject("featurize"); err != nil {
			return err
		}
		base = featurize.ExtractFirstN(t.col, featurize.SampleCount)
		return nil
	})
	fSpan.End()
	if fErr != nil {
		// Without stats the fallback's no-signal rule answers
		// Not-Generalizable — still a valid class, so the batch survives.
		base = featurize.Base{Name: t.col.Name}
		s.degrade(t.out, &base, fErr.Error(), "featurize-error", colSpan)
		return
	}
	fd := time.Since(fStart)
	s.met.featurize.Observe(fd.Seconds())
	acc.addFeaturize(fd)

	if !s.breaker.Allow() {
		s.degrade(t.out, &base, "", "breaker-open", colSpan)
		return
	}

	var (
		typ   ftype.FeatureType
		probs []float64
	)
	pStart := time.Now()
	_, pSpan := obs.StartSpan(ctx, "predict")
	pErr := s.guard("predict", func() error {
		if err := s.inject("predict"); err != nil {
			return err
		}
		typ, probs = m.pipe.PredictBase(&base)
		return nil
	})
	pSpan.End()
	if pErr != nil {
		s.breaker.Failure()
		s.degrade(t.out, &base, pErr.Error(), "predict-error", colSpan)
		return
	}
	s.breaker.Success()
	pd := time.Since(pStart)
	s.met.predict.Observe(pd.Seconds())
	acc.addPredict(pd)

	s.cache.put(key, cachedPrediction{Type: typ, Probs: probs})
	t.out.Type = typ
	t.out.Probs = probs
	t.out.Confidence = confidenceOf(typ, probs)
}

// guard runs fn with panic isolation: a panic from the hot path is
// recovered, counted, logged with its stack, and returned as the column's
// error, so one poisoned column cannot take down the process.
func (s *Server) guard(site string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.met.panics.Add(1)
			if s.logger != nil {
				s.logger.Error("panic recovered",
					"site", site,
					"panic", fmt.Sprint(r),
					"stack", string(debug.Stack()))
			}
			err = fmt.Errorf("serve: panic in %s: %v", site, r)
		}
	}()
	return fn()
}

// inject visits a fault site when an injector is configured.
func (s *Server) inject(site string) error {
	if s.faults == nil {
		return nil
	}
	return s.faults.Inject(site)
}

// degrade answers a column from the rule-based fallback instead of the
// ML path, tagging the result so callers can tell. Degraded answers are
// never cached: once the ML path recovers, the same column must get a
// model answer again.
func (s *Server) degrade(out *Result, base *featurize.Base, errMsg, reason string, span *obs.Span) {
	typ, probs := rulefallback.Classify(base)
	out.Type = typ
	out.Probs = probs
	out.Confidence = confidenceOf(typ, probs)
	out.Degraded = true
	out.Err = errMsg
	s.met.degraded.Add(1)
	span.SetAttr("degraded", reason)
	if errMsg != "" {
		span.SetAttr("error", errMsg)
	}
}

// confidenceOf picks the predicted class's probability out of probs.
func confidenceOf(t ftype.FeatureType, probs []float64) float64 {
	if i := t.Index(); i >= 0 && i < len(probs) {
		return probs[i]
	}
	return 0
}

// Degraded reports whether the server is currently answering from the
// rule fallback because the prediction breaker is not closed. /healthz
// mirrors this as status "degraded".
func (s *Server) Degraded() bool {
	return s.breaker.State() != resilience.Closed
}

// InferBatch classifies a batch of raw columns, fanning featurization and
// prediction out across the worker pool. Results are index-aligned with
// cols. The whole batch is admitted through the load-shedding gate up
// front: when admitting it would push the queue past Config.QueueDepth,
// InferBatch fails fast with an error wrapping resilience.ErrOverloaded
// instead of blocking — including when Timeout is negative and the
// caller's context has no deadline, a configuration that previously could
// block forever on a full queue. It returns ctx.Err() (or
// context.DeadlineExceeded from the server-side timeout) when the
// deadline expires before the batch completes, and ErrServerClosed after
// Close. Columns whose ML path fails come back with Degraded set rather
// than failing the batch.
func (s *Server) InferBatch(ctx context.Context, cols []data.Column) ([]Result, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("serve: empty batch")
	}
	if len(cols) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d columns exceeds limit %d", len(cols), s.cfg.MaxBatch)
	}
	if err := s.gate.TryReserve(len(cols)); err != nil {
		return nil, fmt.Errorf("serve: %d columns queued of %d high water: %w",
			s.gate.Depth(), s.gate.Capacity(), err)
	}
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	results := make([]Result, len(cols))
	//shvet:ignore nondet-flow queue-wait timestamps feed the latency histograms only; inference results never depend on them
	enq := time.Now()
	var pending sync.WaitGroup
	for i := range cols {
		pending.Add(1)
		if err := s.enqueue(task{ctx: ctx, col: &cols[i], out: &results[i], done: &pending, enq: enq}); err != nil {
			pending.Done()
			// Hand back the reservations of the columns never enqueued
			// (workers release the queued ones as they drain them). Tasks
			// already queued keep their slots in results; nobody reads the
			// slice after an error return, so abandoning it is safe
			// (workers hold the only remaining references).
			s.gate.Release(len(cols) - i)
			return nil, err
		}
	}

	done := make(chan struct{})
	go func() { pending.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		// The batch finished but the deadline passed meanwhile; report
		// the timeout rather than hand back results the caller will
		// treat as on-time.
		return nil, err
	}
	return results, nil
}

// enqueue submits one task, failing fast when the server is closed. The
// admission gate reserved room for the task up front and the channel's
// capacity equals the gate's high-water mark, so the send cannot block on
// a full queue; the ctx arm only covers requests cancelled mid-enqueue.
func (s *Server) enqueue(t task) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrServerClosed
	}
	// Holding the read lock across the send is the point: Close takes the
	// write lock before closing s.tasks, so a send can never race the
	// close, and ctx.Done bounds how long the lock is held.
	//shvet:ignore lock-balance read lock intentionally held across the send to fence against Close closing s.tasks mid-send
	select {
	case s.tasks <- t:
		return nil
	case <-t.ctx.Done():
		return t.ctx.Err()
	}
}
