package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"sortinghat/ftype"
	"sortinghat/internal/core"
	"sortinghat/internal/data"
	"sortinghat/internal/obs"
	"sortinghat/internal/resilience"
)

// maxRequestBody bounds /v1/infer request bodies (64 MiB covers a
// 1024-column batch of long text columns with room to spare).
const maxRequestBody = 64 << 20

// DeadlineHeader carries the caller's remaining time budget in whole
// milliseconds. The gateway stamps it on every forwarded leg (its own
// deadline minus a network-slack allowance) and the replica clamps its
// server-side timeout down to it, so a replica never keeps working on a
// column whose answer the gateway has already given up waiting for.
const DeadlineHeader = "X-Deadline-Ms"

// InferRequest is the JSON body of POST /v1/infer: a batch of raw
// columns, typically every column of one ingested table.
type InferRequest struct {
	Columns []InferColumn `json:"columns"`
}

// InferColumn is one raw column of an inference batch.
type InferColumn struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// InferResponse is the JSON body answering POST /v1/infer. Predictions
// are index-aligned with the request's columns. ModelVersion is the
// operator label of the model serving when the response was built; a
// batch racing a hot reload may contain columns answered by the previous
// version (each column is internally consistent — see Server.Reload).
type InferResponse struct {
	Model           string            `json:"model"`
	ModelVersion    string            `json:"model_version"`
	Predictions     []InferPrediction `json:"predictions"`
	CacheHits       int               `json:"cache_hits"`
	DegradedColumns int               `json:"degraded_columns"`
	ElapsedMS       float64           `json:"elapsed_ms"`
}

// InferPrediction is the inference result for one column.
type InferPrediction struct {
	Name       string             `json:"name"`
	Type       string             `json:"type"`
	Confidence float64            `json:"confidence"`
	Probs      map[string]float64 `json:"probs"`
	CacheHit   bool               `json:"cache_hit"`
	// Degraded marks rule-fallback answers (ML path faulted or breaker
	// open); Error carries the per-column failure when there was one.
	Degraded bool   `json:"degraded"`
	Error    string `json:"error,omitempty"`
}

// HealthResponse is the JSON body answering GET /healthz. Status is "ok",
// or "degraded" while the prediction breaker is not closed and columns
// are answered by the rule fallback.
type HealthResponse struct {
	Status        string  `json:"status"`
	Breaker       string  `json:"breaker"`
	Model         string  `json:"model"`
	ModelVersion  string  `json:"model_version"`
	ModelSeq      uint64  `json:"model_seq"`
	Classes       int     `json:"classes"`
	Workers       int     `json:"workers"`
	CacheEntries  int     `json:"cache_entries"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ReloadRequest is the JSON body of POST /admin/reload: the path of a
// versioned gob model snapshot (written by `sortinghat train -out` /
// core.Pipeline.SaveFile) to hot-swap in, plus an optional operator
// label for the new version (empty derives "v<seq>").
type ReloadRequest struct {
	Path    string `json:"path"`
	Version string `json:"version,omitempty"`
}

// ReloadResponse is the JSON body answering a successful POST
// /admin/reload.
type ReloadResponse struct {
	Model           string `json:"model"`
	Version         string `json:"version"`
	PreviousVersion string `json:"previous_version"`
	Seq             uint64 `json:"seq"`
	CachePurged     int    `json:"cache_purged"`
}

// TracesResponse is the JSON body answering GET /debug/traces: the
// bounded ring of recent finished request traces, oldest first.
type TracesResponse struct {
	Count  int            `json:"count"`
	Traces []obs.SpanJSON `json:"traces"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API: POST /v1/infer, POST
// /v1/infer/csv, POST /admin/reload, GET /healthz, GET /metrics, GET
// /debug/traces, GET /debug/flight, and (with Config.EnablePprof)
// /debug/pprof/. Every request passes the observability middleware: it
// gets a request ID (echoed as X-Request-Id and attached to the
// request's trace span), continues an incoming traceparent so this
// process's spans join the caller's distributed trace, and, when
// Config.Logger is set, emits one structured access-log record.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/infer/csv", s.handleInferCSV)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	if s.cfg.EnablePprof {
		obs.MountPprof(mux)
	}
	return s.observe(mux)
}

// observe is the middleware correlating the signals: it reuses the
// caller's X-Request-Id when one is forwarded (the gateway forwards its
// own, so fleet logs for one request join on a single id) or mints a
// fresh one, propagates it via context to the trace span, echoes it to
// the client, continues an incoming W3C traceparent as the remote parent
// of this request's root span, and emits the access-log record.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = "req-" + strconv.FormatInt(s.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", id)
		ctx := obs.WithRequestID(r.Context(), id)
		if sc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			ctx = obs.ContextWithRemoteParent(ctx, sc)
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		if s.logger != nil {
			s.logger.Info("request",
				"request_id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration_ms", float64(time.Since(start).Microseconds())/1000)
		}
	})
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// writeJSON marshals v with the given status. Encoding errors past the
// header cannot be reported to the client; they surface as a truncated
// body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError answers with a JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// handleInfer decodes a JSON batch, runs it through the worker pool, and
// answers with per-column predictions.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	start := time.Now()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	defer s.met.requests.Add(1)

	ctx, span := s.tracer.Start(r.Context(), "infer")
	span.SetAttr("request_id", obs.RequestIDFrom(ctx))
	defer span.End()

	var req InferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		s.met.requestErrors.Add(1)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds "+strconv.FormatInt(tooLarge.Limit, 10)+" bytes")
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	cols := make([]data.Column, len(req.Columns))
	for i, c := range req.Columns {
		cols[i] = data.Column{Name: c.Name, Values: c.Values}
	}
	s.serveBatch(w, ctx, span, start, r.URL.Path, r.Header.Get(DeadlineHeader), cols)
}

// handleInferCSV ingests a whole table as CSV (the form AutoML platforms
// hold tables in) and classifies every column. Parsing applies the
// adversarial-input limits: column count is capped at Config.MaxBatch and
// cell size at Config.MaxCellBytes, both answered with 413 so oversized
// uploads fail fast instead of ballooning memory.
func (s *Server) handleInferCSV(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	start := time.Now()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	defer s.met.requests.Add(1)

	ctx, span := s.tracer.Start(r.Context(), "infer")
	span.SetAttr("request_id", obs.RequestIDFrom(ctx))
	span.SetAttr("format", "csv")
	defer span.End()

	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	ds, err := data.ReadCSVLimited("request", body, data.Limits{
		MaxColumns:   s.cfg.MaxBatch,
		MaxCellBytes: s.cfg.MaxCellBytes,
	})
	if err != nil {
		s.met.requestErrors.Add(1)
		var tooLarge *http.MaxBytesError
		switch {
		case errors.Is(err, data.ErrTooManyColumns), errors.Is(err, data.ErrCellTooLarge):
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		case errors.As(err, &tooLarge):
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds "+strconv.FormatInt(tooLarge.Limit, 10)+" bytes")
		default:
			writeError(w, http.StatusBadRequest, "parsing csv: "+err.Error())
		}
		return
	}
	s.serveBatch(w, ctx, span, start, r.URL.Path, r.Header.Get(DeadlineHeader), ds.Columns)
}

// serveBatch is the shared tail of the infer handlers: validate the
// batch, fan it out, and render the response (or map the failure onto the
// HTTP error surface). It attaches the request's phase accumulator to the
// context the workers see and, once the response is decided, offers the
// request to the flight recorder with its identity, per-phase totals and
// outcome.
//
//shvet:hotpath request tail of every infer endpoint; all per-request instrumentation lands here
func (s *Server) serveBatch(w http.ResponseWriter, ctx context.Context, span *obs.Span, start time.Time, path, deadlineMS string, cols []data.Column) {
	status, errMsg := http.StatusOK, ""
	var notes []string
	ctx, acc := withPhases(ctx)
	defer func() {
		if n := acc.expiredCount(); n > 0 {
			notes = append(notes, "deadline expired in queue for "+strconv.FormatInt(n, 10)+" columns (never featurized)")
		}
		s.flight.Record(obs.FlightRecord{
			TraceID:    span.Context().TraceID.String(),
			RequestID:  obs.RequestIDFrom(ctx),
			Path:       path,
			Status:     status,
			DurationNS: time.Since(start).Nanoseconds(),
			Columns:    len(cols),
			Phases:     acc.phases(),
			Err:        errMsg,
			Notes:      notes,
		})
	}()
	fail := func(st int, msg string) {
		status, errMsg = st, msg
		writeError(w, st, msg)
	}
	if len(cols) == 0 {
		s.met.requestErrors.Add(1)
		fail(http.StatusBadRequest, "empty batch: provide at least one column")
		return
	}
	if len(cols) > s.cfg.MaxBatch {
		s.met.requestErrors.Add(1)
		fail(http.StatusBadRequest, "batch too large: max "+strconv.Itoa(s.cfg.MaxBatch)+" columns")
		return
	}
	// Honor a propagated deadline before admitting any work: clamp the
	// request context to the caller's remaining budget so queued columns
	// expire (and are dropped at pickup) the moment the caller stops
	// waiting.
	if deadlineMS != "" {
		ms, err := strconv.ParseInt(deadlineMS, 10, 64)
		if err != nil {
			s.met.requestErrors.Add(1)
			fail(http.StatusBadRequest, "malformed "+DeadlineHeader+" header: "+deadlineMS)
			return
		}
		if ms <= 0 {
			s.met.requestTimeouts.Add(1)
			notes = append(notes, "rejected by control: deadline (budget spent before admission)")
			span.SetAttr("deadline", "spent")
			fail(http.StatusGatewayTimeout, "request budget spent before admission")
			return
		}
		var cancel context.CancelFunc
		// Nested WithTimeout keeps the tighter of this and Config.Timeout.
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	s.met.columns.Add(int64(len(cols)))
	s.met.batchSize.Observe(float64(len(cols)))
	span.SetAttr("columns", strconv.Itoa(len(cols)))

	results, err := s.InferBatch(ctx, cols)
	if err != nil {
		switch {
		case errors.Is(err, resilience.ErrOverloaded):
			span.SetAttr("shed", "true")
			notes = append(notes, "rejected by control: gate (queue at high water)")
			w.Header().Set("Retry-After", s.retryAfter())
			fail(http.StatusTooManyRequests, "overloaded: queue past high water; retry later")
		case errors.Is(err, context.DeadlineExceeded):
			s.met.requestTimeouts.Add(1)
			notes = append(notes, "rejected by control: deadline (expired before the batch completed)")
			fail(http.StatusGatewayTimeout, "deadline exceeded before the batch completed")
		case errors.Is(err, context.Canceled):
			// The client went away; the status code is never seen.
			fail(http.StatusServiceUnavailable, "request canceled")
		case errors.Is(err, ErrServerClosed):
			fail(http.StatusServiceUnavailable, "server shutting down")
		default:
			s.met.requestErrors.Add(1)
			fail(http.StatusBadRequest, err.Error())
		}
		return
	}

	m := s.current()
	resp := InferResponse{
		Model:        m.pipe.Name(),
		ModelVersion: m.version,
		Predictions:  make([]InferPrediction, len(results)),
	}
	for i, res := range results {
		if res.CacheHit {
			resp.CacheHits++
		}
		if res.Degraded {
			resp.DegradedColumns++
		}
		resp.Predictions[i] = InferPrediction{
			Name:       res.Name,
			Type:       res.Type.String(),
			Confidence: res.Confidence,
			Probs:      probsByClass(res.Probs),
			CacheHit:   res.CacheHit,
			Degraded:   res.Degraded,
			Error:      res.Err,
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.met.request.ObserveSince(start)
	writeJSON(w, http.StatusOK, resp)
}

// retryAfter derives the Retry-After hint for shed responses from live
// queue fullness, so cooperative clients space retries proportionally to
// actual load instead of hammering at a fixed cadence.
func (s *Server) retryAfter() string {
	return strconv.FormatInt(resilience.RetryAfterSeconds(
		s.gate.Depth(), s.gate.Capacity(), int64(s.cfg.RetryAfterMax)), 10)
}

// probsByClass labels a class-indexed probability vector with the paper's
// class names. encoding/json emits map keys in sorted order, so the wire
// form is deterministic.
func probsByClass(probs []float64) map[string]float64 {
	out := make(map[string]float64, len(probs))
	for i, p := range probs {
		out[ftype.FeatureType(i).String()] = p
	}
	return out
}

// handleHealthz answers liveness probes with model metadata. While the
// prediction breaker is open or probing (columns served by the rule
// fallback), Status reports "degraded" instead of "ok"; it recovers to
// "ok" once a half-open probe succeeds and the breaker closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	status := "ok"
	if s.Degraded() {
		status = "degraded"
	}
	m := s.current()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        status,
		Breaker:       s.breaker.State().String(),
		Model:         m.pipe.Name(),
		ModelVersion:  m.version,
		ModelSeq:      m.seq,
		Classes:       m.pipe.Opts.Classes,
		Workers:       s.cfg.Workers,
		CacheEntries:  s.cache.len(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleReload hot-swaps the serving model from a gob snapshot on local
// disk (POST /admin/reload, body ReloadRequest). The swap is atomic and
// zero-downtime — in-flight columns finish on the model they loaded —
// and version-keyed caching guarantees no stale entry survives the swap
// (see Server.Reload). Failures leave the current model serving and are
// counted in sortinghatd_model_reload_errors_total. The endpoint trusts
// its network like the rest of the admin surface: run fleets on an
// internal network or behind an authenticating proxy.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req ReloadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.met.reloadErrors.Add(1)
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if req.Path == "" {
		s.met.reloadErrors.Add(1)
		writeError(w, http.StatusBadRequest, "missing \"path\": the gob model snapshot to load")
		return
	}
	pipe, err := core.LoadFile(req.Path)
	if err != nil {
		s.met.reloadErrors.Add(1)
		if s.logger != nil {
			s.logger.Error("model reload failed", "path", req.Path, "err", err.Error())
		}
		writeError(w, http.StatusBadRequest, "loading model: "+err.Error())
		return
	}
	prev, version, seq, purged := s.Reload(pipe, req.Version)
	writeJSON(w, http.StatusOK, ReloadResponse{
		Model:           pipe.Name(),
		Version:         version,
		PreviousVersion: prev,
		Seq:             seq,
		CachePurged:     purged,
	})
}

// handleMetrics answers Prometheus scrapes in text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.reg.WritePrometheus(w)
}

// handleTraces serves the in-memory ring of recent request traces as
// JSON span trees (monotonic offsets and durations only; no wall-clock
// timestamps).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	traces := s.tracer.Recent()
	writeJSON(w, http.StatusOK, TracesResponse{Count: len(traces), Traces: traces})
}

// handleFlight serves the flight recorder: the slowest and most recently
// errored requests with trace identity and per-phase timing, the first
// stop when explaining a latency outlier after the fact.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.flight.Snapshot())
}
