package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sortinghat/internal/data"
)

// saveTestModel writes the shared test pipeline to a temp gob file and
// returns its path — the artifact POST /admin/reload loads.
func saveTestModel(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := testModel(t).SaveFile(path); err != nil {
		t.Fatalf("saving test model: %v", err)
	}
	return path
}

// postReload drives POST /admin/reload through the handler.
func postReload(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, ReloadResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", strings.NewReader(body)))
	var resp ReloadResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding reload response: %v\nbody: %s", err, rec.Body.Bytes())
		}
	}
	return rec, resp
}

// TestReloadSwapsModelAndInvalidatesCache is the hot-reload contract end
// to end over the HTTP surface: the swap bumps version and sequence with
// zero downtime, and cached predictions from before the swap are never
// served again — the repeat batch that hit the cache pre-reload misses
// afterwards, because cache keys carry the model sequence.
func TestReloadSwapsModelAndInvalidatesCache(t *testing.T) {
	path := saveTestModel(t)
	s := newTestServer(t, Config{Workers: 2, CacheSize: 256, ModelVersion: "baseline"})
	h := s.Handler()

	batch := testBatch(6)
	if rec, resp := postInfer(t, h, batch); rec.Code != http.StatusOK || resp.CacheHits != 0 {
		t.Fatalf("first batch: status %d, cache hits %d", rec.Code, resp.CacheHits)
	}
	if _, resp := postInfer(t, h, batch); resp.CacheHits != 6 {
		t.Fatalf("pre-reload repeat: cache hits = %d, want 6", resp.CacheHits)
	}
	if hl := getHealth(t, h); hl.ModelVersion != "baseline" || hl.ModelSeq != 1 {
		t.Fatalf("pre-reload healthz: version %q seq %d, want baseline/1", hl.ModelVersion, hl.ModelSeq)
	}

	rec, resp := postReload(t, h, `{"path":`+jsonQuote(t, path)+`,"version":"canary"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload status = %d, body %s", rec.Code, rec.Body.Bytes())
	}
	if resp.Version != "canary" || resp.PreviousVersion != "baseline" || resp.Seq != 2 {
		t.Errorf("reload response = %+v, want canary after baseline at seq 2", resp)
	}
	if resp.CachePurged != 6 {
		t.Errorf("reload purged %d entries, want 6", resp.CachePurged)
	}
	if got := s.met.reloads.Load(); got != 1 {
		t.Errorf("model_reloads_total = %d, want 1", got)
	}

	if hl := getHealth(t, h); hl.ModelVersion != "canary" || hl.ModelSeq != 2 {
		t.Fatalf("post-reload healthz: version %q seq %d, want canary/2", hl.ModelVersion, hl.ModelSeq)
	}

	// The same batch must recompute: pre-reload entries are version-dead.
	if _, resp := postInfer(t, h, batch); resp.CacheHits != 0 {
		t.Errorf("post-reload batch: cache hits = %d, want 0 (old version must not serve)", resp.CacheHits)
	} else if resp.ModelVersion != "canary" {
		t.Errorf("post-reload response model_version = %q, want canary", resp.ModelVersion)
	}
	// And re-cache under the new version.
	if _, resp := postInfer(t, h, batch); resp.CacheHits != 6 {
		t.Errorf("post-reload repeat: cache hits = %d, want 6", resp.CacheHits)
	}
}

// jsonQuote JSON-quotes a path for embedding in a request body.
func jsonQuote(t *testing.T, s string) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestReloadDerivesVersion pins the "v<seq>" fallback label when the
// operator supplies none.
func TestReloadDerivesVersion(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	_, version, seq, _ := s.Reload(testModel(t), "")
	if version != "v2" || seq != 2 {
		t.Errorf("derived version %q at seq %d, want v2 at 2", version, seq)
	}
}

// TestReloadHandlerErrors walks the reload endpoint's rejection surface:
// wrong method, malformed body, missing path, unloadable file. Every
// rejection leaves the serving model untouched and is counted.
func TestReloadHandlerErrors(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheSize: -1, ModelVersion: "keep"})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/admin/reload", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", rec.Code)
	}

	cases := []string{
		`{not json`,
		`{}`,
		`{"path":"/nonexistent/model.gob"}`,
	}
	for _, body := range cases {
		if rec, _ := postReload(t, h, body); rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, rec.Code)
		}
	}
	if got := s.met.reloadErrors.Load(); got != int64(len(cases)) {
		t.Errorf("model_reload_errors_total = %d, want %d", got, len(cases))
	}
	if hl := getHealth(t, h); hl.ModelVersion != "keep" || hl.ModelSeq != 1 {
		t.Errorf("failed reloads moved the model: version %q seq %d", hl.ModelVersion, hl.ModelSeq)
	}
}

// TestConcurrentInferDuringReload hammers the server with inference while
// the model is swapped repeatedly. Run under -race by `make chaos`, it
// pins the torn-model guarantee: every column is answered by exactly one
// coherent (pipeline, version) pair — structurally valid probabilities
// with the confidence matching the predicted class — and once the swaps
// stop, the cache converges on the final version (a full repeat batch
// hits for every column).
func TestConcurrentInferDuringReload(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, CacheSize: 1024})
	pipe := testModel(t)
	classes := pipe.Opts.Classes

	const (
		inferers = 4
		rounds   = 8
		swaps    = 25
	)
	var wg sync.WaitGroup
	errc := make(chan string, inferers*rounds)
	for g := 0; g < inferers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := testBatch(16)
				cols := make([]data.Column, len(req.Columns))
				for i, c := range req.Columns {
					cols[i] = data.Column{Name: c.Name, Values: c.Values}
				}
				results, err := s.InferBatch(context.Background(), cols)
				if err != nil {
					errc <- "InferBatch: " + err.Error()
					return
				}
				for i, res := range results {
					if res.Name != cols[i].Name {
						errc <- "misaligned result: " + res.Name + " at " + cols[i].Name
					}
					if len(res.Probs) != classes {
						errc <- "torn probs vector"
					}
					if idx := res.Type.Index(); idx < 0 || idx >= len(res.Probs) {
						errc <- "type outside class vocabulary: " + res.Type.String()
					} else if res.Confidence != res.Probs[idx] { //shvet:ignore float-eq confidence is copied, not computed: bit equality is the contract
						errc <- "confidence does not match predicted class probability"
					}
				}
			}
		}(g)
	}
	for i := 0; i < swaps; i++ {
		s.Reload(pipe, "")
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}

	// Quiesced: one batch to fill the final version's cache, then a full
	// repeat must hit — proving lookups and the serving model agree.
	req := testBatch(8)
	cols := make([]data.Column, len(req.Columns))
	for i, c := range req.Columns {
		cols[i] = data.Column{Name: c.Name, Values: c.Values}
	}
	if _, err := s.InferBatch(context.Background(), cols); err != nil {
		t.Fatalf("fill batch: %v", err)
	}
	results, err := s.InferBatch(context.Background(), cols)
	if err != nil {
		t.Fatalf("repeat batch: %v", err)
	}
	for _, res := range results {
		if !res.CacheHit {
			t.Errorf("column %s missed the cache after swaps quiesced", res.Name)
		}
	}
}
