package serve

// Chaos tests: deterministic fault injection driven through the same
// seam production drills use (Config.Faults), proving the resilience
// tentpole end to end — panics are isolated to their column, overload is
// shed with 429 instead of queued without bound, and a tripped ML path
// degrades to the paper's rule-based baseline and recovers.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/resilience"
	"sortinghat/internal/resilience/faultinject"
)

// mustInjector parses a fault spec or fails the test.
func mustInjector(t testing.TB, spec string, seed int64) *faultinject.Injector {
	t.Helper()
	in, err := faultinject.Parse(spec, seed)
	if err != nil {
		t.Fatalf("parsing fault spec %q: %v", spec, err)
	}
	return in
}

// metricValue scrapes /metrics and returns the named series' value.
func metricValue(t *testing.T, h http.Handler, name string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// getHealth fetches and decodes /healthz.
func getHealth(t *testing.T, h http.Handler) HealthResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d", rec.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	return hr
}

// validTypes is the nine-class label vocabulary every prediction —
// degraded or not — must come from.
func validTypes() map[string]bool {
	out := make(map[string]bool, ftype.NumBaseClasses)
	for i := 0; i < ftype.NumBaseClasses; i++ {
		out[ftype.FeatureType(i).String()] = true
	}
	return out
}

// TestChaosPanicIsolation is the headline drill: a 10% panic rate on the
// prediction path across a 1000-column batch must not crash anything —
// the request completes with 200, every column carries a label from the
// nine-class vocabulary, panics are counted, and the panicked columns
// come back degraded with the fallback's answer.
func TestChaosPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:   4,
		CacheSize: -1,
		Faults:    mustInjector(t, "predict:panic:0.1", 42),
	})
	h := s.Handler()

	rec, resp := postInfer(t, h, testBatch(1000))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 despite injected panics; body %s", rec.Code, rec.Body.Bytes())
	}
	if len(resp.Predictions) != 1000 {
		t.Fatalf("got %d predictions, want 1000", len(resp.Predictions))
	}
	valid := validTypes()
	degraded := 0
	for i, p := range resp.Predictions {
		if !valid[p.Type] {
			t.Fatalf("prediction %d: type %q outside the nine-class vocabulary", i, p.Type)
		}
		if p.Degraded {
			degraded++
		} else if p.Error != "" {
			t.Errorf("prediction %d: non-degraded column carries error %q", i, p.Error)
		}
	}
	if degraded == 0 {
		t.Fatal("10% panic rate over 1000 columns degraded nothing — faults not reaching the hot path")
	}
	if resp.DegradedColumns != degraded {
		t.Errorf("degraded_columns = %d, but %d predictions are marked degraded", resp.DegradedColumns, degraded)
	}
	if got := metricValue(t, h, "sortinghatd_panic_recovered_total"); got <= 0 {
		t.Errorf("sortinghatd_panic_recovered_total = %g, want > 0", got)
	}
	if got := metricValue(t, h, "sortinghatd_degraded_total"); got != float64(degraded) {
		t.Errorf("sortinghatd_degraded_total = %g, want %d", got, degraded)
	}

	// The server must still serve: panic recovery leaks no worker.
	if rec, _ := postInfer(t, h, testBatch(8)); rec.Code != http.StatusOK {
		t.Fatalf("follow-up request status = %d after panic drill", rec.Code)
	}
}

// TestChaosLoadShedding fills the admission gate with a slow in-flight
// batch and requires the overlapping request to fast-fail with 429 +
// Retry-After instead of queuing, with the shed counted.
func TestChaosLoadShedding(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	s := newTestServer(t, Config{
		Workers: 1, CacheSize: -1, QueueDepth: 8, Timeout: -1,
		Faults: injectFunc(func(site string) error {
			if site == "featurize" {
				once.Do(func() { close(started) })
				time.Sleep(30 * time.Millisecond)
			}
			return nil
		}),
	})
	h := s.Handler()

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec, _ := postInfer(t, h, testBatch(8))
		first <- rec
	}()
	<-started // the 8-column batch owns the queue

	rec, _ := postInfer(t, h, testBatch(8))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overlapping batch status = %d, want 429; body %s", rec.Code, rec.Body.Bytes())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if got := metricValue(t, h, "sortinghatd_shed_total"); got < 1 {
		t.Errorf("sortinghatd_shed_total = %g, want >= 1", got)
	}
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("admitted batch status = %d, want 200", rec.Code)
	}
	// Capacity released: the same batch is admitted again.
	if rec, _ := postInfer(t, h, testBatch(8)); rec.Code != http.StatusOK {
		t.Fatalf("post-drain batch status = %d, want 200", rec.Code)
	}
}

// TestChaosBreakerLifecycle drives the breaker through its full arc on a
// fake clock: consecutive injected prediction failures trip it open
// (healthz "degraded", answers from the rule fallback), the probe
// interval elapses, and the exhausted fault lets the half-open probe
// succeed, closing the breaker (healthz back to "ok").
func TestChaosBreakerLifecycle(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(0, 0))
	s := newTestServer(t, Config{
		Workers:   1,
		CacheSize: -1,
		Faults:    mustInjector(t, "predict:error:1:x3", 1),
		Breaker: resilience.BreakerConfig{
			FailureThreshold: 3,
			ProbeInterval:    time.Hour,
			Clock:            clk,
		},
	})
	h := s.Handler()

	if hr := getHealth(t, h); hr.Status != "ok" || hr.Breaker != "closed" {
		t.Fatalf("fresh health = %s/%s, want ok/closed", hr.Status, hr.Breaker)
	}

	// Three columns, three injected prediction errors: every column is
	// degraded with a valid fallback label and the third failure trips
	// the breaker.
	rec, resp := postInfer(t, h, testBatch(3))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degraded answers, not failure); body %s", rec.Code, rec.Body.Bytes())
	}
	valid := validTypes()
	for i, p := range resp.Predictions {
		if !p.Degraded {
			t.Errorf("prediction %d: degraded = false under a rate-1 error fault", i)
		}
		if p.Error == "" {
			t.Errorf("prediction %d: degraded by prediction failure but error field empty", i)
		}
		if !valid[p.Type] {
			t.Errorf("prediction %d: fallback type %q outside the vocabulary", i, p.Type)
		}
	}
	if hr := getHealth(t, h); hr.Status != "degraded" || hr.Breaker != "open" {
		t.Fatalf("health after trip = %s/%s, want degraded/open", hr.Status, hr.Breaker)
	}
	if got := metricValue(t, h, "sortinghatd_breaker_open_total"); got != 1 {
		t.Errorf("sortinghatd_breaker_open_total = %g, want 1", got)
	}
	if got := metricValue(t, h, "sortinghatd_breaker_state"); got != 1 {
		t.Errorf("sortinghatd_breaker_state = %g, want 1 (open)", got)
	}

	// While open, columns skip the ML path entirely: degraded, no error.
	_, openResp := postInfer(t, h, testBatch(2))
	for i, p := range openResp.Predictions {
		if !p.Degraded {
			t.Errorf("open-state prediction %d: degraded = false", i)
		}
	}

	// Past the probe interval the x3-capped fault is exhausted, so the
	// single half-open probe succeeds and closes the breaker.
	clk.Advance(time.Hour)
	rec, resp = postInfer(t, h, testBatch(1))
	if rec.Code != http.StatusOK {
		t.Fatalf("probe batch status = %d", rec.Code)
	}
	if resp.Predictions[0].Degraded {
		t.Error("probe prediction still degraded after the fault exhausted")
	}
	if hr := getHealth(t, h); hr.Status != "ok" || hr.Breaker != "closed" {
		t.Fatalf("health after recovery = %s/%s, want ok/closed", hr.Status, hr.Breaker)
	}
	if got := metricValue(t, h, "sortinghatd_faults_injected_total"); got != 3 {
		t.Errorf("sortinghatd_faults_injected_total = %g, want 3 (x3 cap)", got)
	}
}

// TestChaosFeaturizeFailureDegrades checks the other fault site: a
// featurization failure cannot use extracted features, so the fallback
// answers on the column name alone and does not count against the
// prediction breaker.
func TestChaosFeaturizeFailureDegrades(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:   1,
		CacheSize: -1,
		Faults:    mustInjector(t, "featurize:error:1:x2", 1),
	})
	h := s.Handler()
	rec, resp := postInfer(t, h, testBatch(2))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	for i, p := range resp.Predictions {
		if !p.Degraded || p.Error == "" {
			t.Errorf("prediction %d: want degraded with error, got %+v", i, p)
		}
	}
	if hr := getHealth(t, h); hr.Breaker != "closed" {
		t.Errorf("featurize failures moved the prediction breaker to %q", hr.Breaker)
	}
}

// TestNoTimeoutOverloadFastFails is the regression test for the
// unbounded-blocking bug: with the per-request deadline disabled, a
// context with no deadline, and the queue full, InferBatch must fail
// fast with ErrOverloaded instead of blocking forever on the task
// channel.
func TestNoTimeoutOverloadFastFails(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	s := newTestServer(t, Config{
		Workers: 1, CacheSize: -1, QueueDepth: 4, Timeout: -1,
		Faults: injectFunc(func(site string) error {
			if site == "featurize" {
				once.Do(func() { close(started) })
				time.Sleep(50 * time.Millisecond)
			}
			return nil
		}),
	})

	// Fill the queue with an admitted slow batch.
	go func() { _, _ = s.InferBatch(context.Background(), batchColumns(4)) }()
	<-started

	done := make(chan error, 1)
	go func() {
		_, err := s.InferBatch(context.Background(), batchColumns(2))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, resilience.ErrOverloaded) {
			t.Fatalf("full-queue InferBatch error = %v, want ErrOverloaded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("InferBatch blocked on a full queue with no deadline (regression)")
	}
}

// batchColumns builds n small columns for library-level calls.
func batchColumns(n int) []data.Column {
	cols := make([]data.Column, n)
	for i := range cols {
		cols[i] = data.Column{Name: fmt.Sprintf("c%d", i), Values: []string{"1", "2", "3"}}
	}
	return cols
}

// TestInferCSVEndpoint covers the CSV ingestion surface: a plain table,
// a BOM-prefixed header, and the adversarial-input limits.
func TestInferCSVEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxBatch: 4, MaxCellBytes: 64})
	h := s.Handler()

	postCSV := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/infer/csv", strings.NewReader(body))
		req.Header.Set("Content-Type", "text/csv")
		h.ServeHTTP(rec, req)
		return rec
	}

	t.Run("valid table", func(t *testing.T) {
		rec := postCSV("age,color\n23,red\n41,blue\n35,red\n")
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
		}
		var resp InferResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Predictions) != 2 {
			t.Fatalf("got %d predictions, want 2", len(resp.Predictions))
		}
		if resp.Predictions[0].Name != "age" || resp.Predictions[1].Name != "color" {
			t.Errorf("prediction names = %q, %q; want age, color",
				resp.Predictions[0].Name, resp.Predictions[1].Name)
		}
	})

	t.Run("BOM stripped from header", func(t *testing.T) {
		rec := postCSV("\uFEFFage,color\n23,red\n41,blue\n")
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
		}
		var resp InferResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Predictions[0].Name != "age" {
			t.Errorf("first column name = %q, want bare \"age\" (BOM must be stripped)", resp.Predictions[0].Name)
		}
	})

	t.Run("too many columns", func(t *testing.T) {
		rec := postCSV("a,b,c,d,e\n1,2,3,4,5\n")
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413; body %s", rec.Code, rec.Body.Bytes())
		}
	})

	t.Run("oversized cell", func(t *testing.T) {
		rec := postCSV("a\n" + strings.Repeat("x", 65) + "\n")
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413; body %s", rec.Code, rec.Body.Bytes())
		}
	})

	t.Run("malformed csv", func(t *testing.T) {
		rec := postCSV("a,b\n1\n")
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400; body %s", rec.Code, rec.Body.Bytes())
		}
	})

	t.Run("method", func(t *testing.T) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/infer/csv", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", rec.Code)
		}
	})
}
