// Package serve turns a trained inference pipeline into the online
// component the paper positions SortingHat as: AutoML platforms (TFDV,
// AutoGluon, TransmogrifAI) call feature type inference per ingested table
// on their hot path, not as an offline table generator. The server
// therefore exposes a *batch-of-columns* API — POST /v1/infer takes every
// column of a table at once — mirroring how platforms ingest whole CSVs
// and amortising request overhead across a table's columns.
//
// The serving hot path is base featurization (descriptive statistics from
// internal/stats plus attribute-name bigram hashing from
// internal/featurize; Section 2.3 of the paper) followed by model
// prediction. A Server parallelises that path across the columns of a
// request on a bounded worker pool shared by all requests, and skips it
// entirely for columns it has seen before via an LRU cache keyed by a
// 128-bit content hash of the column (attribute name + cell values).
// Caching is sound because serving uses the deterministic featurizer
// (featurize.ExtractFirstN, the same one Pipeline.Predict uses): equal
// column content always yields equal features, so a cached prediction is
// bit-identical to a recomputed one.
//
// # Endpoints
//
//   - POST /v1/infer — classify a batch of raw columns; returns the
//     9-class prediction with per-class confidences for each column.
//   - POST /v1/infer/csv — classify every column of a table posted as
//     CSV, with adversarial-input limits (column count, cell size)
//     answered by 413 and a UTF-8 BOM on the header stripped.
//   - GET /healthz — liveness/readiness probe with model metadata;
//     status is "degraded" while the prediction breaker is not closed.
//   - GET /metrics — Prometheus text-format metrics from the server's
//     obs.Registry (request/column/cache counters, batch-size and latency
//     quantiles, forest structure gauges), built on the standard library
//     only. The document layout is byte-stable and pinned by test.
//   - GET /debug/traces — the bounded ring of recent finished request
//     traces as JSON span trees: one root infer span per request, column
//     child spans, featurize/predict grandchildren. Offsets and durations
//     are monotonic-only; traces carry no wall-clock timestamps.
//   - GET /debug/pprof/ — net/http/pprof, mounted only with
//     Config.EnablePprof (the -pprof flag of cmd/sortinghatd).
//
// # Observability
//
// The three signals are correlated by request ID: the middleware assigns
// req-N, echoes it as the X-Request-Id response header, attaches it to
// the root trace span, and stamps it on the structured access-log record
// (Config.Logger). Metric handles live in the server's obs.Registry;
// span creation goes through obs.StartSpan, which is a no-op for callers
// that did not start a trace, so the hot path is instrumented
// unconditionally. See ARCHITECTURE.md "Observability" for which layer
// owns which signal.
//
// # Resilience
//
// The serving path never lets one bad column, one slow burst, or one
// faulty model component take the process down (internal/resilience):
//
//   - Panic isolation: the per-column hot path runs featurize and
//     predict under a recover guard. A panic is counted
//     (sortinghatd_panic_recovered_total), logged with its stack, noted
//     on the column's trace span, and converted into a per-column
//     degraded answer; the batch still returns 200 and the worker
//     survives.
//   - Load shedding: a resilience.Gate in front of the task queue
//     reserves capacity for whole requests up front and fast-fails with
//     resilience.ErrOverloaded (HTTP 429 + Retry-After) past
//     Config.QueueDepth. Because the task channel's capacity equals the
//     gate's high-water mark, an admitted column never blocks on the
//     channel send — which is also what fixes the historical deadlock of
//     a no-deadline request against a full queue.
//   - Circuit breaker: prediction runs behind a three-state breaker.
//     Consecutive failures (errors or recovered panics) trip it open;
//     while open, columns skip the ML path; after Breaker.ProbeInterval
//     a single half-open probe decides between closing and re-opening.
//     The probe schedule reads time only through the injected
//     resilience.Clock, so tests drive it deterministically.
//   - Graceful degradation: whenever the ML path is unavailable (panic,
//     error, or open breaker), the column is answered by
//     resilience/rulefallback — the paper's rule-based baseline over the
//     same base features — tagged Degraded with a one-hot probability
//     vector. Degraded answers are never cached, so recovery is not
//     poisoned by fallback results. /healthz reports "degraded" while
//     the breaker is not closed.
//   - Fault injection: Config.Faults accepts a fault-site Injector (see
//     resilience/faultinject); the hot path visits the sites "featurize"
//     and "predict". Production configurations leave it nil.
//
// # Concurrency invariants
//
// The same discipline as internal/ml/tree's training fan-out (the tree is
// race-clean under `go test -race` and gated by cmd/shvet):
//
//   - Ownership by index: the worker handling column i of a request
//     writes only results[i]; the results slice is fully allocated before
//     any task is enqueued, and the handler reads it only after the
//     request's WaitGroup reaches zero (or abandons it wholesale on
//     deadline, never reading partial results).
//   - Read-only model: workers only read the *core.Pipeline; prediction
//     is safe for concurrent use (see the tree package invariants).
//   - Cached values are immutable: a cachedPrediction's Probs slice is
//     never written after insertion; readers share it.
//   - Deadlines propagate: every per-column task carries the request
//     context and is skipped (not cancelled mid-compute) once the
//     deadline passes, so a timed-out request costs at most one in-flight
//     column per worker.
package serve
