package serve

import (
	"container/list"
	"encoding/binary"
	"math/bits"
	"sync"
	"sync/atomic"

	"sortinghat/ftype"
	"sortinghat/internal/data"
)

// cacheKey is the 128-bit FNV-1a content hash of one raw column.
type cacheKey [16]byte

// fnv128a is 128-bit FNV-1a unrolled by hand, bit-identical to the stdlib
// hash/fnv stream (TestColumnKeyMatchesStdlibFNV pins this). The stdlib
// hash only accepts []byte, which forced a copy of every cell value on the
// serve hot path; this state hashes strings in place and lives on the
// caller's stack.
type fnv128a struct{ hi, lo uint64 }

// FNV-128a parameters from hash/fnv: the offset basis split into two
// 64-bit words, and the low word + shift encoding of the 128-bit prime
// 2^88 + 2^8 + 0x3b.
const (
	fnv128OffsetHi   = 0x6c62272e07bb0142
	fnv128OffsetLo   = 0x62b821756295c58d
	fnv128PrimeLower = 0x13b
	fnv128PrimeShift = 24
)

func newFNV128a() fnv128a { return fnv128a{hi: fnv128OffsetHi, lo: fnv128OffsetLo} }

func (h *fnv128a) writeByte(c byte) {
	h.lo ^= uint64(c)
	s0, s1 := bits.Mul64(fnv128PrimeLower, h.lo)
	s0 += h.lo<<fnv128PrimeShift + fnv128PrimeLower*h.hi
	h.hi, h.lo = s0, s1
}

// writeString hashes s preceded by its big-endian 8-byte length, matching
// the length-prefixed framing columnKey has always used.
func (h *fnv128a) writeString(s string) {
	n := uint64(len(s))
	for shift := 56; shift >= 0; shift -= 8 {
		h.writeByte(byte(n >> shift))
	}
	for i := 0; i < len(s); i++ {
		h.writeByte(s[i])
	}
}

func (h *fnv128a) sum() cacheKey {
	var k cacheKey
	binary.BigEndian.PutUint64(k[:8], h.hi)
	binary.BigEndian.PutUint64(k[8:], h.lo)
	return k
}

// columnKey hashes a column's attribute name and cell values. Every string
// is length-prefixed so concatenations cannot collide ("ab"+"c" vs
// "a"+"bc"), and the name is hashed first so renamed copies of the same
// values key differently (the attribute name feeds the model's bigram
// features, so it must be part of the identity).
func columnKey(col *data.Column) cacheKey {
	h := newFNV128a()
	h.writeString(col.Name)
	for _, v := range col.Values {
		h.writeString(v)
	}
	return h.sum()
}

// ColumnHash returns the 128-bit FNV-1a content hash of a column: the
// same hash the prediction cache keys on, minus the model-version
// component. The gateway tier (internal/gateway) routes columns across
// replicas by this hash, so gateway shard ownership and replica cache
// identity agree by construction — a column always lands on the replica
// whose LRU already holds it.
func ColumnHash(col *data.Column) [16]byte { return columnKey(col) }

// versionedKey is the full prediction-cache key: the column's content
// hash plus the model swap sequence number it was predicted under. A hot
// reload (Server.Reload) bumps the sequence, so entries predicted by the
// previous model can never answer a lookup again — including entries
// inserted by in-flight workers that loaded the old model before the
// swap (they insert under the old sequence, which no new lookup uses).
type versionedKey struct {
	seq uint64
	key cacheKey
}

// cachedPrediction is the immutable value stored per column hash. Probs is
// shared between the cache and every response built from it and must never
// be mutated after insertion.
type cachedPrediction struct {
	Type  ftype.FeatureType
	Probs []float64
}

// predCache is a mutex-guarded LRU over column content hashes. A nil
// *predCache is a valid always-miss cache, which is how caching is
// disabled.
type predCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	byID      map[versionedKey]*list.Element
	evictions atomic.Int64 // lifetime LRU evictions (previously silent)
}

// lruEntry is the list payload: the key doubles back so eviction can
// delete from the map.
type lruEntry struct {
	key versionedKey
	val cachedPrediction
}

// newPredCache returns an LRU holding up to capacity entries, or nil
// (caching disabled) when capacity is not positive.
func newPredCache(capacity int) *predCache {
	if capacity <= 0 {
		return nil
	}
	return &predCache{cap: capacity, ll: list.New(), byID: make(map[versionedKey]*list.Element, capacity)}
}

// get returns the cached prediction for k, promoting it to most recently
// used on a hit.
func (c *predCache) get(k versionedKey) (cachedPrediction, bool) {
	if c == nil {
		return cachedPrediction{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[k]
	if !ok {
		return cachedPrediction{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts (or refreshes) k, evicting the least recently used entry
// when the cache is full.
func (c *predCache) put(k versionedKey, v cachedPrediction) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[k]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.byID, oldest.Value.(*lruEntry).key)
			c.evictions.Add(1)
		}
	}
	c.byID[k] = c.ll.PushFront(&lruEntry{key: k, val: v})
}

// len reports the number of cached entries.
func (c *predCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evicted reports the lifetime eviction count.
func (c *predCache) evicted() int64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}

// capacity reports the configured capacity (0 when caching is disabled).
func (c *predCache) capacity() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// purge drops every entry and reports how many were dropped. Reload
// calls it after a model swap: the swapped-out model's entries are
// already unreachable (the sequence in their key no longer matches), so
// purging only reclaims their memory early instead of waiting for LRU
// pressure. Purged entries do not count as evictions — eviction measures
// capacity pressure, not model turnover.
func (c *predCache) purge() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	clear(c.byID)
	return n
}
