package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sortinghat/internal/obs"
)

// TestRequestIDForwarded pins the fleet-log-join contract: a forwarded
// X-Request-Id is reused — echoed back, attached to the trace span, and
// written to the access log — instead of the replica minting its own.
func TestRequestIDForwarded(t *testing.T) {
	var logBuf bytes.Buffer
	s := newTestServer(t, Config{Workers: 1, Logger: obs.NewLogger(&logBuf, 0)})
	h := s.Handler()

	body, err := json.Marshal(testBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "gw-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
	}
	if got := rec.Header().Get("X-Request-Id"); got != "gw-42" {
		t.Errorf("echoed X-Request-Id = %q, want the forwarded gw-42", got)
	}

	trec := httptest.NewRecorder()
	h.ServeHTTP(trec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	var tr TracesResponse
	if err := json.Unmarshal(trec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count != 1 || attrValue(tr.Traces[0].Attrs, "request_id") != "gw-42" {
		t.Errorf("trace request_id attr = %q, want gw-42", attrValue(tr.Traces[0].Attrs, "request_id"))
	}
	if !strings.Contains(logBuf.String(), `"request_id":"gw-42"`) {
		t.Errorf("access log missing the forwarded request id:\n%s", logBuf.String())
	}
}

// TestTraceparentContinued pins the replica half of distributed tracing:
// an incoming traceparent makes the request's root span adopt the remote
// trace id and parent itself to the remote span, visible in both
// /debug/traces and the JSONL sink.
func TestTraceparentContinued(t *testing.T) {
	remote := obs.SpanContext{
		TraceID: obs.TraceID{0xab, 0xcd, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14},
		SpanID:  obs.SpanID{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88},
	}
	var sink bytes.Buffer
	s := newTestServer(t, Config{Workers: 1, TraceSink: &sink})
	h := s.Handler()

	body, err := json.Marshal(testBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body))
	req.Header.Set(obs.TraceparentHeader, remote.Traceparent())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
	}

	trec := httptest.NewRecorder()
	h.ServeHTTP(trec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	var tr TracesResponse
	if err := json.Unmarshal(trec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count != 1 {
		t.Fatalf("recorded %d traces, want 1", tr.Count)
	}
	root := tr.Traces[0]
	if root.TraceID != remote.TraceID.String() {
		t.Errorf("root trace_id = %q, want the remote %q", root.TraceID, remote.TraceID)
	}
	if root.ParentID != remote.SpanID.String() {
		t.Errorf("root parent_span_id = %q, want the remote span %q", root.ParentID, remote.SpanID)
	}
	if root.SpanID == "" || root.SpanID == remote.SpanID.String() {
		t.Errorf("root span id %q must be fresh, not the remote one", root.SpanID)
	}

	// The JSONL sink line carries the same identity for tracecat.
	var line obs.SpanJSON
	if err := json.Unmarshal(bytes.TrimSpace(sink.Bytes()), &line); err != nil {
		t.Fatalf("sink line invalid: %v\n%s", err, sink.Bytes())
	}
	if line.TraceID != remote.TraceID.String() || line.ParentID != remote.SpanID.String() {
		t.Errorf("sink identity = (%q,%q), want (%q,%q)",
			line.TraceID, line.ParentID, remote.TraceID, remote.SpanID)
	}

	// A garbage traceparent is ignored: fresh trace, no remote parent.
	req = httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body))
	req.Header.Set(obs.TraceparentHeader, "not-a-traceparent")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status with bad traceparent = %d", rec.Code)
	}
	trec = httptest.NewRecorder()
	h.ServeHTTP(trec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if err := json.Unmarshal(trec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	last := tr.Traces[len(tr.Traces)-1]
	if last.ParentID != "" {
		t.Errorf("malformed traceparent produced a remote parent %q", last.ParentID)
	}
	if last.TraceID == remote.TraceID.String() || last.TraceID == "" {
		t.Errorf("malformed traceparent: trace id %q should be freshly minted", last.TraceID)
	}
}

// TestDebugFlight drives a fast request, a slow request (featurize-site
// latency fault) and an errored request through the server and checks
// /debug/flight explains them: the slow one leads the slowest ring with
// per-phase durations and a trace id, the errored one shows up in the
// errored ring.
func TestDebugFlight(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:    1,
		CacheSize:  -1,
		FlightRing: 4,
		Timeout:    50 * time.Millisecond,
		Faults:     slowSite("featurize", 80*time.Millisecond),
	})
	h := s.Handler()

	// Slow request: the featurize fault pushes it past the 50ms deadline
	// → 504, which must enter both rings.
	rec, _ := postInfer(t, h, testBatch(1))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow request status = %d, want 504", rec.Code)
	}

	frec := httptest.NewRecorder()
	h.ServeHTTP(frec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if frec.Code != http.StatusOK {
		t.Fatalf("/debug/flight status = %d", frec.Code)
	}
	var snap obs.FlightSnapshot
	if err := json.Unmarshal(frec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decoding flight snapshot: %v\n%s", err, frec.Body.Bytes())
	}
	if len(snap.Slowest) == 0 || len(snap.Errored) == 0 {
		t.Fatalf("flight recorder empty after a timed-out request: %+v", snap)
	}
	top := snap.Slowest[0]
	if top.Status != http.StatusGatewayTimeout || top.Err == "" {
		t.Errorf("slowest record = status %d err %q, want 504 with an error", top.Status, top.Err)
	}
	if top.TraceID == "" || len(top.TraceID) != 32 {
		t.Errorf("slowest record trace_id = %q, want a 32-hex trace id", top.TraceID)
	}
	if top.RequestID == "" || top.Path != "/v1/infer" || top.Columns != 1 {
		t.Errorf("slowest record identity incomplete: %+v", top)
	}
	if top.DurationNS < (40 * time.Millisecond).Nanoseconds() {
		t.Errorf("slowest record duration %dns, want >= the deadline", top.DurationNS)
	}
	names := make([]string, len(top.Phases))
	for i, p := range top.Phases {
		names[i] = p.Name
	}
	if strings.Join(names, ",") != "queue,cache,featurize,predict" {
		t.Errorf("phase order = %v, want [queue cache featurize predict]", names)
	}
	if snap.Errored[0].Status != http.StatusGatewayTimeout {
		t.Errorf("errored ring head status = %d, want 504", snap.Errored[0].Status)
	}

	// A 405 is neither slow nor a service failure: flight state unchanged.
	before := len(snap.Slowest) + len(snap.Errored)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/v1/infer", nil))
	frec = httptest.NewRecorder()
	h.ServeHTTP(frec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if err := json.Unmarshal(frec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if got := len(snap.Slowest) + len(snap.Errored); got != before {
		t.Errorf("a 405 changed flight state: %d records, had %d", got, before)
	}
}
